//! The five errata found while reproducing the paper, each verified as an
//! executable test (see EXPERIMENTS.md § Errata for the prose versions).

use temporal_properties::automata::classify;
use temporal_properties::automata::paper_checks;
use temporal_properties::automata::streett::{StreettPair, StreettPairs};
use temporal_properties::lang::{witnesses, FinitaryProperty};
use temporal_properties::prelude::*;
use temporal_properties::topology::density;

/// Erratum 1: the §2 guarantee example `E(a⁺b*)` over Σ = {a,b} is clopen.
#[test]
fn erratum_1_guarantee_example_is_clopen() {
    let c = classify::classify(&witnesses::guarantee_paper_example());
    assert!(c.is_guarantee, "the paper's classification is correct…");
    assert!(c.is_safety, "…but the example is also safety (a·Σ^ω)");
    // The strict witness used instead:
    let strict = classify::classify(&witnesses::guarantee());
    assert!(strict.is_guarantee && !strict.is_safety);
}

/// Erratum 2: `minex((a³)⁺, (a²)⁺)` cannot contain `a²`.
#[test]
fn erratum_2_minex_example() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let p3 = FinitaryProperty::parse(&sigma, "(aaa)+").unwrap();
    let p2 = FinitaryProperty::parse(&sigma, "(aa)+").unwrap();
    let m = p3.minex(&p2);
    // a² has no proper (a³)⁺-prefix:
    assert!(!m.contains_str("aa").unwrap());
    // The corrected language:
    let corrected = FinitaryProperty::parse(&sigma, "(aaaaaa)(aaaaaa)*aa + (aaaaaa)*aaaa").unwrap();
    assert!(m.equivalent(&corrected));
    // The law the example illustrates is unaffected:
    use temporal_properties::lang::operators;
    assert!(operators::r(&p3)
        .intersection(&operators::r(&p2))
        .equivalent(&operators::r(&m)));
}

/// Erratum 3: the `Obl_k` family as printed collapses to `Obl₁`.
#[test]
fn erratum_3_printed_obligation_family_collapses() {
    for k in 2..=5 {
        let printed = classify::classify(&witnesses::obligation_witness_as_printed(k));
        assert_eq!(printed.obligation_index, Some(1), "printed family k={k}");
        let corrected = classify::classify(&witnesses::obligation_witness(k));
        assert_eq!(
            corrected.obligation_index,
            Some(k),
            "corrected family k={k}"
        );
    }
}

/// Erratum 4: the §5.1 structural safety check is unsound for ≥ 2 pairs.
#[test]
fn erratum_4_multipair_structural_check_unsound() {
    // Hand-crafted counterexample: two states, each "bad" w.r.t. one pair
    // but the 2-cycle satisfies both pairs crosswise.
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    // Transition: stay on a, swap on b.
    let b = sigma.symbol("b").unwrap();
    let pairs = StreettPairs(vec![
        StreettPair::new([0], []), // pair 1: Inf{0}
        StreettPair::new([1], []), // pair 2: Inf{1}
    ]);
    let aut = OmegaAutomaton::build(
        &sigma,
        2,
        0,
        |q, s| if s == b { 1 - q } else { q },
        pairs.acceptance(2),
    );
    // G = (R₁∪P₁) ∩ (R₂∪P₂) = {0} ∩ {1} = ∅: every state is "bad", so
    // B̂ ∩ G = ∅ holds vacuously and the structural check says "safety"…
    assert!(paper_checks::is_safety_structural(&aut, &pairs));
    // …but the language is "infinitely many of each", a strict recurrence
    // property, not safety.
    let c = classify::classify(&aut);
    assert!(!c.is_safety);
    assert!(c.is_recurrence);
    // For a single pair the check is sound on this shape:
    let single = StreettPairs::single(StreettPair::new([0], []));
    let aut1 = aut.with_acceptance(single.acceptance(2));
    assert_eq!(
        paper_checks::is_safety_structural(&aut1, &single),
        classify::is_safety(&aut1)
    );
}

/// Erratum 5: the uniform-liveness counterexample admits σ′ = aabb^ω.
#[test]
fn erratum_5_uniform_liveness_example() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let a = sigma.symbol("a").unwrap();
    // a·Σ*·aa·Σ^ω + b·Σ*·bb·Σ^ω, exactly as in the paper.
    let m = OmegaAutomaton::build(
        &sigma,
        7,
        0,
        move |q, s| match (q, s == a) {
            (0, true) => 1,
            (0, false) => 4,
            (1, true) => 2,
            (1, false) => 1,
            (2, true) => 3,
            (2, false) => 1,
            (3, _) => 3,
            (4, false) => 5,
            (4, true) => 4,
            (5, false) => 6,
            (5, true) => 4,
            (6, _) => 6,
            _ => unreachable!(),
        },
        Acceptance::inf([3, 6]),
    );
    assert!(density::is_dense(&m), "liveness, as the paper says");
    // The paper claims no uniform extension exists; one does.
    let w = density::uniform_liveness_witness(&m).expect("uniform extension exists");
    // Verify the witness against a brute sample of prefixes.
    for prefix in ["a", "b", "ab", "ba", "abab", "bbbb"] {
        let mut spoke: Vec<Symbol> = prefix
            .chars()
            .map(|c| sigma.symbol(&c.to_string()).unwrap())
            .collect();
        spoke.extend_from_slice(w.spoke());
        assert!(
            m.accepts(&Lasso::new(spoke, w.cycle().to_vec())),
            "uniform witness fails after {prefix}"
        );
    }
}
