//! Differential soundness suite for the direct inclusion/equivalence
//! oracle (`automata::inclusion`, ISSUE 8).
//!
//! 200+ seeded deterministic Streett, Rabin and parity automata are
//! pushed through both oracles — the direct Angluin–Fisman product-graph
//! algorithm and the classical complement+product+emptiness
//! construction — and every verdict must be identical. Counterexample
//! lassos are replayed through [`Lasso`] acceptance on both automata
//! (they must be accepted by exactly the claimed side), parity views are
//! checked against the boolean conditions they summarize, the
//! `Analysis`-level wiring is exercised, and the structural invariants
//! guarded by the constructor audit (ISSUE 8 satellite: `map_sets` /
//! `with_acceptance` atom-range hygiene) are swept across every
//! automaton-producing construction.

use temporal_properties::automata::inclusion;
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::random::rng::{Rng, SeedableRng, StdRng};
use temporal_properties::automata::random::{
    random_lasso, random_parity, random_rabin, random_streett,
};
use temporal_properties::prelude::*;

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

/// Both oracles must return the same inclusion verdict in both
/// directions and the same equivalence verdict; on failure the witness
/// lasso must be a real separator.
fn check_pair(case: &str, a: &OmegaAutomaton, b: &OmegaAutomaton) {
    let fwd = inclusion::included(a, b);
    let bwd = inclusion::included(b, a);
    assert_eq!(
        fwd,
        a.is_subset_of_via_complement(b),
        "{case}: forward inclusion verdict differs from the complement oracle"
    );
    assert_eq!(
        bwd,
        b.is_subset_of_via_complement(a),
        "{case}: backward inclusion verdict differs from the complement oracle"
    );
    let eq = inclusion::equivalent(a, b);
    assert_eq!(
        eq,
        a.equivalent_via_complement(b),
        "{case}: equivalence verdict differs from the complement oracle"
    );
    assert_eq!(eq, fwd && bwd, "{case}: equivalence ≠ mutual inclusion");

    if !fwd {
        let w = inclusion::inclusion_counterexample(a, b)
            .unwrap_or_else(|| panic!("{case}: non-inclusion must yield a counterexample"));
        assert!(a.accepts(&w), "{case}: counterexample not accepted by A");
        assert!(!b.accepts(&w), "{case}: counterexample accepted by B");
    } else {
        assert!(
            inclusion::inclusion_counterexample(a, b).is_none(),
            "{case}: inclusion holds but a counterexample was produced"
        );
    }
    if !eq {
        let w = inclusion::distinguishing_lasso(a, b)
            .unwrap_or_else(|| panic!("{case}: inequivalence must yield a distinguishing lasso"));
        assert_ne!(
            a.accepts(&w),
            b.accepts(&w),
            "{case}: distinguishing lasso accepted by both or neither"
        );
    } else {
        assert!(
            inclusion::distinguishing_lasso(a, b).is_none(),
            "{case}: equivalent automata yielded a distinguishing lasso"
        );
    }
}

/// 90 seeded Streett-vs-Streett cases (the shape the old oracle paid
/// exponentially for: `k` conjoined pairs on the left).
#[test]
fn streett_verdicts_match_the_complement_oracle() {
    let mut rng = StdRng::seed_from_u64(0x51EE7);
    let alphabet = sigma();
    for case in 0..90 {
        let n = rng.gen_range(2..=20usize);
        let k = rng.gen_range(1..=4usize);
        let (a, _) = random_streett(&mut rng, &alphabet, n, k, 0.25);
        let m = rng.gen_range(2..=20usize);
        let kb = rng.gen_range(1..=4usize);
        let (b, _) = random_streett(&mut rng, &alphabet, m, kb, 0.25);
        check_pair(&format!("streett case {case} (n={n}, k={k})"), &a, &b);
    }
}

/// 60 seeded Rabin-vs-Rabin and Rabin-vs-Streett cases (disjunctive
/// conditions on both sides of the product).
#[test]
fn rabin_verdicts_match_the_complement_oracle() {
    let mut rng = StdRng::seed_from_u64(0xAB1);
    let alphabet = sigma();
    for case in 0..60 {
        let n = rng.gen_range(2..=18usize);
        let ka = rng.gen_range(1..=3usize);
        let a = random_rabin(&mut rng, &alphabet, n, ka, 0.3);
        let m = rng.gen_range(2..=18usize);
        let kb = rng.gen_range(1..=3usize);
        let b = if case % 2 == 0 {
            random_rabin(&mut rng, &alphabet, m, kb, 0.3)
        } else {
            random_streett(&mut rng, &alphabet, m, kb, 0.3).0
        };
        check_pair(&format!("rabin case {case} (n={n})"), &a, &b);
    }
}

/// 60 seeded parity-vs-parity cases — both sides admit a
/// [`ParityView`], so these exercise the Angluin–Fisman fast path
/// end-to-end (priority-threshold product restrictions).
#[test]
fn parity_verdicts_match_the_complement_oracle() {
    let mut rng = StdRng::seed_from_u64(0x9A817);
    let alphabet = sigma();
    for case in 0..60 {
        let n = rng.gen_range(2..=20usize);
        let d = rng.gen_range(1..=4usize) as u32;
        let a = random_parity(&mut rng, &alphabet, n, d);
        let m = rng.gen_range(2..=20usize);
        let db = rng.gen_range(1..=4usize) as u32;
        let b = random_parity(&mut rng, &alphabet, m, db);
        assert!(
            ParityView::try_of(a.acceptance(), a.num_states()).is_some()
                && ParityView::try_of(b.acceptance(), b.num_states()).is_some(),
            "parity case {case}: generated automata must admit parity views"
        );
        check_pair(&format!("parity case {case} (n={n}, d={d})"), &a, &b);
    }
}

/// The parity view is a faithful summary: on random infinity sets (from
/// random lasso runs) it must agree with the boolean condition it was
/// derived from.
#[test]
fn parity_views_summarize_their_boolean_conditions() {
    let mut rng = StdRng::seed_from_u64(0x9A81);
    let alphabet = sigma();
    for case in 0..40 {
        let n = rng.gen_range(2..=16usize);
        let d = rng.gen_range(1..=5usize) as u32;
        let aut = random_parity(&mut rng, &alphabet, n, d);
        let view = ParityView::try_of(aut.acceptance(), n).expect("parity automaton");
        for w in 0..10 {
            let lasso = random_lasso(&mut rng, &alphabet, 4, 5);
            let inf = aut.infinity_set(&lasso);
            assert_eq!(
                view.accepts_infinity_set(&inf),
                aut.acceptance().accepts_infinity_set(&inf),
                "case {case}.{w}: parity view disagrees on {inf:?}"
            );
        }
    }
}

/// The `Analysis`-level oracle (quotient-first + memo) must agree with
/// the raw complement oracle on the raw operands.
#[test]
fn analysis_oracle_agrees_with_the_complement_oracle() {
    let mut rng = StdRng::seed_from_u64(0xA11A);
    let alphabet = sigma();
    for case in 0..30 {
        let n = rng.gen_range(2..=16usize);
        let (a, _) = random_streett(&mut rng, &alphabet, n, 2, 0.3);
        let m = rng.gen_range(2..=16usize);
        let (b, _) = random_streett(&mut rng, &alphabet, m, 2, 0.3);
        let ctx = Analysis::new(a.clone());
        assert_eq!(
            ctx.is_subset_of(&b),
            a.is_subset_of_via_complement(&b),
            "case {case}: Analysis::is_subset_of"
        );
        assert_eq!(
            ctx.equivalent(&b),
            a.equivalent_via_complement(&b),
            "case {case}: Analysis::equivalent"
        );
    }
}

/// Structural-invariant regression for the constructor audit: every
/// automaton-producing construction (product, trim, reduce, minimize,
/// complement) must keep the initial state and all transition targets in
/// range and every acceptance atom set inside the state set.
#[test]
fn constructions_preserve_structural_invariants() {
    fn assert_wellformed(case: &str, aut: &OmegaAutomaton) {
        let n = aut.num_states();
        assert!((aut.initial() as usize) < n, "{case}: initial out of range");
        for q in 0..n as u32 {
            for s in aut.alphabet().symbols() {
                assert!(
                    (aut.step(q, s) as usize) < n,
                    "{case}: transition target out of range"
                );
            }
        }
        for set in aut.acceptance().atom_sets() {
            assert!(
                set.iter().all(|q| q < n),
                "{case}: acceptance atom {set:?} mentions states ≥ {n}"
            );
        }
    }

    let mut rng = StdRng::seed_from_u64(0x57AB1E);
    let alphabet = sigma();
    for case in 0..25 {
        let n = rng.gen_range(2..=14usize);
        let (a, _) = random_streett(&mut rng, &alphabet, n, 2, 0.3);
        let m = rng.gen_range(2..=14usize);
        let b = random_rabin(&mut rng, &alphabet, m, 2, 0.3);
        assert_wellformed(&format!("case {case}: raw"), &a);
        assert_wellformed(&format!("case {case}: trim"), &a.trim());
        assert_wellformed(&format!("case {case}: reduce"), &a.reduce());
        assert_wellformed(&format!("case {case}: complement"), &a.complement());
        assert_wellformed(&format!("case {case}: intersection"), &a.intersection(&b));
        assert_wellformed(&format!("case {case}: union"), &a.union(&b));
        assert_wellformed(&format!("case {case}: difference"), &a.difference(&b));
        let m = minimize(&a);
        assert_wellformed(&format!("case {case}: minimize"), &m.quotient);
    }
}
