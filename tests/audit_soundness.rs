//! Differential soundness for the suite auditor (`lint::suite`).
//!
//! The audit's whole-suite verdicts are cross-checked against direct
//! single-purpose oracle calls on fresh contexts: every cell of the
//! subsumption matrix against [`Analysis::is_subset_of`], the
//! `SUITE002` equivalence classes against pairwise [`Analysis::equivalent`],
//! the `SUITE003` conflicts against product emptiness, and the
//! `SUITE001` verdicts against an explicitly folded rest-of-suite
//! conjunction. A separate test pins the PR's acceptance scenario: a
//! clean 20-property suite with one injected redundancy, one injected
//! duplicate and one injected conflict reports exactly those three
//! findings.

use temporal_properties::audit_properties;
use temporal_properties::automata::alphabet::Alphabet;
use temporal_properties::automata::analysis::{Analysis, AnalysisStats};
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::random::random_streett;
use temporal_properties::automata::random::rng::{SeedableRng, StdRng};
use temporal_properties::lint::{audit_suite, AuditOptions, SuiteAudit};
use temporal_properties::Property;

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

fn random_suite(seed: u64, sigma: &Alphabet) -> Vec<(String, OmegaAutomaton)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 + (seed as usize % 3);
    (0..n)
        .map(|i| {
            (
                format!("m{i}"),
                random_streett(&mut rng, sigma, 6, 1, 0.4).0,
            )
        })
        .collect()
}

/// 200 seeded suites: every audit verdict agrees with the direct,
/// memo-free oracle run.
#[test]
fn audit_agrees_with_direct_oracles_on_200_suites() {
    let sigma = sigma();
    for seed in 0..200u64 {
        let suite = random_suite(seed, &sigma);
        let n = suite.len();
        let audit = audit_suite(&suite, &AuditOptions::default()).expect("one alphabet");
        assert_eq!(
            audit.deep_checks_skipped, 0,
            "seed {seed}: tiny suites never hit the conjunction cap"
        );
        // Fresh, unshared contexts: the reference answers cannot ride
        // any state the audit built up.
        let direct: Vec<Analysis> = suite
            .iter()
            .map(|(_, a)| Analysis::new(a.clone()))
            .collect();

        // 1. The subsumption matrix, cell by cell.
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    audit.subsumption[i][j],
                    direct[i].is_subset_of(direct[j].automaton()),
                    "seed {seed}: matrix cell ({i},{j}) disagrees with the oracle"
                );
            }
        }

        // 2. SUITE002 ⇔ pairwise language equivalence: the
        //    representative of i is the least j with the same language.
        for i in 0..n {
            let least = (0..=i)
                .find(|&j| direct[j].equivalent(direct[i].automaton()))
                .unwrap();
            assert_eq!(
                audit.representative[i], least,
                "seed {seed}: member {i} joined the wrong language class"
            );
            let dup_reported = audit.member_diagnostics[i]
                .iter()
                .any(|d| d.code == "SUITE002");
            assert_eq!(
                dup_reported,
                least < i,
                "seed {seed}: SUITE002 on member {i} must mean a strictly earlier equal language"
            );
        }

        // 3. SUITE003 ⇔ product emptiness on incomparable non-empty
        //    representative pairs.
        let empty: Vec<bool> = direct.iter().map(|c| c.is_empty()).collect();
        let reps: Vec<usize> = (0..n).filter(|&i| audit.representative[i] == i).collect();
        let mut expected_conflicts = Vec::new();
        for (k, &a) in reps.iter().enumerate() {
            for &b in &reps[k + 1..] {
                let comparable = audit.subsumption[a][b] || audit.subsumption[b][a];
                if !empty[a] && !empty[b] && !comparable {
                    let product = suite[a].1.intersection(&suite[b].1);
                    if Analysis::new(product).is_empty() {
                        expected_conflicts.push((a, b));
                    }
                }
            }
        }
        let reported: Vec<&str> = audit
            .suite_diagnostics
            .iter()
            .filter(|d| d.code == "SUITE003")
            .map(|d| d.message.as_str())
            .collect();
        assert_eq!(
            reported.len(),
            expected_conflicts.len(),
            "seed {seed}: conflict count disagrees with direct product emptiness"
        );
        for &(a, b) in &expected_conflicts {
            assert!(
                reported
                    .iter()
                    .any(|m| m.contains(&format!("\"{}\"", suite[a].0))
                        && m.contains(&format!("\"{}\"", suite[b].0))),
                "seed {seed}: conflict ({a},{b}) not reported"
            );
        }

        // 4. SUITE001 against an explicitly folded rest-of-suite
        //    conjunction (the auditor's fast path fires even when the
        //    rest collapses, as long as one member alone implies i).
        let any_empty = empty.iter().any(|&e| e);
        for (i, direct_i) in direct.iter().enumerate() {
            let class_size = audit
                .representative
                .iter()
                .filter(|&&r| r == audit.representative[i])
                .count();
            let expected = if any_empty || class_size > 1 {
                false
            } else {
                let fast = (0..n).any(|j| j != i && audit.subsumption[j][i]);
                let rest = suite
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, (_, a))| a.clone())
                    .reduce(|acc, a| acc.intersection(&a))
                    .expect("n >= 2");
                let rest_ctx = Analysis::new(rest);
                fast || (!rest_ctx.is_empty() && rest_ctx.is_subset_of(direct_i.automaton()))
            };
            let reported = audit.member_diagnostics[i]
                .iter()
                .any(|d| d.code == "SUITE001");
            assert_eq!(
                reported, expected,
                "seed {seed}: SUITE001 on member {i} disagrees with the folded conjunction"
            );
        }

        // 5. Dominance edges are strict containments between
        //    representatives with nothing strictly in between.
        for &(a, b) in &audit.dominance {
            assert!(audit.subsumption[a][b] && !audit.subsumption[b][a]);
            assert!(!reps.iter().any(|&c| {
                audit.subsumption[a][c]
                    && !audit.subsumption[c][a]
                    && audit.subsumption[c][b]
                    && !audit.subsumption[b][c]
            }));
        }
    }
}

/// `--jobs N` never changes the report, only the wall time: the same
/// suites audited with 1, 2 and 4 workers produce identical reports.
#[test]
fn worker_count_does_not_change_the_report() {
    let sigma = sigma();
    for seed in (0..200u64).step_by(5) {
        let suite = random_suite(seed, &sigma);
        let strip = |mut a: SuiteAudit| {
            a.stats = AnalysisStats::default();
            a
        };
        let sequential = strip(
            audit_suite(
                &suite,
                &AuditOptions {
                    jobs: 1,
                    ..AuditOptions::default()
                },
            )
            .unwrap(),
        );
        for jobs in [2, 4] {
            let parallel = strip(
                audit_suite(
                    &suite,
                    &AuditOptions {
                        jobs,
                        ..AuditOptions::default()
                    },
                )
                .unwrap(),
            );
            assert_eq!(parallel, sequential, "seed {seed}, jobs {jobs}");
        }
    }
}

/// A duplicate-heavy suite is decided entirely by the canonical-hash
/// prefilter: every pair hash-equal, zero oracle calls.
#[test]
fn duplicate_heavy_suite_never_reaches_the_oracle() {
    let sigma = sigma();
    let mut rng = StdRng::seed_from_u64(7);
    let (aut, _) = random_streett(&mut rng, &sigma, 6, 1, 0.4);
    let suite: Vec<(String, OmegaAutomaton)> =
        (0..10).map(|i| (format!("copy{i}"), aut.clone())).collect();
    let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
    assert_eq!(audit.prefilter.pairs, 45);
    assert_eq!(audit.prefilter.hash_decided, 45);
    assert_eq!(
        audit.prefilter.oracle_calls, 0,
        "identical copies must never reach the inclusion oracle"
    );
    for i in 1..10 {
        assert_eq!(audit.representative[i], 0);
        assert!(audit.member_diagnostics[i]
            .iter()
            .any(|d| d.code == "SUITE002"));
    }
}

/// The PR's acceptance scenario: a 20-property suite (15 mutual
/// exclusions plus 5 progress properties spanning the hierarchy) audits
/// clean; injecting one redundant member, one α-renamed duplicate and
/// one conflicting member reports exactly those three findings, with
/// nothing on the 20 original members.
#[test]
fn twenty_property_scenario_reports_injections_exactly() {
    let sigma = Alphabet::of_propositions(["p0", "p1", "p2", "p3", "p4", "p5"]).unwrap();
    let mut sources: Vec<(String, String)> = Vec::new();
    for i in 0..6 {
        for j in i + 1..6 {
            sources.push((format!("mutex-{i}{j}"), format!("G !(p{i} & p{j})")));
        }
    }
    sources.push(("eventually-0".into(), "F p0".into()));
    sources.push(("response-01".into(), "G (p0 -> F p1)".into()));
    sources.push(("quiescence-5".into(), "F G !p5".into()));
    sources.push(("obligation-34".into(), "G !p3 | F p4".into()));
    sources.push(("fair-merge-12".into(), "G F p1 -> G F p2".into()));
    assert_eq!(sources.len(), 20);

    let compile = |src: &str| Property::parse(&sigma, src).expect(src);
    let properties: Vec<(String, Property)> = sources
        .iter()
        .map(|(name, src)| (name.clone(), compile(src)))
        .collect();
    let items: Vec<(&str, &Property)> = properties.iter().map(|(n, p)| (n.as_str(), p)).collect();
    let opts = AuditOptions::default();
    let baseline = audit_properties(items.iter().copied(), &opts).expect("one alphabet");
    assert_eq!(
        baseline.all_diagnostics(),
        vec![],
        "the seeded 20-property suite must audit clean"
    );
    assert!(
        baseline.histogram.len() >= 4,
        "the suite spans the hierarchy"
    );

    // Injections: a union of two members (redundant), a commuted mutex
    // (α-equivalent duplicate), and the negation of the quiescence
    // member (conflicting pair).
    let injected: Vec<(String, Property)> = vec![
        (
            "either-mutex".into(),
            compile("G !(p0 & p1) | G !(p2 & p3)"),
        ),
        ("mutex-01-again".into(), compile("G !(p1 & p0)")),
        ("churn-5".into(), compile("G F p5")),
    ];
    let all: Vec<(&str, &Property)> = items
        .iter()
        .copied()
        .chain(injected.iter().map(|(n, p)| (n.as_str(), p)))
        .collect();
    let report = audit_properties(all.iter().copied(), &opts).expect("one alphabet");
    for i in 0..20 {
        assert_eq!(
            report.member_diagnostics[i],
            vec![],
            "original member {:?} must stay silent",
            report.names[i]
        );
    }
    let member_codes = |i: usize| -> Vec<&'static str> {
        report.member_diagnostics[i]
            .iter()
            .map(|d| d.code)
            .collect()
    };
    assert_eq!(
        member_codes(20),
        ["SUITE001"],
        "the union member is redundant"
    );
    assert_eq!(
        member_codes(21),
        ["SUITE002"],
        "the commuted mutex is a duplicate"
    );
    assert_eq!(
        report.representative[21], 0,
        "the duplicate joins mutex-01's language class"
    );
    assert_eq!(
        member_codes(22),
        [] as [&str; 0],
        "the conflict is a suite-level finding"
    );
    let suite_codes: Vec<&'static str> = report.suite_diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(suite_codes, ["SUITE003"], "exactly one conflict");
    let msg = &report.suite_diagnostics[0].message;
    assert!(
        msg.contains("\"quiescence-5\"") && msg.contains("\"churn-5\""),
        "the conflict names the injected pair, got: {msg}"
    );
}
