//! Brute-force oracle for the classification procedures.
//!
//! The color-lattice construction in `hierarchy_automata::classify` avoids
//! enumerating the (exponentially many) accessible cycles. This suite
//! *does* enumerate them — every subset of every reachable SCC that
//! induces a strongly connected subgraph with at least one edge — builds
//! the paper's accepting family `F` explicitly, evaluates the
//! Wagner/Landweber chain conditions literally, and compares against the
//! production classifier on hundreds of random automata.

use temporal_properties::automata::bitset::BitSet;
use temporal_properties::automata::classify;
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::random::random_streett;
use temporal_properties::automata::random::rng::SeedableRng;
use temporal_properties::automata::random::rng::StdRng;
use temporal_properties::prelude::*;

/// All accessible cycles (as state sets) of the automaton, by subset
/// enumeration within each reachable SCC.
fn accessible_cycles(aut: &OmegaAutomaton) -> Vec<BitSet> {
    let reachable = aut.reachable_states();
    let sccs = aut.sccs(Some(&reachable));
    let mut cycles = Vec::new();
    for c in 0..sccs.len() {
        if !sccs.has_cycle[c] {
            continue;
        }
        let members: Vec<usize> = sccs.members[c].iter().map(|&q| q as usize).collect();
        let m = members.len();
        assert!(m <= 16, "oracle automata must stay small");
        for mask in 1u32..(1 << m) {
            let subset: BitSet = members
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &q)| q)
                .collect();
            if is_cycle(aut, &subset) {
                cycles.push(subset);
            }
        }
    }
    cycles
}

/// Whether `set` induces a strongly connected subgraph with at least one
/// edge (the paper's notion of a cycle).
fn is_cycle(aut: &OmegaAutomaton, set: &BitSet) -> bool {
    let sccs = aut.sccs(Some(set));
    // The restriction must form a single SCC covering the set, with a
    // cycle.
    let mut comp = None;
    for q in set.iter() {
        let c = sccs.component[q];
        if c == usize::MAX {
            return false;
        }
        match comp {
            None => comp = Some(c),
            Some(c0) if c0 != c => return false,
            _ => {}
        }
    }
    comp.is_some_and(|c| sccs.has_cycle[c] && sccs.members[c].len() == set.len())
}

/// The literal Wagner/Landweber checks over the explicit cycle family.
struct Oracle {
    cycles: Vec<(BitSet, bool)>, // (cycle, accepting)
}

impl Oracle {
    fn new(aut: &OmegaAutomaton) -> Self {
        let cycles = accessible_cycles(aut)
            .into_iter()
            .map(|c| {
                let acc = aut.acceptance().accepts_infinity_set(&c);
                (c, acc)
            })
            .collect();
        Oracle { cycles }
    }

    fn is_recurrence(&self) -> bool {
        // No accepting cycle inside a rejecting one.
        !self
            .cycles
            .iter()
            .any(|(j, ja)| *ja && self.cycles.iter().any(|(a, aa)| !*aa && j.is_subset(a)))
    }

    fn is_persistence(&self) -> bool {
        !self
            .cycles
            .iter()
            .any(|(b, ba)| !*ba && self.cycles.iter().any(|(j, ja)| *ja && b.is_subset(j)))
    }

    fn is_simple_reactivity(&self) -> bool {
        // No chain B ⊆ J ⊆ A with B, A rejecting and J accepting.
        !self.cycles.iter().any(|(j, ja)| {
            *ja && self.cycles.iter().any(|(b, ba)| {
                !*ba && b.is_subset(j) && self.cycles.iter().any(|(a, aa)| !*aa && j.is_subset(a))
            })
        })
    }

    /// Maximal n admitting B₁ ⊆ J₁ ⊆ … ⊆ Bₙ ⊆ Jₙ (alternating
    /// rejecting/accepting, counting completed pairs), by depth-first
    /// chain extension; at least 1 by the paper's convention.
    fn reactivity_index(&self) -> usize {
        fn extend(oracle: &Oracle, from: Option<&BitSet>, want_accepting: bool) -> usize {
            let mut best = 0;
            for (c, acc) in &oracle.cycles {
                if *acc != want_accepting {
                    continue;
                }
                if let Some(f) = from {
                    if !f.is_subset(c) {
                        continue;
                    }
                }
                let rest = extend(oracle, Some(c), !want_accepting);
                let here = if want_accepting { 1 + rest } else { rest };
                best = best.max(here);
            }
            best
        }
        extend(self, None, false).max(1)
    }
}

#[test]
fn classifier_matches_bruteforce_oracle() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut rng = StdRng::seed_from_u64(20260705);
    for i in 0..250 {
        let k = 1 + (i % 2);
        let (aut, _) = random_streett(&mut rng, &sigma, 5, k, 0.35);
        let oracle = Oracle::new(&aut);
        let c = classify::classify(&aut);
        assert_eq!(
            c.is_recurrence,
            oracle.is_recurrence(),
            "recurrence, case {i}"
        );
        assert_eq!(
            c.is_persistence,
            oracle.is_persistence(),
            "persistence, case {i}"
        );
        assert_eq!(
            c.is_simple_reactivity,
            oracle.is_simple_reactivity(),
            "simple reactivity, case {i}"
        );
        assert_eq!(
            c.reactivity_index,
            oracle.reactivity_index(),
            "reactivity index, case {i}"
        );
    }
}

#[test]
fn oracle_agrees_on_witnesses() {
    use temporal_properties::lang::witnesses;
    for (aut, rec, per) in [
        (witnesses::safety(), true, true),
        (witnesses::guarantee(), true, true),
        (witnesses::recurrence(), true, false),
        (witnesses::persistence(), false, true),
        (witnesses::reactivity_witness(1), false, false),
    ] {
        let oracle = Oracle::new(&aut);
        assert_eq!(oracle.is_recurrence(), rec);
        assert_eq!(oracle.is_persistence(), per);
    }
    let oracle = Oracle::new(&witnesses::reactivity_witness(2));
    assert_eq!(oracle.reactivity_index(), 2);
}

#[test]
fn cycle_enumeration_sanity() {
    // The 2-state full flip-flop over {a,b}: cycles are {0}, {1}, {0,1}.
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let b = sigma.symbol("b").unwrap();
    let m = OmegaAutomaton::build(
        &sigma,
        2,
        0,
        |_, s| if s == b { 1 } else { 0 },
        Acceptance::inf([1]),
    );
    let mut cycles = accessible_cycles(&m);
    cycles.sort_by_key(|c| c.len());
    assert_eq!(cycles.len(), 3);
    assert_eq!(cycles[2].len(), 2);
}
