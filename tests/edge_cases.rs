//! Edge cases across the workspace: degenerate automata, extreme
//! alphabets, trivial languages, and De Morgan identities.

use temporal_properties::automata::classify;
use temporal_properties::lang::FinitaryProperty;
use temporal_properties::prelude::*;

#[test]
fn sixty_four_symbol_alphabet() {
    let names: Vec<String> = (0..64).map(|i| format!("s{i}")).collect();
    let sigma = Alphabet::new(names).unwrap();
    assert_eq!(sigma.len(), 64);
    assert_eq!(sigma.full_set().len(), 64);
    // A safety property over the big alphabet: never the last symbol.
    let last = Symbol(63);
    let m = OmegaAutomaton::build(
        &sigma,
        2,
        0,
        move |q, s| if q == 1 || s == last { 1 } else { 0 },
        Acceptance::fin([1]),
    );
    let c = classify::classify(&m);
    assert!(c.is_safety && !c.is_guarantee);
    let w = Lasso::new(vec![], vec![Symbol(0)]);
    assert!(m.accepts(&w));
    let bad = Lasso::new(vec![Symbol(63)], vec![Symbol(0)]);
    assert!(!m.accepts(&bad));
}

#[test]
fn single_state_automata() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    for acc in [
        Acceptance::True,
        Acceptance::False,
        Acceptance::inf([0]),
        Acceptance::fin([0]),
    ] {
        let m = OmegaAutomaton::build(&sigma, 1, 0, |_, _| 0, acc.clone());
        let c = classify::classify(&m);
        // A one-state automaton is either ∅ or Σ^ω: both clopen.
        assert!(c.is_safety && c.is_guarantee, "acc = {acc:?}");
        assert_eq!(c.obligation_index, Some(1));
        assert_eq!(c.reactivity_index, 1);
        assert!(m.is_empty() || m.is_universal());
    }
}

#[test]
fn de_morgan_on_automata() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let b = sigma.symbol("b").unwrap();
    let m = OmegaAutomaton::build(
        &sigma,
        2,
        0,
        |_, s| if s == b { 1 } else { 0 },
        Acceptance::inf([1]),
    );
    let n = m.with_acceptance(Acceptance::fin([0]));
    // ¬(M ∪ N) = ¬M ∩ ¬N and ¬(M ∩ N) = ¬M ∪ ¬N.
    assert!(m
        .union(&n)
        .complement()
        .equivalent(&m.complement().intersection(&n.complement())));
    assert!(m
        .intersection(&n)
        .complement()
        .equivalent(&m.complement().union(&n.complement())));
    // Difference in terms of the primitives.
    assert!(m
        .difference(&n)
        .equivalent(&m.intersection(&n.complement())));
}

#[test]
fn finitary_edge_cases() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let empty = FinitaryProperty::empty(&sigma);
    let full = FinitaryProperty::sigma_plus(&sigma);
    assert!(empty.is_empty());
    assert!(empty.complement().equivalent(&full));
    assert!(full.complement().is_empty());
    // A_f/E_f of the extremes.
    assert!(empty.a_f().is_empty());
    assert!(empty.e_f().is_empty());
    assert!(full.a_f().equivalent(&full));
    assert!(full.e_f().equivalent(&full));
    // minex with the empty property is empty on both sides.
    assert!(empty.minex(&full).is_empty());
    assert!(full.minex(&empty).is_empty());
    // Operators on the extremes.
    use temporal_properties::lang::operators;
    assert!(operators::a(&empty).is_empty()); // no non-empty prefix in ∅
    assert!(operators::e(&empty).is_empty());
    assert!(operators::r(&full).is_universal());
    assert!(operators::p(&full).is_universal());
    assert!(operators::a(&full).is_universal());
}

#[test]
fn lasso_normalization_torture() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    // aaaa(aaab)^ω in several presentations.
    let w1 = Lasso::parse(&sigma, "aaaa", "aaab").unwrap();
    let w2 = Lasso::parse(&sigma, "aaaaaaa", "baaa").unwrap();
    let w3 = Lasso::parse(&sigma, "aaaa", "aaabaaab").unwrap();
    assert!(w1.same_word(&w2));
    assert!(w1.same_word(&w3));
    let w4 = Lasso::parse(&sigma, "aaa", "aaab").unwrap();
    assert!(!w1.same_word(&w4));
}

#[test]
fn formula_constants_compile() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    use temporal_properties::logic::to_automaton::compile_over;
    let t = compile_over(&sigma, &Formula::True).unwrap();
    assert!(t.is_universal());
    let f = compile_over(&sigma, &Formula::False).unwrap();
    assert!(f.is_empty());
    // G true and F false.
    let gt = compile_over(&sigma, &Formula::parse(&sigma, "G true").unwrap()).unwrap();
    assert!(gt.is_universal());
    let ff = compile_over(&sigma, &Formula::parse(&sigma, "F false").unwrap()).unwrap();
    assert!(ff.is_empty());
}

#[test]
fn property_of_extremes() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let t = Property::parse(&sigma, "true").unwrap();
    let r = t.report();
    assert_eq!(r.class, HierarchyClass::Clopen);
    assert!(r.is_liveness && r.is_uniform_liveness);
    let f = Property::parse(&sigma, "false").unwrap();
    let r = f.report();
    assert_eq!(r.class, HierarchyClass::Clopen);
    assert!(!r.is_liveness);
}

#[test]
fn reduce_and_hoa_on_compiled_formulas() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let p = Property::parse(&sigma, "G (a -> F b)").unwrap();
    let reduced = p.automaton().reduce();
    assert!(reduced.equivalent(p.automaton()));
    let hoa = p.to_hoa();
    assert!(hoa.contains(&format!("States: {}", p.automaton().num_states())));
}
