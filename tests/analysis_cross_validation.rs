//! Cross-validation of the shared [`Analysis`] context against the
//! uncached free functions, over random Streett automata, plus the
//! cache-efficiency guarantees the context is supposed to deliver
//! (ISSUE 1's acceptance criteria).
//!
//! The free functions decide each question independently — `is_safety`
//! via a closure product, `is_recurrence`/`is_persistence` via their own
//! chain analyses, `obligation_index_of` via a fresh condensation — so
//! agreement here checks the context's single-walk full verdict (and in
//! particular the anchor-status derivation of safety/guarantee) against
//! genuinely different algorithms.

use temporal_properties::automata::analysis::Analysis;
use temporal_properties::automata::classify;
use temporal_properties::automata::emptiness;
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::random::rng::{Rng, SeedableRng, StdRng};
use temporal_properties::automata::streett::{StreettPair, StreettPairs};
use temporal_properties::prelude::*;
use temporal_properties::topology::{closure, decomposition, density};

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

/// A random deterministic Streett automaton over {a,b} with `n` states
/// and `pairs` Streett pairs.
fn rand_streett<R: Rng>(rng: &mut R, n: usize, pairs: usize) -> OmegaAutomaton {
    let delta: Vec<u32> = (0..n * 2).map(|_| rng.gen_range(0..n) as u32).collect();
    let rand_set = |rng: &mut R| -> Vec<usize> {
        let len = rng.gen_range(0..=n.min(8));
        (0..len).map(|_| rng.gen_range(0..n)).collect()
    };
    let pair_list: Vec<StreettPair> = (0..pairs)
        .map(|_| {
            let r = rand_set(rng);
            let p = rand_set(rng);
            StreettPair::new(r, p)
        })
        .collect();
    let pairs = StreettPairs(pair_list);
    let alphabet = sigma();
    OmegaAutomaton::build(
        &alphabet,
        n,
        0,
        |q, s| delta[q as usize * 2 + s.index()],
        pairs.acceptance(n),
    )
}

/// ~200 random Streett automata, n ∈ {4..64}, pairs ∈ {1..4}: the
/// context's full verdict must agree with every uncached free function.
#[test]
fn analysis_agrees_with_free_functions_on_random_streett() {
    let mut rng = StdRng::seed_from_u64(2024);
    for case in 0..200 {
        let n = rng.gen_range(4..=64usize);
        let pairs = rng.gen_range(1..=4usize);
        let aut = rand_streett(&mut rng, n, pairs);
        let ctx = Analysis::new(aut.clone());
        let v = ctx.classification();

        assert_eq!(
            v.is_safety,
            classify::is_safety(&aut),
            "case {case}: safety"
        );
        assert_eq!(
            v.is_guarantee,
            classify::is_guarantee(&aut),
            "case {case}: guarantee"
        );
        assert_eq!(
            v.is_recurrence,
            classify::is_recurrence(&aut),
            "case {case}: recurrence"
        );
        assert_eq!(
            v.is_persistence,
            classify::is_persistence(&aut),
            "case {case}: persistence"
        );
        assert_eq!(
            v.is_obligation,
            classify::is_obligation(&aut),
            "case {case}: obligation"
        );
        assert_eq!(
            v.is_simple_reactivity,
            classify::is_simple_reactivity(&aut),
            "case {case}: simple reactivity"
        );
        assert_eq!(
            v.reactivity_index,
            classify::reactivity_index(&aut),
            "case {case}: reactivity index"
        );
        if v.is_obligation {
            assert_eq!(
                v.obligation_index,
                Some(classify::obligation_index_of(&aut)),
                "case {case}: obligation index"
            );
        }
        assert_eq!(
            ctx.rabin_index(),
            classify::rabin_index(&aut),
            "case {case}: rabin index"
        );

        // Emptiness / liveness agreement.
        assert_eq!(ctx.is_empty(), aut.is_empty(), "case {case}: emptiness");
        if let Some(w) = ctx.accepted_lasso() {
            assert!(aut.accepts(&w), "case {case}: witness accepted");
        }
        let mut free_live = emptiness::live_states(&aut);
        free_live.intersect_with(ctx.reachable());
        assert_eq!(*ctx.live(), free_live, "case {case}: live set");

        // The closure from the cached live set is language-equal to the
        // free closure (they may differ on unreachable dead sets).
        assert!(
            ctx.safety_closure()
                .equivalent(&classify::safety_closure(&aut)),
            "case {case}: safety closure"
        );
    }
}

/// The batch API returns, at every worker count, exactly the verdicts the
/// per-automaton classifier produces — in input order. Run under
/// `HIERARCHY_THREADS=2` by tier1.sh so the worker-pool path is exercised
/// even where `available_parallelism` is 1.
#[test]
fn classify_suite_agrees_with_individual_classification() {
    let mut rng = StdRng::seed_from_u64(31337);
    let suite: Vec<OmegaAutomaton> = (0..40)
        .map(|_| {
            let n = rng.gen_range(4..=32usize);
            let pairs = rng.gen_range(1..=3usize);
            rand_streett(&mut rng, n, pairs)
        })
        .collect();
    let individual: Vec<_> = suite.iter().map(classify::classify).collect();
    let pooled = classify::classify_suite(&suite);
    assert_eq!(pooled, individual, "default worker count");
    for workers in [1usize, 2, 3, 8] {
        assert_eq!(
            classify::classify_suite_with(workers, &suite),
            individual,
            "workers={workers}"
        );
    }
}

/// The topology ctx variants agree with their free counterparts.
#[test]
fn topology_ctx_variants_agree() {
    let mut rng = StdRng::seed_from_u64(2025);
    for case in 0..40 {
        let n = rng.gen_range(3..=12usize);
        let aut = rand_streett(&mut rng, n, 2);
        let ctx = Analysis::new(aut.clone());
        assert_eq!(
            closure::is_closed_ctx(&ctx),
            closure::is_closed(&aut),
            "case {case}"
        );
        assert_eq!(
            closure::is_open_ctx(&ctx),
            closure::is_open(&aut),
            "case {case}"
        );
        assert_eq!(
            closure::is_g_delta_ctx(&ctx),
            closure::is_g_delta(&aut),
            "case {case}"
        );
        assert_eq!(
            closure::is_f_sigma_ctx(&ctx),
            closure::is_f_sigma(&aut),
            "case {case}"
        );
        assert_eq!(
            density::is_dense_ctx(&ctx),
            density::is_dense(&aut),
            "case {case}"
        );
        assert!(
            closure::closure_ctx(&ctx).equivalent(&closure::closure(&aut)),
            "case {case}"
        );
        let (s_ctx, l_ctx) = decomposition::decompose_ctx(&ctx);
        let (s_free, l_free) = decomposition::decompose(&aut);
        assert!(s_ctx.equivalent(&s_free), "case {case}: safety part");
        assert!(l_ctx.equivalent(&l_free), "case {case}: liveness part");
    }
}

/// Streett-refinement emptiness through the context agrees with the free
/// version and reuses cached SCC passes across repeated queries.
#[test]
fn streett_refinement_ctx_agrees_and_caches() {
    let mut rng = StdRng::seed_from_u64(2026);
    for _ in 0..30 {
        let n = rng.gen_range(3..=10usize);
        let aut = rand_streett(&mut rng, n, 1);
        let rand_set = |rng: &mut StdRng| -> Vec<usize> {
            let len = rng.gen_range(0..=n);
            (0..len).map(|_| rng.gen_range(0..n)).collect()
        };
        let r = rand_set(&mut rng);
        let p = rand_set(&mut rng);
        let pairs = StreettPairs(vec![StreettPair::new(r, p)]);
        let ctx = Analysis::new(aut.clone());
        let free = emptiness::streett_nonempty_cycle(&aut, &pairs);
        let via_ctx = emptiness::streett_nonempty_cycle_ctx(&ctx, &pairs);
        assert_eq!(free.is_some(), via_ctx.is_some());
        let passes = ctx.stats().scc_passes;
        let again = emptiness::streett_nonempty_cycle_ctx(&ctx, &pairs);
        assert_eq!(via_ctx, again);
        assert_eq!(
            ctx.stats().scc_passes,
            passes,
            "repeat query must be fully cached"
        );
    }
}

/// The full verdict runs strictly fewer SCC passes than the sum of the
/// individual queries' passes on fresh contexts — the point of sharing
/// the color-lattice walk.
#[test]
fn full_verdict_beats_sum_of_individual_queries() {
    let mut rng = StdRng::seed_from_u64(7);
    let aut = rand_streett(&mut rng, 48, 3);

    // Individual queries, each on a fresh context (so nothing is shared).
    let mut sum_passes = 0;
    for query in [
        |c: &Analysis| c.classification().is_safety,
        |c: &Analysis| c.classification().is_guarantee,
        |c: &Analysis| c.classification().is_recurrence,
        |c: &Analysis| c.classification().is_persistence,
        |c: &Analysis| c.classification().is_simple_reactivity,
        |c: &Analysis| c.classification().reactivity_index >= 1,
        |c: &Analysis| c.rabin_index() >= 1,
    ] {
        let fresh = Analysis::new(aut.clone());
        let _ = query(&fresh);
        sum_passes += fresh.stats().scc_passes;
    }

    let shared = Analysis::new(aut.clone());
    let _ = shared.classification();
    let _ = shared.rabin_index();
    let full_passes = shared.stats().scc_passes;
    assert!(
        full_passes < sum_passes,
        "full verdict ({full_passes} passes) must beat independent \
         queries ({sum_passes} passes)"
    );
}

/// ISSUE 1 acceptance criterion: classifying a 256-state 4-pair random
/// Streett automaton costs at most one SCC pass per color-lattice point
/// (2^m for m acceptance atoms), verified through the stats API; repeated
/// queries add zero passes.
#[test]
fn classification_stays_within_lattice_pass_budget() {
    let mut rng = StdRng::seed_from_u64(99);
    let aut = rand_streett(&mut rng, 256, 4);
    let m = aut.acceptance().atom_sets().len();
    let ctx = Analysis::new(aut.clone());
    let verdict = ctx.classification().clone();
    let _ = ctx.rabin_index();
    let _ = ctx.safety_closure();
    let _ = ctx.accepted_lasso();
    let stats = ctx.stats();
    assert!(
        stats.scc_passes <= 1 << m,
        "{} SCC passes exceed the lattice budget 2^{m}",
        stats.scc_passes
    );
    // Repeated queries are served entirely from cache.
    let passes = ctx.stats().scc_passes;
    for _ in 0..5 {
        assert_eq!(ctx.classification(), &verdict);
        let _ = ctx.safety_closure();
        let _ = ctx.rabin_index();
    }
    assert_eq!(ctx.stats().scc_passes, passes, "no new passes on repeat");
    assert!(ctx.stats().scc_hits > 0, "repeats must hit the cache");
}

/// Repeated Property-level queries hit the context caches: the second
/// round of class/report/inclusion queries adds no SCC passes or product
/// builds.
#[test]
fn property_queries_are_incremental() {
    let mut rng = StdRng::seed_from_u64(41);
    let aut = rand_streett(&mut rng, 24, 2);
    let other = Property::from_automaton(rand_streett(&mut rng, 8, 1));
    let prop = Property::from_automaton(aut);

    let _ = prop.class();
    let _ = prop.classification().borel_name();
    let _ = prop.is_subset_of(&other);
    let first = prop.analysis_stats();

    let _ = prop.class();
    let _ = prop.classification().borel_name();
    let _ = prop.is_subset_of(&other);
    let second = prop.analysis_stats();

    assert_eq!(first.scc_passes, second.scc_passes);
    assert_eq!(first.inclusion_checks, second.inclusion_checks);
    assert!(second.inclusion_hits > first.inclusion_hits);
}
