//! Cross-crate integration: the paper's four views agree.
//!
//! For a battery of properties defined simultaneously through the
//! linguistic view (operators over regexes), the logic view (formulas),
//! and the automata view (hand-built automata), all representations must
//! denote the same ω-language and receive the same classification.

use temporal_properties::automata::classify;
use temporal_properties::lang::{operators, FinitaryProperty};
use temporal_properties::logic::semantics;
use temporal_properties::logic::to_automaton::compile_over;
use temporal_properties::prelude::*;

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

/// (formula, Φ-regex, operator, expected class name)
fn battery() -> Vec<(&'static str, &'static str, char, &'static str)> {
    vec![
        ("G a", "aa*", 'A', "safety"),
        ("F b", ".*b", 'E', "guarantee"),
        ("G F b", ".*b", 'R', "recurrence"),
        ("F G b", ".*b", 'P', "persistence"),
        ("G (b -> Y a)", "(a+b)*b + .", 'X', "safety"), // automaton view only below
    ]
}

#[test]
fn linguistic_and_logic_views_coincide() {
    let sigma = sigma();
    for (formula_src, phi_src, op, _class) in battery() {
        if op == 'X' {
            continue;
        }
        let phi = FinitaryProperty::parse(&sigma, phi_src).unwrap();
        let via_lang = match op {
            'A' => operators::a(&phi),
            'E' => operators::e(&phi),
            'R' => operators::r(&phi),
            'P' => operators::p(&phi),
            _ => unreachable!(),
        };
        let f = Formula::parse(&sigma, formula_src).unwrap();
        let via_logic = compile_over(&sigma, &f).unwrap();
        assert!(
            via_lang.equivalent(&via_logic),
            "views disagree for {formula_src}"
        );
    }
}

#[test]
fn classification_is_representation_independent() {
    let sigma = sigma();
    for (formula_src, phi_src, op, class) in battery() {
        let f = Formula::parse(&sigma, formula_src).unwrap();
        let via_logic = compile_over(&sigma, &f).unwrap();
        assert_eq!(
            classify::classify(&via_logic).strictest_class_name(),
            class,
            "logic view class of {formula_src}"
        );
        if op != 'X' {
            let phi = FinitaryProperty::parse(&sigma, phi_src).unwrap();
            let via_lang = match op {
                'A' => operators::a(&phi),
                'E' => operators::e(&phi),
                'R' => operators::r(&phi),
                'P' => operators::p(&phi),
                _ => unreachable!(),
            };
            assert_eq!(
                classify::classify(&via_lang).strictest_class_name(),
                class,
                "lang view class of {formula_src}"
            );
        }
    }
}

#[test]
fn formula_semantics_agree_with_compiled_automata_on_lassos() {
    use temporal_properties::automata::random::rng::SeedableRng;
    use temporal_properties::automata::random::rng::StdRng;
    let sigma = sigma();
    let mut rng = StdRng::seed_from_u64(123);
    let formulas = [
        "G (a -> F b)",
        "F (b & Y H a)",
        "G F a -> G F b",
        "a U b",
        "a W b",
        "G (b -> O a) | F G a",
        "X (a | X b)",
    ];
    for src in formulas {
        let f = Formula::parse(&sigma, src).unwrap();
        let aut = compile_over(&sigma, &f).unwrap();
        for _ in 0..150 {
            let w = temporal_properties::automata::random::random_lasso(&mut rng, &sigma, 5, 4);
            assert_eq!(
                semantics::holds(&f, &w).unwrap(),
                aut.accepts(&w),
                "{src} on {}",
                w.display(&sigma)
            );
        }
    }
}

#[test]
fn property_api_matches_raw_pipeline() {
    let sigma = sigma();
    let p = Property::parse(&sigma, "G (a -> F b)").unwrap();
    let f = Formula::parse(&sigma, "G (a -> F b)").unwrap();
    let raw = compile_over(&sigma, &f).unwrap();
    assert!(p.automaton().equivalent(&raw));
    assert_eq!(p.class(), HierarchyClass::Recurrence);
    assert_eq!(
        p.report().syntactic,
        Some(temporal_properties::logic::SyntacticClass::Recurrence)
    );
}

#[test]
fn borel_names_match_topology() {
    use temporal_properties::topology::closure;
    let sigma = sigma();
    let cases = [
        ("G a", "Π₁"),
        ("F b", "Σ₁"),
        ("G F b", "Π₂"),
        ("F G b", "Σ₂"),
    ];
    for (src, borel) in cases {
        let p = Property::parse(&sigma, src).unwrap();
        assert_eq!(p.report().borel, borel, "{src}");
        // Topological predicates agree with the Borel name.
        match borel {
            "Π₁" => assert!(closure::is_closed(p.automaton())),
            "Σ₁" => assert!(closure::is_open(p.automaton())),
            "Π₂" => {
                assert!(closure::is_g_delta(p.automaton()) && !closure::is_f_sigma(p.automaton()))
            }
            "Σ₂" => {
                assert!(closure::is_f_sigma(p.automaton()) && !closure::is_g_delta(p.automaton()))
            }
            _ => unreachable!(),
        }
    }
}
