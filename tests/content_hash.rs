//! Property tests for content addressing ([`canonical`]): the
//! structural hash must be invariant under minimization and state
//! renaming, hash equality must imply language equivalence, and HOA
//! round-trips must land on the same address — the contracts the serve
//! daemon's artifact store is built on.
//!
//! [`canonical`]: temporal_properties::automata::canonical

use temporal_properties::automata::canonical::structural_hash;
use temporal_properties::automata::hoa;
use temporal_properties::automata::random::rng::{Rng, SeedableRng, StdRng};
use temporal_properties::automata::random::{random_parity, random_rabin, random_streett};
use temporal_properties::automata::StateId;
use temporal_properties::prelude::*;

/// 210 seeded automata: 70 Streett, 70 Rabin, 70 parity, over two- and
/// three-letter alphabets.
fn seeded_suite() -> Vec<OmegaAutomaton> {
    let sigma2 = Alphabet::new(["a", "b"]).unwrap();
    let sigma3 = Alphabet::new(["a", "b", "c"]).unwrap();
    let mut rng = StdRng::seed_from_u64(0xCA5CADE);
    let mut suite = Vec::with_capacity(210);
    for i in 0..70 {
        let sigma = if i % 2 == 0 { &sigma2 } else { &sigma3 };
        let n = rng.gen_range(2..=10usize);
        let k = rng.gen_range(1..=3usize);
        suite.push(random_streett(&mut rng, sigma, n, k, 0.3).0);
        let n = rng.gen_range(2..=10usize);
        let k = rng.gen_range(1..=3usize);
        suite.push(random_rabin(&mut rng, sigma, n, k, 0.3));
        let n = rng.gen_range(2..=10usize);
        let p = rng.gen_range(1..=5usize) as u32;
        suite.push(random_parity(&mut rng, sigma, n, p));
    }
    suite
}

/// Rebuilds `aut` with its states renamed through the permutation
/// `perm` (state `q` becomes `perm[q]`), transporting the transition
/// function and every acceptance atom set.
fn permuted(aut: &OmegaAutomaton, perm: &[StateId]) -> OmegaAutomaton {
    let n = aut.num_states();
    let mut inverse = vec![0 as StateId; n];
    for (q, &p) in perm.iter().enumerate() {
        inverse[p as usize] = q as StateId;
    }
    let acceptance = aut.acceptance().map_sets(&|set: &BitSet| {
        let mut out = BitSet::new();
        for (q, &p) in perm.iter().enumerate() {
            if set.contains(q) {
                out.insert(p as usize);
            }
        }
        out
    });
    OmegaAutomaton::build(
        aut.alphabet(),
        n,
        perm[aut.initial() as usize],
        |q, s| perm[aut.step(inverse[q as usize], s) as usize],
        acceptance,
    )
}

fn random_perm<R: Rng>(rng: &mut R, n: usize) -> Vec<StateId> {
    let mut perm: Vec<StateId> = (0..n as StateId).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[test]
fn hash_is_invariant_under_minimization_and_renaming() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for (i, aut) in seeded_suite().iter().enumerate() {
        let h = structural_hash(aut);
        // Idempotence: hashing the canonical quotient reproduces the
        // hash of the original — the store key survives re-ingesting a
        // minimized artifact.
        let quotient = &minimize(aut).quotient;
        assert_eq!(
            structural_hash(quotient),
            h,
            "case {i}: hash(minimize(A)) != hash(A)"
        );
        // Renaming invariance: a relabeled isomorphic copy is the same
        // artifact.
        let perm = random_perm(&mut rng, aut.num_states());
        let renamed = permuted(aut, &perm);
        assert_eq!(
            structural_hash(&renamed),
            h,
            "case {i}: hash must ignore state names"
        );
    }
}

#[test]
fn hash_equality_implies_language_equivalence() {
    let suite = seeded_suite();
    let hashed: Vec<_> = suite.iter().map(|a| (structural_hash(a), a)).collect();
    let mut collisions = 0usize;
    for (i, (ha, a)) in hashed.iter().enumerate() {
        let ctx = Analysis::new((*a).clone());
        for (hb, b) in hashed.iter().skip(i + 1) {
            if ha == hb {
                collisions += 1;
                assert!(
                    ctx.equivalent(b),
                    "hash-equal automata must be language-equivalent"
                );
            }
        }
    }
    // The suite is small and seeded, so genuine collisions (same
    // canonical form from different seeds) do occur; if this ever
    // drops to zero the test has stopped exercising the implication.
    assert!(
        collisions > 0,
        "seeded suite produced no hash collisions to check"
    );
}

#[test]
fn hoa_round_trip_preserves_the_address() {
    // Power-of-two letter alphabets and proposition alphabets both
    // survive export/parse; the parsed automaton must keep the address.
    let mut rng = StdRng::seed_from_u64(0xB0A7);
    let sigma2 = Alphabet::new(["a", "b"]).unwrap();
    let sigma4 = Alphabet::new(["a", "b", "c", "d"]).unwrap();
    for i in 0..40 {
        let sigma = if i % 2 == 0 { &sigma2 } else { &sigma4 };
        let n = rng.gen_range(2..=8usize);
        let aut = random_rabin(&mut rng, sigma, n, 2, 0.3);
        let parsed = hoa::hoa_to_omega(&hoa::omega_to_hoa(&aut)).expect("round trip");
        // Letter alphabets come back as bit propositions, so compare
        // the *structural* encoding of the transition system through
        // language equivalence and state count rather than raw equality
        // — but the canonical hash must agree whenever the alphabet
        // round-trips by name.
        if !aut.alphabet().propositions().is_empty() {
            assert_eq!(structural_hash(&parsed), structural_hash(&aut));
        } else {
            // bitN renaming changes the alphabet identity on purpose;
            // the state structure is still isomorphic.
            assert_eq!(parsed.num_states(), aut.num_states());
        }
    }
    // Proposition alphabets round-trip by name, address included.
    let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
    for _ in 0..20 {
        let n = rng.gen_range(2..=8usize);
        let aut = random_streett(&mut rng, &sigma, n, 2, 0.3).0;
        let parsed = hoa::hoa_to_omega(&hoa::omega_to_hoa(&aut)).expect("round trip");
        assert_eq!(structural_hash(&parsed), structural_hash(&aut));
    }
}
