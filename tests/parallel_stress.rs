//! Concurrency stress test for the shared [`Analysis`] context: many
//! threads hammer ONE context with interleaved queries and every answer
//! must match a sequential context's, while the per-key once-cell SCC
//! memo keeps the total pass count inside the 2^m color-lattice budget
//! no matter how the racers interleave (a racer that loses the cell
//! claim blocks on the winner's computation instead of re-running it).

use temporal_properties::automata::analysis::Analysis;
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::random::rng::{Rng, SeedableRng, StdRng};
use temporal_properties::automata::streett::{StreettPair, StreettPairs};
use temporal_properties::prelude::*;

fn rand_streett<R: Rng>(rng: &mut R, n: usize, pairs: usize) -> OmegaAutomaton {
    let delta: Vec<u32> = (0..n * 2).map(|_| rng.gen_range(0..n) as u32).collect();
    let rand_set = |rng: &mut R| -> Vec<usize> {
        let len = rng.gen_range(0..=n.min(8));
        (0..len).map(|_| rng.gen_range(0..n)).collect()
    };
    let pair_list: Vec<StreettPair> = (0..pairs)
        .map(|_| StreettPair::new(rand_set(rng), rand_set(rng)))
        .collect();
    let alphabet = Alphabet::new(["a", "b"]).unwrap();
    OmegaAutomaton::build(
        &alphabet,
        n,
        0,
        |q, s| delta[q as usize * 2 + s.index()],
        StreettPairs(pair_list).acceptance(n),
    )
}

/// 8 threads × interleaved query mix on one shared context, repeated over
/// several random automata. Every thread's verdicts must equal the
/// sequential reference, and the shared context must stay within the
/// lattice pass budget — the budget is the part that would break if two
/// racers could both run the same restricted SCC pass.
#[test]
fn concurrent_queries_agree_with_sequential_and_keep_the_pass_budget() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..6 {
        let n = rng.gen_range(24..=96usize);
        let pairs = rng.gen_range(2..=4usize);
        let aut = rand_streett(&mut rng, n, pairs);
        let m = aut.acceptance().atom_sets().len();

        // Sequential reference on its own context.
        let reference = Analysis::new(aut.clone());
        let ref_verdict = reference.classification().clone();
        let ref_rabin = reference.rabin_index();
        let ref_empty = reference.is_empty();
        let ref_scc_count = reference.sccs(None).len();

        let shared = Analysis::new(aut.clone());
        std::thread::scope(|scope| {
            for worker in 0..8usize {
                let shared = &shared;
                let ref_verdict = &ref_verdict;
                scope.spawn(move || {
                    // Stagger the entry points so different workers race
                    // different caches first.
                    match worker % 4 {
                        0 => assert_eq!(shared.classification(), ref_verdict),
                        1 => assert_eq!(shared.rabin_index(), ref_rabin),
                        2 => assert_eq!(shared.is_empty(), ref_empty),
                        _ => assert_eq!(shared.sccs(None).len(), ref_scc_count),
                    }
                    assert_eq!(shared.classification(), ref_verdict);
                    assert_eq!(shared.rabin_index(), ref_rabin);
                    assert_eq!(shared.is_empty(), ref_empty);
                    assert_eq!(shared.sccs(None).len(), ref_scc_count);
                });
            }
        });

        let stats = shared.stats();
        assert!(
            stats.scc_passes <= 1 << m,
            "case {case}: {} SCC passes exceed the 2^{m} lattice budget \
             under 8-way contention",
            stats.scc_passes
        );
    }
}

/// Stats snapshots and resets racing a query workload: readers may see
/// any interleaving, but snapshots must never tear into impossible
/// states (hits without passes after a quiesced warm-up) and resets must
/// leave the memo tables intact — post-reset queries still answer
/// correctly and a warm re-query costs zero SCC passes.
#[test]
fn stats_snapshots_and_resets_race_safely() {
    let mut rng = StdRng::seed_from_u64(0x57A75);
    let aut = rand_streett(&mut rng, 48, 3);
    let reference = Analysis::new(aut.clone());
    let ref_verdict = reference.classification().clone();

    let shared = Analysis::new(aut);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let shared = &shared;
            let ref_verdict = &ref_verdict;
            scope.spawn(move || {
                for _ in 0..50 {
                    assert_eq!(shared.classification(), ref_verdict);
                }
            });
        }
        for _ in 0..2 {
            let shared = &shared;
            scope.spawn(move || {
                for i in 0..50 {
                    // Snapshot and delta must never underflow or panic
                    // mid-race; delta against a later snapshot saturates.
                    let a = shared.stats_total();
                    let b = shared.stats_total();
                    let _ = b.delta_since(a);
                    let _ = a.delta_since(b);
                    if i % 10 == 0 {
                        shared.reset_stats();
                    }
                }
            });
        }
    });

    // After the race quiesces: memo tables survived every reset, so a
    // warm classification answers identically at zero marginal cost.
    shared.reset_stats();
    let before = shared.stats_total();
    assert_eq!(before, Default::default());
    assert_eq!(shared.classification(), &ref_verdict);
    let warm = shared.stats_total().delta_since(before);
    assert_eq!(warm.scc_passes, 0, "reset must not drop the memo tables");
}

/// The same mixed workload through `Property` handles sharing one
/// underlying automaton each: clones of an `Analysis`-backed value run on
/// distinct contexts, so this pins down that nothing in the crate relies
/// on thread-local state for correctness.
#[test]
fn parallel_batch_matches_sequential_batch() {
    use temporal_properties::automata::classify;
    let mut rng = StdRng::seed_from_u64(271);
    let suite: Vec<OmegaAutomaton> = (0..24)
        .map(|_| {
            let n = rng.gen_range(8..=48usize);
            rand_streett(&mut rng, n, 2)
        })
        .collect();
    let sequential: Vec<_> = suite.iter().map(classify::classify).collect();
    std::thread::scope(|scope| {
        for chunk in suite.chunks(6).zip(sequential.chunks(6)) {
            scope.spawn(move || {
                let (auts, expected) = chunk;
                for (aut, want) in auts.iter().zip(expected) {
                    assert_eq!(&classify::classify(aut), want);
                }
            });
        }
    });
}
