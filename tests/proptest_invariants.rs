//! Property-based tests of the hierarchy's core invariants, driven by
//! proptest over random automata, finitary properties, formulas, and
//! lasso words.

use proptest::prelude::*;
use temporal_properties::automata::acceptance::Acceptance;
use temporal_properties::automata::classify;
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::streett::{StreettPair, StreettPairs};
use temporal_properties::lang::{operators, FinitaryProperty};
use temporal_properties::prelude::*;
use temporal_properties::topology::{decomposition, density};

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

/// Strategy: a random deterministic Streett automaton over {a,b}.
fn arb_streett(max_states: usize, pairs: usize) -> impl Strategy<Value = OmegaAutomaton> {
    (2..=max_states).prop_flat_map(move |n| {
        let delta = proptest::collection::vec(0..n as u32, n * 2);
        let pair = || {
            (
                proptest::collection::vec(0..n, 0..=n),
                proptest::collection::vec(0..n, 0..=n),
            )
        };
        let pair_list = proptest::collection::vec((pair)(), pairs);
        (delta, pair_list).prop_map(move |(delta, pair_list)| {
            let pairs = StreettPairs(
                pair_list
                    .into_iter()
                    .map(|(r, p)| StreettPair::new(r, p))
                    .collect(),
            );
            let alphabet = sigma();
            OmegaAutomaton::build(
                &alphabet,
                n,
                0,
                |q, s| delta[q as usize * 2 + s.index()],
                pairs.acceptance(n),
            )
        })
    })
}

/// Strategy: a random lasso over {a,b}.
fn arb_lasso() -> impl Strategy<Value = Lasso> {
    (
        proptest::collection::vec(0..2u8, 0..6),
        proptest::collection::vec(0..2u8, 1..5),
    )
        .prop_map(|(u, v)| {
            Lasso::new(
                u.into_iter().map(Symbol).collect(),
                v.into_iter().map(Symbol).collect(),
            )
        })
}

/// Strategy: a random finitary property via a regex-free random DFA table.
fn arb_finitary() -> impl Strategy<Value = FinitaryProperty> {
    (2..=5usize).prop_flat_map(|n| {
        (
            proptest::collection::vec(0..n as u32, n * 2),
            proptest::collection::vec(proptest::bool::ANY, n),
        )
            .prop_map(move |(delta, acc)| {
                let alphabet = sigma();
                let dfa = temporal_properties::automata::dfa::Dfa::build(
                    &alphabet,
                    n,
                    0,
                    |q, s| delta[q as usize * 2 + s.index()],
                    acc.iter()
                        .enumerate()
                        .filter(|(_, &a)| a)
                        .map(|(i, _)| i as u32),
                );
                FinitaryProperty::from_dfa(dfa)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Figure 1's lattice: the membership flags respect the inclusions.
    #[test]
    fn classification_respects_inclusion_lattice(aut in arb_streett(6, 2)) {
        let c = classify::classify(&aut);
        prop_assert!(!c.is_safety || c.is_obligation);
        prop_assert!(!c.is_guarantee || c.is_obligation);
        prop_assert_eq!(c.is_obligation, c.is_recurrence && c.is_persistence);
        prop_assert!(!c.is_recurrence || c.is_simple_reactivity);
        prop_assert!(!c.is_persistence || c.is_simple_reactivity);
        prop_assert!(c.reactivity_index >= 1);
        prop_assert!(!c.is_simple_reactivity || c.reactivity_index == 1);
        if let Some(k) = c.obligation_index {
            prop_assert!(k >= 1);
        }
    }

    /// Classification is a language invariant: complement swaps the dual
    /// classes.
    #[test]
    fn complement_swaps_dual_classes(aut in arb_streett(5, 2)) {
        let c = classify::classify(&aut);
        let cc = classify::classify(&aut.complement());
        prop_assert_eq!(c.is_safety, cc.is_guarantee);
        prop_assert_eq!(c.is_guarantee, cc.is_safety);
        prop_assert_eq!(c.is_recurrence, cc.is_persistence);
        prop_assert_eq!(c.is_persistence, cc.is_recurrence);
        prop_assert_eq!(c.is_obligation, cc.is_obligation);
        prop_assert_eq!(c.reactivity_index, cc.reactivity_index);
    }

    /// The safety closure is the smallest safety superset (on samples).
    #[test]
    fn safety_closure_properties(aut in arb_streett(5, 1)) {
        let cl = classify::safety_closure(&aut);
        prop_assert!(aut.is_subset_of(&cl));
        prop_assert!(classify::is_safety(&cl));
        // Idempotence.
        prop_assert!(classify::safety_closure(&cl).equivalent(&cl));
    }

    /// Safety–liveness decomposition is always valid.
    #[test]
    fn decomposition_always_valid(aut in arb_streett(5, 2)) {
        prop_assert!(decomposition::decomposition_is_valid(&aut));
    }

    /// Boolean structure of the automata algebra on sampled words.
    #[test]
    fn boolean_algebra_on_words(aut1 in arb_streett(4, 1), aut2 in arb_streett(4, 1), w in arb_lasso()) {
        let in1 = aut1.accepts(&w);
        let in2 = aut2.accepts(&w);
        prop_assert_eq!(aut1.union(&aut2).accepts(&w), in1 || in2);
        prop_assert_eq!(aut1.intersection(&aut2).accepts(&w), in1 && in2);
        prop_assert_eq!(aut1.complement().accepts(&w), !in1);
        prop_assert_eq!(aut1.difference(&aut2).accepts(&w), in1 && !in2);
    }

    /// The four operators sit in their classes for every finitary Φ.
    #[test]
    fn operators_land_in_their_classes(phi in arb_finitary()) {
        prop_assert!(classify::is_safety(&operators::a(&phi)));
        prop_assert!(classify::is_guarantee(&operators::e(&phi)));
        prop_assert!(classify::is_recurrence(&operators::r(&phi)));
        prop_assert!(classify::is_persistence(&operators::p(&phi)));
    }

    /// The operator dualities for every finitary Φ.
    #[test]
    fn operator_dualities(phi in arb_finitary()) {
        prop_assert!(operators::a(&phi).complement().equivalent(&operators::e(&phi.complement())));
        prop_assert!(operators::r(&phi).complement().equivalent(&operators::p(&phi.complement())));
    }

    /// The minex law R(Φ₁) ∩ R(Φ₂) = R(minex(Φ₁,Φ₂)).
    #[test]
    fn minex_law(f1 in arb_finitary(), f2 in arb_finitary()) {
        prop_assert!(operators::r(&f1)
            .intersection(&operators::r(&f2))
            .equivalent(&operators::r(&f1.minex(&f2))));
    }

    /// Membership in A/E/R/P matches the prefix-counting definition on
    /// sampled lassos: count the prefixes of w in Φ up to stabilization.
    #[test]
    fn operator_semantics_on_words(phi in arb_finitary(), w in arb_lasso()) {
        // Drive Φ's DFA along w; by |u| + |Q|·|v| steps the acceptance
        // pattern over loop offsets has stabilized.
        let dfa = phi.dfa();
        let spoke = w.spoke().len();
        let cyc = w.cycle().len();
        // The DFA state at loop entries becomes periodic within |Q| loop
        // traversals, so everything past spoke + |Q|·cyc is periodic with
        // period dividing |Q|·cyc; a window of that length taken at the
        // very end is therefore a full period of the tail.
        let horizon = spoke + 2 * dfa.num_states() * cyc;
        let mut q = dfa.initial();
        let mut hits = Vec::new(); // prefix lengths in Φ
        for j in 0..horizon {
            q = dfa.step(q, w.at(j));
            hits.push(dfa.is_accepting(q));
        }
        // Tail pattern: does Φ hold for infinitely many prefixes /
        // cofinitely many? Examine the final |Q|·|v| window.
        let window = &hits[horizon - dfa.num_states() * cyc..];
        let inf_many = window.iter().any(|&b| b);
        let cof_many = window.iter().all(|&b| b);
        prop_assert_eq!(operators::r(&phi).accepts(&w), inf_many);
        prop_assert_eq!(operators::p(&phi).accepts(&w), cof_many);
        prop_assert_eq!(operators::e(&phi).accepts(&w), hits.iter().any(|&b| b));
        prop_assert_eq!(operators::a(&phi).accepts(&w), hits.iter().all(|&b| b));
    }

    /// Liveness (density) of the liveness extension, for any property.
    #[test]
    fn liveness_extension_is_dense(aut in arb_streett(5, 2)) {
        let l = decomposition::liveness_extension(&aut);
        prop_assert!(density::is_dense(&l));
    }

    /// Acceptance evaluation is consistent between the boolean condition
    /// and its DNF.
    #[test]
    fn acceptance_dnf_consistency(aut in arb_streett(5, 2), w in arb_lasso()) {
        let inf = aut.infinity_set(&w);
        let direct = aut.acceptance().accepts_infinity_set(&inf);
        let via_dnf = aut.acceptance().dnf().iter().any(|p| p.accepts_cycle(&inf));
        prop_assert_eq!(direct, via_dnf);
        prop_assert_eq!(direct, aut.accepts(&w));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Negation normal form preserves semantics on sampled lassos
    /// (future-over-past fragment only).
    #[test]
    fn nnf_preserves_semantics(seed in 0u64..1000, w in arb_lasso()) {
        use temporal_properties::logic::{rewrites, semantics};
        let alphabet = sigma();
        // A small pool of formulas, negated.
        let sources = [
            "G (a -> F b)", "a U b", "F G a", "G F b", "a W b",
            "G (b -> Y a)", "F (a & O b)",
        ];
        let src = sources[(seed as usize) % sources.len()];
        let f = Formula::parse(&alphabet, src).unwrap().not();
        let g = rewrites::nnf(&f);
        let lhs = semantics::holds(&f, &w);
        let rhs = semantics::holds(&g, &w);
        if let (Ok(l), Ok(r)) = (lhs, rhs) {
            prop_assert_eq!(l, r, "nnf changed semantics of ¬({})", src);
        }
    }
}

/// Static sanity check that the acceptance constructors compose (not a
/// proptest; exercises the Acceptance API surface from an integration
/// context).
#[test]
fn acceptance_api_composes() {
    let acc = Acceptance::inf([0])
        .and(Acceptance::fin([1]).or(Acceptance::inf([2])))
        .negated();
    let atoms = acc.atom_sets();
    assert_eq!(atoms.len(), 3);
}
