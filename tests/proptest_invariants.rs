//! Property-based tests of the hierarchy's core invariants, driven by the
//! vendored PRNG over random automata, finitary properties, formulas, and
//! lasso words (no external proptest dependency: each invariant is checked
//! over a seeded sweep of random cases, and failures report the case
//! index so a run is reproducible from the seed).

use temporal_properties::automata::acceptance::Acceptance;
use temporal_properties::automata::classify;
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::random::rng::{Rng, SeedableRng, StdRng};
use temporal_properties::automata::streett::{StreettPair, StreettPairs};
use temporal_properties::lang::{operators, FinitaryProperty};
use temporal_properties::prelude::*;
use temporal_properties::topology::{decomposition, density};

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

/// A random deterministic Streett automaton over {a,b} with between 2 and
/// `max_states` states and `pairs` Streett pairs.
fn rand_streett<R: Rng>(rng: &mut R, max_states: usize, pairs: usize) -> OmegaAutomaton {
    let n = rng.gen_range(2..=max_states);
    let delta: Vec<u32> = (0..n * 2).map(|_| rng.gen_range(0..n) as u32).collect();
    let rand_set = |rng: &mut R| -> Vec<usize> {
        let len = rng.gen_range(0..=n);
        (0..len).map(|_| rng.gen_range(0..n)).collect()
    };
    let pair_list: Vec<StreettPair> = (0..pairs)
        .map(|_| {
            let r = rand_set(rng);
            let p = rand_set(rng);
            StreettPair::new(r, p)
        })
        .collect();
    let pairs = StreettPairs(pair_list);
    let alphabet = sigma();
    OmegaAutomaton::build(
        &alphabet,
        n,
        0,
        |q, s| delta[q as usize * 2 + s.index()],
        pairs.acceptance(n),
    )
}

/// A random lasso over {a,b}: spoke length 0..6, cycle length 1..5.
fn rand_lasso<R: Rng>(rng: &mut R) -> Lasso {
    let spoke_len = rng.gen_range(0..6usize);
    let cycle_len = rng.gen_range(1..5usize);
    let word = |rng: &mut R, len: usize| -> Vec<Symbol> {
        (0..len)
            .map(|_| Symbol(rng.gen_range(0..2usize) as u8))
            .collect()
    };
    let u = word(rng, spoke_len);
    let v = word(rng, cycle_len);
    Lasso::new(u, v)
}

/// A random finitary property via a random DFA table (2..=5 states).
fn rand_finitary<R: Rng>(rng: &mut R) -> FinitaryProperty {
    let n = rng.gen_range(2..=5usize);
    let delta: Vec<u32> = (0..n * 2).map(|_| rng.gen_range(0..n) as u32).collect();
    let acc: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let alphabet = sigma();
    let dfa = temporal_properties::automata::dfa::Dfa::build(
        &alphabet,
        n,
        0,
        |q, s| delta[q as usize * 2 + s.index()],
        acc.iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32),
    );
    FinitaryProperty::from_dfa(dfa)
}

/// Runs `check` on `cases` seeded random draws, reporting the failing case.
fn sweep(name: &str, seed: u64, cases: usize, mut check: impl FnMut(&mut StdRng)) {
    let mut rng = StdRng::seed_from_u64(seed);
    for case in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&mut rng)));
        if let Err(e) = result {
            eprintln!("invariant `{name}` failed at case {case} (seed {seed})");
            std::panic::resume_unwind(e);
        }
    }
}

/// Figure 1's lattice: the membership flags respect the inclusions.
#[test]
fn classification_respects_inclusion_lattice() {
    sweep("inclusion_lattice", 101, 64, |rng| {
        let aut = rand_streett(rng, 6, 2);
        let c = classify::classify(&aut);
        assert!(!c.is_safety || c.is_obligation);
        assert!(!c.is_guarantee || c.is_obligation);
        assert_eq!(c.is_obligation, c.is_recurrence && c.is_persistence);
        assert!(!c.is_recurrence || c.is_simple_reactivity);
        assert!(!c.is_persistence || c.is_simple_reactivity);
        assert!(c.reactivity_index >= 1);
        assert!(!c.is_simple_reactivity || c.reactivity_index == 1);
        if let Some(k) = c.obligation_index {
            assert!(k >= 1);
        }
    });
}

/// Classification is a language invariant: complement swaps the dual
/// classes.
#[test]
fn complement_swaps_dual_classes() {
    sweep("complement_duality", 102, 64, |rng| {
        let aut = rand_streett(rng, 5, 2);
        let c = classify::classify(&aut);
        let cc = classify::classify(&aut.complement());
        assert_eq!(c.is_safety, cc.is_guarantee);
        assert_eq!(c.is_guarantee, cc.is_safety);
        assert_eq!(c.is_recurrence, cc.is_persistence);
        assert_eq!(c.is_persistence, cc.is_recurrence);
        assert_eq!(c.is_obligation, cc.is_obligation);
        assert_eq!(c.reactivity_index, cc.reactivity_index);
    });
}

/// The safety closure is the smallest safety superset (on samples).
#[test]
fn safety_closure_properties() {
    sweep("safety_closure", 103, 64, |rng| {
        let aut = rand_streett(rng, 5, 1);
        let cl = classify::safety_closure(&aut);
        assert!(aut.is_subset_of(&cl));
        assert!(classify::is_safety(&cl));
        // Idempotence.
        assert!(classify::safety_closure(&cl).equivalent(&cl));
    });
}

/// Safety–liveness decomposition is always valid.
#[test]
fn decomposition_always_valid() {
    sweep("decomposition_valid", 104, 64, |rng| {
        let aut = rand_streett(rng, 5, 2);
        assert!(decomposition::decomposition_is_valid(&aut));
    });
}

/// Boolean structure of the automata algebra on sampled words.
#[test]
fn boolean_algebra_on_words() {
    sweep("boolean_algebra", 105, 64, |rng| {
        let aut1 = rand_streett(rng, 4, 1);
        let aut2 = rand_streett(rng, 4, 1);
        let w = rand_lasso(rng);
        let in1 = aut1.accepts(&w);
        let in2 = aut2.accepts(&w);
        assert_eq!(aut1.union(&aut2).accepts(&w), in1 || in2);
        assert_eq!(aut1.intersection(&aut2).accepts(&w), in1 && in2);
        assert_eq!(aut1.complement().accepts(&w), !in1);
        assert_eq!(aut1.difference(&aut2).accepts(&w), in1 && !in2);
    });
}

/// The four operators sit in their classes for every finitary Φ.
#[test]
fn operators_land_in_their_classes() {
    sweep("operator_classes", 106, 64, |rng| {
        let phi = rand_finitary(rng);
        assert!(classify::is_safety(&operators::a(&phi)));
        assert!(classify::is_guarantee(&operators::e(&phi)));
        assert!(classify::is_recurrence(&operators::r(&phi)));
        assert!(classify::is_persistence(&operators::p(&phi)));
    });
}

/// The operator dualities for every finitary Φ.
#[test]
fn operator_dualities() {
    sweep("operator_dualities", 107, 64, |rng| {
        let phi = rand_finitary(rng);
        assert!(operators::a(&phi)
            .complement()
            .equivalent(&operators::e(&phi.complement())));
        assert!(operators::r(&phi)
            .complement()
            .equivalent(&operators::p(&phi.complement())));
    });
}

/// The minex law R(Φ₁) ∩ R(Φ₂) = R(minex(Φ₁,Φ₂)).
#[test]
fn minex_law() {
    sweep("minex_law", 108, 64, |rng| {
        let f1 = rand_finitary(rng);
        let f2 = rand_finitary(rng);
        assert!(operators::r(&f1)
            .intersection(&operators::r(&f2))
            .equivalent(&operators::r(&f1.minex(&f2))));
    });
}

/// Membership in A/E/R/P matches the prefix-counting definition on
/// sampled lassos: count the prefixes of w in Φ up to stabilization.
#[test]
fn operator_semantics_on_words() {
    sweep("operator_semantics", 109, 64, |rng| {
        let phi = rand_finitary(rng);
        let w = rand_lasso(rng);
        // Drive Φ's DFA along w; by |u| + |Q|·|v| steps the acceptance
        // pattern over loop offsets has stabilized.
        let dfa = phi.dfa();
        let spoke = w.spoke().len();
        let cyc = w.cycle().len();
        // The DFA state at loop entries becomes periodic within |Q| loop
        // traversals, so everything past spoke + |Q|·cyc is periodic with
        // period dividing |Q|·cyc; a window of that length taken at the
        // very end is therefore a full period of the tail.
        let horizon = spoke + 2 * dfa.num_states() * cyc;
        let mut q = dfa.initial();
        let mut hits = Vec::new(); // prefix lengths in Φ
        for j in 0..horizon {
            q = dfa.step(q, w.at(j));
            hits.push(dfa.is_accepting(q));
        }
        // Tail pattern: does Φ hold for infinitely many prefixes /
        // cofinitely many? Examine the final |Q|·|v| window.
        let window = &hits[horizon - dfa.num_states() * cyc..];
        let inf_many = window.iter().any(|&b| b);
        let cof_many = window.iter().all(|&b| b);
        assert_eq!(operators::r(&phi).accepts(&w), inf_many);
        assert_eq!(operators::p(&phi).accepts(&w), cof_many);
        assert_eq!(operators::e(&phi).accepts(&w), hits.iter().any(|&b| b));
        assert_eq!(operators::a(&phi).accepts(&w), hits.iter().all(|&b| b));
    });
}

/// Liveness (density) of the liveness extension, for any property.
#[test]
fn liveness_extension_is_dense() {
    sweep("liveness_extension", 110, 64, |rng| {
        let aut = rand_streett(rng, 5, 2);
        let l = decomposition::liveness_extension(&aut);
        assert!(density::is_dense(&l));
    });
}

/// Acceptance evaluation is consistent between the boolean condition
/// and its DNF.
#[test]
fn acceptance_dnf_consistency() {
    sweep("dnf_consistency", 111, 64, |rng| {
        let aut = rand_streett(rng, 5, 2);
        let w = rand_lasso(rng);
        let inf = aut.infinity_set(&w);
        let direct = aut.acceptance().accepts_infinity_set(&inf);
        let via_dnf = aut.acceptance().dnf().iter().any(|p| p.accepts_cycle(&inf));
        assert_eq!(direct, via_dnf);
        assert_eq!(direct, aut.accepts(&w));
    });
}

/// Negation normal form preserves semantics on sampled lassos
/// (future-over-past fragment only).
#[test]
fn nnf_preserves_semantics() {
    use temporal_properties::logic::{rewrites, semantics};
    sweep("nnf_semantics", 112, 32, |rng| {
        let seed = rng.gen_range(0..1000usize);
        let w = rand_lasso(rng);
        let alphabet = sigma();
        // A small pool of formulas, negated.
        let sources = [
            "G (a -> F b)",
            "a U b",
            "F G a",
            "G F b",
            "a W b",
            "G (b -> Y a)",
            "F (a & O b)",
        ];
        let src = sources[seed % sources.len()];
        let f = Formula::parse(&alphabet, src).unwrap().not();
        let g = rewrites::nnf(&f);
        let lhs = semantics::holds(&f, &w);
        let rhs = semantics::holds(&g, &w);
        if let (Ok(l), Ok(r)) = (lhs, rhs) {
            assert_eq!(l, r, "nnf changed semantics of ¬({src})");
        }
    });
}

/// Static sanity check that the acceptance constructors compose (not a
/// random sweep; exercises the Acceptance API surface from an integration
/// context).
#[test]
fn acceptance_api_composes() {
    let acc = Acceptance::inf([0])
        .and(Acceptance::fin([1]).or(Acceptance::inf([2])))
        .negated();
    let atoms = acc.atom_sets();
    assert_eq!(atoms.len(), 3);
}
