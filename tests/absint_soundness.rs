//! Differential soundness suite for the abstract-interpretation engine:
//! on seeded random programs (and the paper examples) the abstract
//! invariant must cover every exactly reachable valuation in every
//! domain, every certificate must pass both the abstract and the
//! exhaustive concrete re-check, and the invariant-first checker must
//! agree verdict-for-verdict with the explicit product search — with
//! every violation it reports replaying as a real, fair computation.

use temporal_properties::automata::alphabet::Alphabet;
use temporal_properties::automata::random::rng::{SeedableRng, StdRng};
use temporal_properties::fts::absint::{
    self, analyze, certify, certify_exhaustive, DomainKind, Program,
};
use temporal_properties::fts::checker::{
    check_with_invariants, validate_violation, verify, Verdict,
};
use temporal_properties::fts::programs;
use temporal_properties::fts::system::Fairness;
use temporal_properties::logic::to_automaton::compile_over;
use temporal_properties::logic::Formula;

const SEEDS: u64 = 30;
const SPECS: [&str; 4] = ["G p0", "F p1", "G (p0 -> F p1)", "G F p1"];

fn random_suite() -> Vec<(String, Program, Alphabet)> {
    let psigma = Alphabet::of_propositions(["p0", "p1"]).unwrap();
    (0..SEEDS)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (
                format!("seed-{seed}"),
                absint::random_program(&mut rng),
                psigma.clone(),
            )
        })
        .collect()
}

fn paper_suite() -> Vec<(String, Program, Alphabet)> {
    let sigma = programs::observation_alphabet();
    vec![
        (
            "mux-sem".into(),
            absint::mux_sem_abs(Fairness::Strong),
            sigma.clone(),
        ),
        (
            "mux-sem-weak".into(),
            absint::mux_sem_abs(Fairness::Weak),
            sigma.clone(),
        ),
        (
            "token-ring".into(),
            absint::token_ring_abs(true),
            sigma.clone(),
        ),
        ("peterson".into(), absint::peterson_abs(), sigma),
    ]
}

/// The parameterized families at N ∈ {2..5} — the scale where the
/// explicit product is still cheap enough to cross-validate against.
fn family_suite() -> Vec<(String, Program, Alphabet)> {
    let sigma = programs::observation_alphabet();
    let mut out = Vec::new();
    for n in 2..=5 {
        out.push((format!("mux-sem-n{n}"), absint::mux_sem_n(n), sigma.clone()));
        out.push((
            format!("token-ring-n{n}"),
            absint::token_ring_n(n),
            sigma.clone(),
        ));
        out.push((
            format!("dining-phil-{n}"),
            absint::dining_philosophers(n),
            sigma.clone(),
        ));
    }
    out
}

#[test]
fn abstract_invariant_covers_exact_reachable_set() {
    for (name, prog, sigma) in paper_suite()
        .into_iter()
        .chain(family_suite())
        .chain(random_suite())
    {
        let (_, vals) = prog
            .to_builder(&sigma)
            .build_with_valuations()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for kind in DomainKind::ALL {
            let inv = analyze(&prog, kind);
            for v in &vals {
                assert!(
                    inv.contains(v),
                    "{name}/{}: exact reachable valuation {v:?} escapes the invariant",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn every_certificate_passes_both_checkers() {
    for (name, prog, _) in paper_suite()
        .into_iter()
        .chain(family_suite())
        .chain(random_suite())
    {
        for kind in DomainKind::ALL {
            let inv = analyze(&prog, kind);
            certify(&prog, &inv)
                .unwrap_or_else(|e| panic!("{name}/{}: abstract re-check: {e}", kind.name()));
            certify_exhaustive(&prog, &inv, 1_000_000)
                .unwrap_or_else(|e| panic!("{name}/{}: exhaustive re-check: {e}", kind.name()));
        }
    }
}

/// The relational invariant is never less precise than any cartesian
/// domain's: at every location, every variable's relational mask is a
/// subset of the cartesian mask.
#[test]
fn relational_invariants_refine_every_cartesian_domain() {
    for (name, prog, _) in paper_suite()
        .into_iter()
        .chain(family_suite())
        .chain(random_suite())
    {
        let rel = analyze(&prog, DomainKind::Relational);
        for kind in DomainKind::CARTESIAN {
            let cart = analyze(&prog, kind);
            for (l, (rloc, cloc)) in rel.locations.iter().zip(&cart.locations).enumerate() {
                for (x, (&rm, &cm)) in rloc.values.iter().zip(&cloc.values).enumerate() {
                    assert_eq!(
                        rm & !cm,
                        0,
                        "{name}: relational mask exceeds {} at location {l}, var {x}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn invariant_first_verdicts_match_explicit_verdicts() {
    for (name, prog, sigma) in random_suite().into_iter().chain(family_suite()) {
        let ts = prog
            .to_builder(&sigma)
            .build()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let specs = if name.starts_with("seed-") {
            &SPECS[..]
        } else {
            // The families observe [c1, c2, t1, t2]; the mutex safety
            // spec is the one the relational domain discharges.
            &["G !(c1 & c2)"][..]
        };
        for spec in specs {
            let prop = compile_over(&sigma, &Formula::parse(&sigma, spec).unwrap()).unwrap();
            let explicit = verify(&ts, &prop).unwrap_or_else(|e| panic!("{name}: {e}"));
            for kind in [DomainKind::ValueSets, DomainKind::Relational] {
                let (invfirst, stats) = check_with_invariants(&prog, &sigma, &prop, kind)
                    .unwrap_or_else(|e| panic!("{name}: {e}"));
                assert_eq!(
                    stats.certificate_ok,
                    Some(true),
                    "{name}/{spec}/{}: certificate must validate",
                    kind.name()
                );
                assert_eq!(
                    explicit.holds(),
                    invfirst.holds(),
                    "{name}/{spec}/{}: verdicts diverge",
                    kind.name()
                );
                assert_eq!(
                    stats.pruned_product_states,
                    0,
                    "{name}/{spec}/{}: pruning removed a node",
                    kind.name()
                );
                if let Verdict::Violated(cex) = &invfirst {
                    validate_violation(&ts, &prop, cex)
                        .unwrap_or_else(|e| panic!("{name}/{spec}: bad counterexample: {e}"));
                }
            }
        }
    }
}
