//! Differential soundness suite for the quotient-first pipeline.
//!
//! `hierarchy_automata::minimize` computes the acceptance-aware greatest
//! bisimulation quotient, and `Analysis` routes classification, Rabin
//! index, universality, and inclusion queries through that quotient by
//! default. Everything the hierarchy reports is a language property, so
//! the quotient must be *observationally invisible*: this suite checks
//! language preservation against a brute-force lasso-enumeration oracle
//! on small alphabets, verdict identity between quotient-first and raw
//! analysis contexts on hundreds of seeded automata (classification,
//! Rabin index, universality, inclusion, and the full lint report), and
//! structural idempotence of the minimizer itself.

use temporal_properties::automata::alphabet::{Alphabet, Symbol};
use temporal_properties::automata::analysis::Analysis;
use temporal_properties::automata::lasso::Lasso;
use temporal_properties::automata::minimize::minimize;
use temporal_properties::automata::omega::OmegaAutomaton;
use temporal_properties::automata::random::random_streett;
use temporal_properties::automata::random::rng::{SeedableRng, StdRng};
use temporal_properties::lint::lint_automaton_ctx;

/// Every ultimately-periodic word `u·v^ω` with `|u| <= max_spoke` and
/// `1 <= |v| <= max_cycle` over the alphabet.
fn all_lassos(sigma: &Alphabet, max_spoke: usize, max_cycle: usize) -> Vec<Lasso> {
    let k = sigma.len();
    let words = |len: usize| -> Vec<Vec<Symbol>> {
        let mut out = vec![Vec::new()];
        for _ in 0..len {
            out = out
                .into_iter()
                .flat_map(|w| {
                    (0..k).map(move |s| {
                        let mut w = w.clone();
                        w.push(Symbol(s as u8));
                        w
                    })
                })
                .collect();
        }
        out
    };
    let mut lassos = Vec::new();
    for spoke_len in 0..=max_spoke {
        for spoke in words(spoke_len) {
            for cycle_len in 1..=max_cycle {
                for cycle in words(cycle_len) {
                    lassos.push(Lasso::new(spoke.clone(), cycle));
                }
            }
        }
    }
    lassos
}

/// A small round-robin of generator parameters so the sweep sees dense
/// and sparse acceptance conditions and different pair counts.
fn params(i: u64) -> (usize, f64) {
    let k = [1usize, 2, 3][(i % 3) as usize];
    let p = [0.2f64, 0.5, 0.8][((i / 3) % 3) as usize];
    (k, p)
}

#[test]
fn quotient_preserves_language_on_lasso_enumeration() {
    for (sigma, states, seeds, spoke, cycle) in [
        (
            Alphabet::new(["a", "b"]).unwrap(),
            8usize,
            60u64,
            3usize,
            3usize,
        ),
        (Alphabet::new(["a", "b", "c"]).unwrap(), 6, 30, 2, 2),
    ] {
        let lassos = all_lassos(&sigma, spoke, cycle);
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let (k, p) = params(seed);
            let (aut, _) = random_streett(&mut rng, &sigma, states, k, p);
            let min = minimize(&aut);
            assert!(
                min.quotient.num_states() <= aut.num_states(),
                "seed {seed}: the quotient grew"
            );
            for w in &lassos {
                assert_eq!(
                    aut.accepts(w),
                    min.quotient.accepts(w),
                    "seed {seed} over {}-letter alphabet: quotient disagrees on {w:?}",
                    sigma.len()
                );
            }
        }
    }
}

#[test]
fn classification_and_rabin_index_are_identical_quotient_vs_raw() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    for seed in 0..220u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (k, p) = params(seed);
        let n = [6usize, 10, 14][((seed / 9) % 3) as usize];
        let (aut, _) = random_streett(&mut rng, &sigma, n, k, p);
        let quot = Analysis::new(aut.clone());
        let raw = Analysis::new_raw(aut);
        assert_eq!(
            quot.classification(),
            raw.classification(),
            "seed {seed}: quotient-first classification diverged"
        );
        assert_eq!(
            quot.rabin_index(),
            raw.rabin_index(),
            "seed {seed}: quotient-first Rabin index diverged"
        );
    }
}

#[test]
fn lint_reports_are_identical_quotient_vs_raw() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (k, p) = params(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 10, k, p);
        let quot = lint_automaton_ctx(&Analysis::new(aut.clone()));
        let raw = lint_automaton_ctx(&Analysis::new_raw(aut));
        assert_eq!(
            quot, raw,
            "seed {seed}: the lint report depends on the quotient preprocessing"
        );
    }
}

#[test]
fn universality_and_inclusion_agree_quotient_vs_raw() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut prev: Option<OmegaAutomaton> = None;
    for seed in 0..80u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (k, p) = params(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 8, k, p);
        let quot = Analysis::new(aut.clone());
        let raw = Analysis::new_raw(aut.clone());
        assert_eq!(
            quot.is_universal(),
            raw.is_universal(),
            "seed {seed}: universality diverged"
        );
        if let Some(other) = prev {
            assert_eq!(
                quot.is_subset_of(&other),
                raw.is_subset_of(&other),
                "seed {seed}: inclusion against the previous automaton diverged"
            );
            assert_eq!(
                quot.equivalent(&other),
                raw.equivalent(&other),
                "seed {seed}: equivalence against the previous automaton diverged"
            );
        }
        prev = Some(aut);
    }
}

#[test]
fn minimization_is_idempotent_and_matches_the_moore_oracle() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (k, p) = params(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 12, k, p);
        let min = minimize(&aut);
        // Idempotence: re-minimizing the quotient is the identity, not
        // just up to isomorphism — the canonical BFS renumbering makes
        // the quotient a fixed point structurally.
        let twice = minimize(&min.quotient);
        assert!(
            !twice.reduced(),
            "seed {seed}: the quotient was reducible again"
        );
        assert_eq!(
            twice.quotient, min.quotient,
            "seed {seed}: minimize∘minimize differs from minimize"
        );
        // Size agreement with the naive Moore oracle kept in
        // `OmegaAutomaton::reduce`.
        assert_eq!(
            min.quotient.num_states(),
            aut.reduce().num_states(),
            "seed {seed}: Hopcroft and Moore quotients differ in size"
        );
    }
}
