#!/usr/bin/env bash
# Tier-1 gate (see ROADMAP.md): offline release build, full test suite,
# and formatting. Everything runs with --offline — the workspace has zero
# external dependencies (the PRNG is vendored in automata/src/random.rs),
# so a network-less container must pass this script end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test --offline --workspace --quiet
# Re-run the cross-validation suite with the worker pool forced on, so the
# parallel classification path is exercised even on single-core hosts.
HIERARCHY_THREADS=2 cargo test --offline -p temporal-properties \
  --test analysis_cross_validation --test parallel_stress --quiet
# The abstract-interpretation differential suite (cartesian + relational
# domains, paper programs, the parameterized N-process families, and the
# random sweep), plus the same suite with the worker pool forced on (the
# invariant engine itself is sequential, but spec-lint batches programs
# through the pool).
cargo test --offline -p temporal-properties --test absint_soundness --quiet
HIERARCHY_THREADS=2 cargo test --offline -p temporal-properties \
  --test absint_soundness --quiet
# The quotient-first differential suite (language preservation, verdict
# and lint-report identity raw vs quotient, idempotence), plus the same
# suite with the worker pool forced on.
cargo test --offline -p temporal-properties --test minimize_soundness --quiet
HIERARCHY_THREADS=2 cargo test --offline -p temporal-properties \
  --test minimize_soundness --quiet
# The direct-inclusion differential suite (Streett/Rabin/parity verdicts
# vs the complement oracle, counterexample-lasso replay, structural
# invariants), plus the same suite with the worker pool forced on (the
# Analysis memo tables are thread-shared).
cargo test --offline -p temporal-properties --test inclusion_soundness --quiet
HIERARCHY_THREADS=2 cargo test --offline -p temporal-properties \
  --test inclusion_soundness --quiet
# Smoke the invariant-vs-explicit benchmark: its expect() lines are the
# acceptance checks (verdict identity, safety discharge incl. Peterson
# under the relational domain, the states-vs-N family series, certificates).
cargo run --release --offline -p hierarchy-bench --bin tab_absint -- --smoke \
  > /dev/null
# Smoke the quotient-first benchmark: verdict identity raw vs quotient
# and the state/sweep reduction expectations.
cargo run --release --offline -p hierarchy-bench --bin tab_minimize -- --smoke \
  > /dev/null
# Smoke the direct-inclusion benchmark: old-vs-new verdict identity on
# every seeded case is its expect() gate.
cargo run --release --offline -p hierarchy-bench --bin tab_inclusion -- --smoke \
  > /dev/null
# The serve daemon suites: protocol goldens over a pipe, the TCP
# concurrency soak, and the content-hash property tests — plain (part of
# the workspace run above) and with the worker pool forced on, since the
# store, the batch endpoints, and the Analysis memo tables are all
# thread-shared.
HIERARCHY_THREADS=2 cargo test --offline -p hierarchy-serve --quiet
HIERARCHY_THREADS=2 cargo test --offline -p temporal-properties \
  --test content_hash --quiet
# Smoke the daemon benchmark: verdict identity against direct library
# calls and the warm-vs-cold latency gate are its expect() lines.
cargo run --release --offline -p hierarchy-bench --bin tab_serve -- --smoke \
  > /dev/null
# The suite-audit differential suite (subsumption matrix vs direct
# oracles, duplicate classes, conflict pairs, worker-count identity) and
# the seeded SUITE-rule defect injections, with the worker pool forced
# on (the plain runs ride the workspace test pass above).
HIERARCHY_THREADS=2 cargo test --offline -p temporal-properties \
  --test audit_soundness --quiet
HIERARCHY_THREADS=2 cargo test --offline -p hierarchy-lint \
  --test seeded_defects --quiet
# Smoke the suite-audit benchmark: warm-beats-cold, report identity cold
# vs warm and across worker counts, and the prefilter-majority gates are
# its expect() lines.
HIERARCHY_THREADS=2 cargo run --release --offline -p hierarchy-bench \
  --bin tab_audit -- --smoke > /dev/null
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check

echo "tier1: OK"
