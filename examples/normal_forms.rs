//! Normal forms and export: the paper's conjunctive normal forms made
//! constructive, and HOA export for interoperability.
//!
//! Run with `cargo run --example normal_forms`.

use temporal_properties::automata::classify;
use temporal_properties::lang::witnesses;
use temporal_properties::prelude::*;
use temporal_properties::topology::normal_forms;

fn main() {
    let sigma = Alphabet::new(["a", "b", "c"]).expect("alphabet");

    // --- Simple obligation: □a ∨ ◇c decomposes as closed ∪ open.
    let obl = Property::parse(&sigma, "G a | F c").expect("compiles");
    println!("□a ∨ ◇c   class: {}", obl.class());
    match normal_forms::simple_obligation_decomposition(obl.automaton()) {
        Some((closed, open)) => {
            println!(
                "  = A(Φ) ∪ E(Ψ) with A-part {} and E-part {}",
                classify::classify(&closed).strictest_class_name(),
                classify::classify(&open).strictest_class_name(),
            );
        }
        None => println!("  not a simple obligation"),
    }

    // --- The paper's a*b^ω + Σ*cΣ^ω needs two conjuncts (Obl₂):
    let paper = Property::from_automaton(witnesses::obligation_simple());
    println!("\na*b^ω + Σ*cΣ^ω   class: {}", paper.class());
    println!(
        "  simple-obligation decomposition exists: {}",
        normal_forms::simple_obligation_decomposition(paper.automaton()).is_some()
    );

    // --- Reactivity CNF of the level-2 witness: exactly two clauses.
    let react = witnesses::reactivity_witness(2);
    let cnf = normal_forms::reactivity_cnf(&react).expect("streett-convertible");
    println!(
        "\nreactivity level-2 witness: ⋂ of {} clauses (R(Φᵢ) ∪ P(Ψᵢ))",
        cnf.len()
    );
    for (i, clause) in cnf.iter().enumerate() {
        println!(
            "  clause {}: R-part is {}, P-part is {}",
            i + 1,
            classify::classify(&clause.recurrence).strictest_class_name(),
            classify::classify(&clause.persistence).strictest_class_name(),
        );
    }
    println!(
        "  recomposition exact: {}",
        normal_forms::cnf_recomposes(&react, &cnf)
    );

    // --- HOA export for external tools (Spot, owl, …).
    let response = Property::parse(&sigma, "G (a -> F b)").expect("compiles");
    println!("\nHOA export of □(a → ◇b):\n{}", response.to_hoa());

    // --- And the full report, pretty-printed.
    println!("report for □(a → ◇b):\n{}", response.report());
}
