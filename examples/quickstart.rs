//! Quickstart: classify a handful of temporal properties across all four
//! of the paper's views.
//!
//! Run with `cargo run --example quickstart`.

use temporal_properties::prelude::*;

fn main() {
    // Properties over two propositions: a request and an acknowledgement.
    let sigma = Alphabet::of_propositions(["req", "ack"]).expect("valid propositions");

    let specs = [
        ("mutual exclusion style", "G !(req & ack)"),
        ("termination style", "F ack"),
        ("response", "G (req -> F ack)"),
        ("stabilization", "F G ack"),
        ("conditional safety", "req -> G ack"),
        ("simple obligation", "G req | F ack"),
        ("strong fairness", "G F req -> G F ack"),
    ];

    println!(
        "{:<24} {:<22} {:<8} {:<9} formula",
        "spec", "class", "Borel", "live?"
    );
    println!("{}", "-".repeat(100));
    for (name, src) in specs {
        let property = Property::parse(&sigma, src).expect("compiles");
        let report = property.report();
        println!(
            "{:<24} {:<22} {:<8} {:<9} {}",
            name,
            report.class.to_string(),
            report.borel,
            if report.is_liveness { "yes" } else { "no" },
            src,
        );
    }

    // Membership of concrete behaviours: an ultimately periodic run where
    // every request is eventually acknowledged…
    let response = Property::parse(&sigma, "G (req -> F ack)").expect("compiles");
    let req = sigma.valuation_symbol(&[true, false]);
    let ack = sigma.valuation_symbol(&[false, true]);
    let idle = sigma.valuation_symbol(&[false, false]);
    let good = Lasso::new(vec![idle], vec![req, ack]);
    let bad = Lasso::new(vec![idle, req], vec![idle]);
    println!();
    println!(
        "(idle)(req ack)^ω  ⊨ response: {}",
        response.contains(&good)
    );
    println!("(idle req)(idle)^ω ⊨ response: {}", response.contains(&bad));

    // The paper's proof-principle guidance comes with the class.
    println!();
    println!(
        "proof principle for the response class:\n  {}",
        response.report().proof_principle
    );

    // The safety–liveness decomposition is orthogonal to the hierarchy.
    let (safety_part, liveness_part) = response.safety_liveness_decomposition();
    println!();
    println!(
        "safety part class: {} | liveness part dense: {}",
        safety_part.class(),
        liveness_part.report().is_liveness,
    );
}
