//! Weak and strong fairness through the lens of the hierarchy (Section 4
//! of the paper): weak fairness (justice) is a *recurrence* requirement,
//! strong fairness (compassion) is a *simple reactivity* requirement — and
//! the gap is visible both in the classification and in model checking.
//!
//! Run with `cargo run --example fairness`.

use temporal_properties::fts::checker::{verify, Verdict};
use temporal_properties::fts::programs;
use temporal_properties::fts::system::Fairness;
use temporal_properties::prelude::*;

fn main() {
    // --- The fairness requirement formulas and their classes.
    // en = the transition is enabled, tk = it is taken.
    let sigma = Alphabet::of_propositions(["en", "tk"]).expect("alphabet");
    let weak = Property::parse(&sigma, "G F (!en | tk)").expect("compiles");
    let strong = Property::parse(&sigma, "G F en -> G F tk").expect("compiles");
    println!("weak fairness  □◇(¬En(τ) ∨ taken(τ)) : {}", weak.class());
    println!("strong fairness □◇En(τ) → □◇taken(τ) : {}", strong.class());
    println!(
        "strong fairness is the stronger requirement — it implies weak: {}",
        strong.is_subset_of(&weak)
    );
    println!("…and not conversely: {}", !weak.is_subset_of(&strong));
    println!();

    // --- The gap in action: MUX-SEM accessibility.
    println!("MUX-SEM accessibility □(t2 → ◇c2) under each grant fairness:");
    for fairness in [Fairness::None, Fairness::Weak, Fairness::Strong] {
        let (ts, obs) = programs::mux_sem(fairness);
        let spec = Property::parse(&obs, "G (t2 -> F c2)").expect("compiles");
        let verdict = verify(&ts, spec.automaton()).expect("valid system and alphabet");
        let outcome = match &verdict {
            Verdict::Holds => "holds".to_string(),
            Verdict::Violated(cex) => format!(
                "violated (loop of {} states starving process 2)",
                cex.cycle.len()
            ),
        };
        println!("  {fairness:?}: {outcome}");
    }
    println!();

    // --- Why the classes matter: a weakly-but-not-strongly-fair loop.
    // The starvation loop idles between idle/c1 states; grant2 is enabled
    // only intermittently, so weak fairness tolerates never taking it.
    let (ts, obs) = programs::mux_sem(Fairness::Weak);
    if let Ok(Verdict::Violated(cex)) = verify(
        &ts,
        Property::parse(&obs, "G (t2 -> F c2)")
            .expect("compiles")
            .automaton(),
    ) {
        println!("weak-fairness starvation loop (state = pc1*3+pc2):");
        println!("  stem : {:?}", cex.stem);
        println!("  cycle: {:?} (repeats forever)", cex.cycle);
    }
    println!();

    // --- The responsiveness summary table (Section 4).
    let ap = Alphabet::of_propositions(["p", "q"]).expect("alphabet");
    println!("the paper's five grades of responsiveness:");
    for (reading, src) in [
        ("initial p ⇒ some q", "p -> F q"),
        ("first p ⇒ some q after", "F p -> F (q & O p)"),
        ("every p ⇒ some q", "G (p -> F q)"),
        ("some p ⇒ eventually always q", "G (p -> F G q)"),
        ("∞ many p ⇒ ∞ many q", "G F p -> G F q"),
    ] {
        let prop = Property::parse(&ap, src).expect("compiles");
        println!("  {:<30} {:<24} {}", reading, prop.class().to_string(), src);
    }
}
