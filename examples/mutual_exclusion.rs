//! The paper's running program example: mutual exclusion.
//!
//! Verifies Peterson's algorithm against the full specification check-list
//! the paper derives from the hierarchy — the safety requirement alone is
//! famously incomplete (a program that never grants access satisfies it),
//! so the recurrence-class accessibility requirement must be added.
//!
//! Run with `cargo run --example mutual_exclusion`.

use temporal_properties::fts::checker::{verify, Verdict};
use temporal_properties::fts::programs;
use temporal_properties::prelude::*;

fn check(
    ts: &temporal_properties::fts::system::TransitionSystem,
    sigma: &Alphabet,
    name: &str,
    src: &str,
) {
    let property = Property::parse(sigma, src).expect("spec compiles");
    let class = property.class();
    let verdict = verify(ts, property.automaton()).expect("valid system and alphabet");
    match verdict {
        Verdict::Holds => println!("  ✓ {name:<28} [{class}]  {src}"),
        Verdict::Violated(cex) => {
            println!("  ✗ {name:<28} [{class}]  {src}");
            println!(
                "      counterexample: stem of {} states, loop of {} states",
                cex.stem.len(),
                cex.cycle.len()
            );
        }
    }
}

fn main() {
    println!("Peterson's algorithm (32 states, weak fairness):");
    let (peterson, sigma) = programs::peterson();

    // The faulty specification from the paper's introduction: safety only.
    check(
        &peterson,
        &sigma,
        "mutual exclusion (safety)",
        "G !(c1 & c2)",
    );
    // Its completion: accessibility, a response/recurrence property.
    check(&peterson, &sigma, "accessibility P1", "G (t1 -> F c1)");
    check(&peterson, &sigma, "accessibility P2", "G (t2 -> F c2)");
    // Precedence: no spurious critical sections.
    check(&peterson, &sigma, "causal precedence", "G (c1 -> O t1)");
    // An intentionally false guarantee — a process may never request:
    check(&peterson, &sigma, "unconditional entry (false)", "F c1");

    println!();
    println!("MUX-SEM with strongly fair grants:");
    let (strong, sigma) = programs::mux_sem(temporal_properties::fts::system::Fairness::Strong);
    check(&strong, &sigma, "mutual exclusion", "G !(c1 & c2)");
    check(&strong, &sigma, "accessibility P1", "G (t1 -> F c1)");
    check(&strong, &sigma, "accessibility P2", "G (t2 -> F c2)");
    check(&strong, &sigma, "fair responsiveness", "G F t1 -> G F c1");

    println!();
    println!("MUX-SEM with only weakly fair grants (starvation is fair):");
    let (weak, sigma) = programs::mux_sem(temporal_properties::fts::system::Fairness::Weak);
    check(&weak, &sigma, "mutual exclusion", "G !(c1 & c2)");
    check(&weak, &sigma, "accessibility P2 (false)", "G (t2 -> F c2)");
}
