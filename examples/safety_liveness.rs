//! The safety–liveness decomposition and its orthogonality to the
//! hierarchy (Sections 2–3 of the paper).
//!
//! Every property Π factors as Π = A(Pref(Π)) ∩ L(Π) — a safety property
//! intersected with a liveness property — and when Π lies in class κ, the
//! liveness part is a *live κ-property*.
//!
//! Run with `cargo run --example safety_liveness`.

use temporal_properties::prelude::*;
use temporal_properties::topology::{decomposition, density, metric};

fn main() {
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");

    // The paper's worked example: aUb = (a W b) ∩ ◇b.
    let until = Property::parse(&sigma, "a U b").expect("compiles");
    let (s, l) = until.safety_liveness_decomposition();
    let weak = Property::parse(&sigma, "a W b").expect("compiles");
    let ev_b = Property::parse(&sigma, "F b").expect("compiles");
    println!("a U b  =  (a W b) ∩ ◇b:");
    println!("  safety part  = a W b : {}", s.equivalent(&weak));
    println!("  liveness part ⊇ ◇b   : {}", ev_b.is_subset_of(&l));
    println!(
        "  recomposition exact  : {}",
        s.intersection(&l).equivalent(&until)
    );
    println!();

    // Orthogonality: decompose one property from each class and classify
    // the parts.
    println!(
        "{:<28} {:<20} {:<22} dense?",
        "property", "class", "liveness part class"
    );
    println!("{}", "-".repeat(92));
    for (name, src) in [
        ("◇b", "F b"),
        ("□(a → ◇b)", "G (a -> F b)"),
        ("◇□a", "F G a"),
        ("□a ∨ ◇b", "G a | F b"),
    ] {
        let p = Property::parse(&sigma, src).expect("compiles");
        let (_, live) = p.safety_liveness_decomposition();
        println!(
            "{:<28} {:<20} {:<22} {}",
            name,
            p.class().to_string(),
            live.class().to_string(),
            density::is_dense(live.automaton()),
        );
    }

    // The topology behind it: the safety part is the topological closure.
    println!();
    let guarantee = Property::parse(&sigma, "F b").expect("compiles");
    let (closure, _) = guarantee.safety_liveness_decomposition();
    println!(
        "cl(◇b) = Σ^ω (every finite word extends into ◇b): {}",
        closure.automaton().is_universal()
    );

    // Convergence in the Cantor metric: aⁿb^ω → a^ω.
    let seq: Vec<Lasso> = (0..10)
        .map(|n| Lasso::parse(&sigma, &"a".repeat(n), "b").expect("lasso"))
        .collect();
    let limit = Lasso::parse(&sigma, "", "a").expect("lasso");
    println!();
    println!("distances μ(aⁿb^ω, a^ω):");
    for (n, w) in seq.iter().enumerate().take(6) {
        println!("  n = {n}: {}", metric::distance(w, &limit));
    }

    // Uniform liveness: Σ*b^ω has the single extension b^ω…
    let persistence = Property::parse(&sigma, "F G b").expect("compiles");
    let witness = density::uniform_liveness_witness(persistence.automaton());
    println!();
    match witness {
        Some(w) => println!(
            "◇□b is uniformly live; a uniform extension: {}",
            w.display(&sigma)
        ),
        None => println!("◇□b unexpectedly not uniformly live"),
    }
    // …while "eventually only the first symbol" is live but not uniformly.
    let (dec, _) = decomposition::decompose(persistence.automaton());
    println!("its safety closure is Σ^ω: {}", dec.is_universal());
}
