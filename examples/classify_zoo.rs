//! A zoo of properties classified through every view of the paper:
//! formulas, operator applications, and raw automata — including the
//! canonical witnesses that make Figure 1's inclusions strict.
//!
//! Run with `cargo run --example classify_zoo`.

use temporal_properties::automata::{classify, counterfree};
use temporal_properties::lang::witnesses;
use temporal_properties::prelude::*;

fn row(name: &str, p: &Property) {
    let r = p.report();
    println!(
        "{:<34} {:<22} {:<7} {:<6} {:<6} {}",
        name,
        r.class.to_string(),
        r.borel,
        if r.is_liveness { "yes" } else { "no" },
        if r.is_counter_free { "yes" } else { "no" },
        r.proof_principle.split(':').next().unwrap_or(""),
    );
}

fn main() {
    println!(
        "{:<34} {:<22} {:<7} {:<6} {:<6} proof",
        "property", "class", "Borel", "live", "LTL?"
    );
    println!("{}", "-".repeat(110));

    // --- From formulas over propositions.
    let ap = Alphabet::of_propositions(["p", "q"]).expect("alphabet");
    for (name, src) in [
        ("□(p → ⊖q) (precedence)", "G (p -> Y q)"),
        ("◇(p ∧ ⟐q)", "F (p & O q)"),
        ("p U q", "p U q"),
        ("p W q", "p W q"),
        ("□(p → ◇q) (response)", "G (p -> F q)"),
        ("□(p → ◇□q) (stabilize)", "G (p -> F G q)"),
        ("□◇p → □◇q (strong fair)", "G F p -> G F q"),
        ("◇p → ◇(q ∧ ⟐p) (exception)", "F p -> F (q & O p)"),
    ] {
        row(name, &Property::parse(&ap, src).expect("compiles"));
    }

    // --- The paper's §2 witnesses through the linguistic operators.
    println!();
    for (name, aut) in [
        ("A(a⁺b*) = a^ω + a⁺b^ω", witnesses::safety()),
        (
            "E(a⁺b*) = a·Σ^ω (clopen!)",
            witnesses::guarantee_paper_example(),
        ),
        ("E(Σ*b) = ◇b", witnesses::guarantee()),
        ("R(Σ*b) = (a*b)^ω", witnesses::recurrence()),
        ("P(Σ*b) = Σ*b^ω", witnesses::persistence()),
        ("(a+b)*a^ω", witnesses::persistence_a()),
        ("a*b^ω + Σ*cΣ^ω", witnesses::obligation_simple()),
        ("Obl₃ witness", witnesses::obligation_witness(3)),
        (
            "reactivity level 2 witness",
            witnesses::reactivity_witness(2),
        ),
    ] {
        row(name, &Property::from_automaton(aut));
    }

    // --- A counting automaton: ω-regular but not temporal-logic
    // expressible (not counter-free).
    println!();
    let sigma = Alphabet::new(["a", "b"]).expect("alphabet");
    let a = sigma.symbol("a").expect("symbol");
    let even_a = OmegaAutomaton::build(
        &sigma,
        2,
        0,
        move |q, s| if s == a { 1 - q } else { q },
        Acceptance::inf([0]),
    );
    let p = Property::from_automaton(even_a);
    row("\"infinitely often even #a\"", &p);
    match p.counter_freedom() {
        counterfree::CounterFreedom::Counter { period, .. } => {
            println!("   ↳ counter of period {period} found: not LTL-expressible (Zuc86)");
        }
        counterfree::CounterFreedom::CounterFree { .. } => unreachable!(),
    }

    // --- Figure 1, regenerated: strictness of every inclusion.
    println!();
    println!("Figure 1 inclusions (✓ = member):");
    let members: Vec<(&str, OmegaAutomaton)> = vec![
        ("safety wit.", witnesses::safety()),
        ("guarantee wit.", witnesses::guarantee()),
        ("obligation wit.", witnesses::obligation_simple()),
        ("recurrence wit.", witnesses::recurrence()),
        ("persistence wit.", witnesses::persistence()),
        ("reactivity wit.", witnesses::reactivity_witness(1)),
    ];
    println!(
        "{:<18} {:>7} {:>9} {:>10} {:>10} {:>11} {:>10}",
        "", "safety", "guarantee", "obligation", "recurrence", "persistence", "reactivity"
    );
    for (name, aut) in &members {
        let c = classify::classify(aut);
        let tick = |b: bool| if b { "✓" } else { "·" };
        println!(
            "{:<18} {:>7} {:>9} {:>10} {:>10} {:>11} {:>10}",
            name,
            tick(c.is_safety),
            tick(c.is_guarantee),
            tick(c.is_obligation),
            tick(c.is_recurrence),
            tick(c.is_persistence),
            "✓", // every ω-regular property is reactivity
        );
    }
}
