#![doc = "Meta-crate re-exporting the temporal-property hierarchy workspace."]
pub use hierarchy_core::*;
