//! Complete deterministic finite automata over finite words.
//!
//! Finitary properties `Φ ⊆ Σ⁺` — the building blocks of the paper's
//! linguistic view — are represented by DFAs. The API provides the boolean
//! algebra, minimization, and the decision procedures (emptiness, inclusion,
//! equivalence) that the hierarchy constructions rely on.

use crate::alphabet::{Alphabet, Symbol};
use crate::bitset::BitSet;
use crate::{AutomatonError, StateId};
use std::collections::VecDeque;

/// A complete deterministic finite automaton.
///
/// Transitions are total: every state has exactly one successor per symbol.
/// States are numbered `0..num_states()`.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
///
/// // Words over {a,b} that end in `b`.
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// let b = sigma.symbol("b").unwrap();
/// let ends_b = Dfa::build(&sigma, 2, 0, |_, sym| if sym == b { 1 } else { 0 }, [1]);
/// assert!(ends_b.accepts([Symbol(0), Symbol(1)].iter().copied()));
/// assert!(!ends_b.accepts([Symbol(1), Symbol(0)].iter().copied()));
/// ```
#[derive(Debug, Clone)]
pub struct Dfa {
    alphabet: Alphabet,
    num_states: usize,
    initial: StateId,
    accepting: BitSet,
    /// Flattened transition table: `delta[state * |Σ| + symbol]`.
    delta: Vec<StateId>,
}

impl Dfa {
    /// Builds a DFA from a transition function.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0`, if `initial` or any transition target is
    /// out of range.
    pub fn build<F, I>(
        alphabet: &Alphabet,
        num_states: usize,
        initial: StateId,
        mut delta: F,
        accepting: I,
    ) -> Self
    where
        F: FnMut(StateId, Symbol) -> StateId,
        I: IntoIterator<Item = StateId>,
    {
        assert!(num_states > 0, "a DFA needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state out of range"
        );
        let k = alphabet.len();
        let mut table = Vec::with_capacity(num_states * k);
        for q in 0..num_states {
            for sym in alphabet.symbols() {
                let t = delta(q as StateId, sym);
                assert!(
                    (t as usize) < num_states,
                    "transition target {t} out of range"
                );
                table.push(t);
            }
        }
        let accepting: BitSet = accepting.into_iter().map(|s| s as usize).collect();
        debug_assert!(
            accepting.iter().all(|q| q < num_states),
            "accepting set must be a subset of the state set"
        );
        Dfa {
            alphabet: alphabet.clone(),
            num_states,
            initial,
            accepting,
            delta: table,
        }
    }

    /// Builds a DFA from explicit parts, validating the transition table.
    ///
    /// `delta` must have length `num_states * alphabet.len()`, laid out row
    /// by row (`delta[q * |Σ| + a]`).
    ///
    /// # Errors
    ///
    /// Returns [`AutomatonError::InvalidState`] for out-of-range targets or
    /// initial state, and [`AutomatonError::NotDeterministic`] for a table of
    /// the wrong size.
    pub fn from_parts(
        alphabet: &Alphabet,
        num_states: usize,
        initial: StateId,
        delta: Vec<StateId>,
        accepting: BitSet,
    ) -> Result<Self, AutomatonError> {
        if num_states == 0 || (initial as usize) >= num_states {
            return Err(AutomatonError::InvalidState {
                state: initial,
                states: num_states,
            });
        }
        if delta.len() != num_states * alphabet.len() {
            return Err(AutomatonError::NotDeterministic);
        }
        if let Some(&bad) = delta.iter().find(|&&t| (t as usize) >= num_states) {
            return Err(AutomatonError::InvalidState {
                state: bad,
                states: num_states,
            });
        }
        debug_assert!(
            accepting.iter().all(|q| q < num_states),
            "accepting set must be a subset of the state set"
        );
        Ok(Dfa {
            alphabet: alphabet.clone(),
            num_states,
            initial,
            accepting,
            delta,
        })
    }

    /// The DFA accepting the empty language over `alphabet`.
    pub fn empty(alphabet: &Alphabet) -> Self {
        Dfa::build(alphabet, 1, 0, |_, _| 0, [])
    }

    /// The DFA accepting all of `Σ*` (including the empty word).
    pub fn sigma_star(alphabet: &Alphabet) -> Self {
        Dfa::build(alphabet, 1, 0, |_, _| 0, [0])
    }

    /// The alphabet of the automaton.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The set of accepting states.
    pub fn accepting(&self) -> &BitSet {
        &self.accepting
    }

    /// Whether `q` is an accepting state.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q as usize)
    }

    /// The successor of `q` under `sym`.
    pub fn step(&self, q: StateId, sym: Symbol) -> StateId {
        self.delta[q as usize * self.alphabet.len() + sym.index()]
    }

    /// Runs the automaton on a word from the initial state, returning the
    /// final state.
    pub fn run<I: IntoIterator<Item = Symbol>>(&self, word: I) -> StateId {
        self.run_from(self.initial, word)
    }

    /// Runs the automaton on a word from an arbitrary state.
    pub fn run_from<I: IntoIterator<Item = Symbol>>(&self, from: StateId, word: I) -> StateId {
        word.into_iter().fold(from, |q, sym| self.step(q, sym))
    }

    /// Whether the automaton accepts the word.
    pub fn accepts<I: IntoIterator<Item = Symbol>>(&self, word: I) -> bool {
        self.is_accepting(self.run(word))
    }

    /// States reachable from the initial state.
    pub fn reachable_states(&self) -> BitSet {
        let mut seen = BitSet::with_capacity(self.num_states);
        let mut queue = VecDeque::new();
        seen.insert(self.initial as usize);
        queue.push_back(self.initial);
        while let Some(q) = queue.pop_front() {
            for sym in self.alphabet.symbols() {
                let t = self.step(q, sym);
                if seen.insert(t as usize) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// States from which an accepting state is reachable (including
    /// accepting states themselves).
    pub fn coaccessible_states(&self) -> BitSet {
        // Reverse reachability from accepting states.
        let mut preds: Vec<Vec<StateId>> = vec![Vec::new(); self.num_states];
        for q in 0..self.num_states {
            for sym in self.alphabet.symbols() {
                let t = self.step(q as StateId, sym);
                preds[t as usize].push(q as StateId);
            }
        }
        let mut seen = BitSet::with_capacity(self.num_states);
        let mut queue: VecDeque<usize> = self.accepting.iter().collect();
        for q in &queue {
            seen.insert(*q);
        }
        while let Some(q) = queue.pop_front() {
            for &p in &preds[q] {
                if seen.insert(p as usize) {
                    queue.push_back(p as usize);
                }
            }
        }
        seen
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        self.reachable_states().is_disjoint(&self.accepting)
    }

    /// Whether the language is all of `Σ*`.
    pub fn is_universal(&self) -> bool {
        self.reachable_states().is_subset(&self.accepting)
    }

    /// A shortest accepted word, if the language is non-empty.
    pub fn shortest_accepted(&self) -> Option<Vec<Symbol>> {
        // BFS over states, tracking the first-reaching word.
        let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; self.num_states];
        let mut seen = BitSet::with_capacity(self.num_states);
        let mut queue = VecDeque::new();
        seen.insert(self.initial as usize);
        queue.push_back(self.initial);
        let mut target = if self.is_accepting(self.initial) {
            Some(self.initial)
        } else {
            None
        };
        while target.is_none() {
            let Some(q) = queue.pop_front() else { break };
            for sym in self.alphabet.symbols() {
                let t = self.step(q, sym);
                if seen.insert(t as usize) {
                    prev[t as usize] = Some((q, sym));
                    if self.is_accepting(t) {
                        target = Some(t);
                        break;
                    }
                    queue.push_back(t);
                }
            }
        }
        let mut word = Vec::new();
        let mut q = target?;
        while let Some((p, sym)) = prev[q as usize] {
            word.push(sym);
            q = p;
        }
        word.reverse();
        Some(word)
    }

    /// The complement automaton (same structure, accepting set flipped).
    pub fn complement(&self) -> Dfa {
        let mut c = self.clone();
        c.accepting = self.accepting.complement(self.num_states);
        c
    }

    /// Product construction with a boolean combination of the two acceptance
    /// conditions. Only reachable product states are kept.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn product_with<F: Fn(bool, bool) -> bool>(&self, other: &Dfa, combine: F) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires identical alphabets"
        );
        let k = self.alphabet.len();
        let mut index = std::collections::HashMap::new();
        let mut states: Vec<(StateId, StateId)> = Vec::new();
        let mut delta: Vec<StateId> = Vec::new();
        let start = (self.initial, other.initial);
        index.insert(start, 0 as StateId);
        states.push(start);
        let mut frontier = 0usize;
        while frontier < states.len() {
            let (p, q) = states[frontier];
            for s in 0..k {
                let sym = Symbol(s as u8);
                let succ = (self.step(p, sym), other.step(q, sym));
                let id = *index.entry(succ).or_insert_with(|| {
                    states.push(succ);
                    (states.len() - 1) as StateId
                });
                delta.push(id);
            }
            frontier += 1;
        }
        let accepting = states
            .iter()
            .enumerate()
            .filter(|(_, &(p, q))| combine(self.is_accepting(p), other.is_accepting(q)))
            .map(|(i, _)| i)
            .collect();
        Dfa {
            alphabet: self.alphabet.clone(),
            num_states: states.len(),
            initial: 0,
            accepting,
            delta,
        }
    }

    /// Intersection of the two languages.
    pub fn intersection(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |a, b| a && b)
    }

    /// Union of the two languages.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |a, b| a || b)
    }

    /// Difference `L(self) \ L(other)`.
    pub fn difference(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |a, b| a && !b)
    }

    /// Whether `L(self) ⊆ L(other)`.
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        self.difference(other).is_empty()
    }

    /// Whether the two automata accept the same language.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.product_with(other, |a, b| a != b).is_empty()
    }

    /// A word accepted by exactly one of the two automata, if the languages
    /// differ.
    pub fn distinguishing_word(&self, other: &Dfa) -> Option<Vec<Symbol>> {
        self.product_with(other, |a, b| a != b).shortest_accepted()
    }

    /// The minimal DFA for the same language (Moore's partition refinement
    /// over the reachable part).
    pub fn minimize(&self) -> Dfa {
        let reachable = self.reachable_states();
        let reach: Vec<StateId> = reachable.iter().map(|q| q as StateId).collect();
        let mut dense = vec![usize::MAX; self.num_states];
        for (i, &q) in reach.iter().enumerate() {
            dense[q as usize] = i;
        }
        let n = reach.len();
        let k = self.alphabet.len();
        // Initial partition: accepting vs non-accepting.
        let mut class = vec![0usize; n];
        for (i, &q) in reach.iter().enumerate() {
            class[i] = usize::from(self.is_accepting(q));
        }
        let mut num_classes = 2;
        loop {
            // Signature: (class, class of each successor).
            let mut sig_to_class = std::collections::HashMap::new();
            let mut next_class = vec![0usize; n];
            let mut next_num = 0usize;
            for i in 0..n {
                let q = reach[i];
                let mut sig = Vec::with_capacity(k + 1);
                sig.push(class[i]);
                for s in 0..k {
                    let t = self.step(q, Symbol(s as u8));
                    sig.push(class[dense[t as usize]]);
                }
                let c = *sig_to_class.entry(sig).or_insert_with(|| {
                    next_num += 1;
                    next_num - 1
                });
                next_class[i] = c;
            }
            if next_num == num_classes {
                break;
            }
            class = next_class;
            num_classes = next_num;
        }
        // Build the quotient automaton.
        let mut delta = vec![0 as StateId; num_classes * k];
        let mut accepting = BitSet::with_capacity(num_classes);
        for i in 0..n {
            let q = reach[i];
            let c = class[i];
            for s in 0..k {
                let t = self.step(q, Symbol(s as u8));
                delta[c * k + s] = class[dense[t as usize]] as StateId;
            }
            if self.is_accepting(q) {
                accepting.insert(c);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            num_states: num_classes,
            initial: class[dense[self.initial as usize]] as StateId,
            accepting,
            delta,
        }
    }

    /// The left quotient automaton: same automaton started from `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn with_initial(&self, q: StateId) -> Dfa {
        assert!((q as usize) < self.num_states, "state out of range");
        let mut d = self.clone();
        d.initial = q;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Words over {a,b} containing at least one `b`.
    fn contains_b(sigma: &Alphabet) -> Dfa {
        let b = sigma.symbol("b").unwrap();
        Dfa::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            [1],
        )
    }

    /// Words of even length.
    fn even_length(sigma: &Alphabet) -> Dfa {
        Dfa::build(sigma, 2, 0, |q, _| 1 - q, [0])
    }

    fn word(sigma: &Alphabet, s: &str) -> Vec<Symbol> {
        s.chars()
            .map(|c| sigma.symbol(&c.to_string()).unwrap())
            .collect()
    }

    #[test]
    fn accepts_and_run() {
        let sigma = ab();
        let d = contains_b(&sigma);
        assert!(d.accepts(word(&sigma, "aab")));
        assert!(d.accepts(word(&sigma, "baa")));
        assert!(!d.accepts(word(&sigma, "aaa")));
        assert!(!d.accepts(word(&sigma, "")));
        assert_eq!(d.run(word(&sigma, "ab")), 1);
    }

    #[test]
    fn boolean_algebra() {
        let sigma = ab();
        let d1 = contains_b(&sigma);
        let d2 = even_length(&sigma);
        let both = d1.intersection(&d2);
        assert!(both.accepts(word(&sigma, "ab")));
        assert!(!both.accepts(word(&sigma, "b")));
        assert!(!both.accepts(word(&sigma, "aa")));
        let either = d1.union(&d2);
        assert!(either.accepts(word(&sigma, "aa")));
        assert!(either.accepts(word(&sigma, "b")));
        assert!(!either.accepts(word(&sigma, "a")));
        let diff = d1.difference(&d2);
        assert!(diff.accepts(word(&sigma, "b")));
        assert!(!diff.accepts(word(&sigma, "ab")));
        let comp = d1.complement();
        assert!(comp.accepts(word(&sigma, "aaa")));
        assert!(!comp.accepts(word(&sigma, "ab")));
    }

    #[test]
    fn emptiness_universality() {
        let sigma = ab();
        assert!(Dfa::empty(&sigma).is_empty());
        assert!(Dfa::sigma_star(&sigma).is_universal());
        let d = contains_b(&sigma);
        assert!(!d.is_empty());
        assert!(!d.is_universal());
        assert!(d.union(&d.complement()).is_universal());
        assert!(d.intersection(&d.complement()).is_empty());
    }

    #[test]
    fn inclusion_equivalence() {
        let sigma = ab();
        let d = contains_b(&sigma);
        let e = even_length(&sigma);
        assert!(d.intersection(&e).is_subset_of(&d));
        assert!(!d.is_subset_of(&e));
        assert!(d.equivalent(&d.minimize()));
        assert!(!d.equivalent(&e));
        let w = d.distinguishing_word(&e).unwrap();
        assert_ne!(d.accepts(w.iter().copied()), e.accepts(w.iter().copied()));
        assert_eq!(d.distinguishing_word(&d.clone()), None);
    }

    #[test]
    fn shortest_accepted_words() {
        let sigma = ab();
        let d = contains_b(&sigma);
        assert_eq!(d.shortest_accepted().unwrap(), word(&sigma, "b"));
        assert_eq!(Dfa::empty(&sigma).shortest_accepted(), None);
        assert_eq!(Dfa::sigma_star(&sigma).shortest_accepted().unwrap(), vec![]);
    }

    #[test]
    fn minimize_collapses() {
        let sigma = ab();
        // A 4-state automaton for "contains b" with redundant states.
        let b = sigma.symbol("b").unwrap();
        let d = Dfa::build(
            &sigma,
            4,
            0,
            |q, s| match (q, s == b) {
                (0, false) => 1,
                (0, true) => 2,
                (1, false) => 0,
                (1, true) => 3,
                (2, _) => 2,
                (3, _) => 3,
                _ => unreachable!(),
            },
            [2, 3],
        );
        let m = d.minimize();
        assert_eq!(m.num_states(), 2);
        assert!(m.equivalent(&contains_b(&sigma)));
    }

    #[test]
    fn minimize_removes_unreachable() {
        let sigma = ab();
        // State 2 is unreachable.
        let d = Dfa::build(&sigma, 3, 0, |q, _| if q == 2 { 2 } else { q }, [2]);
        let m = d.minimize();
        assert_eq!(m.num_states(), 1);
        assert!(m.is_empty());
    }

    #[test]
    fn coaccessible() {
        let sigma = ab();
        let d = contains_b(&sigma);
        // Both states can reach the accepting state.
        assert_eq!(d.coaccessible_states().len(), 2);
        let e = Dfa::empty(&sigma);
        assert!(e.coaccessible_states().is_empty());
    }

    #[test]
    fn from_parts_validates() {
        let sigma = ab();
        assert!(Dfa::from_parts(&sigma, 1, 0, vec![0, 0], BitSet::new()).is_ok());
        assert!(matches!(
            Dfa::from_parts(&sigma, 1, 0, vec![0], BitSet::new()),
            Err(AutomatonError::NotDeterministic)
        ));
        assert!(matches!(
            Dfa::from_parts(&sigma, 1, 0, vec![0, 5], BitSet::new()),
            Err(AutomatonError::InvalidState { state: 5, .. })
        ));
        assert!(matches!(
            Dfa::from_parts(&sigma, 1, 3, vec![0, 0], BitSet::new()),
            Err(AutomatonError::InvalidState { state: 3, .. })
        ));
    }

    #[test]
    fn with_initial_changes_language() {
        let sigma = ab();
        let d = contains_b(&sigma);
        let from_acc = d.with_initial(1);
        assert!(from_acc.accepts(word(&sigma, "aaa")));
        assert!(from_acc.is_universal());
    }
}
