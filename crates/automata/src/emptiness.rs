//! Emptiness checking and witness extraction for deterministic ω-automata.
//!
//! Two procedures are provided:
//!
//! * [`accepted_lasso`] / [`live_states`] — generic, for any boolean
//!   acceptance condition, through the DNF into generalized Rabin pairs
//!   (polynomial per disjunct; the number of disjuncts is exponential in the
//!   number of *atoms*, which is small in practice).
//! * [`streett_nonempty_cycle`] — the classical iterated-SCC-refinement
//!   algorithm for Streett conditions, polynomial even in the number of
//!   pairs. The fair-transition-system model checker uses this one, since
//!   fairness requirements are naturally Streett pairs.

use crate::acceptance::GeneralizedRabinPair;
use crate::alphabet::Symbol;
use crate::analysis::Analysis;
use crate::bitset::BitSet;
use crate::lasso::Lasso;
use crate::omega::OmegaAutomaton;
use crate::streett::StreettPairs;
use crate::StateId;
use std::collections::VecDeque;

/// Returns a lasso accepted by the automaton, or `None` if its language is
/// empty, reusing the SCC caches of a shared [`Analysis`] context.
pub fn accepted_lasso_ctx(ctx: &Analysis) -> Option<Lasso> {
    ctx.accepted_lasso()
}

/// The reachable live states through a shared [`Analysis`] context.
///
/// Unlike [`live_states`], the result is restricted to the reachable part
/// of the automaton (the two versions agree there, and no language
/// question can observe the unreachable difference).
pub fn live_states_ctx(ctx: &Analysis) -> BitSet {
    (*ctx.live()).clone()
}

/// Returns a lasso accepted by the automaton, or `None` if its language is
/// empty.
pub fn accepted_lasso(aut: &OmegaAutomaton) -> Option<Lasso> {
    let reachable = aut.reachable_states();
    for pair in aut.acceptance().dnf() {
        // Work in the restriction avoiding the Fin states.
        let mut allowed = reachable.clone();
        allowed.difference_with(&pair.fin);
        let sccs = aut.sccs(Some(&allowed));
        for c in 0..sccs.len() {
            if !sccs.has_cycle[c] {
                continue;
            }
            let members = sccs.member_set(c);
            if pair.infs.iter().all(|s| members.intersects(s)) {
                return Some(build_witness(aut, &members, &pair));
            }
        }
    }
    None
}

/// States with a non-empty residual language: a run starting anywhere in
/// this set can still be extended to an accepting run. For a deterministic
/// complete automaton, the words leading from the initial state into this
/// set are exactly `Pref(Π)`.
pub fn live_states(aut: &OmegaAutomaton) -> BitSet {
    // Union of all "good" SCCs over all DNF disjuncts…
    let mut good = BitSet::with_capacity(aut.num_states());
    for pair in aut.acceptance().dnf() {
        let allowed = pair.fin.complement(aut.num_states());
        let sccs = aut.sccs(Some(&allowed));
        for c in 0..sccs.len() {
            if !sccs.has_cycle[c] {
                continue;
            }
            let members = sccs.member_set(c);
            if pair.infs.iter().all(|s| members.intersects(s)) {
                good.union_with(&members);
            }
        }
    }
    // …then everything that can reach a good SCC.
    backward_closure(aut, good)
}

/// The set of states from which `targets` is reachable (including the
/// targets themselves).
pub fn backward_closure(aut: &OmegaAutomaton, targets: BitSet) -> BitSet {
    let n = aut.num_states();
    let mut preds: Vec<Vec<StateId>> = vec![Vec::new(); n];
    for q in 0..n as StateId {
        for sym in aut.alphabet().symbols() {
            preds[aut.step(q, sym) as usize].push(q);
        }
    }
    let mut closed = targets;
    let mut queue: VecDeque<usize> = closed.iter().collect();
    while let Some(q) = queue.pop_front() {
        for &p in &preds[q] {
            if closed.insert(p as usize) {
                queue.push_back(p as usize);
            }
        }
    }
    closed
}

/// Builds an accepted lasso whose loop lives inside `scc` (which avoids
/// `pair.fin` and intersects every `pair.infs` set). Shared with the
/// cached path in [`crate::analysis::Analysis::accepted_lasso`].
pub(crate) fn build_witness(
    aut: &OmegaAutomaton,
    scc: &BitSet,
    pair: &GeneralizedRabinPair,
) -> Lasso {
    let anchor = scc.first().expect("SCC is non-empty") as StateId;
    let spoke = shortest_path(aut, aut.initial(), anchor, None)
        .expect("SCC was reachable from the initial state");
    // Tour: from the anchor, visit one state of every inf set, then return.
    let mut cycle: Vec<Symbol> = Vec::new();
    let mut at = anchor;
    for inf in &pair.infs {
        let target = inf
            .intersection(scc)
            .first()
            .expect("SCC intersects every inf set") as StateId;
        let leg = shortest_path_to_set(aut, at, &BitSet::from_iter([target as usize]), Some(scc))
            .expect("SCC is strongly connected");
        at = run_from(aut, at, &leg);
        cycle.extend(leg);
    }
    let back = shortest_path_to_set(aut, at, &BitSet::from_iter([anchor as usize]), Some(scc))
        .expect("SCC is strongly connected");
    cycle.extend(back);
    if cycle.is_empty() {
        // Tour never left the anchor: use any edge within the SCC.
        let sym = aut
            .alphabet()
            .symbols()
            .find(|&s| scc.contains(aut.step(anchor, s) as usize))
            .expect("SCC has an internal cycle");
        let next = aut.step(anchor, sym);
        cycle.push(sym);
        let back =
            shortest_path_to_set(aut, next, &BitSet::from_iter([anchor as usize]), Some(scc))
                .expect("SCC is strongly connected");
        cycle.extend(back);
    }
    Lasso::new(spoke, cycle)
}

fn run_from(aut: &OmegaAutomaton, from: StateId, word: &[Symbol]) -> StateId {
    word.iter().fold(from, |q, &sym| aut.step(q, sym))
}

/// Shortest symbol path from `from` to `to`, staying within `within` if
/// given (the start state may be outside).
pub fn shortest_path(
    aut: &OmegaAutomaton,
    from: StateId,
    to: StateId,
    within: Option<&BitSet>,
) -> Option<Vec<Symbol>> {
    shortest_path_to_set(aut, from, &BitSet::from_iter([to as usize]), within)
}

/// Shortest symbol path from `from` into `targets` (empty if already there),
/// with intermediate states restricted to `within` if given.
pub fn shortest_path_to_set(
    aut: &OmegaAutomaton,
    from: StateId,
    targets: &BitSet,
    within: Option<&BitSet>,
) -> Option<Vec<Symbol>> {
    if targets.contains(from as usize) {
        return Some(Vec::new());
    }
    let n = aut.num_states();
    let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut seen = BitSet::with_capacity(n);
    seen.insert(from as usize);
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(q) = queue.pop_front() {
        for sym in aut.alphabet().symbols() {
            let t = aut.step(q, sym);
            if let Some(w) = within {
                if !w.contains(t as usize) {
                    continue;
                }
            }
            if seen.insert(t as usize) {
                prev[t as usize] = Some((q, sym));
                if targets.contains(t as usize) {
                    let mut path = Vec::new();
                    let mut cur = t;
                    while cur != from {
                        let (p, s) = prev[cur as usize].expect("BFS predecessor exists");
                        path.push(s);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(t);
            }
        }
    }
    None
}

/// Finds a reachable cycle (as a set of states) satisfying all Streett
/// pairs, using iterated SCC refinement — polynomial in both the automaton
/// size and the number of pairs. Returns `None` if the Streett language of
/// the transition structure is empty.
///
/// The acceptance carried by `aut` itself is ignored; only its transition
/// structure is used.
pub fn streett_nonempty_cycle(aut: &OmegaAutomaton, pairs: &StreettPairs) -> Option<BitSet> {
    streett_refinement(aut, pairs, |allowed| {
        std::sync::Arc::new(aut.sccs(Some(allowed)))
    })
}

/// [`streett_nonempty_cycle`] through a shared [`Analysis`] context:
/// every refinement's SCC pass lands in (and is served from) the
/// context's memo table, so repeated queries with overlapping pair lists
/// share work.
pub fn streett_nonempty_cycle_ctx(ctx: &Analysis, pairs: &StreettPairs) -> Option<BitSet> {
    streett_refinement(ctx.automaton(), pairs, |allowed| ctx.sccs(Some(allowed)))
}

fn streett_refinement(
    aut: &OmegaAutomaton,
    pairs: &StreettPairs,
    mut scc_of: impl FnMut(&BitSet) -> std::sync::Arc<crate::scc::SccDecomposition>,
) -> Option<BitSet> {
    let reachable = aut.reachable_states();
    let sccs = scc_of(&reachable);
    let mut stack: Vec<BitSet> = (0..sccs.len())
        .filter(|&c| sccs.has_cycle[c])
        .map(|c| sccs.member_set(c))
        .collect();
    while let Some(region) = stack.pop() {
        // Pairs violated by taking the whole region as the cycle:
        // Inf(R) fails and Fin(Q−P) fails, i.e. region ∩ R = ∅ and
        // region ⊄ P.
        let mut refined = region.clone();
        let mut violated = false;
        for p in &pairs.0 {
            if !region.intersects(&p.recurrent) && !region.is_subset(&p.persistent) {
                refined.intersect_with(&p.persistent);
                violated = true;
            }
        }
        if !violated {
            return Some(region);
        }
        let inner = scc_of(&refined);
        for c in 0..inner.len() {
            if inner.has_cycle[c] {
                stack.push(inner.member_set(c));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptance::Acceptance;
    use crate::alphabet::Alphabet;
    use crate::streett::StreettPair;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Automaton over {a,b} tracking the last symbol (state 0 = a, 1 = b).
    fn last_symbol(sigma: &Alphabet, acceptance: Acceptance) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(sigma, 2, 0, |_, s| if s == b { 1 } else { 0 }, acceptance)
    }

    #[test]
    fn witness_for_buchi() {
        let sigma = ab();
        let m = last_symbol(&sigma, Acceptance::inf([1]));
        let w = accepted_lasso(&m).unwrap();
        assert!(m.accepts(&w));
    }

    #[test]
    fn witness_for_generalized_condition() {
        let sigma = ab();
        // Inf{0} ∧ Inf{1}: both symbols infinitely often.
        let m = last_symbol(&sigma, Acceptance::inf([0]).and(Acceptance::inf([1])));
        let w = accepted_lasso(&m).unwrap();
        assert!(m.accepts(&w));
        // The loop must contain both symbols.
        let names: Vec<&str> = w.cycle().iter().map(|&s| sigma.name(s)).collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
    }

    #[test]
    fn empty_when_contradictory() {
        let sigma = ab();
        // Inf{1} ∧ Fin{1} is unsatisfiable.
        let m = last_symbol(&sigma, Acceptance::inf([1]).and(Acceptance::fin([1])));
        assert!(accepted_lasso(&m).is_none());
    }

    #[test]
    fn fin_condition_witness_avoids_states() {
        let sigma = ab();
        let m = last_symbol(&sigma, Acceptance::fin([1]));
        let w = accepted_lasso(&m).unwrap();
        assert!(m.accepts(&w));
        // Loop may only produce a's.
        assert!(w.cycle().iter().all(|&s| sigma.name(s) == "a"));
    }

    #[test]
    fn live_states_spread_backwards() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // 0 --b--> 1 --b--> 2(trap, accepting); a self-loops everywhere.
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| if s == b { (q + 1).min(2) } else { q },
            Acceptance::inf([2]),
        );
        assert_eq!(live_states(&m), BitSet::from_iter([0, 1, 2]));
        // Make the acceptance unsatisfiable instead: nothing is live.
        let m2 = m.with_acceptance(Acceptance::Inf(BitSet::new()));
        assert!(live_states(&m2).is_empty());
    }

    #[test]
    fn streett_refinement_finds_fair_cycle() {
        let sigma = ab();
        let m = last_symbol(&sigma, Acceptance::True);
        // Pair: Inf{1} ∨ run ⊆ {0}: satisfied by cycle {0} or any cycle
        // containing 1.
        let pairs = StreettPairs(vec![StreettPair {
            recurrent: BitSet::from_iter([1]),
            persistent: BitSet::from_iter([0]),
        }]);
        let cyc = streett_nonempty_cycle(&m, &pairs).unwrap();
        assert!(
            cyc == BitSet::from_iter([0]) || cyc.contains(1),
            "cycle {cyc:?} must satisfy the pair"
        );
    }

    #[test]
    fn streett_refinement_detects_emptiness() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // Once you read b you are stuck in state 1 (self-loop).
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::True,
        );
        // Require Inf{nothing} ∨ stay within ∅ for cycles touching 0 or 1:
        // pair (R=∅, P=∅) is unsatisfiable.
        let pairs = StreettPairs(vec![StreettPair {
            recurrent: BitSet::new(),
            persistent: BitSet::new(),
        }]);
        assert!(streett_nonempty_cycle(&m, &pairs).is_none());
    }

    #[test]
    fn streett_refinement_multi_pair() {
        let sigma = ab();
        let m = last_symbol(&sigma, Acceptance::True);
        // Two pairs: Inf{0} and Inf{1} (as pure Büchi pairs with P=∅):
        // only the full cycle {0,1} works.
        let pairs = StreettPairs(vec![
            StreettPair {
                recurrent: BitSet::from_iter([0]),
                persistent: BitSet::new(),
            },
            StreettPair {
                recurrent: BitSet::from_iter([1]),
                persistent: BitSet::new(),
            },
        ]);
        let cyc = streett_nonempty_cycle(&m, &pairs).unwrap();
        assert_eq!(cyc, BitSet::from_iter([0, 1]));
    }

    #[test]
    fn shortest_paths() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| if s == b { (q + 1).min(2) } else { q },
            Acceptance::True,
        );
        let p = shortest_path(&m, 0, 2, None).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(run_from(&m, 0, &p), 2);
        assert_eq!(shortest_path(&m, 2, 0, None), None);
        assert_eq!(shortest_path(&m, 1, 1, None).unwrap(), vec![]);
    }
}
