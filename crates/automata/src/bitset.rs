//! A growable bit set used for state sets throughout the crate.
//!
//! Automaton state counts routinely exceed 64 (products, subset
//! constructions), so state sets are backed by a `Vec<u64>` rather than a
//! single machine word. The API is deliberately small and allocation-aware:
//! all binary operations come in both owning and in-place flavors.

use std::fmt;

/// A set of small non-negative integers (automaton states), backed by a
/// vector of 64-bit words.
///
/// Two `BitSet`s compare equal iff they contain the same elements, regardless
/// of their internal capacities.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::bitset::BitSet;
///
/// let mut s = BitSet::new();
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3) && s.contains(70) && !s.contains(4));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70]);
/// ```
#[derive(Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { words: Vec::new() }
    }

    /// Creates an empty set with capacity for elements `< n` without
    /// reallocation.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Creates the set `{0, 1, ..., n-1}`.
    pub fn all(n: usize) -> Self {
        let mut s = BitSet::with_capacity(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Creates a set from an iterator of elements.
    #[allow(clippy::should_implement_trait)] // also provided via FromIterator; kept as an inherent convenience
    pub fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = BitSet::new();
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Inserts `i`, growing the backing storage if needed. Returns `true` if
    /// the element was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `i` if present. Returns `true` if the element was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Tests membership of `i`.
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Returns `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Removes all elements, keeping the allocation.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Returns `true` if `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words.iter().enumerate().all(|(i, &a)| {
            let b = other.words.get(i).copied().unwrap_or(0);
            a & !b == 0
        })
    }

    /// Returns `true` if the two sets intersect.
    pub fn intersects(&self, other: &BitSet) -> bool {
        !self.is_disjoint(other)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, a) in self.words.iter_mut().enumerate() {
            *a &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Returns the union of the two sets.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns the intersection of the two sets.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other`.
    pub fn difference(&self, other: &BitSet) -> BitSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns the complement of `self` relative to `{0, ..., n-1}`.
    pub fn complement(&self, n: usize) -> BitSet {
        let mut s = BitSet::all(n);
        s.difference_with(self);
        s
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns the smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash only up to the last non-zero word so that equal sets hash
        // equally regardless of capacity.
        let last = self
            .words
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |i| i + 1);
        self.words[..last].hash(state);
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        BitSet::from_iter(iter)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn large_elements_grow() {
        let mut s = BitSet::new();
        s.insert(1000);
        assert!(s.contains(1000));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1000]);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = BitSet::with_capacity(1000);
        let mut b = BitSet::new();
        a.insert(3);
        b.insert(3);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter([1, 2, 3, 100]);
        let b = BitSet::from_iter([2, 3, 4]);
        assert_eq!(a.union(&b), BitSet::from_iter([1, 2, 3, 4, 100]));
        assert_eq!(a.intersection(&b), BitSet::from_iter([2, 3]));
        assert_eq!(a.difference(&b), BitSet::from_iter([1, 100]));
        assert!(BitSet::from_iter([2, 3]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.intersects(&b));
        assert!(a.is_disjoint(&BitSet::from_iter([7, 8])));
    }

    #[test]
    fn complement_and_all() {
        let a = BitSet::from_iter([0, 2]);
        assert_eq!(a.complement(4), BitSet::from_iter([1, 3]));
        assert_eq!(BitSet::all(3), BitSet::from_iter([0, 1, 2]));
        assert_eq!(BitSet::all(0), BitSet::new());
    }

    #[test]
    fn iter_order_and_first() {
        let a = BitSet::from_iter([64, 1, 129]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 64, 129]);
        assert_eq!(a.first(), Some(1));
        assert_eq!(BitSet::new().first(), None);
    }

    #[test]
    fn subset_with_trailing_words() {
        let mut big = BitSet::new();
        big.insert(500);
        let small = BitSet::new();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }
}
