//! Complete deterministic ω-automata with boolean (Emerson–Lei) acceptance.
//!
//! [`OmegaAutomaton`] is the representation behind every infinitary property
//! in this workspace. Because the automata are deterministic and acceptance
//! conditions form a boolean algebra ([`Acceptance`]), the represented
//! ω-languages are closed under union, intersection and complement *exactly*
//! — no Safra determinization is ever needed (see `DESIGN.md`).

use crate::acceptance::Acceptance;
use crate::alphabet::{Alphabet, Symbol};
use crate::bitset::BitSet;
use crate::emptiness;
use crate::lasso::Lasso;
use crate::scc::{self, Successors};
use crate::StateId;
use std::collections::HashMap;

/// A complete deterministic ω-automaton with boolean acceptance.
///
/// A run over an infinite word is the unique state sequence it induces; the
/// run is accepting iff its infinity set satisfies the [`Acceptance`]
/// condition. The language of the automaton is the set of accepted ω-words.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
///
/// // ◇□a over {a,b}: co-Büchi automaton tracking the last symbol.
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// let b = sigma.symbol("b").unwrap();
/// let ev_alw_a = OmegaAutomaton::build(&sigma, 2, 0,
///     |_, sym| if sym == b { 1 } else { 0 },
///     Acceptance::fin([1]));
/// assert!(ev_alw_a.accepts(&Lasso::parse(&sigma, "bb", "a").unwrap()));
/// assert!(!ev_alw_a.accepts(&Lasso::parse(&sigma, "", "ab").unwrap()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OmegaAutomaton {
    alphabet: Alphabet,
    num_states: usize,
    initial: StateId,
    /// Flattened transition table: `delta[state * |Σ| + symbol]`.
    delta: Vec<StateId>,
    acceptance: Acceptance,
}

impl Successors for OmegaAutomaton {
    fn num_states(&self) -> usize {
        self.num_states
    }
    fn for_each_successor(&self, q: StateId, f: &mut dyn FnMut(StateId)) {
        for sym in self.alphabet.symbols() {
            f(self.step(q, sym));
        }
    }
}

impl OmegaAutomaton {
    /// Builds an automaton from a transition function.
    ///
    /// # Panics
    ///
    /// Panics if `num_states == 0` or any state index is out of range.
    pub fn build<F>(
        alphabet: &Alphabet,
        num_states: usize,
        initial: StateId,
        mut delta: F,
        acceptance: Acceptance,
    ) -> Self
    where
        F: FnMut(StateId, Symbol) -> StateId,
    {
        assert!(num_states > 0, "an ω-automaton needs at least one state");
        assert!(
            (initial as usize) < num_states,
            "initial state out of range"
        );
        let k = alphabet.len();
        let mut table = Vec::with_capacity(num_states * k);
        for q in 0..num_states {
            for sym in alphabet.symbols() {
                let t = delta(q as StateId, sym);
                assert!(
                    (t as usize) < num_states,
                    "transition target {t} out of range"
                );
                table.push(t);
            }
        }
        debug_assert!(
            acceptance
                .atom_sets()
                .iter()
                .all(|s| s.iter().all(|q| q < num_states)),
            "acceptance atom sets must be subsets of the state set"
        );
        OmegaAutomaton {
            alphabet: alphabet.clone(),
            num_states,
            initial,
            delta: table,
            acceptance,
        }
    }

    /// Debug-mode structural audit for the constructor paths that
    /// assemble an automaton by struct literal after a renumbering
    /// (product, trim, reduce) instead of going through [`Self::build`]:
    /// every transition target, the initial state, and — the historically
    /// risky part — every acceptance atom set must stay inside
    /// `0..num_states` after the renumbering.
    fn audited(self) -> Self {
        debug_assert!(
            (self.initial as usize) < self.num_states,
            "initial state {} out of range (num_states = {})",
            self.initial,
            self.num_states
        );
        debug_assert_eq!(
            self.delta.len(),
            self.num_states * self.alphabet.len(),
            "transition table has wrong shape"
        );
        debug_assert!(
            self.delta.iter().all(|&t| (t as usize) < self.num_states),
            "transition target out of range"
        );
        debug_assert!(
            self.acceptance
                .atom_sets()
                .iter()
                .all(|s| s.iter().all(|q| q < self.num_states)),
            "acceptance atom sets must be subsets of the state set"
        );
        self
    }

    /// The automaton accepting the empty ω-language.
    pub fn empty(alphabet: &Alphabet) -> Self {
        OmegaAutomaton::build(alphabet, 1, 0, |_, _| 0, Acceptance::False)
    }

    /// The automaton accepting all of `Σ^ω`.
    pub fn universal(alphabet: &Alphabet) -> Self {
        OmegaAutomaton::build(alphabet, 1, 0, |_, _| 0, Acceptance::True)
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// The acceptance condition.
    pub fn acceptance(&self) -> &Acceptance {
        &self.acceptance
    }

    /// Replaces the acceptance condition, keeping the transition structure.
    pub fn with_acceptance(&self, acceptance: Acceptance) -> OmegaAutomaton {
        debug_assert!(
            acceptance
                .atom_sets()
                .iter()
                .all(|s| s.iter().all(|q| q < self.num_states)),
            "acceptance atom sets must be subsets of the state set"
        );
        let mut a = self.clone();
        a.acceptance = acceptance;
        a
    }

    /// The successor of `q` under `sym`.
    pub fn step(&self, q: StateId, sym: Symbol) -> StateId {
        self.delta[q as usize * self.alphabet.len() + sym.index()]
    }

    /// Runs the automaton on a finite word from the initial state.
    pub fn run<I: IntoIterator<Item = Symbol>>(&self, word: I) -> StateId {
        word.into_iter()
            .fold(self.initial, |q, sym| self.step(q, sym))
    }

    /// The infinity set of the unique run over a lasso word.
    pub fn infinity_set(&self, word: &Lasso) -> BitSet {
        // Drive the automaton along the spoke, then around the loop until
        // the (state, loop-position) pair repeats; the states seen in that
        // final period are exactly the infinity set.
        let mut q = self.run(word.spoke().iter().copied());
        // State after each full loop traversal; repeats within num_states+1
        // traversals by pigeonhole.
        let mut seen_entry: HashMap<StateId, usize> = HashMap::new();
        let mut entries: Vec<StateId> = Vec::new();
        loop {
            if let Some(&first) = seen_entry.get(&q) {
                // States visited between the two occurrences of `q` form the
                // periodic part of the run.
                let mut inf = BitSet::with_capacity(self.num_states);
                let mut s = entries[first];
                for _ in first..entries.len() {
                    for &sym in word.cycle() {
                        s = self.step(s, sym);
                        inf.insert(s as usize);
                    }
                }
                return inf;
            }
            seen_entry.insert(q, entries.len());
            entries.push(q);
            for &sym in word.cycle() {
                q = self.step(q, sym);
            }
        }
    }

    /// Whether the automaton accepts the lasso word.
    pub fn accepts(&self, word: &Lasso) -> bool {
        self.acceptance
            .accepts_infinity_set(&self.infinity_set(word))
    }

    /// States reachable from the initial state.
    pub fn reachable_states(&self) -> BitSet {
        let mut seen = BitSet::with_capacity(self.num_states);
        let mut queue = std::collections::VecDeque::new();
        seen.insert(self.initial as usize);
        queue.push_back(self.initial);
        while let Some(q) = queue.pop_front() {
            for sym in self.alphabet.symbols() {
                let t = self.step(q, sym);
                if seen.insert(t as usize) {
                    queue.push_back(t);
                }
            }
        }
        seen
    }

    /// SCC decomposition of (a restriction of) the transition graph.
    pub fn sccs(&self, allowed: Option<&BitSet>) -> scc::SccDecomposition {
        scc::tarjan_scc(self, allowed)
    }

    /// Whether the language is empty.
    pub fn is_empty(&self) -> bool {
        emptiness::accepted_lasso(self).is_none()
    }

    /// Whether the language is all of `Σ^ω`.
    pub fn is_universal(&self) -> bool {
        self.complement().is_empty()
    }

    /// Some accepted lasso word, if the language is non-empty.
    pub fn accepted_lasso(&self) -> Option<Lasso> {
        emptiness::accepted_lasso(self)
    }

    /// The complement automaton (same structure, negated acceptance).
    pub fn complement(&self) -> OmegaAutomaton {
        self.with_acceptance(self.acceptance.negated())
    }

    /// Product of two automata over the same alphabet, with acceptance
    /// obtained by `combine`-ing the two embedded conditions. Only reachable
    /// product states are constructed.
    ///
    /// `combine` receives each automaton's acceptance condition rewritten to
    /// product-state sets.
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ.
    pub fn product_with<F>(&self, other: &OmegaAutomaton, combine: F) -> OmegaAutomaton
    where
        F: FnOnce(Acceptance, Acceptance) -> Acceptance,
    {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires identical alphabets"
        );
        let k = self.alphabet.len();
        let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut states: Vec<(StateId, StateId)> = Vec::new();
        let mut delta: Vec<StateId> = Vec::new();
        let start = (self.initial, other.initial);
        index.insert(start, 0);
        states.push(start);
        let mut frontier = 0usize;
        while frontier < states.len() {
            let (p, q) = states[frontier];
            for s in 0..k {
                let sym = Symbol(s as u8);
                let succ = (self.step(p, sym), other.step(q, sym));
                let id = *index.entry(succ).or_insert_with(|| {
                    states.push(succ);
                    (states.len() - 1) as StateId
                });
                delta.push(id);
            }
            frontier += 1;
        }
        // Rewrite each side's acceptance sets to product-state sets.
        let left = self.acceptance.map_sets(&|s: &BitSet| {
            states
                .iter()
                .enumerate()
                .filter(|(_, &(p, _))| s.contains(p as usize))
                .map(|(i, _)| i)
                .collect()
        });
        let right = other.acceptance.map_sets(&|s: &BitSet| {
            states
                .iter()
                .enumerate()
                .filter(|(_, &(_, q))| s.contains(q as usize))
                .map(|(i, _)| i)
                .collect()
        });
        OmegaAutomaton {
            alphabet: self.alphabet.clone(),
            num_states: states.len(),
            initial: 0,
            delta,
            acceptance: combine(left, right),
        }
        .audited()
    }

    /// Intersection of the two ω-languages.
    pub fn intersection(&self, other: &OmegaAutomaton) -> OmegaAutomaton {
        self.product_with(other, Acceptance::and)
    }

    /// Union of the two ω-languages.
    pub fn union(&self, other: &OmegaAutomaton) -> OmegaAutomaton {
        self.product_with(other, Acceptance::or)
    }

    /// Difference `L(self) \ L(other)`.
    pub fn difference(&self, other: &OmegaAutomaton) -> OmegaAutomaton {
        self.product_with(&other.complement(), Acceptance::and)
    }

    /// Whether `L(self) ⊆ L(other)`, decided by the direct product-graph
    /// algorithm of [`crate::inclusion`] (Angluin & Fisman) — no
    /// complement automaton, no acceptance DNF. In debug builds the
    /// verdict is cross-checked against
    /// [`Self::is_subset_of_via_complement`].
    pub fn is_subset_of(&self, other: &OmegaAutomaton) -> bool {
        let res = crate::inclusion::included(self, other);
        debug_assert_eq!(
            res,
            self.is_subset_of_via_complement(other),
            "direct-inclusion tripwire: verdict differs from the complement oracle"
        );
        res
    }

    /// Whether `L(self) ⊆ L(other)` via the classical construction:
    /// `L(self) ∖ L(other)` is built as a complement + product and tested
    /// for emptiness. Kept as the independent differential oracle for
    /// [`Self::is_subset_of`].
    pub fn is_subset_of_via_complement(&self, other: &OmegaAutomaton) -> bool {
        self.difference(other).is_empty()
    }

    /// Whether the two automata accept the same ω-language, decided by
    /// the direct product-graph algorithm of [`crate::inclusion`] (both
    /// directions share one product). In debug builds the verdict is
    /// cross-checked against [`Self::equivalent_via_complement`].
    pub fn equivalent(&self, other: &OmegaAutomaton) -> bool {
        let res = crate::inclusion::equivalent(self, other);
        debug_assert_eq!(
            res,
            self.equivalent_via_complement(other),
            "direct-equivalence tripwire: verdict differs from the complement oracle"
        );
        res
    }

    /// Equivalence via the classical complement+product+emptiness
    /// construction, kept as the independent differential oracle for
    /// [`Self::equivalent`].
    pub fn equivalent_via_complement(&self, other: &OmegaAutomaton) -> bool {
        self.is_subset_of_via_complement(other) && other.is_subset_of_via_complement(self)
    }

    /// A lasso accepted by exactly one of the two automata, if the languages
    /// differ. Extracted from the direct inclusion check's witness region
    /// (see [`crate::inclusion::distinguishing_lasso`]).
    pub fn distinguishing_lasso(&self, other: &OmegaAutomaton) -> Option<Lasso> {
        crate::inclusion::distinguishing_lasso(self, other)
    }

    /// Restricts the automaton to its reachable part, renumbering states
    /// and rewriting the acceptance sets accordingly.
    pub fn trim(&self) -> OmegaAutomaton {
        let reach = self.reachable_states();
        if reach.len() == self.num_states {
            return self.clone();
        }
        let mut dense = vec![StateId::MAX; self.num_states];
        let mut order: Vec<StateId> = reach.iter().map(|q| q as StateId).collect();
        order.sort_unstable();
        for (i, &q) in order.iter().enumerate() {
            dense[q as usize] = i as StateId;
        }
        let k = self.alphabet.len();
        let mut delta = Vec::with_capacity(order.len() * k);
        for &q in &order {
            for s in 0..k {
                let t = self.step(q, Symbol(s as u8));
                delta.push(dense[t as usize]);
            }
        }
        let acceptance = self.acceptance.map_sets(&|set: &BitSet| {
            set.iter()
                .filter(|&q| reach.contains(q))
                .map(|q| dense[q] as usize)
                .collect()
        });
        OmegaAutomaton {
            alphabet: self.alphabet.clone(),
            num_states: order.len(),
            initial: dense[self.initial as usize],
            delta,
            acceptance,
        }
        .audited()
    }

    /// Reduces the automaton by merging states that are equivalent under
    /// Moore partition refinement, where the initial partition groups
    /// states by their membership in the acceptance atom sets.
    ///
    /// Sound for deterministic automata with membership-based acceptance:
    /// merged states induce identical atom-visit sequences on every word,
    /// hence identical acceptance. The result is not necessarily minimal
    /// (ω-automaton minimization is harder), but shrinks tester products
    /// considerably.
    ///
    /// This is the naive `O(k·n²)` Moore-style refinement. The production
    /// pipeline uses [`crate::minimize::minimize`] (Hopcroft worklist,
    /// `O(k·n·log n)`, canonical numbering); `reduce` is kept as an
    /// independently-implemented differential oracle — both must compute
    /// the same partition, and `crate::minimize`'s tests assert exactly
    /// that.
    pub fn reduce(&self) -> OmegaAutomaton {
        let trimmed = self.trim();
        let n = trimmed.num_states;
        let k = trimmed.alphabet.len();
        let atoms = trimmed.acceptance.atom_sets();
        // Initial classes: identical atom membership signatures.
        let mut class = vec![0usize; n];
        {
            let mut sig_ids: HashMap<Vec<bool>, usize> = HashMap::new();
            for (q, cls) in class.iter_mut().enumerate() {
                let sig: Vec<bool> = atoms.iter().map(|s| s.contains(q)).collect();
                let next = sig_ids.len();
                *cls = *sig_ids.entry(sig).or_insert(next);
            }
        }
        let mut num_classes = class.iter().max().map_or(1, |m| m + 1);
        loop {
            let mut sig_to_class: HashMap<Vec<usize>, usize> = HashMap::new();
            let mut next_class = vec![0usize; n];
            for q in 0..n {
                let mut sig = Vec::with_capacity(k + 1);
                sig.push(class[q]);
                for s in 0..k {
                    sig.push(class[trimmed.step(q as StateId, Symbol(s as u8)) as usize]);
                }
                let next = sig_to_class.len();
                next_class[q] = *sig_to_class.entry(sig).or_insert(next);
            }
            let next_num = sig_to_class.len();
            if next_num == num_classes {
                break;
            }
            class = next_class;
            num_classes = next_num;
        }
        if num_classes == n {
            return trimmed;
        }
        let mut delta = vec![0 as StateId; num_classes * k];
        for q in 0..n {
            for s in 0..k {
                delta[class[q] * k + s] =
                    class[trimmed.step(q as StateId, Symbol(s as u8)) as usize] as StateId;
            }
        }
        let acceptance = trimmed
            .acceptance
            .map_sets(&|set: &BitSet| set.iter().map(|q| class[q]).collect());
        OmegaAutomaton {
            alphabet: trimmed.alphabet.clone(),
            num_states: num_classes,
            initial: class[trimmed.initial as usize] as StateId,
            delta,
            acceptance,
        }
        .audited()
    }

    /// The same automaton started from `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn with_initial(&self, q: StateId) -> OmegaAutomaton {
        assert!((q as usize) < self.num_states, "state out of range");
        let mut a = self.clone();
        a.initial = q;
        a
    }

    /// States with a non-empty residual language, i.e. states from which
    /// some ω-word is accepted. In the paper's terms these carry
    /// `Pref(Π)`: a finite word is a prefix of a word in Π iff it leads to
    /// such a state (for deterministic, complete automata).
    pub fn live_states(&self) -> BitSet {
        emptiness::live_states(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Deterministic Büchi automaton for "infinitely many b" over {a,b}.
    fn inf_b(sigma: &Alphabet) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        )
    }

    /// Co-Büchi automaton for "eventually only a" (◇□a) over {a,b}.
    fn ev_alw_a(sigma: &Alphabet) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        )
    }

    fn lasso(sigma: &Alphabet, u: &str, v: &str) -> Lasso {
        Lasso::parse(sigma, u, v).unwrap()
    }

    #[test]
    fn lasso_acceptance() {
        let sigma = ab();
        let m = inf_b(&sigma);
        assert!(m.accepts(&lasso(&sigma, "", "ab")));
        assert!(m.accepts(&lasso(&sigma, "aaa", "b")));
        assert!(!m.accepts(&lasso(&sigma, "b", "a")));
        assert!(!m.accepts(&lasso(&sigma, "bbbb", "aa")));
    }

    #[test]
    fn infinity_set_computation() {
        let sigma = ab();
        let m = inf_b(&sigma);
        // On (ab)^ω the run alternates 0,1 forever.
        assert_eq!(
            m.infinity_set(&lasso(&sigma, "", "ab")),
            BitSet::from_iter([0, 1])
        );
        // On b a^ω the run eventually stays in 0.
        assert_eq!(
            m.infinity_set(&lasso(&sigma, "b", "a")),
            BitSet::from_iter([0])
        );
    }

    #[test]
    fn complement_flips_membership() {
        let sigma = ab();
        let m = inf_b(&sigma);
        let c = m.complement();
        for (u, v) in [("", "ab"), ("b", "a"), ("", "b"), ("ba", "ba")] {
            let w = lasso(&sigma, u, v);
            assert_ne!(m.accepts(&w), c.accepts(&w), "on {u}({v})^ω");
        }
    }

    #[test]
    fn complement_of_buchi_is_cobuchi_language() {
        let sigma = ab();
        // ¬(infinitely many b) = eventually only a.
        assert!(inf_b(&sigma).complement().equivalent(&ev_alw_a(&sigma)));
    }

    #[test]
    fn boolean_operations() {
        let sigma = ab();
        let m = inf_b(&sigma);
        let n = ev_alw_a(&sigma);
        // inf-b ∧ ev-alw-a is empty (can't have infinitely many b and
        // eventually none).
        assert!(m.intersection(&n).is_empty());
        // inf-b ∨ ev-alw-a is everything.
        assert!(m.union(&n).is_universal());
        assert!(m.difference(&n).equivalent(&m));
        assert!(!m.is_subset_of(&n));
        assert!(m.intersection(&n).is_subset_of(&m));
    }

    #[test]
    fn equivalence_and_distinguishing() {
        let sigma = ab();
        let m = inf_b(&sigma);
        assert!(m.equivalent(&m.clone()));
        let n = ev_alw_a(&sigma);
        let w = m.distinguishing_lasso(&n).unwrap();
        assert_ne!(m.accepts(&w), n.accepts(&w));
        assert_eq!(m.distinguishing_lasso(&m.clone()), None);
    }

    #[test]
    fn empty_and_universal() {
        let sigma = ab();
        assert!(OmegaAutomaton::empty(&sigma).is_empty());
        assert!(OmegaAutomaton::universal(&sigma).is_universal());
        assert!(!inf_b(&sigma).is_empty());
        assert!(!inf_b(&sigma).is_universal());
    }

    #[test]
    fn accepted_lasso_is_accepted() {
        let sigma = ab();
        let m = inf_b(&sigma);
        let w = m.accepted_lasso().unwrap();
        assert!(m.accepts(&w));
        assert_eq!(OmegaAutomaton::empty(&sigma).accepted_lasso(), None);
    }

    #[test]
    fn trim_preserves_language() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // State 2 unreachable.
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| {
                if q == 2 {
                    2
                } else if s == b {
                    1
                } else {
                    0
                }
            },
            Acceptance::inf([1, 2]),
        );
        let t = m.trim();
        assert_eq!(t.num_states(), 2);
        assert!(t.equivalent(&m));
    }

    #[test]
    fn live_states_of_partial_language() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // Safety automaton for "never b": state 1 is a rejecting trap.
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        );
        let live = m.live_states();
        assert!(live.contains(0));
        assert!(!live.contains(1));
    }

    #[test]
    fn product_acceptance_remap() {
        let sigma = ab();
        let m = inf_b(&sigma);
        let n = inf_b(&sigma);
        let p = m.intersection(&n);
        // Intersection of identical languages is the same language.
        assert!(p.equivalent(&m));
    }

    #[test]
    fn with_initial_changes_language() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // "never b" safety automaton; from the trap state the language is
        // empty.
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        );
        assert!(!m.is_empty());
        assert!(m.with_initial(1).is_empty());
    }
}

#[cfg(test)]
mod reduce_tests {
    use super::*;
    use crate::classify;
    use crate::random::rng::SeedableRng;
    use crate::random::rng::StdRng;
    use crate::random::{random_lasso, random_streett};

    #[test]
    fn reduce_preserves_language_on_random_automata() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        for _ in 0..30 {
            let (aut, _) = random_streett(&mut rng, &sigma, 8, 2, 0.3);
            let red = aut.reduce();
            assert!(red.num_states() <= aut.num_states());
            assert!(red.equivalent(&aut));
            for _ in 0..30 {
                let w = random_lasso(&mut rng, &sigma, 4, 3);
                assert_eq!(red.accepts(&w), aut.accepts(&w));
            }
        }
    }

    #[test]
    fn reduce_merges_redundant_states() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        // Two copies of the same 2-state Büchi automaton glued by parity:
        // 4 states reduce to 2.
        let m = OmegaAutomaton::build(
            &sigma,
            4,
            0,
            |q, s| {
                let copy = q / 2;
                let base = if s == b { 1 } else { 0 };
                // Alternate copies on every step to create redundancy.
                ((1 - copy) * 2 + base) as StateId
            },
            Acceptance::inf([1, 3]),
        );
        let red = m.reduce();
        assert_eq!(red.num_states(), 2);
        assert!(red.equivalent(&m));
        let c = classify::classify(&red);
        assert!(c.is_recurrence);
    }

    #[test]
    fn reduce_is_idempotent() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(92);
        let (aut, _) = random_streett(&mut rng, &sigma, 7, 2, 0.3);
        let once = aut.reduce();
        let twice = once.reduce();
        assert_eq!(once.num_states(), twice.num_states());
    }
}
