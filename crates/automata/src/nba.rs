//! Nondeterministic Büchi automata.
//!
//! NBAs serve as the *cross-validation* representation in this workspace:
//! ω-regular expressions and full future LTL translate naturally into NBAs,
//! whose lasso membership is decidable, so the deterministic constructions
//! can be checked against them on sampled words (see `DESIGN.md` §3 on why
//! the main pipeline never needs Safra determinization).

use crate::alphabet::{Alphabet, Symbol};
use crate::bitset::BitSet;
use crate::flat::FlatGraph;
use crate::lasso::Lasso;
use crate::scc::tarjan_scc;
use crate::StateId;

/// A nondeterministic Büchi automaton: accepts the ω-words with some run
/// visiting an accepting state infinitely often.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
///
/// // Σ*·b·Σ^ω ("eventually b"): guess the b.
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// let b = sigma.symbol("b").unwrap();
/// let mut n = Nba::new(&sigma);
/// let s0 = n.add_state();
/// let s1 = n.add_state();
/// for sym in sigma.symbols() {
///     n.add_transition(s0, sym, s0);
///     n.add_transition(s1, sym, s1);
/// }
/// n.add_transition(s0, b, s1);
/// n.set_initial(s0);
/// n.add_accepting(s1);
/// assert!(n.accepts(&Lasso::parse(&sigma, "aab", "a").unwrap()));
/// assert!(!n.accepts(&Lasso::parse(&sigma, "", "a").unwrap()));
/// ```
#[derive(Debug, Clone)]
pub struct Nba {
    alphabet: Alphabet,
    /// `transitions[q][sym]` lists the successors of `q` under `sym`.
    transitions: Vec<Vec<Vec<StateId>>>,
    initial: Vec<StateId>,
    accepting: BitSet,
}

impl Nba {
    /// Creates an empty NBA (no states).
    pub fn new(alphabet: &Alphabet) -> Self {
        Nba {
            alphabet: alphabet.clone(),
            transitions: Vec::new(),
            initial: Vec::new(),
            accepting: BitSet::new(),
        }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions.push(vec![Vec::new(); self.alphabet.len()]);
        (self.transitions.len() - 1) as StateId
    }

    /// Adds a transition.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        assert!((to as usize) < self.num_states(), "state out of range");
        let row = &mut self.transitions[from as usize][sym.index()];
        if !row.contains(&to) {
            row.push(to);
        }
    }

    /// The initial states.
    pub fn initial_states(&self) -> &[StateId] {
        &self.initial
    }

    /// Marks a state as initial.
    pub fn set_initial(&mut self, q: StateId) {
        if !self.initial.contains(&q) {
            self.initial.push(q);
        }
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, q: StateId) {
        self.accepting.insert(q as usize);
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q as usize)
    }

    /// The successors of `q` under `sym`.
    pub fn successors(&self, q: StateId, sym: Symbol) -> &[StateId] {
        &self.transitions[q as usize][sym.index()]
    }

    /// Whether the NBA accepts the lasso word.
    ///
    /// Decided on the product of the loop positions with the state space:
    /// the word is accepted iff from some state reachable at the loop
    /// entrance there is a product cycle through an accepting state.
    pub fn accepts(&self, word: &Lasso) -> bool {
        let n = self.num_states();
        if n == 0 {
            return false;
        }
        // States reachable after reading the spoke.
        let mut current: BitSet = self.initial.iter().map(|&q| q as usize).collect();
        for &sym in word.spoke() {
            let mut next = BitSet::new();
            for q in current.iter() {
                for &t in self.successors(q as StateId, sym) {
                    next.insert(t as usize);
                }
            }
            current = next;
        }
        if current.is_empty() {
            return false;
        }
        // Product graph: vertex (pos, q) for pos in 0..|v|.
        let vlen = word.cycle().len();
        let vid = |pos: usize, q: usize| pos * n + q;
        let graph = FlatGraph::from_fn(vlen * n, |v| {
            let (pos, q) = (v as usize / n, v as usize % n);
            let sym = word.cycle()[pos];
            let npos = (pos + 1) % vlen;
            self.successors(q as StateId, sym)
                .iter()
                .map(move |&t| vid(npos, t as usize) as StateId)
                .collect::<Vec<_>>()
        });
        // Reachable product vertices from the loop entries.
        let entries: Vec<usize> = current.iter().map(|q| vid(0, q)).collect();
        let mut reach = BitSet::with_capacity(vlen * n);
        let mut queue: std::collections::VecDeque<usize> = entries.into_iter().collect();
        for v in &queue {
            reach.insert(*v);
        }
        while let Some(v) = queue.pop_front() {
            for &t in graph.successors(v as StateId) {
                if reach.insert(t as usize) {
                    queue.push_back(t as usize);
                }
            }
        }
        // Accepting product cycle?
        let sccs = tarjan_scc(&graph, Some(&reach));
        (0..sccs.len()).any(|c| {
            sccs.has_cycle[c]
                && sccs.members[c]
                    .iter()
                    .any(|&v| self.accepting.contains((v as usize) % n))
        })
    }

    /// Whether the NBA's language is empty.
    pub fn is_empty(&self) -> bool {
        self.accepted_lasso().is_none()
    }

    /// Some accepted lasso, if the language is non-empty: a path from an
    /// initial state to an accepting state lying on a cycle, plus that
    /// cycle.
    pub fn accepted_lasso(&self) -> Option<Lasso> {
        // Forward reachability.
        let n = self.num_states();
        let mut reach = BitSet::with_capacity(n);
        let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; n];
        let mut queue: std::collections::VecDeque<StateId> = self.initial.iter().copied().collect();
        for &q in &self.initial {
            reach.insert(q as usize);
        }
        while let Some(q) = queue.pop_front() {
            for sym in self.alphabet.symbols() {
                for &t in self.successors(q, sym) {
                    if reach.insert(t as usize) {
                        prev[t as usize] = Some((q, sym));
                        queue.push_back(t);
                    }
                }
            }
        }
        // An accepting state on a cycle within the reachable part.
        let graph = FlatGraph::from_fn(n, |q| {
            let mut v = Vec::new();
            for sym in self.alphabet.symbols() {
                v.extend_from_slice(self.successors(q, sym));
            }
            v
        });
        let sccs = tarjan_scc(&graph, Some(&reach));
        for c in 0..sccs.len() {
            if !sccs.has_cycle[c] {
                continue;
            }
            let Some(&acc) = sccs.members[c].iter().find(|&&q| self.is_accepting(q)) else {
                continue;
            };
            // Spoke: walk `prev` back from acc.
            let mut spoke = Vec::new();
            let mut cur = acc;
            while let Some((p, sym)) = prev[cur as usize] {
                spoke.push(sym);
                cur = p;
            }
            spoke.reverse();
            // Cycle: BFS from acc back to acc within the SCC.
            let members = sccs.member_set(c);
            let cycle = self.path_within(acc, acc, &members)?;
            return Some(Lasso::new(spoke, cycle));
        }
        None
    }

    /// A non-empty symbol path `from → to` staying within `within`.
    fn path_within(&self, from: StateId, to: StateId, within: &BitSet) -> Option<Vec<Symbol>> {
        let n = self.num_states();
        let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; n];
        let mut seen = BitSet::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        // Take one step first so the path is non-empty even when from == to.
        for sym in self.alphabet.symbols() {
            for &t in self.successors(from, sym) {
                if within.contains(t as usize) && seen.insert(t as usize) {
                    prev[t as usize] = Some((from, sym));
                    queue.push_back(t);
                }
            }
        }
        // Prev-pointers form a tree rooted at the seeds, whose prev is
        // `from`; walking back therefore terminates at `from`.
        let recover = |prev: &Vec<Option<(StateId, Symbol)>>, mut cur: StateId| {
            let mut path = Vec::new();
            loop {
                let (p, sym) = prev[cur as usize].expect("prev chain leads to a seed");
                path.push(sym);
                cur = p;
                if cur == from {
                    break;
                }
            }
            path.reverse();
            path
        };
        if seen.contains(to as usize) {
            return Some(recover(&prev, to));
        }
        while let Some(q) = queue.pop_front() {
            for sym in self.alphabet.symbols() {
                for &t in self.successors(q, sym) {
                    if within.contains(t as usize) && seen.insert(t as usize) {
                        prev[t as usize] = Some((q, sym));
                        if t == to {
                            return Some(recover(&prev, to));
                        }
                        queue.push_back(t);
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// NBA for "infinitely many b" over {a,b}.
    fn inf_b(sigma: &Alphabet) -> Nba {
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut n = Nba::new(sigma);
        let s0 = n.add_state();
        n.add_transition(s0, a, s0);
        n.add_transition(s0, b, s0);
        let s1 = n.add_state();
        n.add_transition(s0, b, s1);
        n.add_transition(s1, a, s0);
        n.add_transition(s1, b, s1);
        n.set_initial(s0);
        n.add_accepting(s1);
        n
    }

    #[test]
    fn membership() {
        let sigma = ab();
        let m = inf_b(&sigma);
        assert!(m.accepts(&Lasso::parse(&sigma, "", "ab").unwrap()));
        assert!(m.accepts(&Lasso::parse(&sigma, "aaa", "b").unwrap()));
        assert!(!m.accepts(&Lasso::parse(&sigma, "bbb", "a").unwrap()));
    }

    #[test]
    fn emptiness_and_witness() {
        let sigma = ab();
        let m = inf_b(&sigma);
        assert!(!m.is_empty());
        let w = m.accepted_lasso().unwrap();
        assert!(m.accepts(&w));
        // An NBA with no accepting state is empty.
        let mut e = Nba::new(&sigma);
        let s0 = e.add_state();
        for sym in sigma.symbols() {
            e.add_transition(s0, sym, s0);
        }
        e.set_initial(s0);
        assert!(e.is_empty());
        assert_eq!(e.accepted_lasso(), None);
    }

    #[test]
    fn dead_accepting_state_is_empty() {
        let sigma = ab();
        let a = sigma.symbol("a").unwrap();
        // Accepting state with no outgoing transitions: no infinite run.
        let mut m = Nba::new(&sigma);
        let s0 = m.add_state();
        let s1 = m.add_state();
        m.add_transition(s0, a, s0);
        m.add_transition(s0, a, s1);
        m.set_initial(s0);
        m.add_accepting(s1);
        assert!(m.is_empty());
        assert!(!m.accepts(&Lasso::parse(&sigma, "", "a").unwrap()));
    }

    #[test]
    fn no_states_rejects() {
        let sigma = ab();
        let m = Nba::new(&sigma);
        assert!(!m.accepts(&Lasso::parse(&sigma, "", "a").unwrap()));
        assert!(m.is_empty());
    }

    #[test]
    fn agreement_with_deterministic() {
        use crate::acceptance::Acceptance;
        use crate::omega::OmegaAutomaton;
        let sigma = ab();
        let m = inf_b(&sigma);
        let b = sigma.symbol("b").unwrap();
        let det = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        );
        for (u, v) in [
            ("", "a"),
            ("", "b"),
            ("ab", "ba"),
            ("bb", "ab"),
            ("ba", "a"),
        ] {
            let w = Lasso::parse(&sigma, u, v).unwrap();
            assert_eq!(m.accepts(&w), det.accepts(&w), "disagree on {u}({v})^ω");
        }
    }
}
