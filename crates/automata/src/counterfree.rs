//! Counter-freedom: the frontier of temporal-logic expressibility.
//!
//! A deterministic automaton is *counter-free* (\[MP71]) if there is no
//! finite word `σ` and state `q` with `δ(q, σⁿ) = q` for some `n > 1` while
//! `δ(q, σ) ≠ q` — such a pair would let the automaton count occurrences of
//! `σ` modulo `n`. The paper (§5, after Prop 5.3, citing \[Zuc86]) states
//! that an automaton specifies a temporal-logic-expressible property iff it
//! is counter-free.
//!
//! The test works on the transition *monoid*: the set of state
//! transformations induced by finite words, generated from the single-symbol
//! transformations by composition. The automaton has a counter iff some
//! transformation in the monoid has a periodic point of period `> 1`
//! (equivalently, iff the monoid is not aperiodic).

use crate::dfa::Dfa;
use crate::omega::OmegaAutomaton;
use crate::StateId;
use std::collections::{HashMap, VecDeque};

/// A state transformation `Q → Q` (row `q` gives the image of `q`).
type Transform = Vec<StateId>;

/// The outcome of a counter-freedom check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterFreedom {
    /// No counter exists: the transition monoid is aperiodic, so the
    /// automaton's properties are expressible in temporal logic.
    CounterFree {
        /// Size of the (explored) transition monoid.
        monoid_size: usize,
    },
    /// A counter was found: word `word` cycles state `state` with period
    /// `period > 1`.
    Counter {
        /// A word inducing the counting transformation.
        word: Vec<crate::alphabet::Symbol>,
        /// A state on the nontrivial cycle of that transformation.
        state: StateId,
        /// The period (`> 1`).
        period: usize,
    },
}

impl CounterFreedom {
    /// Whether the automaton is counter-free.
    pub fn is_counter_free(&self) -> bool {
        matches!(self, CounterFreedom::CounterFree { .. })
    }
}

/// Default cap on the number of monoid elements explored before giving up.
pub const DEFAULT_MONOID_CAP: usize = 1_000_000;

/// [`check_omega`] through a shared [`crate::analysis::Analysis`]
/// context: the verdict is memoized (at the default monoid cap), so
/// repeated expressibility queries on one automaton explore the monoid
/// once.
pub fn check_omega_ctx(ctx: &crate::analysis::Analysis) -> CounterFreedom {
    ctx.counter_freedom().clone()
}

/// Checks counter-freedom of a deterministic ω-automaton's transition
/// structure (acceptance is irrelevant).
///
/// # Panics
///
/// Panics if the transition monoid exceeds `monoid_cap` elements without a
/// verdict; the monoid of an `n`-state automaton has at most `n^n` elements,
/// so small automata always finish.
pub fn check_omega(aut: &OmegaAutomaton, monoid_cap: usize) -> CounterFreedom {
    let n = aut.num_states();
    let generators: Vec<(crate::alphabet::Symbol, Transform)> = aut
        .alphabet()
        .symbols()
        .map(|sym| (sym, (0..n as StateId).map(|q| aut.step(q, sym)).collect()))
        .collect();
    explore_monoid(n, &generators, monoid_cap)
}

/// Checks counter-freedom of a DFA's transition structure.
///
/// # Panics
///
/// Panics if the monoid exceeds `monoid_cap` elements (see [`check_omega`]).
pub fn check_dfa(dfa: &Dfa, monoid_cap: usize) -> CounterFreedom {
    let n = dfa.num_states();
    let generators: Vec<(crate::alphabet::Symbol, Transform)> = dfa
        .alphabet()
        .symbols()
        .map(|sym| (sym, (0..n as StateId).map(|q| dfa.step(q, sym)).collect()))
        .collect();
    explore_monoid(n, &generators, monoid_cap)
}

fn explore_monoid(
    _n: usize,
    generators: &[(crate::alphabet::Symbol, Transform)],
    monoid_cap: usize,
) -> CounterFreedom {
    // BFS over the monoid; each element remembers the word that produced it.
    let mut seen: HashMap<Transform, usize> = HashMap::new();
    let mut queue: VecDeque<(Transform, Vec<crate::alphabet::Symbol>)> = VecDeque::new();
    for (sym, t) in generators {
        if let Some(found) = counting_cycle(t) {
            return CounterFreedom::Counter {
                word: vec![*sym],
                state: found.0,
                period: found.1,
            };
        }
        if !seen.contains_key(t) {
            seen.insert(t.clone(), seen.len());
            queue.push_back((t.clone(), vec![*sym]));
        }
    }
    while let Some((t, word)) = queue.pop_front() {
        for (sym, g) in generators {
            // Compose: first t (the word so far), then g.
            let composed: Transform = t.iter().map(|&q| g[q as usize]).collect();
            if seen.contains_key(&composed) {
                continue;
            }
            let mut w = word.clone();
            w.push(*sym);
            if let Some(found) = counting_cycle(&composed) {
                return CounterFreedom::Counter {
                    word: w,
                    state: found.0,
                    period: found.1,
                };
            }
            assert!(
                seen.len() < monoid_cap,
                "transition monoid exceeds cap of {monoid_cap} elements"
            );
            seen.insert(composed.clone(), seen.len());
            queue.push_back((composed, w));
        }
    }
    CounterFreedom::CounterFree {
        monoid_size: seen.len(),
    }
}

/// Finds a periodic point of period > 1: a state `q` with `f^k(q) = q` for
/// some minimal `k > 1`.
///
/// Runs in `O(n)` per transform (this sits on the monoid-exploration hot
/// path, which calls it once per monoid element): a single colored-visited
/// map is shared across all start states, so each state is walked exactly
/// once. A walk that reaches territory colored by an earlier walk stops —
/// the functional graph routes that trajectory into a cycle the earlier
/// walk already examined. A walk that re-enters its *own* territory has
/// found its cycle, whose length is the minimal period of every state on
/// it (states on a `k`-cycle of a function satisfy `f^j(q) = q` iff
/// `k | j`).
fn counting_cycle(f: &Transform) -> Option<(StateId, usize)> {
    counting_cycle_counted(f).0
}

/// [`counting_cycle`] instrumented with the number of trajectory steps
/// taken — the complexity regression test pins this to `O(n)`.
fn counting_cycle_counted(f: &Transform) -> (Option<(StateId, usize)>, usize) {
    let n = f.len();
    // walk_of[q]: the walk that first visited q (usize::MAX = unvisited);
    // pos_of[q]: q's step index within that walk.
    let mut walk_of = vec![usize::MAX; n];
    let mut pos_of = vec![0usize; n];
    let mut steps = 0usize;
    for q0 in 0..n {
        if walk_of[q0] != usize::MAX {
            continue;
        }
        let mut q = q0;
        let mut i = 0usize;
        loop {
            if walk_of[q] == q0 {
                // Re-entered this walk's own territory: found its cycle.
                let period = i - pos_of[q];
                if period > 1 {
                    return (Some((q as StateId, period)), steps);
                }
                break;
            }
            if walk_of[q] != usize::MAX {
                // Joined an earlier walk; its cycle was already checked.
                break;
            }
            walk_of[q] = q0;
            pos_of[q] = i;
            q = f[q] as usize;
            i += 1;
            steps += 1;
        }
    }
    (None, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptance::Acceptance;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Modulo-n counter on symbol a (the canonical non-counter-free
    /// automaton).
    fn mod_counter(sigma: &Alphabet, n: usize) -> OmegaAutomaton {
        let a = sigma.symbol("a").unwrap();
        OmegaAutomaton::build(
            sigma,
            n,
            0,
            move |q, s| {
                if s == a {
                    ((q as usize + 1) % n) as StateId
                } else {
                    q
                }
            },
            Acceptance::inf([0]),
        )
    }

    #[test]
    fn mod2_counter_detected() {
        let sigma = ab();
        let m = mod_counter(&sigma, 2);
        let v = check_omega(&m, DEFAULT_MONOID_CAP);
        match v {
            CounterFreedom::Counter { period, word, .. } => {
                assert!(period > 1);
                assert!(!word.is_empty());
            }
            _ => panic!("mod-2 counter not detected"),
        }
    }

    #[test]
    fn mod5_counter_detected() {
        let sigma = ab();
        let m = mod_counter(&sigma, 5);
        assert!(!check_omega(&m, DEFAULT_MONOID_CAP).is_counter_free());
    }

    #[test]
    fn last_symbol_tracker_is_counter_free() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        );
        assert!(check_omega(&m, DEFAULT_MONOID_CAP).is_counter_free());
    }

    #[test]
    fn trap_automaton_is_counter_free() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        );
        let v = check_omega(&m, DEFAULT_MONOID_CAP);
        assert!(v.is_counter_free());
        if let CounterFreedom::CounterFree { monoid_size } = v {
            assert!(monoid_size >= 2);
        }
    }

    #[test]
    fn dfa_check_counts_even_words() {
        let sigma = ab();
        // Even-length words: both symbols advance the parity.
        let d = Dfa::build(&sigma, 2, 0, |q, _| 1 - q, [0]);
        assert!(!check_dfa(&d, DEFAULT_MONOID_CAP).is_counter_free());
        // "Contains b": counter-free.
        let b = sigma.symbol("b").unwrap();
        let d2 = Dfa::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            [1],
        );
        assert!(check_dfa(&d2, DEFAULT_MONOID_CAP).is_counter_free());
    }

    /// The minimal-period claim on a transform whose trajectory enters
    /// its cycle mid-way: the reported state must lie ON the cycle and
    /// the period must be the cycle length, not the tail-inclusive
    /// distance.
    #[test]
    fn counting_cycle_minimal_period_with_tail() {
        // 0 → 1 → 2 → 3 → 4 → 2: a 2-step tail into the 3-cycle {2,3,4}.
        let f: Transform = vec![1, 2, 3, 4, 2];
        let (found, _) = counting_cycle_counted(&f);
        let (state, period) = found.expect("the 3-cycle is a counter");
        assert_eq!(period, 3, "period is the cycle length");
        assert!((2..=4).contains(&state), "reported state lies on the cycle");
        // The period is minimal: applying f `period` times fixes `state`,
        // applying it once does not.
        let apply = |mut q: StateId, times: usize| {
            for _ in 0..times {
                q = f[q as usize];
            }
            q
        };
        assert_eq!(apply(state, period), state);
        assert_ne!(apply(state, 1), state);
        // Fixed points (period 1) are not counters, even behind a tail.
        let g: Transform = vec![1, 2, 2];
        assert_eq!(counting_cycle_counted(&g).0, None);
        // A later walk joining an earlier walk's territory must not
        // fabricate a period from mixed step indices.
        let h: Transform = vec![0, 0, 1, 1]; // everything drains into fixed point 0
        assert_eq!(counting_cycle_counted(&h).0, None);
    }

    /// Regression for the O(n²) re-walk: every start state used to
    /// allocate a fresh `seen_at` vector and re-trace the trajectory, so
    /// a long chain draining into a fixed point cost ~n²/2 steps. The
    /// shared colored-visited map walks each state once: total steps are
    /// bounded by n.
    #[test]
    fn counting_cycle_is_linear_in_states() {
        let n = 512;
        // Chain n-1 → n-2 → … → 1 → 0 ⟲ (fixed point): worst case for
        // the old per-start re-walk (quadratic), linear for the new one.
        let f: Transform = (0..n as StateId).map(|q| q.saturating_sub(1)).collect();
        let (found, steps) = counting_cycle_counted(&f);
        assert_eq!(found, None);
        assert!(
            steps <= n,
            "expected O(n) trajectory steps, got {steps} for n={n}"
        );
    }

    #[test]
    fn counter_word_actually_counts() {
        let sigma = ab();
        let m = mod_counter(&sigma, 3);
        if let CounterFreedom::Counter {
            word,
            state,
            period,
        } = check_omega(&m, DEFAULT_MONOID_CAP)
        {
            // Applying the word `period` times returns to `state`, once
            // does not.
            let mut q = state;
            for _ in 0..period {
                q = word.iter().fold(q, |s, &sym| m.step(s, sym));
            }
            assert_eq!(q, state);
            let once = word.iter().fold(state, |s, &sym| m.step(s, sym));
            assert_ne!(once, state);
        } else {
            panic!("expected a counter");
        }
    }
}
