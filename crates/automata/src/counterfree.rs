//! Counter-freedom: the frontier of temporal-logic expressibility.
//!
//! A deterministic automaton is *counter-free* (\[MP71]) if there is no
//! finite word `σ` and state `q` with `δ(q, σⁿ) = q` for some `n > 1` while
//! `δ(q, σ) ≠ q` — such a pair would let the automaton count occurrences of
//! `σ` modulo `n`. The paper (§5, after Prop 5.3, citing \[Zuc86]) states
//! that an automaton specifies a temporal-logic-expressible property iff it
//! is counter-free.
//!
//! The test works on the transition *monoid*: the set of state
//! transformations induced by finite words, generated from the single-symbol
//! transformations by composition. The automaton has a counter iff some
//! transformation in the monoid has a periodic point of period `> 1`
//! (equivalently, iff the monoid is not aperiodic).

use crate::dfa::Dfa;
use crate::omega::OmegaAutomaton;
use crate::StateId;
use std::collections::{HashMap, VecDeque};

/// A state transformation `Q → Q` (row `q` gives the image of `q`).
type Transform = Vec<StateId>;

/// The outcome of a counter-freedom check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterFreedom {
    /// No counter exists: the transition monoid is aperiodic, so the
    /// automaton's properties are expressible in temporal logic.
    CounterFree {
        /// Size of the (explored) transition monoid.
        monoid_size: usize,
    },
    /// A counter was found: word `word` cycles state `state` with period
    /// `period > 1`.
    Counter {
        /// A word inducing the counting transformation.
        word: Vec<crate::alphabet::Symbol>,
        /// A state on the nontrivial cycle of that transformation.
        state: StateId,
        /// The period (`> 1`).
        period: usize,
    },
}

impl CounterFreedom {
    /// Whether the automaton is counter-free.
    pub fn is_counter_free(&self) -> bool {
        matches!(self, CounterFreedom::CounterFree { .. })
    }
}

/// Default cap on the number of monoid elements explored before giving up.
pub const DEFAULT_MONOID_CAP: usize = 1_000_000;

/// [`check_omega`] through a shared [`crate::analysis::Analysis`]
/// context: the verdict is memoized (at the default monoid cap), so
/// repeated expressibility queries on one automaton explore the monoid
/// once.
pub fn check_omega_ctx(ctx: &crate::analysis::Analysis) -> CounterFreedom {
    ctx.counter_freedom().clone()
}

/// Checks counter-freedom of a deterministic ω-automaton's transition
/// structure (acceptance is irrelevant).
///
/// # Panics
///
/// Panics if the transition monoid exceeds `monoid_cap` elements without a
/// verdict; the monoid of an `n`-state automaton has at most `n^n` elements,
/// so small automata always finish.
pub fn check_omega(aut: &OmegaAutomaton, monoid_cap: usize) -> CounterFreedom {
    let n = aut.num_states();
    let generators: Vec<(crate::alphabet::Symbol, Transform)> = aut
        .alphabet()
        .symbols()
        .map(|sym| (sym, (0..n as StateId).map(|q| aut.step(q, sym)).collect()))
        .collect();
    explore_monoid(n, &generators, monoid_cap)
}

/// Checks counter-freedom of a DFA's transition structure.
///
/// # Panics
///
/// Panics if the monoid exceeds `monoid_cap` elements (see [`check_omega`]).
pub fn check_dfa(dfa: &Dfa, monoid_cap: usize) -> CounterFreedom {
    let n = dfa.num_states();
    let generators: Vec<(crate::alphabet::Symbol, Transform)> = dfa
        .alphabet()
        .symbols()
        .map(|sym| (sym, (0..n as StateId).map(|q| dfa.step(q, sym)).collect()))
        .collect();
    explore_monoid(n, &generators, monoid_cap)
}

fn explore_monoid(
    _n: usize,
    generators: &[(crate::alphabet::Symbol, Transform)],
    monoid_cap: usize,
) -> CounterFreedom {
    // BFS over the monoid; each element remembers the word that produced it.
    let mut seen: HashMap<Transform, usize> = HashMap::new();
    let mut queue: VecDeque<(Transform, Vec<crate::alphabet::Symbol>)> = VecDeque::new();
    for (sym, t) in generators {
        if let Some(found) = counting_cycle(t) {
            return CounterFreedom::Counter {
                word: vec![*sym],
                state: found.0,
                period: found.1,
            };
        }
        if !seen.contains_key(t) {
            seen.insert(t.clone(), seen.len());
            queue.push_back((t.clone(), vec![*sym]));
        }
    }
    while let Some((t, word)) = queue.pop_front() {
        for (sym, g) in generators {
            // Compose: first t (the word so far), then g.
            let composed: Transform = t.iter().map(|&q| g[q as usize]).collect();
            if seen.contains_key(&composed) {
                continue;
            }
            let mut w = word.clone();
            w.push(*sym);
            if let Some(found) = counting_cycle(&composed) {
                return CounterFreedom::Counter {
                    word: w,
                    state: found.0,
                    period: found.1,
                };
            }
            assert!(
                seen.len() < monoid_cap,
                "transition monoid exceeds cap of {monoid_cap} elements"
            );
            seen.insert(composed.clone(), seen.len());
            queue.push_back((composed, w));
        }
    }
    CounterFreedom::CounterFree {
        monoid_size: seen.len(),
    }
}

/// Finds a periodic point of period > 1: a state `q` with `f^k(q) = q` for
/// some minimal `k > 1`.
fn counting_cycle(f: &Transform) -> Option<(StateId, usize)> {
    let n = f.len();
    for q0 in 0..n as StateId {
        // Follow the trajectory; it enters a cycle within n steps.
        let mut slow = q0;
        let mut seen_at = vec![usize::MAX; n];
        let mut i = 0usize;
        loop {
            if seen_at[slow as usize] != usize::MAX {
                let period = i - seen_at[slow as usize];
                if period > 1 {
                    return Some((slow, period));
                }
                break;
            }
            seen_at[slow as usize] = i;
            slow = f[slow as usize];
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptance::Acceptance;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Modulo-n counter on symbol a (the canonical non-counter-free
    /// automaton).
    fn mod_counter(sigma: &Alphabet, n: usize) -> OmegaAutomaton {
        let a = sigma.symbol("a").unwrap();
        OmegaAutomaton::build(
            sigma,
            n,
            0,
            move |q, s| {
                if s == a {
                    ((q as usize + 1) % n) as StateId
                } else {
                    q
                }
            },
            Acceptance::inf([0]),
        )
    }

    #[test]
    fn mod2_counter_detected() {
        let sigma = ab();
        let m = mod_counter(&sigma, 2);
        let v = check_omega(&m, DEFAULT_MONOID_CAP);
        match v {
            CounterFreedom::Counter { period, word, .. } => {
                assert!(period > 1);
                assert!(!word.is_empty());
            }
            _ => panic!("mod-2 counter not detected"),
        }
    }

    #[test]
    fn mod5_counter_detected() {
        let sigma = ab();
        let m = mod_counter(&sigma, 5);
        assert!(!check_omega(&m, DEFAULT_MONOID_CAP).is_counter_free());
    }

    #[test]
    fn last_symbol_tracker_is_counter_free() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        );
        assert!(check_omega(&m, DEFAULT_MONOID_CAP).is_counter_free());
    }

    #[test]
    fn trap_automaton_is_counter_free() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        );
        let v = check_omega(&m, DEFAULT_MONOID_CAP);
        assert!(v.is_counter_free());
        if let CounterFreedom::CounterFree { monoid_size } = v {
            assert!(monoid_size >= 2);
        }
    }

    #[test]
    fn dfa_check_counts_even_words() {
        let sigma = ab();
        // Even-length words: both symbols advance the parity.
        let d = Dfa::build(&sigma, 2, 0, |q, _| 1 - q, [0]);
        assert!(!check_dfa(&d, DEFAULT_MONOID_CAP).is_counter_free());
        // "Contains b": counter-free.
        let b = sigma.symbol("b").unwrap();
        let d2 = Dfa::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            [1],
        );
        assert!(check_dfa(&d2, DEFAULT_MONOID_CAP).is_counter_free());
    }

    #[test]
    fn counter_word_actually_counts() {
        let sigma = ab();
        let m = mod_counter(&sigma, 3);
        if let CounterFreedom::Counter {
            word,
            state,
            period,
        } = check_omega(&m, DEFAULT_MONOID_CAP)
        {
            // Applying the word `period` times returns to `state`, once
            // does not.
            let mut q = state;
            for _ in 0..period {
                q = word.iter().fold(q, |s, &sym| m.step(s, sym));
            }
            assert_eq!(q, state);
            let once = word.iter().fold(state, |s, &sym| m.step(s, sym));
            assert_ne!(once, state);
        } else {
            panic!("expected a counter");
        }
    }
}
