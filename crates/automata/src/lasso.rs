//! Ultimately-periodic ω-words (`u · vω`), called *lassos*.
//!
//! Lassos are the computable stand-in for arbitrary infinite words: every
//! non-empty ω-regular language contains one, membership in automata and
//! formulas is decidable, and two ω-regular languages are equal iff they
//! agree on all lassos. The crate-wide test strategy cross-validates the
//! paper's four views on randomly sampled lassos.

use crate::alphabet::{Alphabet, Symbol};
use std::fmt;

/// An ultimately periodic ω-word `u · vω` with finite spoke `u` and
/// non-empty loop `v`.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
///
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// let w = Lasso::parse(&sigma, "ab", "ba").unwrap();
/// assert_eq!(w.at(0), sigma.symbol("a").unwrap());
/// assert_eq!(w.at(2), sigma.symbol("b").unwrap()); // loop starts
/// assert_eq!(w.at(4), sigma.symbol("b").unwrap()); // loop repeats
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lasso {
    spoke: Vec<Symbol>,
    cycle: Vec<Symbol>,
}

impl Lasso {
    /// Creates a lasso from its spoke and loop.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is empty (an ω-word needs an infinite tail).
    pub fn new(spoke: Vec<Symbol>, cycle: Vec<Symbol>) -> Self {
        assert!(!cycle.is_empty(), "lasso loop must be non-empty");
        Lasso { spoke, cycle }
    }

    /// Parses a lasso from two strings of single-character symbol names.
    ///
    /// Returns `None` if any character is not a symbol of `alphabet` or the
    /// loop part is empty.
    pub fn parse(alphabet: &Alphabet, spoke: &str, cycle: &str) -> Option<Self> {
        let conv = |s: &str| -> Option<Vec<Symbol>> {
            s.chars().map(|c| alphabet.symbol(&c.to_string())).collect()
        };
        let cycle = conv(cycle)?;
        if cycle.is_empty() {
            return None;
        }
        Some(Lasso {
            spoke: conv(spoke)?,
            cycle,
        })
    }

    /// The finite spoke `u`.
    pub fn spoke(&self) -> &[Symbol] {
        &self.spoke
    }

    /// The repeated loop `v`.
    pub fn cycle(&self) -> &[Symbol] {
        &self.cycle
    }

    /// The symbol at position `i` (0-based) of the infinite word.
    pub fn at(&self, i: usize) -> Symbol {
        if i < self.spoke.len() {
            self.spoke[i]
        } else {
            self.cycle[(i - self.spoke.len()) % self.cycle.len()]
        }
    }

    /// Iterates over the first `n` symbols.
    pub fn prefix(&self, n: usize) -> Vec<Symbol> {
        (0..n).map(|i| self.at(i)).collect()
    }

    /// An iterator over the infinite word (never terminates on its own).
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..).map(|i| self.at(i))
    }

    /// A canonical form: the loop is rolled so no shorter equivalent spoke
    /// exists, and the loop is primitive (not a proper power). Two lassos
    /// denote the same ω-word iff their normalizations are equal.
    pub fn normalize(&self) -> Lasso {
        // Reduce the loop to its primitive root.
        let mut cycle = self.cycle.clone();
        'outer: for p in 1..=cycle.len() / 2 {
            if !cycle.len().is_multiple_of(p) {
                continue;
            }
            for i in p..cycle.len() {
                if cycle[i] != cycle[i - p] {
                    continue 'outer;
                }
            }
            cycle.truncate(p);
            break;
        }
        // Shrink the spoke: while its last symbol equals the loop's last
        // symbol, rotate the loop backwards and shorten the spoke.
        let mut spoke = self.spoke.clone();
        while let Some(&last) = spoke.last() {
            if last == *cycle.last().expect("loop is non-empty") {
                spoke.pop();
                cycle.rotate_right(1);
            } else {
                break;
            }
        }
        Lasso { spoke, cycle }
    }

    /// Whether the two lassos denote the same ω-word.
    pub fn same_word(&self, other: &Lasso) -> bool {
        self.normalize() == other.normalize()
    }

    /// Renders the lasso with symbol names from `alphabet`, e.g. `ab(ba)^ω`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Lasso, &'a Alphabet);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for &s in &self.0.spoke {
                    write!(f, "{}", self.1.name(s))?;
                }
                write!(f, "(")?;
                for &s in &self.0.cycle {
                    write!(f, "{}", self.1.name(s))?;
                }
                write!(f, ")^ω")
            }
        }
        D(self, alphabet)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn indexing() {
        let sigma = ab();
        let w = Lasso::parse(&sigma, "a", "ab").unwrap();
        let names: String = (0..6).map(|i| sigma.name(w.at(i)).to_string()).collect();
        assert_eq!(names, "aababa");
        assert_eq!(w.prefix(3).len(), 3);
    }

    #[test]
    fn parse_rejects_bad_input() {
        let sigma = ab();
        assert!(Lasso::parse(&sigma, "a", "").is_none());
        assert!(Lasso::parse(&sigma, "x", "a").is_none());
        assert!(Lasso::parse(&sigma, "", "ab").is_some());
    }

    #[test]
    fn normalize_primitive_root() {
        let sigma = ab();
        let w = Lasso::parse(&sigma, "", "abab").unwrap();
        let n = w.normalize();
        assert_eq!(n.cycle().len(), 2);
        assert!(w.same_word(&Lasso::parse(&sigma, "", "ab").unwrap()));
    }

    #[test]
    fn normalize_rolls_spoke() {
        let sigma = ab();
        // a(ba)^ω = (ab)^ω
        let w1 = Lasso::parse(&sigma, "a", "ba").unwrap();
        let w2 = Lasso::parse(&sigma, "", "ab").unwrap();
        assert!(w1.same_word(&w2));
        // ab(b)^ω ≠ a(b)^ω
        let w3 = Lasso::parse(&sigma, "ab", "b").unwrap();
        let w4 = Lasso::parse(&sigma, "a", "b").unwrap();
        assert!(w3.same_word(&w4));
        let w5 = Lasso::parse(&sigma, "b", "b").unwrap();
        assert!(w5.same_word(&Lasso::parse(&sigma, "", "b").unwrap()));
    }

    #[test]
    fn distinct_words_not_same() {
        let sigma = ab();
        let w1 = Lasso::parse(&sigma, "", "ab").unwrap();
        let w2 = Lasso::parse(&sigma, "", "ba").unwrap();
        assert!(!w1.same_word(&w2));
    }

    #[test]
    fn display_format() {
        let sigma = ab();
        let w = Lasso::parse(&sigma, "ab", "ba").unwrap();
        assert_eq!(w.display(&sigma).to_string(), "ab(ba)^ω");
    }

    #[test]
    fn symbols_iterator_matches_at() {
        let sigma = ab();
        let w = Lasso::parse(&sigma, "ab", "ba").unwrap();
        let via_iter: Vec<Symbol> = w.symbols().take(7).collect();
        let via_at: Vec<Symbol> = (0..7).map(|i| w.at(i)).collect();
        assert_eq!(via_iter, via_at);
    }
}
