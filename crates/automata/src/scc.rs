//! Strongly connected component analysis (Tarjan's algorithm, iterative),
//! with support for restricting the graph to a subset of states.
//!
//! SCCs over *restricted* state sets are the workhorse of the
//! classification procedures: restricting to the states whose acceptance
//! "colors" lie below a given color set and taking SCCs yields canonical
//! representatives for all cycles with those colors (see [`crate::classify`]).

use crate::bitset::BitSet;
use crate::StateId;

/// A graph given by a successor function over states `0..n`.
pub trait Successors {
    /// Number of states.
    fn num_states(&self) -> usize;
    /// Calls `f` on every successor of `q`.
    fn for_each_successor(&self, q: StateId, f: &mut dyn FnMut(StateId));
}

/// An explicit adjacency-list graph (used for products and tests).
#[derive(Debug, Clone)]
pub struct AdjGraph {
    /// `succs[q]` lists the successors of state `q`.
    pub succs: Vec<Vec<StateId>>,
}

impl AdjGraph {
    /// Builds an adjacency graph over states `0..n` by enumerating each
    /// state's successors with `succs_of`. This is the shared constructor
    /// for the ad-hoc product graphs the NBA and model-checking layers
    /// build before running Tarjan.
    pub fn from_fn<I>(n: usize, mut succs_of: impl FnMut(StateId) -> I) -> Self
    where
        I: IntoIterator<Item = StateId>,
    {
        AdjGraph {
            succs: (0..n as StateId)
                .map(|q| succs_of(q).into_iter().collect())
                .collect(),
        }
    }

    /// Materializes any [`Successors`] implementation into an explicit
    /// adjacency list (useful to snapshot a derived graph once and reuse
    /// it across many restricted SCC passes).
    pub fn from_graph<G: Successors>(graph: &G) -> Self {
        AdjGraph::from_fn(graph.num_states(), |q| {
            let mut v = Vec::new();
            graph.for_each_successor(q, &mut |t| v.push(t));
            v
        })
    }
}

impl Successors for AdjGraph {
    fn num_states(&self) -> usize {
        self.succs.len()
    }
    fn for_each_successor(&self, q: StateId, f: &mut dyn FnMut(StateId)) {
        for &t in &self.succs[q as usize] {
            f(t);
        }
    }
}

/// The result of an SCC decomposition.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[q]` is the SCC index of state `q`, or `usize::MAX` if the
    /// state was excluded from the analysis.
    pub component: Vec<usize>,
    /// The members of each SCC. Components are numbered in reverse
    /// topological order (successors first), as produced by Tarjan's
    /// algorithm.
    pub members: Vec<Vec<StateId>>,
    /// `has_cycle[c]` is `true` iff component `c` contains at least one edge
    /// (i.e. it is a *cycle* in the paper's sense: either more than one
    /// state, or a state with a self-loop within the restriction).
    pub has_cycle: Vec<bool>,
}

impl SccDecomposition {
    /// The members of component `c` as a [`BitSet`].
    pub fn member_set(&self, c: usize) -> BitSet {
        self.members[c].iter().map(|&q| q as usize).collect()
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether no components were found (empty restriction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Computes the SCCs of the subgraph induced by `allowed` (or of the whole
/// graph if `allowed` is `None`), using an iterative Tarjan's algorithm.
pub fn tarjan_scc<G: Successors>(graph: &G, allowed: Option<&BitSet>) -> SccDecomposition {
    let n = graph.num_states();
    let is_allowed = |q: StateId| allowed.is_none_or(|s| s.contains(q as usize));

    const UNSEEN: usize = usize::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<StateId> = Vec::new();
    let mut component = vec![UNSEEN; n];
    let mut members: Vec<Vec<StateId>> = Vec::new();
    let mut next_index = 0usize;

    // Iterative DFS: frames of (state, successor list, cursor).
    for root in 0..n as StateId {
        if !is_allowed(root) || index[root as usize] != UNSEEN {
            continue;
        }
        let mut frames: Vec<(StateId, Vec<StateId>, usize)> = Vec::new();
        let succs_of = |q: StateId| {
            let mut v = Vec::new();
            graph.for_each_successor(q, &mut |t| {
                if is_allowed(t) {
                    v.push(t);
                }
            });
            v
        };
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        frames.push((root, succs_of(root), 0));

        while let Some(&mut (q, ref succs, ref mut cursor)) = frames.last_mut() {
            if *cursor < succs.len() {
                let t = succs[*cursor];
                *cursor += 1;
                if index[t as usize] == UNSEEN {
                    index[t as usize] = next_index;
                    low[t as usize] = next_index;
                    next_index += 1;
                    stack.push(t);
                    on_stack[t as usize] = true;
                    let s = succs_of(t);
                    frames.push((t, s, 0));
                } else if on_stack[t as usize] {
                    low[q as usize] = low[q as usize].min(index[t as usize]);
                }
            } else {
                // Finished q.
                frames.pop();
                if let Some(&mut (p, _, _)) = frames.last_mut() {
                    low[p as usize] = low[p as usize].min(low[q as usize]);
                }
                if low[q as usize] == index[q as usize] {
                    let c = members.len();
                    let mut comp = Vec::new();
                    loop {
                        let s = stack.pop().expect("Tarjan stack underflow");
                        on_stack[s as usize] = false;
                        component[s as usize] = c;
                        comp.push(s);
                        if s == q {
                            break;
                        }
                    }
                    members.push(comp);
                }
            }
        }
    }

    // Determine which components contain a cycle.
    let mut has_cycle = vec![false; members.len()];
    for (c, comp) in members.iter().enumerate() {
        if comp.len() > 1 {
            has_cycle[c] = true;
            continue;
        }
        let q = comp[0];
        graph.for_each_successor(q, &mut |t| {
            if t == q && is_allowed(t) {
                has_cycle[c] = true;
            }
        });
    }

    SccDecomposition {
        component,
        members,
        has_cycle,
    }
}

/// A memoizing wrapper around [`tarjan_scc`] for one fixed graph: repeated
/// decompositions under the same restriction are served from cache, and
/// pass/hit counters record how much work was saved.
///
/// This is the graph-level sibling of [`crate::analysis::Analysis`] (which
/// caches at the automaton level); the model checker uses it directly on
/// product graphs, where the same restriction recurs across DNF disjuncts
/// and fairness-refinement rounds.
#[derive(Debug)]
pub struct SccCache<G: Successors> {
    graph: G,
    memo: std::collections::HashMap<Option<BitSet>, std::sync::Arc<SccDecomposition>>,
    passes: u64,
    hits: u64,
}

impl<G: Successors> SccCache<G> {
    /// Wraps `graph` with an empty cache.
    pub fn new(graph: G) -> Self {
        SccCache {
            graph,
            memo: std::collections::HashMap::new(),
            passes: 0,
            hits: 0,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// The SCC decomposition under `allowed`, computed at most once per
    /// distinct restriction.
    pub fn sccs(&mut self, allowed: Option<&BitSet>) -> std::sync::Arc<SccDecomposition> {
        let key = allowed.cloned();
        if let Some(hit) = self.memo.get(&key) {
            self.hits += 1;
            return std::sync::Arc::clone(hit);
        }
        self.passes += 1;
        let dec = std::sync::Arc::new(tarjan_scc(&self.graph, allowed));
        self.memo.insert(key, std::sync::Arc::clone(&dec));
        dec
    }

    /// `(tarjan passes run, cache hits served)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.passes, self.hits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(edges: &[(u32, u32)], n: usize) -> AdjGraph {
        let mut succs = vec![Vec::new(); n];
        for &(a, b) in edges {
            succs[a as usize].push(b);
        }
        AdjGraph { succs }
    }

    #[test]
    fn two_cycles_and_bridge() {
        // 0 <-> 1, 2 <-> 3, 1 -> 2
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4);
        let d = tarjan_scc(&g, None);
        assert_eq!(d.len(), 2);
        assert_eq!(d.component[0], d.component[1]);
        assert_eq!(d.component[2], d.component[3]);
        assert_ne!(d.component[0], d.component[2]);
        assert!(d.has_cycle.iter().all(|&c| c));
        // Reverse topological order: {2,3} comes before {0,1}.
        assert!(d.members[0].contains(&2));
    }

    #[test]
    fn trivial_component_no_selfloop() {
        let g = graph(&[(0, 1), (1, 1)], 2);
        let d = tarjan_scc(&g, None);
        let c0 = d.component[0];
        let c1 = d.component[1];
        assert!(!d.has_cycle[c0]);
        assert!(d.has_cycle[c1]);
    }

    #[test]
    fn restriction_cuts_cycles() {
        // 0 -> 1 -> 2 -> 0 is a cycle; removing 1 makes everything trivial.
        let g = graph(&[(0, 1), (1, 2), (2, 0)], 3);
        let full = tarjan_scc(&g, None);
        assert_eq!(full.len(), 1);
        assert!(full.has_cycle[0]);
        let allowed: BitSet = [0usize, 2].into_iter().collect();
        let cut = tarjan_scc(&g, Some(&allowed));
        assert_eq!(cut.len(), 2);
        assert!(cut.has_cycle.iter().all(|&c| !c));
        assert_eq!(cut.component[1], usize::MAX);
    }

    #[test]
    fn big_cycle_single_component() {
        let n = 1000;
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = graph(&edges, n as usize);
        let d = tarjan_scc(&g, None);
        assert_eq!(d.len(), 1);
        assert_eq!(d.members[0].len(), n as usize);
        assert!(d.has_cycle[0]);
    }

    #[test]
    fn self_loop_only() {
        let g = graph(&[(0, 0)], 1);
        let d = tarjan_scc(&g, None);
        assert_eq!(d.len(), 1);
        assert!(d.has_cycle[0]);
        assert_eq!(d.member_set(0), BitSet::from_iter([0]));
    }

    #[test]
    fn dag_reverse_topological() {
        // 0 -> 1 -> 2 (all trivial)
        let g = graph(&[(0, 1), (1, 2)], 3);
        let d = tarjan_scc(&g, None);
        assert_eq!(d.len(), 3);
        // Tarjan emits sinks first.
        assert_eq!(d.members[0], vec![2]);
        assert_eq!(d.members[2], vec![0]);
    }

    #[test]
    fn from_fn_matches_manual_construction() {
        let manual = graph(&[(0, 1), (1, 0), (1, 2)], 3);
        let built = AdjGraph::from_fn(3, |q| manual.succs[q as usize].clone());
        assert_eq!(built.succs, manual.succs);
        let snap = AdjGraph::from_graph(&manual);
        assert_eq!(snap.succs, manual.succs);
    }

    #[test]
    fn scc_cache_reuses_decompositions() {
        let g = graph(&[(0, 1), (1, 0), (1, 2), (2, 2)], 3);
        let mut cache = SccCache::new(g);
        let full1 = cache.sccs(None);
        let full2 = cache.sccs(None);
        assert_eq!(full1.len(), full2.len());
        let allowed: BitSet = [0usize, 1].into_iter().collect();
        let cut1 = cache.sccs(Some(&allowed));
        let cut2 = cache.sccs(Some(&allowed));
        assert_eq!(cut1.len(), 1);
        assert_eq!(cut2.len(), 1);
        assert_eq!(cache.stats(), (2, 2));
    }
}
