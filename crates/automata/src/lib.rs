#![warn(missing_docs)]

//! Finite- and ω-word automata substrate for the Manna–Pnueli temporal-property
//! hierarchy (*A Hierarchy of Temporal Properties*, PODC 1990).
//!
//! This crate provides everything the paper's **automata view** (Section 5)
//! needs, built from scratch:
//!
//! * [`dfa::Dfa`] / [`nfa::Nfa`] — classical automata over finite words, with
//!   subset construction, minimization, boolean operations, inclusion and
//!   equivalence. Finite-word languages model the paper's *finitary
//!   properties* `Φ ⊆ Σ⁺`.
//! * [`omega::OmegaAutomaton`] — complete **deterministic ω-automata** whose
//!   acceptance condition is an arbitrary boolean combination of
//!   `Inf(S)`/`Fin(S)` atoms ([`acceptance::Acceptance`], Emerson–Lei style).
//!   Streett, Rabin, Büchi, co-Büchi and weak automata are all special cases
//!   ([`streett`]). The algebra is closed under products and acceptance
//!   negation, so every boolean operation on deterministic properties is
//!   exact.
//! * [`classify`] — the exact decision procedures of the paper's Section 5.1:
//!   given a deterministic ω-automaton, decide whether its language is a
//!   safety, guarantee, obligation, recurrence, persistence or reactivity
//!   property, and compute the exact obligation degree and reactivity index
//!   (Wagner's alternating-chain analysis, implemented through a
//!   color-lattice SCC construction).
//! * [`analysis::Analysis`] — a per-automaton memoized context that shares
//!   reachability, restricted SCC decompositions, the condensation DAG,
//!   pairwise products and inclusion verdicts across all of the above,
//!   turning a full classification into a single color-lattice walk.
//! * [`inclusion`] — direct polynomial-time inclusion/equivalence for
//!   deterministic acceptors (Angluin–Fisman): a min-even parity view
//!   with a product-SCC fast path, whole-pair Streett refinement for
//!   general conditions, and counterexample-lasso extraction — the
//!   default oracle behind `is_subset_of`/`equivalent`, differential
//!   against the complement construction.
//! * [`par`] — a zero-dependency scoped-thread worker pool
//!   (`HIERARCHY_THREADS` sets the worker count) that fans the
//!   color-lattice sweep and the batch classifier
//!   ([`classify::classify_suite`]) out across cores; the `Analysis`
//!   caches are thread-shared, so workers populate one memo table.
//! * [`paper_checks`] — the paper's own *structural* checks for Streett
//!   automata (closure of the bad region, etc.), kept separate so they can be
//!   cross-validated against the exact semantic procedures.
//! * [`counterfree`] — the counter-freedom test (transition-monoid
//!   aperiodicity) that delimits temporal-logic expressibility (\[MP71],
//!   \[Zuc86]).
//! * [`lasso::Lasso`] — ultimately-periodic words `u·vω`, the computable
//!   stand-in for arbitrary ω-words used throughout the test-suites.
//!
//! # Quick example
//!
//! ```
//! use hierarchy_automata::prelude::*;
//!
//! // Σ = {a, b}; the ω-language (Σ*b)^ω = "infinitely many b" as a
//! // deterministic Büchi automaton.
//! let sigma = Alphabet::new(["a", "b"]).unwrap();
//! let b = sigma.symbol("b").unwrap();
//! let inf_b = OmegaAutomaton::build(&sigma, 2, 0, |_state, sym| {
//!     if sym == b { 1 } else { 0 }
//! }, Acceptance::inf([1]));
//!
//! let verdict = classify::classify(&inf_b);
//! assert!(verdict.is_recurrence && !verdict.is_persistence && !verdict.is_safety);
//! ```

pub mod acceptance;
pub mod alphabet;
pub mod analysis;
pub mod bitset;
pub mod canonical;
pub mod classify;
pub mod counterfree;
pub mod dfa;
pub mod dot;
pub mod emptiness;
pub mod flat;
pub mod hoa;
pub mod inclusion;
pub mod lasso;
pub mod minimize;
pub mod nba;
pub mod nfa;
pub mod omega;
pub mod paper_checks;
pub mod par;
pub mod random;
pub mod scc;
pub mod streett;

mod error;

pub use error::AutomatonError;

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::acceptance::Acceptance;
    pub use crate::alphabet::{Alphabet, Symbol, SymbolSet};
    pub use crate::analysis::{Analysis, AnalysisStats, ProductOp};
    pub use crate::bitset::BitSet;
    pub use crate::canonical::{hash_bytes, structural_hash, ArtifactHash};
    pub use crate::classify;
    pub use crate::dfa::Dfa;
    pub use crate::flat::{FlatAutomaton, FlatGraph};
    pub use crate::inclusion::ParityView;
    pub use crate::lasso::Lasso;
    pub use crate::minimize::{minimize, Minimization};
    pub use crate::nba::Nba;
    pub use crate::nfa::Nfa;
    pub use crate::omega::OmegaAutomaton;
    pub use crate::streett::{StreettPair, StreettPairs};
    pub use crate::AutomatonError;
}

/// Identifier of an automaton state (an index into the state vector).
pub type StateId = u32;
