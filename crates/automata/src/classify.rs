//! Exact semantic classification of deterministic ω-automata into the
//! safety–progress hierarchy (the paper's Problem 5.1).
//!
//! Given a complete deterministic ω-automaton `M`, these procedures decide
//! in which classes the *language* `Π = L(M)` lies:
//!
//! * **safety** — `Π = A(Pref(Π))`, checked by comparing `M` with its
//!   [safety closure](safety_closure);
//! * **guarantee** — the complement is safety;
//! * **recurrence** — Wagner/Landweber: no accessible cycle pair `J ⊆ A`
//!   with `J` accepting and `A` rejecting;
//! * **persistence** — dually, no rejecting cycle inside an accepting one;
//! * **obligation** — both recurrence and persistence (equivalently: all
//!   cycles within each reachable SCC have the same acceptance status);
//! * **reactivity** — no chain `B ⊆ J ⊆ A` with `B, A` rejecting and `J`
//!   accepting characterizes *simple* reactivity. Every ω-regular language
//!   sits at some finite level of the reactivity hierarchy, and
//!   [`reactivity_index`] computes that exact level; [`obligation_index_of`]
//!   does the same for the obligation sub-hierarchy.
//!
//! # The color-lattice construction
//!
//! The checks quantify over *all* accessible cycles, of which there can be
//! exponentially many. We exploit the fact that whether a cycle `C` is
//! accepting depends only on which acceptance atoms (the state sets
//! appearing in the condition — its "colors") `C` intersects. For an anchor
//! state `q` and a set `D` of colors, let `S(q, D)` be the SCC containing
//! `q` in the graph restricted to states whose colors all lie in `D`. Then:
//!
//! * every cycle `C ∋ q` satisfies `C ⊆ S(q, colors(C))` and
//!   `colors(S(q, colors(C))) = colors(C)`, so the canonical SCC has the
//!   same acceptance status as `C`;
//! * for a fixed anchor, `D₁ ⊆ D₂` implies `S(q, D₁) ⊆ S(q, D₂)`, so every
//!   ⊆-chain of cycles through `q` maps to a ⊆-chain of canonical SCCs with
//!   identical statuses.
//!
//! Hence the existence of alternating cycle chains — which is what all the
//! checks above ask — is decidable by dynamic programming over the lattice
//! of color subsets, anchored at each state in turn: `O(2^m)` SCC passes for
//! `m` colors, i.e. polynomial in the automaton for any fixed acceptance
//! condition.

use crate::acceptance::Acceptance;
use crate::bitset::BitSet;
use crate::omega::OmegaAutomaton;
use crate::scc::tarjan_scc;
use crate::StateId;

/// The verdict of [`classify`]: membership of the automaton's language in
/// each class of the hierarchy, plus the exact hierarchy indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// `Π = A(Φ)` for some finitary `Φ` (topologically closed, Π₁).
    pub is_safety: bool,
    /// `Π = E(Φ)` (open, Σ₁).
    pub is_guarantee: bool,
    /// Finite boolean combination of safety and guarantee properties
    /// (Δ₂ = Π₂ ∩ Σ₂).
    pub is_obligation: bool,
    /// `Π = R(Φ)` (G_δ, Π₂) — deterministic-Büchi realizable.
    pub is_recurrence: bool,
    /// `Π = P(Φ)` (F_σ, Σ₂) — deterministic-co-Büchi realizable.
    pub is_persistence: bool,
    /// Simple reactivity: `R(Φ) ∪ P(Ψ)` — a single Streett pair suffices.
    pub is_simple_reactivity: bool,
    /// Minimal `n` such that the language is an intersection of `n` simple
    /// obligation properties, if it is an obligation property at all.
    pub obligation_index: Option<usize>,
    /// Minimal `n` such that the language is an intersection of `n` simple
    /// reactivity properties (every ω-regular language has one).
    pub reactivity_index: usize,
}

impl Classification {
    /// The most specific class name, for display purposes.
    pub fn strictest_class_name(&self) -> &'static str {
        if self.is_safety && self.is_guarantee {
            "safety ∩ guarantee"
        } else if self.is_safety {
            "safety"
        } else if self.is_guarantee {
            "guarantee"
        } else if self.is_obligation {
            "obligation"
        } else if self.is_recurrence {
            "recurrence"
        } else if self.is_persistence {
            "persistence"
        } else if self.is_simple_reactivity {
            "simple reactivity"
        } else {
            "reactivity"
        }
    }

    /// The Borel-level name used in the paper's first-order
    /// characterization: Π₁/Σ₁/Δ₂/Π₂/Σ₂/Δ₃.
    pub fn borel_name(&self) -> &'static str {
        if self.is_safety && self.is_guarantee {
            "Π₁ ∩ Σ₁"
        } else if self.is_safety {
            "Π₁"
        } else if self.is_guarantee {
            "Σ₁"
        } else if self.is_obligation {
            "Δ₂"
        } else if self.is_recurrence {
            "Π₂"
        } else if self.is_persistence {
            "Σ₂"
        } else {
            "Δ₃"
        }
    }
}

/// Fully classifies the language of `aut` in the safety–progress hierarchy.
///
/// This is a thin wrapper over the single-walk full verdict of
/// [`crate::analysis::Analysis::classification`]; build an `Analysis`
/// directly to share the underlying caches across further queries.
pub fn classify(aut: &OmegaAutomaton) -> Classification {
    crate::analysis::Analysis::new(aut.clone())
        .classification()
        .clone()
}

/// Classifies a batch of automata, fanning the suite out across the
/// worker pool of [`crate::par`] (one automaton per work item; the
/// lattice walk inside each item runs sequentially, so the pool is never
/// oversubscribed).
///
/// Verdicts are returned in input order and are identical to calling
/// [`classify`] on each automaton — the batch only changes the schedule,
/// never the result. `spec-lint --jobs`, the seeded sweeps of
/// `tab_decision`/`tab_lint`, and the `tab_parallel` scaling series all
/// go through here.
pub fn classify_suite(auts: &[OmegaAutomaton]) -> Vec<Classification> {
    classify_suite_with(crate::par::thread_count(), auts)
}

/// [`classify_suite`] with an explicit worker count (the thread-scaling
/// experiment pins 1/2/4/N workers).
pub fn classify_suite_with(threads: usize, auts: &[OmegaAutomaton]) -> Vec<Classification> {
    crate::par::map_with(threads, auts, |aut| {
        crate::analysis::Analysis::new(aut.clone())
            .classification()
            .clone()
    })
}

/// The safety closure of the automaton's language: an automaton for
/// `A(Pref(Π))` — topologically, the closure of `Π` in `Σ^ω`.
///
/// Construction: a run is accepted iff it never leaves the *live* states
/// (states with non-empty residual language). Dead states are closed under
/// successors in a deterministic complete automaton, so the acceptance
/// condition `Fin(dead)` expresses exactly "every prefix is a prefix of some
/// word in Π".
pub fn safety_closure(aut: &OmegaAutomaton) -> OmegaAutomaton {
    let live = aut.live_states();
    let dead = live.complement(aut.num_states());
    aut.with_acceptance(Acceptance::Fin(dead))
}

/// Whether the language is a safety property: `Π` equals its safety
/// closure.
///
/// Since `Π ⊆ A(Pref(Π))` always holds, only the reverse inclusion is
/// checked.
pub fn is_safety(aut: &OmegaAutomaton) -> bool {
    safety_closure(aut).is_subset_of(aut)
}

/// Whether the language is a guarantee property (its complement is safety).
pub fn is_guarantee(aut: &OmegaAutomaton) -> bool {
    is_safety(&aut.complement())
}

/// Whether the language is a recurrence property (G_δ; deterministic-Büchi
/// realizable): no accessible accepting cycle sits inside a rejecting one.
pub fn is_recurrence(aut: &OmegaAutomaton) -> bool {
    !ChainAnalysis::new(aut).has_chain(&[true, false])
}

/// Whether the language is a persistence property (F_σ; deterministic
/// co-Büchi realizable): no accessible rejecting cycle sits inside an
/// accepting one.
pub fn is_persistence(aut: &OmegaAutomaton) -> bool {
    !ChainAnalysis::new(aut).has_chain(&[false, true])
}

/// Whether the language is an obligation property (a finite boolean
/// combination of safety and guarantee properties; equivalently, both a
/// recurrence and a persistence property — the paper's Δ₂ = Π₂ ∩ Σ₂).
pub fn is_obligation(aut: &OmegaAutomaton) -> bool {
    let chains = ChainAnalysis::new(aut);
    !chains.has_chain(&[true, false]) && !chains.has_chain(&[false, true])
}

/// Whether the language is a *simple* reactivity property (expressible as
/// `R(Φ) ∪ P(Ψ)`, i.e. with a single Streett pair): no accessible chain
/// `B ⊆ J ⊆ A` with `B, A` rejecting and `J` accepting (the paper's §5.1
/// reactivity check with the maximal chain length 1).
pub fn is_simple_reactivity(aut: &OmegaAutomaton) -> bool {
    !ChainAnalysis::new(aut).has_chain(&[false, true, false])
}

/// Whether the automaton is *weak*: every reachable SCC is homogeneous
/// (all its cycles share one acceptance status). Weak automata recognize
/// exactly the obligation (Staiger–Wagner) languages; this is the
/// structural counterpart of [`is_obligation`] on the given automaton.
pub fn is_weak(aut: &OmegaAutomaton) -> bool {
    let reachable = aut.reachable_states();
    let sccs = tarjan_scc(aut, Some(&reachable));
    let chains = ChainAnalysis::new(aut);
    // Homogeneity of an SCC = no accepting and rejecting cycle anchored in
    // it; reuse the per-anchor canonical cycles.
    for c in 0..sccs.len() {
        if !sccs.has_cycle[c] {
            continue;
        }
        let mut saw_acc = false;
        let mut saw_rej = false;
        for &q in &sccs.members[c] {
            for &(accepting, _) in &chains.anchor_statuses[q as usize] {
                if accepting {
                    saw_acc = true;
                } else {
                    saw_rej = true;
                }
            }
        }
        if saw_acc && saw_rej {
            return false;
        }
    }
    true
}

/// The exact *Rabin index*: the minimal number of Rabin pairs any
/// deterministic Rabin automaton for the language needs — dual to
/// [`reactivity_index`], computed as the reactivity index of the
/// complement (Wagner's chains with the rejecting/accepting roles
/// swapped).
pub fn rabin_index(aut: &OmegaAutomaton) -> usize {
    ChainAnalysis::new(&aut.complement()).reactivity_index()
}

/// The exact reactivity index: the minimal `k` such that the language is an
/// intersection of `k` simple reactivity properties (equivalently, is
/// recognized by some deterministic Streett automaton with `k` pairs).
///
/// Per Wagner \[Wag79] (as quoted in the paper's §5.1), this is the maximal
/// `n` admitting a chain of accessible cycles
/// `B₁ ⊆ J₁ ⊆ B₂ ⊆ … ⊆ Bₙ ⊆ Jₙ` with `Bᵢ` rejecting and `Jᵢ` accepting.
/// Languages whose cycles never alternate that way (safety, guarantee,
/// obligation, recurrence, persistence) get index 1 by convention: they are
/// trivially simple reactivity.
pub fn reactivity_index(aut: &OmegaAutomaton) -> usize {
    ChainAnalysis::new(aut).reactivity_index()
}

/// The minimal `n` such that the language — **assumed** to be an obligation
/// property — is an intersection of `n` simple obligation properties
/// `A(Φᵢ) ∪ E(Ψᵢ)` (the paper's `Obl_n` sub-hierarchy).
///
/// For obligation languages every reachable SCC is *homogeneous* (all its
/// cycles share one acceptance status), so acceptance of a run depends only
/// on the SCC it settles in, and the index is governed by the status
/// alternations along paths of the SCC condensation. Writing a path's
/// settled-SCC statuses as an alternating word over {G, B}, the CNF size is
/// the number of G→B transitions **with a virtual leading G** (a path that
/// starts bad pays for the entry): `[G,B,G] ↦ 1` (e.g. `□a ∨ ◇c`),
/// `[B,G] ↦ 1` (`◇b`), `[B,G,B] ↦ 2` (`□¬c ∧ ◇b`, which provably has no
/// `A ∪ E` form), `[G,(B,G)^k] ↦ k` (the `Obl_k` witness family). This is
/// cross-validated against the constructive `Obl₁` decomposition in
/// `hierarchy-topology`.
///
/// Returns at least 1 (∅ and `Σ^ω` are trivially `Obl₁`).
pub fn obligation_index_of(aut: &OmegaAutomaton) -> usize {
    let reachable = aut.reachable_states();
    let sccs = tarjan_scc(aut, Some(&reachable));
    let n_comp = sccs.len();
    // Status of each component: Some(accepting) for components with a
    // cycle, None for transient components. The per-component evaluations
    // are independent, so they ride the worker pool.
    let status: Vec<Option<bool>> = crate::par::map_indices(n_comp, |c| {
        sccs.has_cycle[c].then(|| aut.acceptance().accepts_infinity_set(&sccs.member_set(c)))
    });
    // Condensation successor lists. Tarjan numbers components in reverse
    // topological order, so every inter-component edge goes from a higher
    // index to a lower one.
    let mut comp_succs: Vec<Vec<usize>> = vec![Vec::new(); n_comp];
    for q in reachable.iter() {
        let cq = sccs.component[q];
        for sym in aut.alphabet().symbols() {
            let ct = sccs.component[aut.step(q as StateId, sym) as usize];
            if ct != cq && !comp_succs[cq].contains(&ct) {
                comp_succs[cq].push(ct);
            }
        }
    }
    let init = sccs.component[aut.initial() as usize];
    obligation_index_from_condensation(&comp_succs, &status, init)
}

/// The obligation-index DP over a condensation DAG (shared between
/// [`obligation_index_of`] and the cached condensation of
/// [`crate::analysis::Analysis`]). `comp_succs`/`status` follow Tarjan's
/// reverse topological numbering (successors have smaller indices).
pub(crate) fn obligation_index_from_condensation(
    comp_succs: &[Vec<usize>],
    status: &[Option<bool>],
    init: usize,
) -> usize {
    let n_comp = status.len();
    // DP in topological order (increasing index = successors first):
    // down[c][phase] = max number of good→bad crossings on any path starting
    // at component c, where phase records the status of the previously seen
    // non-trivial SCC (0 = good — also the virtual initial status, 1 = bad).
    let mut down = vec![[0usize; 2]; n_comp];
    for c in 0..n_comp {
        for phase in 0..2 {
            // Entering component c in `phase`.
            let (gain, next_phase) = match status[c] {
                Some(false) if phase == 0 => (1, 1), // good → bad crossing
                Some(false) => (0, 1),
                Some(true) => (0, 0),
                None => (0, phase),
            };
            let best_below = comp_succs[c]
                .iter()
                .map(|&s| down[s][next_phase])
                .max()
                .unwrap_or(0);
            down[c][phase] = gain + best_below;
        }
    }
    down[init][0].max(1)
}

/// Per-anchor canonical-cycle analysis over the color lattice (see module
/// docs). Exposes the alternating-chain queries used by all classification
/// procedures.
#[derive(Debug, Clone)]
pub struct ChainAnalysis {
    /// For each state `q`: the canonical cycles anchored at `q`, as
    /// `(accepting, lattice_mask)` pairs in increasing `lattice_mask` order,
    /// where `lattice_mask` is the color set `D` of the restriction whose
    /// SCC around `q` the entry describes. Unreachable or acyclic anchors
    /// get an empty list.
    anchor_statuses: Vec<Vec<(bool, u32)>>,
}

impl ChainAnalysis {
    /// Runs the analysis on `aut`.
    ///
    /// Complexity: `O(2^m)` SCC decompositions for `m` distinct acceptance
    /// atoms — polynomial in the automaton for any fixed acceptance
    /// condition.
    ///
    /// # Panics
    ///
    /// Panics if the acceptance condition has more than 16 distinct atom
    /// sets; the hierarchy constructions never produce that many.
    pub fn new(aut: &OmegaAutomaton) -> Self {
        let reachable = aut.reachable_states();
        // Flatten once: every lattice point's restricted Tarjan pass
        // walks the CSR core instead of re-enumerating `step` per symbol.
        let flat = crate::flat::FlatAutomaton::of(aut);
        Self::new_par(aut, &reachable, |allowed| {
            std::sync::Arc::new(tarjan_scc(flat.graph(), Some(allowed)))
        })
    }

    /// Like [`ChainAnalysis::new`], but with the reachable set supplied
    /// and every SCC decomposition requested through `scc_of` — the hook
    /// [`crate::analysis::Analysis`] uses to route the lattice walk
    /// through its shared memo table. This variant accepts a stateful
    /// `FnMut` and walks the lattice sequentially; it doubles as the
    /// single-threaded oracle for the parallel sweep.
    pub fn new_with(
        aut: &OmegaAutomaton,
        reachable: &BitSet,
        mut scc_of: impl FnMut(&BitSet) -> std::sync::Arc<crate::scc::SccDecomposition>,
    ) -> Self {
        let walk = LatticeWalk::new(aut, reachable);
        let points: Vec<LatticePoint> = (0..walk.point_count())
            .map(|d| walk.point(d, &mut scc_of))
            .collect();
        walk.merge(points)
    }

    /// The parallel lattice sweep: every color subset's restricted SCC
    /// pass is an independent Tarjan run, so the `2^m` points fan out
    /// across the worker pool of [`crate::par`] and the per-anchor
    /// statuses are merged in mask order afterwards (the merge order is
    /// what [`ChainAnalysis::has_chain`]'s DP relies on, so it stays
    /// sequential and deterministic).
    ///
    /// `scc_of` must be shareable across workers; both the free
    /// `tarjan_scc` closure of [`ChainAnalysis::new`] and the memo-table
    /// hook of [`crate::analysis::Analysis::chains`] are (`Analysis` is
    /// `Sync`, and its caches tolerate concurrent fills).
    pub fn new_par(
        aut: &OmegaAutomaton,
        reachable: &BitSet,
        scc_of: impl Fn(&BitSet) -> std::sync::Arc<crate::scc::SccDecomposition> + Sync,
    ) -> Self {
        let walk = LatticeWalk::new(aut, reachable);
        let points = crate::par::map_indices(walk.point_count(), |d| {
            walk.point(d, &mut |allowed: &BitSet| scc_of(allowed))
        });
        walk.merge(points)
    }

    /// Whether there is an ascending chain of accessible cycles
    /// `C₁ ⊆ C₂ ⊆ … ⊆ C_r` whose acceptance statuses spell `pattern`
    /// (`pattern[i]` = is `Cᵢ` accepting).
    pub fn has_chain(&self, pattern: &[bool]) -> bool {
        self.max_matching_prefix(pattern) == pattern.len()
    }

    /// The reactivity index: maximal `n` with an alternating chain
    /// `B₁ ⊆ J₁ ⊆ … ⊆ Bₙ ⊆ Jₙ` (`B` rejecting, `J` accepting), but at
    /// least 1.
    pub fn reactivity_index(&self) -> usize {
        self.alternating_index(false)
    }

    /// The maximal `n` admitting an alternating chain of `n` status pairs
    /// starting with `first`: `first = false` is the reactivity index
    /// (`(B,J)^n` chains), `first = true` the Rabin index of the language
    /// (`(J,B)^n` chains — the complement's reactivity chains, since
    /// complementation keeps the canonical cycles and flips every
    /// status). At least 1 in both orientations.
    pub fn alternating_index(&self, first: bool) -> usize {
        let mut n = 0usize;
        loop {
            let mut pattern = Vec::new();
            for _ in 0..=n {
                pattern.push(first);
                pattern.push(!first);
            }
            if self.has_chain(&pattern) {
                n += 1;
            } else {
                return n.max(1);
            }
        }
    }

    /// The per-anchor canonical-cycle statuses: `statuses()[q]` lists the
    /// `(accepting, lattice_mask)` entries of state `q` in increasing
    /// mask order (empty for unreachable or acyclic anchors).
    pub fn anchor_statuses(&self) -> &[Vec<(bool, u32)>] {
        &self.anchor_statuses
    }

    /// Longest prefix of `pattern` realizable as an ascending cycle chain.
    fn max_matching_prefix(&self, pattern: &[bool]) -> usize {
        let mut best = 0;
        for statuses in &self.anchor_statuses {
            if statuses.is_empty() {
                continue;
            }
            best = best.max(longest_prefix_for_anchor(statuses, pattern));
            if best == pattern.len() {
                return best;
            }
        }
        best
    }
}

/// One lattice point's contribution to the chain analysis: the restricted
/// decomposition plus the indices and statuses of its canonical
/// (cycle-bearing) components. `None` for points whose restriction is
/// empty.
type LatticePoint = Option<(
    std::sync::Arc<crate::scc::SccDecomposition>,
    Vec<(usize, bool)>,
)>;

/// The shared skeleton of the sequential and parallel lattice sweeps:
/// per-state color masks plus the per-point computation and the
/// order-sensitive merge. Points are independent (this is what
/// [`ChainAnalysis::new_par`] exploits); the merge appends statuses in
/// increasing mask order, the invariant the chain DP needs.
struct LatticeWalk<'a> {
    aut: &'a OmegaAutomaton,
    reachable: &'a BitSet,
    atoms: Vec<BitSet>,
    color: Vec<u32>,
}

impl<'a> LatticeWalk<'a> {
    fn new(aut: &'a OmegaAutomaton, reachable: &'a BitSet) -> Self {
        let atoms = aut.acceptance().atom_sets();
        assert!(
            atoms.len() <= 16,
            "acceptance condition has too many distinct atoms ({})",
            atoms.len()
        );
        let color: Vec<u32> = (0..aut.num_states())
            .map(|q| {
                let mut mask = 0u32;
                for (i, s) in atoms.iter().enumerate() {
                    if s.contains(q) {
                        mask |= 1 << i;
                    }
                }
                mask
            })
            .collect();
        LatticeWalk {
            aut,
            reachable,
            atoms,
            color,
        }
    }

    fn point_count(&self) -> usize {
        1usize << self.atoms.len()
    }

    fn point(
        &self,
        d: usize,
        scc_of: &mut dyn FnMut(&BitSet) -> std::sync::Arc<crate::scc::SccDecomposition>,
    ) -> LatticePoint {
        let d = d as u32;
        let allowed: BitSet = self
            .reachable
            .iter()
            .filter(|&q| self.color[q] & !d == 0)
            .collect();
        if allowed.is_empty() {
            return None;
        }
        let sccs = scc_of(&allowed);
        let mut comps = Vec::new();
        for c in 0..sccs.len() {
            if !sccs.has_cycle[c] {
                continue;
            }
            let mut colors_mask = 0u32;
            for &q in &sccs.members[c] {
                colors_mask |= self.color[q as usize];
            }
            comps.push((
                c,
                eval_on_colors(self.aut.acceptance(), colors_mask, &self.atoms),
            ));
        }
        Some((sccs, comps))
    }

    fn merge(&self, points: Vec<LatticePoint>) -> ChainAnalysis {
        let mut anchor_statuses: Vec<Vec<(bool, u32)>> = vec![Vec::new(); self.aut.num_states()];
        for (d, point) in points.into_iter().enumerate() {
            let Some((sccs, comps)) = point else { continue };
            for (c, accepting) in comps {
                for &q in &sccs.members[c] {
                    anchor_statuses[q as usize].push((accepting, d as u32));
                }
            }
        }
        ChainAnalysis { anchor_statuses }
    }
}

/// Evaluates an acceptance condition given only which atoms (by index) a
/// cycle intersects.
fn eval_on_colors(acc: &Acceptance, colors_mask: u32, atoms: &[BitSet]) -> bool {
    match acc {
        Acceptance::True => true,
        Acceptance::False => false,
        Acceptance::Inf(s) => {
            let i = atoms.iter().position(|a| a == s).expect("atom present");
            colors_mask & (1 << i) != 0
        }
        Acceptance::Fin(s) => {
            let i = atoms.iter().position(|a| a == s).expect("atom present");
            colors_mask & (1 << i) == 0
        }
        Acceptance::And(xs) => xs.iter().all(|x| eval_on_colors(x, colors_mask, atoms)),
        Acceptance::Or(xs) => xs.iter().any(|x| eval_on_colors(x, colors_mask, atoms)),
    }
}

/// DP over one anchor's canonical cycles: the longest prefix of `pattern`
/// realizable by an ascending sub-chain. Entries are ordered by increasing
/// lattice mask, and `D₁ ⊆ D₂` implies `S(q, D₁) ⊆ S(q, D₂)`, so subset
/// pairs always appear in order.
fn longest_prefix_for_anchor(statuses: &[(bool, u32)], pattern: &[bool]) -> usize {
    let k = pattern.len();
    let n = statuses.len();
    let mut dp = vec![0usize; n];
    let mut best = 0;
    for i in 0..n {
        let (acc_i, d_i) = statuses[i];
        let mut longest = usize::from(pattern[0] == acc_i);
        for j in 0..i {
            let (_, d_j) = statuses[j];
            if d_j & !d_i == 0 && dp[j] > 0 && dp[j] < k && pattern[dp[j]] == acc_i {
                longest = longest.max(dp[j] + 1);
            }
        }
        dp[i] = longest;
        best = best.max(longest);
        if best == k {
            return k;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Last-symbol tracker over {a,b}: state 0 after a, state 1 after b.
    fn last_sym(sigma: &Alphabet, acc: Acceptance) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(sigma, 2, 0, |_, s| if s == b { 1 } else { 0 }, acc)
    }

    /// □a ("never b"): safety.
    fn always_a(sigma: &Alphabet) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        )
    }

    /// ◇b ("eventually b"): guarantee.
    fn eventually_b(sigma: &Alphabet) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        )
    }

    #[test]
    fn safety_of_always_a() {
        let sigma = ab();
        let m = always_a(&sigma);
        let c = classify(&m);
        assert!(c.is_safety);
        assert!(!c.is_guarantee);
        assert!(c.is_obligation);
        assert!(c.is_recurrence && c.is_persistence && c.is_simple_reactivity);
        assert_eq!(c.strictest_class_name(), "safety");
        assert_eq!(c.borel_name(), "Π₁");
        assert_eq!(c.obligation_index, Some(1));
        assert_eq!(c.reactivity_index, 1);
    }

    #[test]
    fn guarantee_of_eventually_b() {
        let sigma = ab();
        let m = eventually_b(&sigma);
        let c = classify(&m);
        assert!(!c.is_safety);
        assert!(c.is_guarantee);
        assert!(c.is_obligation);
        assert_eq!(c.strictest_class_name(), "guarantee");
        assert_eq!(c.borel_name(), "Σ₁");
        assert_eq!(c.obligation_index, Some(1));
    }

    #[test]
    fn recurrence_of_inf_b() {
        let sigma = ab();
        let m = last_sym(&sigma, Acceptance::inf([1])); // □◇b
        let c = classify(&m);
        assert!(!c.is_safety && !c.is_guarantee && !c.is_obligation);
        assert!(c.is_recurrence);
        assert!(!c.is_persistence);
        assert!(c.is_simple_reactivity);
        assert_eq!(c.strictest_class_name(), "recurrence");
        assert_eq!(c.borel_name(), "Π₂");
        assert_eq!(c.obligation_index, None);
        assert_eq!(c.reactivity_index, 1);
    }

    #[test]
    fn persistence_of_ev_alw_a() {
        let sigma = ab();
        let m = last_sym(&sigma, Acceptance::fin([1])); // ◇□a
        let c = classify(&m);
        assert!(!c.is_recurrence);
        assert!(c.is_persistence);
        assert_eq!(c.strictest_class_name(), "persistence");
        assert_eq!(c.borel_name(), "Σ₂");
    }

    #[test]
    fn trivial_languages_are_in_every_class() {
        let sigma = ab();
        for m in [
            OmegaAutomaton::empty(&sigma),
            OmegaAutomaton::universal(&sigma),
        ] {
            let c = classify(&m);
            assert!(c.is_safety && c.is_guarantee && c.is_obligation);
            assert!(c.is_recurrence && c.is_persistence && c.is_simple_reactivity);
            assert_eq!(c.strictest_class_name(), "safety ∩ guarantee");
        }
    }

    #[test]
    fn simple_obligation_proper() {
        // □a ∨ ◇c over {a,b,c}: obligation but neither safety nor
        // guarantee; inside both recurrence and persistence.
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let cc = sigma.symbol("c").unwrap();
        // states: 0 = only a so far; 1 = saw b before any c; 2 = saw c.
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| {
                if q == 2 || s == cc {
                    2
                } else if q == 1 || s == b {
                    1
                } else {
                    0
                }
            },
            Acceptance::fin([1, 2]).or(Acceptance::inf([2])),
        );
        let c = classify(&m);
        assert!(!c.is_safety && !c.is_guarantee);
        assert!(c.is_obligation);
        assert!(c.is_recurrence && c.is_persistence);
        assert_eq!(c.strictest_class_name(), "obligation");
        assert_eq!(c.borel_name(), "Δ₂");
        assert_eq!(c.obligation_index, Some(1));
    }

    #[test]
    fn strong_fairness_is_strict_simple_reactivity() {
        // □◇b ∨ ◇□(¬a) over {a,b,c}, tracking the last symbol: a simple
        // reactivity property in neither recurrence nor persistence.
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            move |_, s| {
                if s == a {
                    0
                } else if s == b {
                    1
                } else {
                    2
                }
            },
            Acceptance::inf([1]).or(Acceptance::fin([0])),
        );
        let c = classify(&m);
        assert!(!c.is_recurrence && !c.is_persistence && !c.is_obligation);
        assert!(c.is_simple_reactivity);
        assert_eq!(c.strictest_class_name(), "simple reactivity");
        assert_eq!(c.borel_name(), "Δ₃");
        assert_eq!(c.reactivity_index, 1);
    }

    #[test]
    fn safety_closure_is_closed_and_contains() {
        let sigma = ab();
        let m = eventually_b(&sigma); // ◇b, not safety
        let cl = safety_closure(&m);
        assert!(is_safety(&cl));
        assert!(m.is_subset_of(&cl));
        // cl(◇b) = Σ^ω since every finite word extends into ◇b.
        assert!(cl.is_universal());
        // Closure of a safety property is itself.
        let s = always_a(&sigma);
        assert!(safety_closure(&s).equivalent(&s));
    }

    #[test]
    fn lower_classes_are_inside_higher_ones() {
        let sigma = ab();
        for m in [always_a(&sigma), eventually_b(&sigma)] {
            assert!(is_recurrence(&m));
            assert!(is_persistence(&m));
            assert!(is_obligation(&m));
            assert!(is_simple_reactivity(&m));
        }
    }

    #[test]
    fn reactivity_index_two() {
        // Two independent Streett pairs over {a,b,c,d}, tracking the last
        // symbol: (Inf{a-state} ∨ Fin{b-state}) ∧ (Inf{c-state} ∨
        // Fin{d-state}).
        let sigma = Alphabet::new(["a", "b", "c", "d"]).unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            4,
            0,
            |_, s| s.index() as StateId,
            Acceptance::inf([0])
                .or(Acceptance::fin([1]))
                .and(Acceptance::inf([2]).or(Acceptance::fin([3]))),
        );
        let c = classify(&m);
        assert!(!c.is_simple_reactivity);
        assert_eq!(c.reactivity_index, 2);
        assert_eq!(c.strictest_class_name(), "reactivity");
    }

    #[test]
    fn obligation_index_two() {
        // Over {a, d}: "reach an a-block, then after a d, reach another a"…
        // Simplest Obl₂-style shape: states 0(B) -a-> 1(G) -d-> 2(B) -a-> 3(G),
        // self-loops keep status; acceptance = settle in 1 or 3.
        let sigma = Alphabet::new(["a", "d"]).unwrap();
        let a = sigma.symbol("a").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            4,
            0,
            move |q, s| match (q, s == a) {
                (0, true) => 1,
                (0, false) => 0,
                (1, true) => 1,
                (1, false) => 2,
                (2, true) => 3,
                (2, false) => 2,
                (3, _) => 3,
                _ => unreachable!(),
            },
            Acceptance::fin([0, 2]),
        );
        let c = classify(&m);
        assert!(c.is_obligation);
        assert_eq!(c.obligation_index, Some(2));
    }

    #[test]
    fn chain_analysis_direct() {
        let sigma = ab();
        let m = last_sym(&sigma, Acceptance::inf([1]));
        let ch = ChainAnalysis::new(&m);
        // Accepting cycles exist, rejecting cycles exist:
        assert!(ch.has_chain(&[true]));
        assert!(ch.has_chain(&[false]));
        // rejecting {0} ⊆ accepting {0,1} exists:
        assert!(ch.has_chain(&[false, true]));
        // accepting inside rejecting does not:
        assert!(!ch.has_chain(&[true, false]));
    }
}

#[cfg(test)]
mod rabin_index_tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn rabin_index_duality() {
        // □◇b has Rabin index 1 (it is Büchi = one Rabin pair), and so
        // does its complement ◇□a; the reactivity-2 style condition has
        // Rabin index 2.
        let sigma = Alphabet::new(["a", "b", "c", "d"]).unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            4,
            0,
            |_, s| s.index() as StateId,
            Acceptance::inf([1]),
        );
        assert_eq!(rabin_index(&m), 1);
        assert_eq!(rabin_index(&m.complement()), 1);
        let two_pairs = m.with_acceptance(
            Acceptance::inf([0])
                .or(Acceptance::fin([1]))
                .and(Acceptance::inf([2]).or(Acceptance::fin([3]))),
        );
        // Streett-2 condition: its complement is Rabin-2, so the Rabin
        // index of the complement equals the reactivity index of the
        // original.
        assert_eq!(
            rabin_index(&two_pairs.complement()),
            reactivity_index(&two_pairs)
        );
    }
}

#[cfg(test)]
mod weak_tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn weakness_matches_obligation() {
        use crate::random::random_streett;
        use crate::random::rng::SeedableRng;
        use crate::random::rng::StdRng;
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..40 {
            let (aut, _) = random_streett(&mut rng, &sigma, 5, 2, 0.3);
            // A weak automaton's language is an obligation; the converse
            // need not hold structurally, but for these randomly generated
            // automata language-obligation coincides with structural
            // weakness exactly when every SCC is homogeneous:
            if is_weak(&aut) {
                assert!(is_obligation(&aut), "weak automata recognize obligations");
            }
            if !is_obligation(&aut) {
                assert!(!is_weak(&aut));
            }
        }
    }
}

#[cfg(test)]
mod obligation_index_orientation_tests {
    use super::*;
    use crate::alphabet::Alphabet;

    /// □¬c ∧ ◇b over {a,b,c} has no A(Φ) ∪ E(Ψ) form (chain [B,G,B]), so
    /// its obligation index is 2 — the case that distinguishes the G→B
    /// orientation of the condensation DP from the naive B→G count.
    #[test]
    fn chains_ending_bad_cost_an_extra_conjunct() {
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let cc = sigma.symbol("c").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| {
                if q == 2 || s == cc {
                    2
                } else if q == 1 || s == b {
                    1
                } else {
                    0
                }
            },
            Acceptance::inf([1]).and(Acceptance::fin([2])),
        );
        let c = classify(&m);
        assert!(c.is_obligation);
        assert_eq!(c.obligation_index, Some(2));
        // The union-form dual, □a ∨ ◇c, stays at index 1.
        let dual = m.with_acceptance(Acceptance::fin([1, 2]).or(Acceptance::inf([2])));
        assert_eq!(classify(&dual).obligation_index, Some(1));
        // And complementation maps index-1-union to index-?-intersection:
        // ¬(□a ∨ ◇c) = ◇¬a ∧ □¬c has a [B,G,B]-style chain too.
        let comp = classify(&dual.complement());
        assert!(comp.is_obligation);
        assert_eq!(comp.obligation_index, Some(2));
    }
}
