//! Nondeterministic finite automata with ε-transitions, and the subset
//! construction to [`Dfa`].
//!
//! NFAs are the natural target of the Thompson construction from regular
//! expressions (in the `hierarchy-lang` crate); everything downstream of the
//! hierarchy works on the determinized form.

use crate::alphabet::{Alphabet, Symbol};
use crate::bitset::BitSet;
use crate::dfa::Dfa;
use crate::StateId;
use std::collections::{HashMap, VecDeque};

/// A nondeterministic finite automaton with ε-transitions.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
///
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// let a = sigma.symbol("a").unwrap();
/// let mut n = Nfa::new(&sigma);
/// let s0 = n.add_state();
/// let s1 = n.add_state();
/// n.add_transition(s0, a, s1);
/// n.set_initial(s0);
/// n.add_accepting(s1);
/// let d = n.determinize();
/// assert!(d.accepts([a]));
/// assert!(!d.accepts([]));
/// ```
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Alphabet,
    /// `transitions[q]` maps each symbol to successor states; index
    /// `alphabet.len()` is used for ε.
    transitions: Vec<Vec<Vec<StateId>>>,
    initial: Vec<StateId>,
    accepting: BitSet,
}

impl Nfa {
    /// Creates an empty NFA (no states) over the alphabet.
    pub fn new(alphabet: &Alphabet) -> Self {
        Nfa {
            alphabet: alphabet.clone(),
            transitions: Vec::new(),
            initial: Vec::new(),
            accepting: BitSet::new(),
        }
    }

    /// The alphabet of the automaton.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.transitions
            .push(vec![Vec::new(); self.alphabet.len() + 1]);
        (self.transitions.len() - 1) as StateId
    }

    /// Adds a transition `from --sym--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, from: StateId, sym: Symbol, to: StateId) {
        assert!((to as usize) < self.num_states(), "state out of range");
        debug_assert!(
            (from as usize) < self.num_states(),
            "source state out of range"
        );
        self.transitions[from as usize][sym.index()].push(to);
    }

    /// Adds an ε-transition `from --ε--> to`.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_epsilon(&mut self, from: StateId, to: StateId) {
        let eps = self.alphabet.len();
        assert!((to as usize) < self.num_states(), "state out of range");
        debug_assert!(
            (from as usize) < self.num_states(),
            "source state out of range"
        );
        self.transitions[from as usize][eps].push(to);
    }

    /// Marks a state as initial (an NFA may have several).
    pub fn set_initial(&mut self, q: StateId) {
        debug_assert!((q as usize) < self.num_states(), "state out of range");
        if !self.initial.contains(&q) {
            self.initial.push(q);
        }
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, q: StateId) {
        debug_assert!((q as usize) < self.num_states(), "state out of range");
        self.accepting.insert(q as usize);
    }

    /// Whether `q` is accepting.
    pub fn is_accepting(&self, q: StateId) -> bool {
        self.accepting.contains(q as usize)
    }

    /// The ε-closure of the initial states.
    pub fn initial_closure(&self) -> BitSet {
        self.epsilon_closure(&self.initial.iter().map(|&q| q as usize).collect())
    }

    /// One symbol step from a set of states, **without** taking ε-closures
    /// on either side.
    pub fn symbol_successors(&self, set: &BitSet, sym: Symbol) -> BitSet {
        let mut next = BitSet::new();
        for q in set.iter() {
            for &t in &self.transitions[q][sym.index()] {
                next.insert(t as usize);
            }
        }
        next
    }

    /// The ε-closure of a set of states.
    pub fn epsilon_closure(&self, set: &BitSet) -> BitSet {
        let eps = self.alphabet.len();
        let mut closure = set.clone();
        let mut queue: VecDeque<usize> = set.iter().collect();
        while let Some(q) = queue.pop_front() {
            for &t in &self.transitions[q][eps] {
                if closure.insert(t as usize) {
                    queue.push_back(t as usize);
                }
            }
        }
        closure
    }

    /// Whether the NFA accepts the word (decided by explicit subset
    /// simulation; no determinization).
    pub fn accepts<I: IntoIterator<Item = Symbol>>(&self, word: I) -> bool {
        let mut current = self.epsilon_closure(&self.initial.iter().map(|&q| q as usize).collect());
        for sym in word {
            let mut next = BitSet::new();
            for q in current.iter() {
                for &t in &self.transitions[q][sym.index()] {
                    next.insert(t as usize);
                }
            }
            current = self.epsilon_closure(&next);
        }
        current.intersects(&self.accepting)
    }

    /// Subset construction: an equivalent complete DFA (minimized).
    pub fn determinize(&self) -> Dfa {
        let k = self.alphabet.len();
        let start =
            self.epsilon_closure(&self.initial.iter().map(|&q| q as usize).collect::<BitSet>());
        let mut index: HashMap<BitSet, StateId> = HashMap::new();
        let mut subsets: Vec<BitSet> = Vec::new();
        let mut delta: Vec<StateId> = Vec::new();
        index.insert(start.clone(), 0);
        subsets.push(start);
        let mut frontier = 0;
        while frontier < subsets.len() {
            let current = subsets[frontier].clone();
            for s in 0..k {
                let mut next = BitSet::new();
                for q in current.iter() {
                    for &t in &self.transitions[q][s] {
                        next.insert(t as usize);
                    }
                }
                let next = self.epsilon_closure(&next);
                let id = match index.get(&next) {
                    Some(&id) => id,
                    None => {
                        let id = subsets.len() as StateId;
                        index.insert(next.clone(), id);
                        subsets.push(next);
                        id
                    }
                };
                delta.push(id);
            }
            frontier += 1;
        }
        let accepting: BitSet = subsets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.intersects(&self.accepting))
            .map(|(i, _)| i)
            .collect();
        Dfa::from_parts(&self.alphabet, subsets.len(), 0, delta, accepting)
            .expect("subset construction yields a valid DFA")
            .minimize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn word(sigma: &Alphabet, s: &str) -> Vec<Symbol> {
        s.chars()
            .map(|c| sigma.symbol(&c.to_string()).unwrap())
            .collect()
    }

    /// NFA for Σ*b (nondeterministic guess of the final b).
    fn sigma_star_b(sigma: &Alphabet) -> Nfa {
        let b = sigma.symbol("b").unwrap();
        let a = sigma.symbol("a").unwrap();
        let mut n = Nfa::new(sigma);
        let s0 = n.add_state();
        let s1 = n.add_state();
        n.add_transition(s0, a, s0);
        n.add_transition(s0, b, s0);
        n.add_transition(s0, b, s1);
        n.set_initial(s0);
        n.add_accepting(s1);
        n
    }

    #[test]
    fn nfa_accepts() {
        let sigma = ab();
        let n = sigma_star_b(&sigma);
        assert!(n.accepts(word(&sigma, "ab")));
        assert!(n.accepts(word(&sigma, "b")));
        assert!(!n.accepts(word(&sigma, "ba")));
        assert!(!n.accepts(word(&sigma, "")));
    }

    #[test]
    fn determinize_matches_nfa() {
        let sigma = ab();
        let n = sigma_star_b(&sigma);
        let d = n.determinize();
        for w in ["", "a", "b", "ab", "ba", "abab", "abba", "bbb"] {
            assert_eq!(
                n.accepts(word(&sigma, w)),
                d.accepts(word(&sigma, w)),
                "disagreement on {w:?}"
            );
        }
        assert_eq!(d.num_states(), 2);
    }

    #[test]
    fn epsilon_transitions() {
        let sigma = ab();
        let a = sigma.symbol("a").unwrap();
        // ε-chain: s0 -ε-> s1 -a-> s2(acc), so the language is "a".
        let mut n = Nfa::new(&sigma);
        let s0 = n.add_state();
        let s1 = n.add_state();
        let s2 = n.add_state();
        n.add_epsilon(s0, s1);
        n.add_transition(s1, a, s2);
        n.set_initial(s0);
        n.add_accepting(s2);
        assert!(n.accepts([a]));
        assert!(!n.accepts([]));
        let d = n.determinize();
        assert!(d.accepts([a]));
        assert!(!d.accepts([a, a]));
    }

    #[test]
    fn epsilon_to_accepting_accepts_empty() {
        let sigma = ab();
        let mut n = Nfa::new(&sigma);
        let s0 = n.add_state();
        let s1 = n.add_state();
        n.add_epsilon(s0, s1);
        n.set_initial(s0);
        n.add_accepting(s1);
        assert!(n.accepts([]));
        assert!(n.determinize().accepts([]));
    }

    #[test]
    fn empty_nfa_rejects_everything() {
        let sigma = ab();
        let n = Nfa::new(&sigma);
        assert!(!n.accepts([]));
        let d = n.determinize();
        assert!(d.is_empty());
    }

    #[test]
    fn multiple_initial_states() {
        let sigma = ab();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let mut n = Nfa::new(&sigma);
        let s0 = n.add_state();
        let s1 = n.add_state();
        let acc = n.add_state();
        n.add_transition(s0, a, acc);
        n.add_transition(s1, b, acc);
        n.set_initial(s0);
        n.set_initial(s1);
        n.add_accepting(acc);
        let d = n.determinize();
        assert!(d.accepts([a]));
        assert!(d.accepts([b]));
        assert!(!d.accepts([a, b]));
    }
}
