//! Graphviz (DOT) export for automata, used by the examples and docs.

use crate::dfa::Dfa;
use crate::omega::OmegaAutomaton;
use crate::StateId;
use std::fmt::Write as _;

/// Renders a DFA as a Graphviz `digraph`. Accepting states are drawn with a
/// double circle; parallel edges are merged and labeled with symbol lists.
pub fn dfa_to_dot(dfa: &Dfa) -> String {
    let mut out = String::from("digraph dfa {\n  rankdir=LR;\n  node [shape=circle];\n");
    let _ = writeln!(out, "  init [shape=point];");
    let _ = writeln!(out, "  init -> s{};", dfa.initial());
    for q in 0..dfa.num_states() as StateId {
        if dfa.is_accepting(q) {
            let _ = writeln!(out, "  s{q} [shape=doublecircle];");
        }
        for (t, labels) in merged_edges(dfa.num_states(), |sym| dfa.step(q, sym), dfa.alphabet()) {
            let _ = writeln!(out, "  s{q} -> s{t} [label=\"{labels}\"];");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a deterministic ω-automaton as a Graphviz `digraph`; the
/// acceptance condition is written in the graph label.
pub fn omega_to_dot(aut: &OmegaAutomaton) -> String {
    let mut out = String::from("digraph omega {\n  rankdir=LR;\n  node [shape=circle];\n");
    let _ = writeln!(out, "  label=\"acceptance: {}\";", aut.acceptance());
    let _ = writeln!(out, "  init [shape=point];");
    let _ = writeln!(out, "  init -> s{};", aut.initial());
    for q in 0..aut.num_states() as StateId {
        for (t, labels) in merged_edges(aut.num_states(), |sym| aut.step(q, sym), aut.alphabet()) {
            let _ = writeln!(out, "  s{q} -> s{t} [label=\"{labels}\"];");
        }
    }
    out.push_str("}\n");
    out
}

fn merged_edges(
    num_states: usize,
    step: impl Fn(crate::alphabet::Symbol) -> StateId,
    alphabet: &crate::alphabet::Alphabet,
) -> Vec<(StateId, String)> {
    let mut per_target: Vec<Vec<&str>> = vec![Vec::new(); num_states];
    for sym in alphabet.symbols() {
        per_target[step(sym) as usize].push(alphabet.name(sym));
    }
    per_target
        .into_iter()
        .enumerate()
        .filter(|(_, syms)| !syms.is_empty())
        .map(|(t, syms)| (t as StateId, syms.join(",")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptance::Acceptance;
    use crate::alphabet::Alphabet;

    #[test]
    fn dfa_dot_contains_edges() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let d = Dfa::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            [1],
        );
        let dot = dfa_to_dot(&d);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("s0 -> s1"));
        assert!(dot.contains("label=\"a\""));
    }

    #[test]
    fn omega_dot_contains_acceptance() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let m = OmegaAutomaton::build(&sigma, 1, 0, |_, _| 0, Acceptance::inf([0]));
        let dot = omega_to_dot(&m);
        assert!(dot.contains("acceptance"));
        assert!(dot.contains("Inf"));
        assert!(dot.contains("s0 -> s0 [label=\"a,b\"]"));
    }
}
