//! Error type for automaton construction and combination.

use std::fmt;

/// Errors produced when constructing or combining automata.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AutomatonError {
    /// An alphabet with more than [`crate::alphabet::Alphabet::MAX_SYMBOLS`]
    /// symbols (or with none at all) was requested.
    AlphabetSize {
        /// The requested number of symbols.
        requested: usize,
    },
    /// Two symbols in an alphabet share the same name.
    DuplicateSymbol {
        /// The offending name.
        name: String,
    },
    /// An operation combined automata over different alphabets.
    AlphabetMismatch,
    /// A state index was out of range for the automaton.
    InvalidState {
        /// The offending state index.
        state: u32,
        /// The number of states in the automaton.
        states: usize,
    },
    /// A deterministic automaton was required but the transition structure is
    /// incomplete or nondeterministic.
    NotDeterministic,
    /// An HOA document could not be parsed (see [`crate::hoa::hoa_to_omega`]).
    HoaParse {
        /// What went wrong, with the offending line when available.
        message: String,
    },
}

impl fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutomatonError::AlphabetSize { requested } => write!(
                f,
                "alphabet must have between 1 and 64 symbols, got {requested}"
            ),
            AutomatonError::DuplicateSymbol { name } => {
                write!(f, "duplicate symbol name {name:?} in alphabet")
            }
            AutomatonError::AlphabetMismatch => {
                write!(f, "operation combined automata over different alphabets")
            }
            AutomatonError::InvalidState { state, states } => {
                write!(f, "state {state} out of range (automaton has {states})")
            }
            AutomatonError::NotDeterministic => {
                write!(f, "a complete deterministic automaton is required")
            }
            AutomatonError::HoaParse { message } => {
                write!(f, "HOA parse error: {message}")
            }
        }
    }
}

impl std::error::Error for AutomatonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(AutomatonError::AlphabetSize { requested: 65 }
            .to_string()
            .contains("65"));
        assert!(AutomatonError::DuplicateSymbol { name: "a".into() }
            .to_string()
            .contains("\"a\""));
        assert!(AutomatonError::AlphabetMismatch
            .to_string()
            .contains("alphabets"));
    }
}
