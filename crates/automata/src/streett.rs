//! Streett pairs and the named acceptance shapes of the paper.
//!
//! The paper's predicate automata carry a list of pairs `(Rᵢ, Pᵢ)` of
//! *recurrent* and *persistent* state sets; a run `r` is accepting iff for
//! each `i` either `inf(r) ∩ Rᵢ ≠ ∅` or `inf(r) ⊆ Pᵢ` (Streett acceptance,
//! \[Str82]). This module provides the pair types and their translation to
//! and from the boolean [`Acceptance`] conditions used by
//! [`crate::omega::OmegaAutomaton`], plus the standard named shapes:
//!
//! | shape       | condition                              | hierarchy class |
//! |-------------|----------------------------------------|-----------------|
//! | Büchi       | `Inf(R)`                               | recurrence      |
//! | co-Büchi    | `Fin(Q−P)`                             | persistence     |
//! | one pair    | `Inf(R) ∨ Fin(Q−P)`                    | simple reactivity |
//! | pair list   | `⋀ᵢ (Inf(Rᵢ) ∨ Fin(Q−Pᵢ))`             | reactivity      |

use crate::acceptance::Acceptance;
use crate::bitset::BitSet;

/// A single Streett pair `(R, P)`: the run must visit `R` infinitely often
/// or eventually stay inside `P`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreettPair {
    /// The recurrent set `R`.
    pub recurrent: BitSet,
    /// The persistent set `P`.
    pub persistent: BitSet,
}

impl StreettPair {
    /// Creates a pair from iterators of state indices.
    pub fn new<R, P>(recurrent: R, persistent: P) -> Self
    where
        R: IntoIterator<Item = usize>,
        P: IntoIterator<Item = usize>,
    {
        StreettPair {
            recurrent: recurrent.into_iter().collect(),
            persistent: persistent.into_iter().collect(),
        }
    }

    /// The acceptance condition of this pair alone, over an automaton with
    /// `num_states` states: `Inf(R) ∨ Fin(Q − P)`.
    pub fn acceptance(&self, num_states: usize) -> Acceptance {
        debug_assert!(
            self.recurrent.iter().all(|q| q < num_states)
                && self.persistent.iter().all(|q| q < num_states),
            "Streett pair sets must be subsets of the state set"
        );
        let outside_p = self.persistent.complement(num_states);
        Acceptance::Inf(self.recurrent.clone()).or(Acceptance::Fin(outside_p))
    }

    /// Whether a run with infinity set `inf` satisfies the pair.
    pub fn accepts_infinity_set(&self, inf: &BitSet) -> bool {
        inf.intersects(&self.recurrent) || inf.is_subset(&self.persistent)
    }
}

/// A list of Streett pairs: the conjunction of its members.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StreettPairs(pub Vec<StreettPair>);

impl StreettPairs {
    /// A single-pair list.
    pub fn single(pair: StreettPair) -> Self {
        StreettPairs(vec![pair])
    }

    /// The conjunction acceptance condition over `num_states` states.
    pub fn acceptance(&self, num_states: usize) -> Acceptance {
        self.0
            .iter()
            .map(|p| p.acceptance(num_states))
            .fold(Acceptance::True, Acceptance::and)
    }

    /// Whether a run with infinity set `inf` satisfies every pair.
    pub fn accepts_infinity_set(&self, inf: &BitSet) -> bool {
        self.0.iter().all(|p| p.accepts_infinity_set(inf))
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether there are no pairs (the trivially true condition).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Büchi acceptance `Inf(R)` — the recurrence-automaton shape (`P = ∅`).
pub fn buchi<I: IntoIterator<Item = usize>>(recurrent: I) -> Acceptance {
    Acceptance::inf(recurrent)
}

/// Co-Büchi acceptance "eventually stay inside `P`" — the
/// persistence-automaton shape (`R = ∅`), i.e. `Fin(Q − P)`.
pub fn co_buchi<I: IntoIterator<Item = usize>>(persistent: I, num_states: usize) -> Acceptance {
    let p: BitSet = persistent.into_iter().collect();
    debug_assert!(
        p.iter().all(|q| q < num_states),
        "persistent set must be a subset of the state set"
    );
    Acceptance::Fin(p.complement(num_states))
}

/// Rabin acceptance `⋁ᵢ (Inf(Fᵢ) ∧ Fin(Eᵢ))` from pairs `(Eᵢ, Fᵢ)`
/// (avoid `Eᵢ`, recur in `Fᵢ`). Rabin is the dual of Streett.
pub fn rabin(pairs: &[(BitSet, BitSet)]) -> Acceptance {
    pairs
        .iter()
        .map(|(e, f)| Acceptance::Inf(f.clone()).and(Acceptance::Fin(e.clone())))
        .fold(Acceptance::False, Acceptance::or)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[usize]) -> BitSet {
        xs.iter().copied().collect()
    }

    #[test]
    fn pair_semantics() {
        let p = StreettPair::new([1], [0, 2]);
        assert!(p.accepts_infinity_set(&set(&[1, 3]))); // hits R
        assert!(p.accepts_infinity_set(&set(&[0, 2]))); // inside P
        assert!(p.accepts_infinity_set(&set(&[0]))); // inside P
        assert!(!p.accepts_infinity_set(&set(&[3]))); // neither
    }

    #[test]
    fn pair_acceptance_matches_direct() {
        let p = StreettPair::new([1], [0, 2]);
        let acc = p.acceptance(4);
        for bits in 1u8..16 {
            let inf: BitSet = (0..4).filter(|i| bits & (1 << i) != 0).collect();
            assert_eq!(
                p.accepts_infinity_set(&inf),
                acc.accepts_infinity_set(&inf),
                "mismatch on {inf:?}"
            );
        }
    }

    #[test]
    fn pairs_conjunction() {
        let pairs = StreettPairs(vec![StreettPair::new([0], []), StreettPair::new([1], [])]);
        assert!(pairs.accepts_infinity_set(&set(&[0, 1])));
        assert!(!pairs.accepts_infinity_set(&set(&[0])));
        let acc = pairs.acceptance(2);
        assert!(acc.accepts_infinity_set(&set(&[0, 1])));
        assert!(!acc.accepts_infinity_set(&set(&[1])));
        assert_eq!(pairs.len(), 2);
        assert!(!pairs.is_empty());
    }

    #[test]
    fn empty_pairs_accept_everything() {
        let pairs = StreettPairs::default();
        assert!(pairs.accepts_infinity_set(&set(&[5])));
        assert_eq!(pairs.acceptance(3), Acceptance::True);
    }

    #[test]
    fn named_shapes() {
        assert_eq!(buchi([1, 2]), Acceptance::inf([1, 2]));
        // co_buchi over 3 states with P = {0}: Fin({1,2}).
        assert_eq!(co_buchi([0], 3), Acceptance::fin([1, 2]));
        let r = rabin(&[(set(&[0]), set(&[1]))]);
        assert!(r.accepts_infinity_set(&set(&[1])));
        assert!(!r.accepts_infinity_set(&set(&[0, 1])));
        assert!(!r.accepts_infinity_set(&set(&[2])));
    }

    #[test]
    fn rabin_streett_duality() {
        // Rabin pairs (E,F) negated gives the Streett condition with
        // R = E, P = Q − F … check by sampling.
        let r = rabin(&[(set(&[0]), set(&[1]))]);
        let s = StreettPair::new([0], [0, 2]).acceptance(3); // P = Q−F = {0,2}
        for bits in 1u8..8 {
            let inf: BitSet = (0..3).filter(|i| bits & (1 << i) != 0).collect();
            assert_eq!(
                r.negated().accepts_infinity_set(&inf),
                s.accepts_infinity_set(&inf),
                "duality mismatch on {inf:?}"
            );
        }
    }
}
