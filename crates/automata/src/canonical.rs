//! Content addressing for ω-automata: a structural hash over the
//! canonical quotient form.
//!
//! The classification service (`crates/serve`) keys every ingested
//! artifact by a hash so that repeat and near-duplicate submissions
//! become cache hits instead of fresh [`Analysis`](crate::analysis)
//! builds. Hashing the raw automaton would miss the most common
//! near-duplicates — the *same* machine with its states renumbered, or
//! with unreachable junk attached — so [`structural_hash`] first maps
//! the automaton to its **canonical form**: the partition-refinement
//! quotient of [`crate::minimize`], which is trim, merged up to
//! acceptance-respecting bisimulation, and BFS-renumbered from the
//! initial state in symbol order. Minimization is structurally
//! idempotent, so:
//!
//! * `structural_hash(a) == structural_hash(minimize(a).quotient)` for
//!   every automaton `a` (re-ingesting a canonical form collides);
//! * any two automata whose canonical forms are *identical* — state
//!   renamings, unreachable-state padding, bisimilar blow-ups — hash
//!   equal on purpose;
//! * hash-equal automata over the same alphabet are language-equal
//!   (identical canonical structure implies identical language; the
//!   `content_hash` test suite asserts this with the independent
//!   [`Analysis::equivalent`](crate::analysis::Analysis::equivalent)
//!   oracle on seeded sweeps).
//!
//! The converse does **not** hold: two automata may recognize the same
//! language through differently shaped acceptance conditions (say a
//! Büchi condition and an equivalent one-pair Streett condition) and
//! hash apart. The service closes that gap at ingest time with an
//! explicit equivalence sweep (see `crates/serve`); the hash is the
//! cheap first-level key, not the full language identity.
//!
//! The hash itself is a 128-bit non-cryptographic digest (two mixed
//! FNV-1a lanes finalized with splitmix64) over an unambiguous byte
//! encoding of alphabet, transitions, and acceptance. It is stable
//! across runs and platforms — suitable for content addressing inside
//! one trust domain, not for adversarial inputs.

use crate::acceptance::Acceptance;
use crate::analysis::Analysis;
use crate::minimize::minimize;
use crate::omega::OmegaAutomaton;
use std::fmt;

/// A 128-bit content hash of a service artifact (see the module docs).
///
/// Displays as 32 lowercase hex digits; [`ArtifactHash::parse`] reads
/// the same form back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactHash(pub [u8; 16]);

impl fmt::Display for ArtifactHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl ArtifactHash {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<ArtifactHash> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(ArtifactHash(out))
    }
}

/// Two-lane streaming hasher: lane 1 is standard FNV-1a/64, lane 2 an
/// FNV-1a variant with a different offset basis whose input bytes are
/// pre-rotated, so the lanes decorrelate; both are finalized through
/// splitmix64 with lane 1 folded into lane 2.
struct Digest {
    h1: u64,
    h2: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Digest {
    fn new() -> Digest {
        Digest {
            h1: 0xcbf2_9ce4_8422_2325,        // FNV offset basis
            h2: 0x6c62_272e_07bb_0142 ^ 0xA5, // a distinct basis
        }
    }

    fn byte(&mut self, b: u8) {
        self.h1 = (self.h1 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self.h2 = (self.h2 ^ u64::from(b.rotate_left(3))).wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    /// Length-prefixed string, so `["ab","c"]` and `["a","bc"]` differ.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> ArtifactHash {
        let a = splitmix64(self.h1);
        let b = splitmix64(self.h2 ^ self.h1.rotate_left(32));
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&a.to_le_bytes());
        out[8..].copy_from_slice(&b.to_le_bytes());
        ArtifactHash(out)
    }
}

fn hash_acceptance(d: &mut Digest, acc: &Acceptance) {
    match acc {
        Acceptance::True => d.byte(0),
        Acceptance::False => d.byte(1),
        Acceptance::Inf(s) | Acceptance::Fin(s) => {
            d.byte(if matches!(acc, Acceptance::Inf(_)) {
                2
            } else {
                3
            });
            let members: Vec<usize> = s.iter().collect();
            d.u64(members.len() as u64);
            for q in members {
                d.u64(q as u64);
            }
        }
        Acceptance::And(xs) | Acceptance::Or(xs) => {
            d.byte(if matches!(acc, Acceptance::And(_)) {
                4
            } else {
                5
            });
            d.u64(xs.len() as u64);
            for x in xs {
                hash_acceptance(d, x);
            }
        }
    }
}

/// Hashes an automaton **assumed to already be in canonical form** (the
/// output of [`minimize`]); see [`structural_hash`] for the entry point
/// that canonicalizes first. Exposed so a caller that already holds a
/// [`Minimization`](crate::minimize::Minimization) — e.g. through
/// [`Analysis::minimization`](crate::analysis::Analysis::minimization)
/// — can hash without re-running partition refinement.
pub fn hash_canonical(canonical: &OmegaAutomaton) -> ArtifactHash {
    let mut d = Digest::new();
    d.bytes(b"omega/v1\0");
    // The alphabet is part of the identity: `Analysis::equivalent`
    // (which hash-equality must entail) is only defined over equal
    // alphabets, and proposition alphabets carry their valuation
    // structure in the names.
    let props = canonical.alphabet().propositions();
    if props.is_empty() {
        d.byte(b'L');
        d.u64(canonical.alphabet().len() as u64);
        for sym in canonical.alphabet().symbols() {
            d.str(canonical.alphabet().name(sym));
        }
    } else {
        d.byte(b'P');
        d.u64(props.len() as u64);
        for p in props {
            d.str(p);
        }
    }
    d.u64(canonical.num_states() as u64);
    d.u64(u64::from(canonical.initial()));
    for q in 0..canonical.num_states() as crate::StateId {
        for sym in canonical.alphabet().symbols() {
            d.u64(u64::from(canonical.step(q, sym)));
        }
    }
    hash_acceptance(&mut d, canonical.acceptance());
    d.finish()
}

/// The structural content hash of an ω-automaton: the digest of its
/// canonical quotient form (see the module docs for the guarantees).
pub fn structural_hash(aut: &OmegaAutomaton) -> ArtifactHash {
    hash_canonical(&minimize(aut).quotient)
}

/// How [`language_eq`] decided (or failed to decide) language equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LanguageEq {
    /// The canonical hashes agree: language-equal with **no** oracle
    /// call, since hash equality over a shared alphabet implies
    /// identical canonical structure (see the module docs).
    HashEqual,
    /// The hashes differ but the
    /// [`Analysis::equivalent`](crate::analysis::Analysis::equivalent)
    /// oracle proved the languages equal — the same language recognized
    /// through differently shaped acceptance conditions.
    OracleEqual,
    /// The languages provably differ.
    Distinct,
}

impl LanguageEq {
    /// Whether the verdict is "same language".
    pub fn is_equal(self) -> bool {
        !matches!(self, LanguageEq::Distinct)
    }
}

/// Decides language equality of `lhs` — with its precomputed
/// [`structural_hash`] and a live [`Analysis`] context — against `rhs`,
/// trying the canonical hash before falling back to the polynomial
/// equivalence oracle. Returns `None` when the alphabets differ
/// (equivalence is undefined across alphabets).
///
/// This is the single implementation behind both the serve store's
/// ingest-time equivalence sweep and the suite auditor's `SUITE002`
/// duplicate rule, so the two paths cannot drift: hash-equal pairs are
/// answered for free, and only hash-distinct pairs spend an oracle run.
pub fn language_eq(
    lhs_hash: ArtifactHash,
    lhs: &Analysis,
    rhs_hash: ArtifactHash,
    rhs: &OmegaAutomaton,
) -> Option<LanguageEq> {
    if lhs.automaton().alphabet() != rhs.alphabet() {
        return None;
    }
    if lhs_hash == rhs_hash {
        return Some(LanguageEq::HashEqual);
    }
    if lhs.equivalent(rhs) {
        Some(LanguageEq::OracleEqual)
    } else {
        Some(LanguageEq::Distinct)
    }
}

/// A content hash for non-automaton artifacts: digests a kind tag plus
/// an unambiguous byte encoding supplied by the caller (e.g.
/// `Program::structural_encoding` in the `fts` crate). The tag keeps
/// artifact kinds from ever colliding with each other or with
/// [`structural_hash`].
pub fn hash_bytes(kind: &str, bytes: &[u8]) -> ArtifactHash {
    let mut d = Digest::new();
    d.bytes(b"blob/v1\0");
    d.str(kind);
    d.u64(bytes.len() as u64);
    d.bytes(bytes);
    d.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::random::random_streett;
    use crate::random::rng::{Rng, SeedableRng, StdRng};
    use crate::StateId;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn display_and_parse_round_trip() {
        let h = hash_bytes("test", b"payload");
        let text = h.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(ArtifactHash::parse(&text), Some(h));
        assert_eq!(ArtifactHash::parse("zz"), None);
        assert_eq!(ArtifactHash::parse(&text[..31]), None);
    }

    #[test]
    fn hash_is_invariant_under_minimization() {
        let sigma = ab();
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for _ in 0..60 {
            let n = rng.gen_range(2..=20usize);
            let (aut, _) = random_streett(&mut rng, &sigma, n, 2, 0.3);
            let min = minimize(&aut).quotient;
            assert_eq!(structural_hash(&aut), structural_hash(&min));
            assert_eq!(structural_hash(&min), hash_canonical(&min));
        }
    }

    #[test]
    fn hash_is_invariant_under_state_renaming() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| if s == b { (q + 1) % 3 } else { q },
            Acceptance::inf([2]),
        );
        // Rename states by the permutation 0→1→2→0.
        let perm = [1u32, 2, 0];
        let renamed = OmegaAutomaton::build(
            &sigma,
            3,
            perm[0],
            |q, s| {
                let orig = perm.iter().position(|&p| p == q).unwrap() as StateId;
                perm[aut.step(orig, s) as usize]
            },
            Acceptance::inf([perm[2] as usize]),
        );
        assert_eq!(structural_hash(&aut), structural_hash(&renamed));
    }

    #[test]
    fn different_acceptance_hashes_apart() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let delta = |_: StateId, s| if s == b { 1 } else { 0 };
        let inf = OmegaAutomaton::build(&sigma, 2, 0, delta, Acceptance::inf([1]));
        let fin = OmegaAutomaton::build(&sigma, 2, 0, delta, Acceptance::fin([1]));
        assert_ne!(structural_hash(&inf), structural_hash(&fin));
    }

    #[test]
    fn alphabet_names_are_part_of_the_identity() {
        let one = OmegaAutomaton::universal(&Alphabet::new(["a", "b"]).unwrap());
        let two = OmegaAutomaton::universal(&Alphabet::new(["x", "y"]).unwrap());
        assert_ne!(structural_hash(&one), structural_hash(&two));
        let props = OmegaAutomaton::universal(&Alphabet::of_propositions(["p"]).unwrap());
        assert_ne!(structural_hash(&one), structural_hash(&props));
    }

    #[test]
    fn blob_hashes_separate_kinds_and_payloads() {
        assert_ne!(hash_bytes("program", b"x"), hash_bytes("formula", b"x"));
        assert_ne!(hash_bytes("program", b"x"), hash_bytes("program", b"y"));
        assert_eq!(hash_bytes("program", b"x"), hash_bytes("program", b"x"));
    }

    #[test]
    fn language_eq_hash_path_spends_no_oracle_run() {
        let sigma = ab();
        let mut rng = StdRng::seed_from_u64(0xDEDBEEF);
        let (aut, _) = random_streett(&mut rng, &sigma, 6, 2, 0.3);
        let renamed = {
            // A bisimilar variant: the canonical quotient is identical,
            // so the hashes collide and the oracle must stay cold.
            minimize(&aut).quotient
        };
        let ctx = Analysis::new(aut.clone());
        let verdict = language_eq(
            structural_hash(&aut),
            &ctx,
            structural_hash(&renamed),
            &renamed,
        );
        assert_eq!(verdict, Some(LanguageEq::HashEqual));
        assert_eq!(
            ctx.stats_total().inclusion_checks,
            0,
            "hash-equal pair must not reach the oracle"
        );
    }

    #[test]
    fn language_eq_oracle_path_closes_the_hash_gap() {
        // The universal language written two ways: `Acceptance::True`
        // versus an `Inf` set covering the only state. The canonical
        // forms differ (acceptance shape is part of the hash), so only
        // the oracle can identify them.
        let sigma = ab();
        let as_true = OmegaAutomaton::universal(&sigma);
        let as_inf = as_true.with_acceptance(Acceptance::inf([0]));
        let (ha, hb) = (structural_hash(&as_true), structural_hash(&as_inf));
        assert_ne!(ha, hb);
        let ctx = Analysis::new(as_true);
        assert_eq!(
            language_eq(ha, &ctx, hb, &as_inf),
            Some(LanguageEq::OracleEqual)
        );
        assert!(ctx.stats_total().inclusion_checks > 0);
    }

    #[test]
    fn language_eq_distinct_and_alphabet_mismatch() {
        let sigma = ab();
        let universal = OmegaAutomaton::universal(&sigma);
        let empty = OmegaAutomaton::empty(&sigma);
        let ctx = Analysis::new(universal.clone());
        let verdict = language_eq(
            structural_hash(&universal),
            &ctx,
            structural_hash(&empty),
            &empty,
        );
        assert_eq!(verdict, Some(LanguageEq::Distinct));
        assert!(!LanguageEq::Distinct.is_equal());
        assert!(LanguageEq::HashEqual.is_equal() && LanguageEq::OracleEqual.is_equal());
        let other = OmegaAutomaton::universal(&Alphabet::new(["x", "y"]).unwrap());
        assert_eq!(
            language_eq(
                structural_hash(&universal),
                &ctx,
                structural_hash(&other),
                &other
            ),
            None,
            "cross-alphabet comparison is undefined, not false"
        );
    }
}
