//! Alphabets, symbols, and symbol sets.
//!
//! The paper's predicate automata label transitions with *state formulas*
//! over an abstract state set Σ. We instantiate Σ as a finite alphabet of at
//! most 64 named symbols; a transition guard is then simply the predicate's
//! extension, represented as a [`SymbolSet`] bitmask. Propositional temporal
//! logic uses the valuation alphabet `2^AP` (see
//! [`Alphabet::of_propositions`]).

use crate::AutomatonError;
use std::fmt;
use std::sync::Arc;

/// A symbol of an [`Alphabet`] — an index below the alphabet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u8);

impl Symbol {
    /// The symbol's index within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite alphabet of at most 64 named symbols.
///
/// Alphabets are cheaply cloneable (internally reference-counted) and two
/// alphabets compare equal iff they list the same symbol names in the same
/// order.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::alphabet::Alphabet;
///
/// let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
/// assert_eq!(sigma.len(), 3);
/// assert_eq!(sigma.name(sigma.symbol("b").unwrap()), "b");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Alphabet {
    names: Arc<Vec<String>>,
    /// For proposition-based alphabets: the proposition names, where symbol
    /// `i` encodes the valuation with bit `j` set iff proposition `j` holds.
    props: Arc<Vec<String>>,
}

impl Alphabet {
    /// Maximum number of symbols in an alphabet.
    pub const MAX_SYMBOLS: usize = 64;

    /// Creates an alphabet from symbol names.
    ///
    /// # Errors
    ///
    /// Returns [`AutomatonError::AlphabetSize`] when given zero or more than
    /// 64 names, and [`AutomatonError::DuplicateSymbol`] on repeated names.
    pub fn new<I, S>(names: I) -> Result<Self, AutomatonError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() || names.len() > Self::MAX_SYMBOLS {
            return Err(AutomatonError::AlphabetSize {
                requested: names.len(),
            });
        }
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(AutomatonError::DuplicateSymbol { name: n.clone() });
            }
        }
        Ok(Alphabet {
            names: Arc::new(names),
            props: Arc::new(Vec::new()),
        })
    }

    /// Creates the valuation alphabet `2^AP` over the given atomic
    /// propositions. Symbol `i` encodes the valuation in which proposition
    /// `j` holds iff bit `j` of `i` is set; its name is e.g. `{p,q}` or `{}`.
    ///
    /// At most 6 propositions are supported (so that `2^AP ≤ 64`).
    ///
    /// # Errors
    ///
    /// Returns [`AutomatonError::AlphabetSize`] for more than 6 propositions
    /// and [`AutomatonError::DuplicateSymbol`] on repeated proposition names.
    ///
    /// # Examples
    ///
    /// ```
    /// use hierarchy_automata::alphabet::Alphabet;
    ///
    /// let ap = Alphabet::of_propositions(["p", "q"]).unwrap();
    /// assert_eq!(ap.len(), 4);
    /// assert_eq!(ap.name(ap.valuation_symbol(&[true, false])), "{p}");
    /// ```
    pub fn of_propositions<I, S>(props: I) -> Result<Self, AutomatonError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let props: Vec<String> = props.into_iter().map(Into::into).collect();
        if props.is_empty() || props.len() > 6 {
            return Err(AutomatonError::AlphabetSize {
                requested: 1usize.checked_shl(props.len() as u32).unwrap_or(usize::MAX),
            });
        }
        for (i, p) in props.iter().enumerate() {
            if props[..i].contains(p) {
                return Err(AutomatonError::DuplicateSymbol { name: p.clone() });
            }
        }
        let mut names = Vec::with_capacity(1 << props.len());
        for v in 0u64..(1 << props.len()) {
            let inside: Vec<&str> = props
                .iter()
                .enumerate()
                .filter(|(j, _)| v & (1 << j) != 0)
                .map(|(_, p)| p.as_str())
                .collect();
            names.push(format!("{{{}}}", inside.join(",")));
        }
        Ok(Alphabet {
            names: Arc::new(names),
            props: Arc::new(props),
        })
    }

    /// Number of symbols.
    #[allow(clippy::len_without_is_empty)] // alphabets are never empty
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// The symbol with the given name, if any.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Symbol(i as u8))
    }

    /// The name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if the symbol does not belong to this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.len()).map(|i| Symbol(i as u8))
    }

    /// The atomic propositions of a valuation alphabet (empty for plain
    /// alphabets).
    pub fn propositions(&self) -> &[String] {
        &self.props
    }

    /// For a valuation alphabet: the symbol encoding the given valuation
    /// (`holds[j]` = proposition `j` holds).
    ///
    /// # Panics
    ///
    /// Panics if `holds.len()` differs from the number of propositions.
    pub fn valuation_symbol(&self, holds: &[bool]) -> Symbol {
        assert_eq!(
            holds.len(),
            self.props.len(),
            "valuation length must match proposition count"
        );
        let mut v = 0u8;
        for (j, &h) in holds.iter().enumerate() {
            if h {
                v |= 1 << j;
            }
        }
        Symbol(v)
    }

    /// For a valuation alphabet: whether proposition `prop` holds in the
    /// valuation encoded by `sym`.
    pub fn proposition_holds(&self, sym: Symbol, prop: usize) -> bool {
        sym.0 & (1 << prop) != 0
    }

    /// The set of symbols in which proposition `prop` holds (for valuation
    /// alphabets).
    pub fn symbols_where(&self, prop: usize) -> SymbolSet {
        let mut s = SymbolSet::empty();
        for sym in self.symbols() {
            if self.proposition_holds(sym, prop) {
                s.insert(sym);
            }
        }
        s
    }

    /// The full symbol set Σ.
    pub fn full_set(&self) -> SymbolSet {
        SymbolSet::full(self.len())
    }
}

impl fmt::Debug for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Alphabet").field(&self.names).finish()
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

/// A set of symbols of an alphabet — the extension of a transition predicate.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::alphabet::{Alphabet, SymbolSet};
///
/// let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
/// let ab = SymbolSet::of([sigma.symbol("a").unwrap(), sigma.symbol("b").unwrap()]);
/// assert!(ab.contains(sigma.symbol("a").unwrap()));
/// assert!(!ab.contains(sigma.symbol("c").unwrap()));
/// assert_eq!(ab.complement(&sigma).len(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SymbolSet(pub u64);

impl SymbolSet {
    /// The empty symbol set (the predicate `F`).
    pub fn empty() -> Self {
        SymbolSet(0)
    }

    /// The full symbol set over an alphabet of `n` symbols (the predicate `T`).
    pub fn full(n: usize) -> Self {
        if n >= 64 {
            SymbolSet(u64::MAX)
        } else {
            SymbolSet((1u64 << n) - 1)
        }
    }

    /// Builds a set from symbols.
    pub fn of<I: IntoIterator<Item = Symbol>>(syms: I) -> Self {
        let mut s = SymbolSet::empty();
        for sym in syms {
            s.insert(sym);
        }
        s
    }

    /// Inserts a symbol.
    pub fn insert(&mut self, sym: Symbol) {
        self.0 |= 1 << sym.0;
    }

    /// Tests membership.
    pub fn contains(&self, sym: Symbol) -> bool {
        self.0 & (1 << sym.0) != 0
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of symbols in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Set union.
    pub fn union(self, other: SymbolSet) -> SymbolSet {
        SymbolSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: SymbolSet) -> SymbolSet {
        SymbolSet(self.0 & other.0)
    }

    /// Complement relative to the alphabet.
    pub fn complement(self, alphabet: &Alphabet) -> SymbolSet {
        SymbolSet(!self.0 & SymbolSet::full(alphabet.len()).0)
    }

    /// Iterates over the member symbols in index order.
    pub fn iter(&self) -> impl Iterator<Item = Symbol> + '_ {
        let bits = self.0;
        (0..64u8).filter(move |b| bits & (1 << b) != 0).map(Symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_basic() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        assert_eq!(sigma.len(), 2);
        let a = sigma.symbol("a").unwrap();
        assert_eq!(a, Symbol(0));
        assert_eq!(sigma.name(a), "a");
        assert_eq!(sigma.symbol("z"), None);
        assert_eq!(sigma.symbols().count(), 2);
        assert_eq!(sigma.to_string(), "{a, b}");
    }

    #[test]
    fn alphabet_rejects_bad_sizes() {
        assert!(matches!(
            Alphabet::new(Vec::<String>::new()),
            Err(AutomatonError::AlphabetSize { requested: 0 })
        ));
        let many: Vec<String> = (0..65).map(|i| format!("s{i}")).collect();
        assert!(Alphabet::new(many).is_err());
        assert!(matches!(
            Alphabet::new(["a", "a"]),
            Err(AutomatonError::DuplicateSymbol { .. })
        ));
    }

    #[test]
    fn proposition_alphabet() {
        let ap = Alphabet::of_propositions(["p", "q"]).unwrap();
        assert_eq!(ap.len(), 4);
        let pq = ap.valuation_symbol(&[true, true]);
        assert_eq!(ap.name(pq), "{p,q}");
        assert!(ap.proposition_holds(pq, 0));
        assert!(ap.proposition_holds(pq, 1));
        let none = ap.valuation_symbol(&[false, false]);
        assert_eq!(ap.name(none), "{}");
        assert_eq!(ap.symbols_where(0).len(), 2);
        assert!(Alphabet::of_propositions(["a"; 7].to_vec()).is_err());
    }

    #[test]
    fn symbol_sets() {
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let full = sigma.full_set();
        assert_eq!(full.len(), 3);
        let a = SymbolSet::of([Symbol(0)]);
        let bc = a.complement(&sigma);
        assert_eq!(bc.len(), 2);
        assert!(bc.contains(Symbol(1)) && bc.contains(Symbol(2)));
        assert_eq!(a.union(bc), full);
        assert!(a.intersection(bc).is_empty());
        assert_eq!(bc.iter().collect::<Vec<_>>(), vec![Symbol(1), Symbol(2)]);
    }

    #[test]
    fn full_set_of_64() {
        assert_eq!(SymbolSet::full(64).0, u64::MAX);
        assert_eq!(SymbolSet::full(1).0, 1);
    }

    #[test]
    fn alphabets_compare_by_content() {
        let a = Alphabet::new(["x", "y"]).unwrap();
        let b = Alphabet::new(["x", "y"]).unwrap();
        let c = Alphabet::new(["y", "x"]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
