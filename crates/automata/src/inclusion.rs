//! Direct polynomial-time inclusion and equivalence for deterministic
//! ω-acceptors (Angluin & Fisman, arXiv:2002.03191).
//!
//! The classical oracle used everywhere in this workspace decides
//! `L(A) ⊆ L(B)` by building the complement of `B`, the product
//! `A × ¬B`, and running the generic emptiness check — which converts
//! the combined acceptance `acc_A ∧ ¬acc_B` to DNF, an operation
//! exponential in the number of conjuncts (a `k`-pair Streett condition
//! on the left multiplies out to `2^k` generalized Rabin disjuncts).
//! This module decides the same question *directly on the product
//! graph*, without ever materializing a complement automaton or a DNF:
//!
//! * **Parity fast path** — when both acceptance conditions admit a
//!   same-structure [`ParityView`] (Büchi, co-Büchi, one-pair Streett,
//!   one-pair Rabin, and any parity-shaped `Inf/Fin` chain), inclusion
//!   fails iff for some even priority `pa` of `A` and odd priority `pb`
//!   of `B` the product restricted to `{(q, r) : π_A(q) ≥ pa ∧ π_B(r) ≥
//!   pb}` has an SCC with a cycle containing both a `pa`-state and a
//!   `pb`-state. That is the literal Angluin–Fisman argument:
//!   `O(d_A · d_B)` plain SCC passes over the product.
//! * **Rabin-decomposition path** — any other boolean condition is
//!   decomposed into a *disjunction* of [`RabinDisjunct`]s (an avoid-set
//!   plus a list of Streett-style cycle constraints), crucially keeping
//!   each Streett pair `Inf(R) ∨ Fin(S)` as one pair instead of
//!   distributing it. For every pair of disjuncts of `acc_A` and
//!   `¬acc_B`, a counterexample cycle is sought by the classical
//!   iterated-SCC Streett refinement on the product graph — polynomial
//!   in the pair count. A `k_A`-pair Streett `A` against a `k_B`-pair
//!   Streett `B` costs `k_B` refinements instead of `2^{k_A} · k_B`
//!   Tarjan passes. Conditions whose decomposition genuinely needs
//!   distribution (nested `And` of non-pair `Or`s) degrade to the same
//!   disjunct count the DNF would have — never worse than the old path.
//!
//! On failure a counterexample [`Lasso`] is extracted by touring the
//! witness region of the product, so
//! [`OmegaAutomaton::distinguishing_lasso`] keeps producing concrete
//! separating words. `OmegaAutomaton::{is_subset_of, equivalent}` and
//! `Analysis::{is_subset_of, equivalent}` route through this module by
//! default, with the old complement+product construction preserved as
//! `*_via_complement` and cross-checked by a debug-mode differential
//! tripwire on every query (see DESIGN.md §11).

use crate::acceptance::Acceptance;
use crate::alphabet::Symbol;
use crate::bitset::BitSet;
use crate::flat::FlatGraph;
use crate::lasso::Lasso;
use crate::omega::OmegaAutomaton;
use crate::scc::tarjan_scc;
use crate::StateId;
use std::collections::{HashMap, VecDeque};

/// A per-state min-even parity priority assignment equivalent to a
/// boolean acceptance condition on the *same* transition structure: a
/// run is accepting iff the minimal priority among the states it visits
/// infinitely often is even.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityView {
    priorities: Vec<u32>,
}

impl ParityView {
    /// Tries to express `acc` (over `num_states` states) as a
    /// same-structure min-even parity assignment. Succeeds for `True`,
    /// `False`, Büchi `Inf(R)`, co-Büchi `Fin(S)`, one-pair Streett
    /// `Inf(R) ∨ Fin(S)`, one-pair Rabin `Inf(F) ∧ Fin(E)`, and any
    /// `Inf/Fin` chain of that shape (an `Or` with an `Inf` atom child,
    /// an `And` with a `Fin` atom child, recursively). Returns `None`
    /// for conditions with no same-structure parity view (multi-pair
    /// Streett or Rabin, generalized Büchi, …), which fall back to the
    /// Rabin-decomposition path of [`included`].
    pub fn try_of(acc: &Acceptance, num_states: usize) -> Option<ParityView> {
        Some(ParityView {
            priorities: priorities_of(acc, num_states)?,
        })
    }

    /// The priority of state `q`.
    pub fn priority(&self, q: StateId) -> u32 {
        self.priorities[q as usize]
    }

    /// The largest priority in use.
    pub fn max_priority(&self) -> u32 {
        self.priorities.iter().copied().max().unwrap_or(0)
    }

    /// Evaluates the parity condition on an infinity set: accepting iff
    /// the minimal priority over the set is even. (The empty set never
    /// arises as the infinity set of a real run; it is rejected.)
    pub fn accepts_infinity_set(&self, inf: &BitSet) -> bool {
        inf.iter()
            .map(|q| self.priorities[q])
            .min()
            .is_some_and(|p| p % 2 == 0)
    }
}

/// The recursive priority construction behind [`ParityView::try_of`].
///
/// Soundness of the two composite rules, for any cycle `C`:
/// `Or[Inf(R), rest]` with `R ↦ 0` and `q ↦ sub(q) + 2` elsewhere — if
/// `C ∩ R ≠ ∅` the minimum is `0` (accept, as `Inf(R)` holds);
/// otherwise every priority is a shifted `rest` priority, so the
/// verdict is `rest`'s. Dually for `And[Fin(S), rest]` with `S ↦ 1`.
fn priorities_of(acc: &Acceptance, n: usize) -> Option<Vec<u32>> {
    match acc {
        Acceptance::True => Some(vec![0; n]),
        Acceptance::False => Some(vec![1; n]),
        Acceptance::Inf(r) => Some((0..n).map(|q| u32::from(!r.contains(q))).collect()),
        Acceptance::Fin(s) => Some((0..n).map(|q| if s.contains(q) { 1 } else { 2 }).collect()),
        Acceptance::Or(xs) => {
            if xs.is_empty() {
                return Some(vec![1; n]); // empty disjunction = False
            }
            if xs.len() == 1 {
                return priorities_of(&xs[0], n);
            }
            let i = xs.iter().position(|x| matches!(x, Acceptance::Inf(_)))?;
            let Acceptance::Inf(r) = &xs[i] else {
                unreachable!("position matched an Inf atom")
            };
            let rest: Vec<Acceptance> = xs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, x)| x.clone())
                .collect();
            let sub = priorities_of(&Acceptance::Or(rest), n)?;
            Some(
                (0..n)
                    .map(|q| if r.contains(q) { 0 } else { sub[q] + 2 })
                    .collect(),
            )
        }
        Acceptance::And(xs) => {
            if xs.is_empty() {
                return Some(vec![0; n]); // empty conjunction = True
            }
            if xs.len() == 1 {
                return priorities_of(&xs[0], n);
            }
            let i = xs.iter().position(|x| matches!(x, Acceptance::Fin(_)))?;
            let Acceptance::Fin(s) = &xs[i] else {
                unreachable!("position matched a Fin atom")
            };
            let rest: Vec<Acceptance> = xs
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, x)| x.clone())
                .collect();
            let sub = priorities_of(&Acceptance::And(rest), n)?;
            Some(
                (0..n)
                    .map(|q| if s.contains(q) { 1 } else { sub[q] + 2 })
                    .collect(),
            )
        }
    }
}

/// One cycle constraint of a [`RabinDisjunct`]: a cycle `C` satisfies
/// the pair iff `C ∩ hit ≠ ∅` or `C ∩ bad = ∅`. This is a Streett pair
/// `(R, P)` with `hit = R` and `bad = Q ∖ P`, phrased so no set
/// complements are needed when lifting into a product.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CyclePair {
    /// The "recurrent" side: intersecting this set satisfies the pair.
    pub hit: BitSet,
    /// The "forbidden" side: a cycle missing `hit` must avoid this set.
    pub bad: BitSet,
}

/// One disjunct of the cycle-level decomposition of an acceptance
/// condition: a cycle `C` satisfies the disjunct iff `C ∩ avoid = ∅`
/// and every [`CyclePair`] holds. Unlike the generalized-Rabin DNF of
/// [`Acceptance::dnf`], Streett pairs are *not* distributed — a `k`-pair
/// Streett condition stays a single disjunct with `k` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RabinDisjunct {
    /// States the cycle must not touch at all.
    pub avoid: BitSet,
    /// Streett-style constraints the cycle must satisfy.
    pub pairs: Vec<CyclePair>,
}

impl RabinDisjunct {
    fn trivial() -> RabinDisjunct {
        RabinDisjunct {
            avoid: BitSet::new(),
            pairs: Vec::new(),
        }
    }

    /// Conjunction of two disjuncts.
    fn merge(&mut self, other: &RabinDisjunct) {
        self.avoid.union_with(&other.avoid);
        self.pairs.extend(other.pairs.iter().cloned());
    }

    /// Whether a (non-empty) cycle satisfies this disjunct.
    pub fn accepts_cycle(&self, cycle: &BitSet) -> bool {
        cycle.is_disjoint(&self.avoid)
            && self
                .pairs
                .iter()
                .all(|p| cycle.intersects(&p.hit) || cycle.is_disjoint(&p.bad))
    }
}

/// Recognizes an `Or` of `Inf`/`Fin` atoms with at most one `Fin` as a
/// single [`CyclePair`]: `Inf(R₁) ∨ … ∨ Inf(Rₘ) ∨ Fin(S)` becomes
/// `(hit = ⋃ Rᵢ, bad = S)`. With no `Fin` child the pair has no escape
/// — `bad` is the full state set `Q`, so a (non-empty) cycle satisfies
/// it only by hitting `⋃ Rᵢ`. This is what keeps Streett conditions
/// from being distributed.
fn or_as_cycle_pair(xs: &[Acceptance], n: usize) -> Option<CyclePair> {
    let mut hit = BitSet::new();
    let mut bad: Option<BitSet> = None;
    for x in xs {
        match x {
            Acceptance::Inf(r) => hit.union_with(r),
            Acceptance::Fin(s) => {
                if bad.is_some() {
                    return None; // Fin(S₁) ∨ Fin(S₂) is not one pair
                }
                bad = Some(s.clone());
            }
            _ => return None,
        }
    }
    Some(CyclePair {
        hit,
        bad: bad.unwrap_or_else(|| BitSet::all(n)),
    })
}

/// Decomposes an acceptance condition over `n` states into a
/// disjunction of [`RabinDisjunct`]s: a non-empty cycle satisfies `acc`
/// iff it satisfies some disjunct. Streett-pair-shaped `Or`s are kept
/// as single [`CyclePair`]s, so Streett conditions produce *one*
/// disjunct and Rabin conditions one per pair; only genuinely non-pair
/// `Or`s under an `And` distribute (matching the DNF disjunct count
/// there — the decomposition is never larger than the DNF).
pub fn decompose(acc: &Acceptance, n: usize) -> Vec<RabinDisjunct> {
    match acc {
        Acceptance::True => vec![RabinDisjunct::trivial()],
        Acceptance::False => vec![],
        Acceptance::Inf(r) => vec![RabinDisjunct {
            avoid: BitSet::new(),
            pairs: vec![CyclePair {
                hit: r.clone(),
                bad: BitSet::all(n),
            }],
        }],
        Acceptance::Fin(s) => vec![RabinDisjunct {
            avoid: s.clone(),
            pairs: Vec::new(),
        }],
        Acceptance::Or(xs) => {
            if xs.is_empty() {
                return vec![]; // empty disjunction = False
            }
            if let Some(pair) = or_as_cycle_pair(xs, n) {
                return vec![RabinDisjunct {
                    avoid: BitSet::new(),
                    pairs: vec![pair],
                }];
            }
            xs.iter().flat_map(|x| decompose(x, n)).collect()
        }
        Acceptance::And(xs) => {
            let mut out = vec![RabinDisjunct::trivial()];
            for x in xs {
                let d = decompose(x, n);
                match d.len() {
                    0 => return vec![], // a False conjunct sinks everything
                    1 => {
                        for a in &mut out {
                            a.merge(&d[0]);
                        }
                    }
                    _ => {
                        let mut next = Vec::with_capacity(out.len() * d.len());
                        for a in &out {
                            for b in &d {
                                let mut m = a.clone();
                                m.merge(b);
                                next.push(m);
                            }
                        }
                        out = next;
                    }
                }
            }
            out
        }
    }
}

/// The reachable product of two deterministic automata over one
/// alphabet: pair states, a flat `delta[id·k + s]` table, and the
/// deduplicated CSR successor graph every SCC pass below walks.
struct Product {
    k: usize,
    /// `pairs[id] = (a_state, b_state)`; id `0` is the initial pair.
    pairs: Vec<(StateId, StateId)>,
    delta: Vec<StateId>,
    graph: FlatGraph,
}

impl Product {
    fn build(a: &OmegaAutomaton, b: &OmegaAutomaton) -> Product {
        assert_eq!(
            a.alphabet(),
            b.alphabet(),
            "inclusion requires identical alphabets"
        );
        let k = a.alphabet().len();
        let mut index: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut pairs: Vec<(StateId, StateId)> = Vec::new();
        let mut delta: Vec<StateId> = Vec::new();
        let start = (a.initial(), b.initial());
        index.insert(start, 0);
        pairs.push(start);
        let mut frontier = 0usize;
        while frontier < pairs.len() {
            let (p, q) = pairs[frontier];
            for s in 0..k {
                let sym = Symbol(s as u8);
                let succ = (a.step(p, sym), b.step(q, sym));
                let id = *index.entry(succ).or_insert_with(|| {
                    pairs.push(succ);
                    (pairs.len() - 1) as StateId
                });
                delta.push(id);
            }
            frontier += 1;
        }
        let graph = FlatGraph::from_delta(pairs.len(), k, &delta);
        Product {
            k,
            pairs,
            delta,
            graph,
        }
    }

    fn num_states(&self) -> usize {
        self.pairs.len()
    }

    fn step(&self, id: StateId, s: usize) -> StateId {
        self.delta[id as usize * self.k + s]
    }

    /// Lifts an `A`-side state set to the product states whose first
    /// component lies in it.
    fn lift_left(&self, set: &BitSet) -> BitSet {
        let mut out = BitSet::with_capacity(self.pairs.len());
        for (id, &(p, _)) in self.pairs.iter().enumerate() {
            if set.contains(p as usize) {
                out.insert(id);
            }
        }
        out
    }

    /// Lifts a `B`-side state set to the product states whose second
    /// component lies in it.
    fn lift_right(&self, set: &BitSet) -> BitSet {
        let mut out = BitSet::with_capacity(self.pairs.len());
        for (id, &(_, q)) in self.pairs.iter().enumerate() {
            if set.contains(q as usize) {
                out.insert(id);
            }
        }
        out
    }
}

/// Which side of the product must accept while the other rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    /// A word in `L(A) ∖ L(B)`.
    Left,
    /// A word in `L(B) ∖ L(A)`.
    Right,
}

/// A counterexample *region*: a strongly connected, cycle-supporting
/// set of product states whose full tour is accepted by the `side`
/// automaton and rejected by the other. `None` means inclusion holds.
fn counterexample_region(
    product: &Product,
    a: &OmegaAutomaton,
    b: &OmegaAutomaton,
    side: Side,
) -> Option<BitSet> {
    let (pos, neg) = match side {
        Side::Left => (a, b),
        Side::Right => (b, a),
    };
    // Parity fast path: both sides parity-expressible on their own
    // structure — the literal Angluin–Fisman priority enumeration.
    if let (Some(va), Some(vb)) = (
        ParityView::try_of(pos.acceptance(), pos.num_states()),
        ParityView::try_of(neg.acceptance(), neg.num_states()),
    ) {
        return parity_region(product, &va, &vb, side);
    }
    // General path: Rabin decomposition of "pos accepts" and "neg
    // rejects", each combination checked by Streett refinement.
    let lift_pos = |s: &BitSet| match side {
        Side::Left => product.lift_left(s),
        Side::Right => product.lift_right(s),
    };
    let lift_neg = |s: &BitSet| match side {
        Side::Left => product.lift_right(s),
        Side::Right => product.lift_left(s),
    };
    let all = BitSet::all(product.num_states());
    for da in decompose(pos.acceptance(), pos.num_states()) {
        for db in decompose(&neg.acceptance().negated(), neg.num_states()) {
            let mut allowed = all.clone();
            allowed.difference_with(&lift_pos(&da.avoid));
            allowed.difference_with(&lift_neg(&db.avoid));
            if allowed.is_empty() {
                continue;
            }
            let mut pairs: Vec<CyclePair> = da
                .pairs
                .iter()
                .map(|p| CyclePair {
                    hit: lift_pos(&p.hit),
                    bad: lift_pos(&p.bad),
                })
                .collect();
            pairs.extend(db.pairs.iter().map(|p| CyclePair {
                hit: lift_neg(&p.hit),
                bad: lift_neg(&p.bad),
            }));
            if let Some(region) = refine(&product.graph, allowed, &pairs) {
                return Some(region);
            }
        }
    }
    None
}

/// The parity × parity product argument: enumerate an even priority of
/// the accepting side and an odd priority of the rejecting side,
/// restrict the product to states at least that high on both, and look
/// for an SCC whose cycle realizes both minima exactly.
fn parity_region(
    product: &Product,
    view_pos: &ParityView,
    view_neg: &ParityView,
    side: Side,
) -> Option<BitSet> {
    let n = product.num_states();
    // Per-product-state priorities of the accepting and rejecting side.
    let component = |id: usize| -> (StateId, StateId) {
        let (p, q) = product.pairs[id];
        match side {
            Side::Left => (p, q),
            Side::Right => (q, p),
        }
    };
    let prio_pos: Vec<u32> = (0..n)
        .map(|id| view_pos.priority(component(id).0))
        .collect();
    let prio_neg: Vec<u32> = (0..n)
        .map(|id| view_neg.priority(component(id).1))
        .collect();
    for pa in (0..=view_pos.max_priority()).filter(|p| p % 2 == 0) {
        for pb in (0..=view_neg.max_priority()).filter(|p| p % 2 == 1) {
            let allowed: BitSet = (0..n)
                .filter(|&id| prio_pos[id] >= pa && prio_neg[id] >= pb)
                .collect();
            if allowed.is_empty() {
                continue;
            }
            let sccs = tarjan_scc(&product.graph, Some(&allowed));
            for c in 0..sccs.len() {
                if !sccs.has_cycle[c] {
                    continue;
                }
                let hits_pa = sccs.members[c].iter().any(|&q| prio_pos[q as usize] == pa);
                let hits_pb = sccs.members[c].iter().any(|&q| prio_neg[q as usize] == pb);
                if hits_pa && hits_pb {
                    // Touring the whole SCC realizes min priority `pa`
                    // (even → accepted) on one side and `pb` (odd →
                    // rejected) on the other.
                    return Some(sccs.member_set(c));
                }
            }
        }
    }
    None
}

/// The classical iterated-SCC Streett refinement, on an arbitrary
/// graph restriction: finds a cycle-supporting SCC subset satisfying
/// every [`CyclePair`], or `None`. Mirrors
/// [`crate::emptiness::streett_nonempty_cycle`] but over lifted product
/// constraints.
fn refine(graph: &FlatGraph, allowed: BitSet, pairs: &[CyclePair]) -> Option<BitSet> {
    let sccs = tarjan_scc(graph, Some(&allowed));
    let mut stack: Vec<BitSet> = (0..sccs.len())
        .filter(|&c| sccs.has_cycle[c])
        .map(|c| sccs.member_set(c))
        .collect();
    while let Some(region) = stack.pop() {
        let mut refined = region.clone();
        let mut violated = false;
        for p in pairs {
            if !region.intersects(&p.hit) && region.intersects(&p.bad) {
                refined.difference_with(&p.bad);
                violated = true;
            }
        }
        if !violated {
            return Some(region);
        }
        let inner = tarjan_scc(graph, Some(&refined));
        for c in 0..inner.len() {
            if inner.has_cycle[c] {
                stack.push(inner.member_set(c));
            }
        }
    }
    None
}

/// Shortest symbol path in the product from `from` into `targets`,
/// restricted to `within` when given (the start may be outside).
fn product_path(
    product: &Product,
    from: StateId,
    targets: &BitSet,
    within: Option<&BitSet>,
) -> Option<Vec<Symbol>> {
    if targets.contains(from as usize) {
        return Some(Vec::new());
    }
    let n = product.num_states();
    let mut prev: Vec<Option<(StateId, Symbol)>> = vec![None; n];
    let mut seen = BitSet::with_capacity(n);
    seen.insert(from as usize);
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(q) = queue.pop_front() {
        for s in 0..product.k {
            let t = product.step(q, s);
            if let Some(w) = within {
                if !w.contains(t as usize) {
                    continue;
                }
            }
            if seen.insert(t as usize) {
                prev[t as usize] = Some((q, Symbol(s as u8)));
                if targets.contains(t as usize) {
                    let mut path = Vec::new();
                    let mut cur = t;
                    while cur != from {
                        let (p, sym) = prev[cur as usize].expect("BFS predecessor exists");
                        path.push(sym);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(t);
            }
        }
    }
    None
}

/// Builds a lasso whose product run has infinity set exactly `region`:
/// BFS spoke from the initial product state to an anchor, then a cycle
/// touring *every* region state and returning to the anchor.
fn region_lasso(product: &Product, region: &BitSet) -> Lasso {
    let anchor = region.first().expect("witness region is non-empty") as StateId;
    let spoke = product_path(product, 0, &BitSet::from_iter([anchor as usize]), None)
        .expect("witness region is reachable");
    let mut cycle: Vec<Symbol> = Vec::new();
    let mut at = anchor;
    for target in region.iter() {
        let leg = product_path(product, at, &BitSet::from_iter([target]), Some(region))
            .expect("witness region is strongly connected");
        for &sym in &leg {
            at = product.step(at, sym.index());
        }
        cycle.extend(leg);
    }
    let back = product_path(
        product,
        at,
        &BitSet::from_iter([anchor as usize]),
        Some(region),
    )
    .expect("witness region is strongly connected");
    cycle.extend(back);
    if cycle.is_empty() {
        // Single-state region: use its self-loop symbol.
        let sym = (0..product.k)
            .map(|s| Symbol(s as u8))
            .find(|&s| product.step(anchor, s.index()) == anchor)
            .expect("single-state witness region has a self-loop");
        cycle.push(sym);
    }
    Lasso::new(spoke, cycle)
}

/// Whether `L(a) ⊆ L(b)`, decided directly on the product graph.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn included(a: &OmegaAutomaton, b: &OmegaAutomaton) -> bool {
    let product = Product::build(a, b);
    counterexample_region(&product, a, b, Side::Left).is_none()
}

/// A lasso in `L(a) ∖ L(b)`, or `None` when `L(a) ⊆ L(b)`.
pub fn inclusion_counterexample(a: &OmegaAutomaton, b: &OmegaAutomaton) -> Option<Lasso> {
    let product = Product::build(a, b);
    let region = counterexample_region(&product, a, b, Side::Left)?;
    let lasso = region_lasso(&product, &region);
    debug_assert!(
        a.accepts(&lasso) && !b.accepts(&lasso),
        "inclusion counterexample must separate the languages"
    );
    Some(lasso)
}

/// Whether `L(a) = L(b)`. Both directions share one product graph —
/// the transition structure is direction-independent; only the lifted
/// acceptance constraints differ.
pub fn equivalent(a: &OmegaAutomaton, b: &OmegaAutomaton) -> bool {
    let product = Product::build(a, b);
    counterexample_region(&product, a, b, Side::Left).is_none()
        && counterexample_region(&product, a, b, Side::Right).is_none()
}

/// A lasso accepted by exactly one of the two automata, or `None` when
/// the languages are equal. Shares one product graph across both
/// directions.
pub fn distinguishing_lasso(a: &OmegaAutomaton, b: &OmegaAutomaton) -> Option<Lasso> {
    let product = Product::build(a, b);
    let region = counterexample_region(&product, a, b, Side::Left)
        .or_else(|| counterexample_region(&product, a, b, Side::Right))?;
    let lasso = region_lasso(&product, &region);
    debug_assert!(
        a.accepts(&lasso) != b.accepts(&lasso),
        "distinguishing lasso must separate the languages"
    );
    Some(lasso)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::random::rng::{Rng, SeedableRng, StdRng};
    use crate::random::{random_streett, random_structure};
    use crate::streett::{rabin, StreettPair};

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn last_sym(sigma: &Alphabet, acc: Acceptance) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(sigma, 2, 0, |_, s| if s == b { 1 } else { 0 }, acc)
    }

    /// Evaluates a decomposition on an infinity set.
    fn decomposition_accepts(d: &[RabinDisjunct], inf: &BitSet) -> bool {
        d.iter().any(|x| x.accepts_cycle(inf))
    }

    /// A random boolean acceptance condition over `n` states.
    fn random_acceptance(rng: &mut StdRng, n: usize, depth: usize) -> Acceptance {
        let set = |rng: &mut StdRng| -> BitSet { (0..n).filter(|_| rng.gen_bool(0.4)).collect() };
        if depth == 0 {
            return if rng.gen_bool(0.5) {
                Acceptance::Inf(set(rng))
            } else {
                Acceptance::Fin(set(rng))
            };
        }
        match rng.gen_range(0..4usize) {
            0 => Acceptance::Inf(set(rng)),
            1 => Acceptance::Fin(set(rng)),
            2 => random_acceptance(rng, n, depth - 1).and(random_acceptance(rng, n, depth - 1)),
            _ => random_acceptance(rng, n, depth - 1).or(random_acceptance(rng, n, depth - 1)),
        }
    }

    #[test]
    fn parity_view_of_named_shapes() {
        let n = 4;
        // Büchi, co-Büchi, one-pair Streett, one-pair Rabin.
        let cases = [
            Acceptance::inf([1, 2]),
            Acceptance::fin([0]),
            StreettPair::new([1], [0, 2]).acceptance(n),
            rabin(&[(BitSet::from_iter([0]), BitSet::from_iter([2, 3]))]),
            Acceptance::True,
            Acceptance::False,
        ];
        for acc in cases {
            let view = ParityView::try_of(&acc, n)
                .unwrap_or_else(|| panic!("{acc} should have a parity view"));
            for bits in 1u8..16 {
                let inf: BitSet = (0..n).filter(|i| bits & (1 << i) != 0).collect();
                assert_eq!(
                    view.accepts_infinity_set(&inf),
                    acc.accepts_infinity_set(&inf),
                    "parity view of {acc} disagrees on {inf:?}"
                );
            }
        }
    }

    #[test]
    fn multi_pair_streett_has_no_parity_view() {
        let n = 4;
        let pairs = [
            StreettPair::new([1], [0]).acceptance(n),
            StreettPair::new([2], [3]).acceptance(n),
        ];
        let acc = pairs[0].clone().and(pairs[1].clone());
        assert!(ParityView::try_of(&acc, n).is_none());
        // Generalized Büchi likewise.
        let gb = Acceptance::inf([0]).and(Acceptance::inf([1]));
        assert!(ParityView::try_of(&gb, n).is_none());
    }

    #[test]
    fn parity_views_agree_wherever_they_exist() {
        let mut rng = StdRng::seed_from_u64(2002);
        let n = 5;
        let mut found = 0;
        for _ in 0..300 {
            let acc = random_acceptance(&mut rng, n, 2);
            if let Some(view) = ParityView::try_of(&acc, n) {
                found += 1;
                for bits in 1u8..32 {
                    let inf: BitSet = (0..n).filter(|i| bits & (1 << i) != 0).collect();
                    assert_eq!(
                        view.accepts_infinity_set(&inf),
                        acc.accepts_infinity_set(&inf),
                        "parity view of {acc} disagrees on {inf:?}"
                    );
                }
            }
        }
        assert!(found > 20, "the sweep should exercise the parity rules");
    }

    #[test]
    fn decomposition_agrees_with_direct_eval() {
        let mut rng = StdRng::seed_from_u64(3191);
        let n = 5;
        for _ in 0..200 {
            let acc = random_acceptance(&mut rng, n, 2);
            let d = decompose(&acc, n);
            for bits in 1u8..32 {
                let inf: BitSet = (0..n).filter(|i| bits & (1 << i) != 0).collect();
                assert_eq!(
                    decomposition_accepts(&d, &inf),
                    acc.accepts_infinity_set(&inf),
                    "decomposition of {acc} disagrees on {inf:?}"
                );
            }
        }
    }

    #[test]
    fn streett_decomposition_stays_single_disjunct() {
        let mut rng = StdRng::seed_from_u64(7);
        let sigma = ab();
        let (aut, pairs) = random_streett(&mut rng, &sigma, 6, 4, 0.4);
        let d = decompose(aut.acceptance(), 6);
        assert_eq!(
            d.len(),
            1,
            "a Streett condition must not distribute (got {} disjuncts)",
            d.len()
        );
        assert_eq!(d[0].pairs.len(), pairs.len());
        // …while its negation (a Rabin condition) is one disjunct per pair.
        let neg = decompose(&aut.acceptance().negated(), 6);
        assert_eq!(neg.len(), pairs.len());
    }

    #[test]
    fn basic_inclusions() {
        let sigma = ab();
        let inf_b = last_sym(&sigma, Acceptance::inf([1]));
        let ev_alw_a = last_sym(&sigma, Acceptance::fin([1]));
        assert!(!included(&inf_b, &ev_alw_a));
        assert!(!included(&ev_alw_a, &inf_b));
        assert!(included(&inf_b, &inf_b));
        assert!(included(&OmegaAutomaton::empty(&sigma), &inf_b));
        assert!(included(&inf_b, &OmegaAutomaton::universal(&sigma)));
        assert!(!included(&OmegaAutomaton::universal(&sigma), &inf_b));
        assert!(equivalent(&inf_b, &inf_b));
        assert!(!equivalent(&inf_b, &ev_alw_a));
    }

    #[test]
    fn counterexamples_separate() {
        let sigma = ab();
        let inf_b = last_sym(&sigma, Acceptance::inf([1]));
        let ev_alw_a = last_sym(&sigma, Acceptance::fin([1]));
        let w = inclusion_counterexample(&inf_b, &ev_alw_a).unwrap();
        assert!(inf_b.accepts(&w) && !ev_alw_a.accepts(&w));
        assert!(inclusion_counterexample(&inf_b, &inf_b).is_none());
        let d = distinguishing_lasso(&inf_b, &ev_alw_a).unwrap();
        assert_ne!(inf_b.accepts(&d), ev_alw_a.accepts(&d));
        assert!(distinguishing_lasso(&ev_alw_a, &ev_alw_a.clone()).is_none());
    }

    #[test]
    fn agrees_with_the_complement_oracle_on_random_automata() {
        let sigma = ab();
        let mut rng = StdRng::seed_from_u64(314);
        let mut prev: Option<OmegaAutomaton> = None;
        for i in 0..60u64 {
            let k = [1usize, 2, 3][(i % 3) as usize];
            let (aut, _) = random_streett(&mut rng, &sigma, 6, k, 0.4);
            if let Some(other) = prev {
                assert_eq!(
                    included(&aut, &other),
                    aut.is_subset_of_via_complement(&other),
                    "case {i}: inclusion verdict diverged"
                );
                assert_eq!(
                    equivalent(&aut, &other),
                    aut.equivalent_via_complement(&other),
                    "case {i}: equivalence verdict diverged"
                );
                if let Some(w) = inclusion_counterexample(&aut, &other) {
                    assert!(aut.accepts(&w) && !other.accepts(&w), "case {i}");
                }
            }
            prev = Some(aut);
        }
    }

    #[test]
    fn random_acceptance_pairs_agree_with_the_complement_oracle() {
        // Beyond Streett: arbitrary boolean conditions on both sides,
        // exercising the decomposition path (and mixed parity shapes).
        let sigma = ab();
        let mut rng = StdRng::seed_from_u64(2718);
        for i in 0..40u64 {
            let left = random_structure(&mut rng, &sigma, 5)
                .with_acceptance(random_acceptance(&mut rng, 5, 2));
            let right = random_structure(&mut rng, &sigma, 5)
                .with_acceptance(random_acceptance(&mut rng, 5, 2));
            assert_eq!(
                included(&left, &right),
                left.is_subset_of_via_complement(&right),
                "case {i}: inclusion verdict diverged"
            );
            if let Some(w) = distinguishing_lasso(&left, &right) {
                assert_ne!(left.accepts(&w), right.accepts(&w), "case {i}");
            } else {
                assert!(left.equivalent_via_complement(&right), "case {i}");
            }
        }
    }
}
