//! Flat, cache-friendly graph and transition layouts (CSR).
//!
//! Every hot walk of the classification stack — the `O(2^m)` restricted
//! Tarjan passes of the color lattice, liveness, the condensation, the
//! fair-cycle search of the model checker — iterates successors of the
//! same graph over and over. The pointer-heavy
//! [`AdjGraph`](crate::scc::AdjGraph) (`Vec<Vec<StateId>>`) scatters each
//! state's successor list in its own heap allocation; this module provides
//! the compressed-sparse-row alternative used underneath all of them:
//!
//! * [`FlatGraph`] — two contiguous `u32` arrays (`offsets`, `targets`);
//!   the successors of state `q` are the slice
//!   `targets[offsets[q]..offsets[q+1]]`. Successor lists are
//!   **deduplicated** (first occurrence kept), which matters for automata:
//!   [`OmegaAutomaton`]'s successor enumeration emits one call per symbol,
//!   so a state whose `k` symbols share targets would otherwise be walked
//!   `k` times per Tarjan pass. Dedup preserves first-occurrence order, so
//!   a DFS over a [`FlatGraph`] visits states in exactly the order it
//!   would over the original graph — SCC numberings are unchanged.
//! * [`FlatAutomaton`] — the flat transition core of one automaton: the
//!   `delta[q·k + s]` table (a straight copy of the automaton's) plus the
//!   deduplicated successor [`FlatGraph`], built once and shared by every
//!   consumer ([`crate::analysis::Analysis`], the lattice walk of
//!   [`crate::classify::ChainAnalysis`], the minimizer of
//!   [`crate::minimize`]).
//!
//! All index arrays are `u32`; the layouts therefore cap at `2³²−1` edges,
//! far beyond any product this workspace builds (the paper-scale automata
//! have thousands of states).

use crate::omega::OmegaAutomaton;
use crate::scc::Successors;
use crate::StateId;

/// A directed graph over states `0..n` in compressed-sparse-row form:
/// the successors of `q` are `targets[offsets[q] .. offsets[q+1]]`,
/// deduplicated, in first-occurrence order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatGraph {
    /// `n + 1` row offsets into `targets` (monotone, `offsets[0] == 0`).
    offsets: Vec<u32>,
    /// Concatenated successor lists.
    targets: Vec<StateId>,
}

impl FlatGraph {
    /// Builds a CSR graph over states `0..n` by enumerating each state's
    /// successors with `succs_of`. Duplicate targets within one state's
    /// list are dropped (first occurrence kept), so ad-hoc product
    /// builders can emit one edge per transition without bloating the
    /// Tarjan walks downstream.
    pub fn from_fn<I>(n: usize, mut succs_of: impl FnMut(StateId) -> I) -> Self
    where
        I: IntoIterator<Item = StateId>,
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets: Vec<StateId> = Vec::new();
        // Generation-stamped dedup: `seen[t] == q+1` iff `t` was already
        // emitted for the current state `q` — O(1) per edge, no hashing.
        let mut seen = vec![0u32; n];
        offsets.push(0);
        for q in 0..n as StateId {
            let stamp = q + 1;
            for t in succs_of(q) {
                debug_assert!((t as usize) < n, "successor {t} out of range");
                if seen[t as usize] != stamp {
                    seen[t as usize] = stamp;
                    targets.push(t);
                }
            }
            offsets.push(targets.len() as u32);
        }
        FlatGraph { offsets, targets }
    }

    /// Builds the deduplicated successor graph of a flattened
    /// deterministic transition table `delta[q·k + s]` over `n` states
    /// and `k` symbols. Shared by [`FlatAutomaton::of`] and the ad-hoc
    /// product builders (e.g. [`crate::inclusion`]) so every flat delta
    /// gets its CSR graph through one audited path.
    pub fn from_delta(n: usize, k: usize, delta: &[StateId]) -> Self {
        debug_assert_eq!(delta.len(), n * k, "delta table has wrong shape");
        FlatGraph::from_fn(n, |q| {
            let base = q as usize * k;
            delta[base..base + k].to_vec()
        })
    }

    /// Snapshots any [`Successors`] implementation into CSR form
    /// (deduplicated). This is the constructor the analysis layers use to
    /// flatten an [`OmegaAutomaton`] or an
    /// [`AdjGraph`](crate::scc::AdjGraph) once and reuse it across many
    /// restricted SCC passes.
    pub fn from_graph<G: Successors>(graph: &G) -> Self {
        FlatGraph::from_fn(graph.num_states(), |q| {
            let mut v = Vec::new();
            graph.for_each_successor(q, &mut |t| v.push(t));
            v
        })
    }

    /// The successors of `q` as a contiguous slice.
    pub fn successors(&self, q: StateId) -> &[StateId] {
        &self.targets[self.offsets[q as usize] as usize..self.offsets[q as usize + 1] as usize]
    }

    /// Number of (deduplicated) edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }
}

impl Successors for FlatGraph {
    fn num_states(&self) -> usize {
        self.offsets.len() - 1
    }
    fn for_each_successor(&self, q: StateId, f: &mut dyn FnMut(StateId)) {
        for &t in self.successors(q) {
            f(t);
        }
    }
}

/// The flat transition core of one deterministic ω-automaton: a borrowed
/// copy of its `delta[q·k + s]` table plus the deduplicated successor
/// [`FlatGraph`]. Built once per automaton (see
/// [`crate::analysis::Analysis`]) and consumed by every SCC pass instead
/// of re-enumerating `step()` per symbol.
#[derive(Debug, Clone)]
pub struct FlatAutomaton {
    num_states: usize,
    alphabet_len: usize,
    /// Flattened transition table, `delta[q * k + s]`.
    delta: Vec<StateId>,
    /// Deduplicated successor graph over the same states.
    graph: FlatGraph,
}

impl FlatAutomaton {
    /// Flattens `aut` (one pass over its transition table).
    pub fn of(aut: &OmegaAutomaton) -> Self {
        let n = aut.num_states();
        let k = aut.alphabet().len();
        let mut delta = Vec::with_capacity(n * k);
        for q in 0..n as StateId {
            for sym in aut.alphabet().symbols() {
                delta.push(aut.step(q, sym));
            }
        }
        let graph = FlatGraph::from_delta(n, k, &delta);
        FlatAutomaton {
            num_states: n,
            alphabet_len: k,
            delta,
            graph,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Alphabet size `k`.
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// The successor of `q` under symbol index `s`.
    pub fn step(&self, q: StateId, s: usize) -> StateId {
        self.delta[q as usize * self.alphabet_len + s]
    }

    /// The deduplicated successor graph (the substrate of every SCC
    /// pass).
    pub fn graph(&self) -> &FlatGraph {
        &self.graph
    }
}

impl Successors for FlatAutomaton {
    fn num_states(&self) -> usize {
        self.num_states
    }
    fn for_each_successor(&self, q: StateId, f: &mut dyn FnMut(StateId)) {
        self.graph.for_each_successor(q, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptance::Acceptance;
    use crate::alphabet::Alphabet;
    use crate::scc::{tarjan_scc, AdjGraph};

    #[test]
    fn csr_matches_adjacency_lists() {
        let adj = AdjGraph {
            succs: vec![vec![1, 2, 1], vec![0], vec![], vec![3, 3]],
        };
        let flat = FlatGraph::from_graph(&adj);
        assert_eq!(flat.num_states(), 4);
        assert_eq!(flat.successors(0), &[1, 2]); // deduped, order kept
        assert_eq!(flat.successors(1), &[0]);
        assert_eq!(flat.successors(2), &[] as &[StateId]);
        assert_eq!(flat.successors(3), &[3]);
        assert_eq!(flat.num_edges(), 4);
    }

    #[test]
    fn scc_decomposition_is_identical_to_the_raw_graph() {
        // Dedup keeps first-occurrence order, so Tarjan must produce the
        // exact same component numbering as on the duplicated graph.
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            5,
            0,
            |q, s| ((q as usize + s.index()) % 5) as StateId,
            Acceptance::inf([1]),
        );
        let flat = FlatAutomaton::of(&aut);
        let raw = tarjan_scc(&aut, None);
        let csr = tarjan_scc(flat.graph(), None);
        assert_eq!(raw.component, csr.component);
        assert_eq!(raw.members, csr.members);
        assert_eq!(raw.has_cycle, csr.has_cycle);
        let allowed: crate::bitset::BitSet = [0usize, 2, 3].into_iter().collect();
        let raw_r = tarjan_scc(&aut, Some(&allowed));
        let csr_r = tarjan_scc(flat.graph(), Some(&allowed));
        assert_eq!(raw_r.component, csr_r.component);
        assert_eq!(raw_r.members, csr_r.members);
    }

    #[test]
    fn flat_step_agrees_with_the_automaton() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| if s == b { (q + 1) % 3 } else { q },
            Acceptance::inf([2]),
        );
        let flat = FlatAutomaton::of(&aut);
        for q in 0..3 {
            for sym in sigma.symbols() {
                assert_eq!(flat.step(q, sym.index()), aut.step(q, sym));
            }
        }
        // Self-loops survive dedup (has_cycle depends on them).
        assert_eq!(flat.graph().successors(0), &[0, 1]);
    }
}
