//! Random generators for automata, pair lists and lasso words, used by the
//! property-based tests and the decision-procedure benchmarks (`TAB-DEC`),
//! plus the vendored PRNG ([`rng`]) that drives them without any external
//! dependency.

use crate::alphabet::Alphabet;
use crate::bitset::BitSet;
use crate::dfa::Dfa;
use crate::lasso::Lasso;
use crate::omega::OmegaAutomaton;
use crate::streett::{StreettPair, StreettPairs};
use crate::StateId;
use rng::Rng;

/// A small vendored PRNG: splitmix64 seeding feeding a xoshiro256\*\*
/// generator (Blackman & Vigna's public-domain reference algorithms).
///
/// The surface mirrors the subset of `rand` 0.8 the workspace used —
/// `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64`, and the
/// `StdRng` alias — so test and bench code reads identically while the
/// build stays fully offline. Not cryptographically secure; statistical
/// quality only.
pub mod rng {
    /// The splitmix64 step: used to expand a 64-bit seed into the
    /// xoshiro256\*\* state vector.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A half-open or inclusive range that [`Rng::gen_range`] can sample
    /// from uniformly.
    pub trait SampleRange {
        /// The sampled value type.
        type Output;
        /// Draws a uniform sample using the given generator.
        fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    impl SampleRange for core::ops::Range<usize> {
        type Output = usize;
        fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
            assert!(self.start < self.end, "cannot sample empty range");
            let span = (self.end - self.start) as u64;
            self.start + (uniform_below(rng, span) as usize)
        }
    }

    impl SampleRange for core::ops::RangeInclusive<usize> {
        type Output = usize;
        fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            let span = (hi - lo) as u64 + 1;
            if span == 0 {
                // Full u64-width inclusive range: any draw is in range.
                return rng.next_u64() as usize;
            }
            lo + (uniform_below(rng, span) as usize)
        }
    }

    /// Debiased uniform draw in `0..bound` by rejection sampling.
    fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// The generator interface: a raw 64-bit step plus the derived sampling
    /// helpers the generators in [`super`] use.
    pub trait Rng {
        /// The next raw 64-bit output of the generator.
        fn next_u64(&mut self) -> u64;

        /// A uniform sample from `range` (half-open or inclusive).
        fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
        where
            Self: Sized,
        {
            range.sample(self)
        }

        /// `true` with probability `p` (clamped to `[0, 1]`).
        fn gen_bool(&mut self, p: f64) -> bool
        where
            Self: Sized,
        {
            assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
            // 53 random bits → a uniform float in [0, 1).
            let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            unit < p
        }
    }

    impl<R: Rng + ?Sized> Rng for &mut R {
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }

    /// Deterministic construction from a 64-bit seed.
    pub trait SeedableRng: Sized {
        /// Builds a generator whose stream is a pure function of `seed`.
        fn seed_from_u64(seed: u64) -> Self;
    }

    /// xoshiro256\*\* — 256 bits of state, period `2^256 − 1`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Xoshiro256StarStar {
        s: [u64; 4],
    }

    /// The workspace's default generator (name kept parallel to
    /// `rand::rngs::StdRng` so call sites read identically).
    pub type StdRng = Xoshiro256StarStar;

    impl SeedableRng for Xoshiro256StarStar {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Xoshiro256StarStar { s }
        }
    }

    impl Rng for Xoshiro256StarStar {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn deterministic_and_seed_sensitive() {
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            let mut c = StdRng::seed_from_u64(43);
            let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
            assert_eq!(xs, ys);
            assert_ne!(xs, zs);
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(7);
            let mut hit_lo = false;
            let mut hit_hi = false;
            for _ in 0..2000 {
                let v = rng.gen_range(3..7usize);
                assert!((3..7).contains(&v));
                let w = rng.gen_range(0..=4usize);
                assert!(w <= 4);
                hit_lo |= w == 0;
                hit_hi |= w == 4;
            }
            // Both inclusive endpoints are actually reachable.
            assert!(hit_lo && hit_hi);
        }

        #[test]
        fn gen_bool_tracks_probability() {
            let mut rng = StdRng::seed_from_u64(9);
            let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
            // ~2500 expected; allow a generous band.
            assert!((2000..3000).contains(&hits), "got {hits}");
            assert!((0..100).all(|_| !rng.gen_bool(0.0)));
            assert!((0..100).all(|_| rng.gen_bool(1.0)));
        }

        #[test]
        fn works_through_mut_references() {
            fn draw<R: Rng>(mut r: R) -> usize {
                r.gen_range(0..10usize)
            }
            let mut rng = StdRng::seed_from_u64(11);
            let _ = draw(&mut rng);
            let _ = draw(&mut rng);
        }
    }
}

/// A uniformly random complete DFA with `num_states` states; each state is
/// accepting with probability `accept_p`.
pub fn random_dfa<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
    accept_p: f64,
) -> Dfa {
    let table: Vec<StateId> = (0..num_states * alphabet.len())
        .map(|_| rng.gen_range(0..num_states) as StateId)
        .collect();
    let accepting: BitSet = (0..num_states).filter(|_| rng.gen_bool(accept_p)).collect();
    Dfa::from_parts(alphabet, num_states, 0, table, accepting).expect("random table is well-formed")
}

/// A random deterministic transition structure (acceptance `True`), to be
/// combined with a random pair list.
pub fn random_structure<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
) -> OmegaAutomaton {
    OmegaAutomaton::build(
        alphabet,
        num_states,
        0,
        |_, _| rng.gen_range(0..num_states) as StateId,
        crate::acceptance::Acceptance::True,
    )
}

/// A random Streett pair list: `k` pairs whose member sets include each
/// state with probability `p`.
pub fn random_pairs<R: Rng>(rng: &mut R, num_states: usize, k: usize, p: f64) -> StreettPairs {
    StreettPairs(
        (0..k)
            .map(|_| {
                let recurrent: Vec<usize> = (0..num_states).filter(|_| rng.gen_bool(p)).collect();
                let persistent: Vec<usize> = (0..num_states).filter(|_| rng.gen_bool(p)).collect();
                StreettPair::new(recurrent, persistent)
            })
            .collect(),
    )
}

/// A random deterministic Streett automaton together with its pair list.
pub fn random_streett<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
    k: usize,
    p: f64,
) -> (OmegaAutomaton, StreettPairs) {
    let pairs = random_pairs(rng, num_states, k, p);
    let structure = random_structure(rng, alphabet, num_states);
    let aut = structure.with_acceptance(pairs.acceptance(num_states));
    (aut, pairs)
}

/// A random deterministic Rabin automaton: `k` pairs `(Eᵢ, Fᵢ)` whose
/// member sets include each state with probability `p`, as the
/// disjunction `⋁ᵢ Inf(Fᵢ) ∧ Fin(Eᵢ)`.
pub fn random_rabin<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
    k: usize,
    p: f64,
) -> OmegaAutomaton {
    let pairs: Vec<(BitSet, BitSet)> = (0..k)
        .map(|_| {
            let avoid: BitSet = (0..num_states).filter(|_| rng.gen_bool(p)).collect();
            let visit: BitSet = (0..num_states).filter(|_| rng.gen_bool(p)).collect();
            (avoid, visit)
        })
        .collect();
    let structure = random_structure(rng, alphabet, num_states);
    structure.with_acceptance(crate::streett::rabin(&pairs))
}

/// A random deterministic parity automaton (min-even): every state gets
/// a uniform priority in `0..=max_priority`, encoded through
/// [`Acceptance::parity_min_even`](crate::acceptance::Acceptance::parity_min_even)
/// so the resulting condition admits a
/// [`ParityView`](crate::inclusion::ParityView).
pub fn random_parity<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
    max_priority: u32,
) -> OmegaAutomaton {
    let priorities: Vec<u32> = (0..num_states)
        .map(|_| rng.gen_range(0..=max_priority as usize) as u32)
        .collect();
    let structure = random_structure(rng, alphabet, num_states);
    structure.with_acceptance(crate::acceptance::Acceptance::parity_min_even(&priorities))
}

/// A random lasso with spoke length up to `max_spoke` and loop length in
/// `1..=max_cycle`.
pub fn random_lasso<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    max_spoke: usize,
    max_cycle: usize,
) -> Lasso {
    let spoke_len = rng.gen_range(0..=max_spoke);
    let cycle_len = rng.gen_range(1..=max_cycle.max(1));
    let rand_word = |rng: &mut R, len: usize| {
        (0..len)
            .map(|_| crate::alphabet::Symbol(rng.gen_range(0..alphabet.len()) as u8))
            .collect()
    };
    let spoke = rand_word(rng, spoke_len);
    let cycle = rand_word(rng, cycle_len);
    Lasso::new(spoke, cycle)
}

#[cfg(test)]
mod tests {
    use super::rng::{SeedableRng, StdRng};
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn random_dfa_is_wellformed() {
        let mut rng = StdRng::seed_from_u64(1);
        let sigma = ab();
        for _ in 0..20 {
            let d = random_dfa(&mut rng, &sigma, 8, 0.4);
            assert_eq!(d.num_states(), 8);
            // Exercise the language a bit.
            let _ = d.is_empty();
            let _ = d.minimize();
        }
    }

    #[test]
    fn random_streett_classifiable() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = ab();
        for _ in 0..10 {
            let (aut, pairs) = random_streett(&mut rng, &sigma, 6, 2, 0.3);
            assert_eq!(pairs.len(), 2);
            let c = crate::classify::classify(&aut);
            // Hierarchy invariants must hold on arbitrary automata.
            assert!(!c.is_obligation || (c.is_recurrence && c.is_persistence));
            assert!(!c.is_safety || c.is_obligation);
            assert!(!c.is_guarantee || c.is_obligation);
            assert!(c.reactivity_index >= 1);
        }
    }

    #[test]
    fn random_rabin_and_parity_are_wellformed() {
        let mut rng = StdRng::seed_from_u64(4);
        let sigma = ab();
        for _ in 0..10 {
            let r = random_rabin(&mut rng, &sigma, 6, 2, 0.3);
            assert_eq!(r.num_states(), 6);
            let _ = crate::classify::classify(&r);
            let p = random_parity(&mut rng, &sigma, 6, 3);
            assert!(
                crate::inclusion::ParityView::try_of(p.acceptance(), 6).is_some(),
                "parity automata must admit a parity view"
            );
        }
    }

    #[test]
    fn random_lasso_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = ab();
        for _ in 0..50 {
            let w = random_lasso(&mut rng, &sigma, 4, 3);
            assert!(w.spoke().len() <= 4);
            assert!((1..=3).contains(&w.cycle().len()));
        }
    }
}
