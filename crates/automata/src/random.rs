//! Random generators for automata, pair lists and lasso words, used by the
//! property-based tests and the decision-procedure benchmarks (`TAB-DEC`).

use crate::alphabet::Alphabet;
use crate::bitset::BitSet;
use crate::dfa::Dfa;
use crate::lasso::Lasso;
use crate::omega::OmegaAutomaton;
use crate::streett::{StreettPair, StreettPairs};
use crate::StateId;
use rand::Rng;

/// A uniformly random complete DFA with `num_states` states; each state is
/// accepting with probability `accept_p`.
pub fn random_dfa<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
    accept_p: f64,
) -> Dfa {
    let table: Vec<StateId> = (0..num_states * alphabet.len())
        .map(|_| rng.gen_range(0..num_states) as StateId)
        .collect();
    let accepting: BitSet = (0..num_states).filter(|_| rng.gen_bool(accept_p)).collect();
    Dfa::from_parts(alphabet, num_states, 0, table, accepting)
        .expect("random table is well-formed")
}

/// A random deterministic transition structure (acceptance `True`), to be
/// combined with a random pair list.
pub fn random_structure<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
) -> OmegaAutomaton {
    OmegaAutomaton::build(
        alphabet,
        num_states,
        0,
        |_, _| rng.gen_range(0..num_states) as StateId,
        crate::acceptance::Acceptance::True,
    )
}

/// A random Streett pair list: `k` pairs whose member sets include each
/// state with probability `p`.
pub fn random_pairs<R: Rng>(rng: &mut R, num_states: usize, k: usize, p: f64) -> StreettPairs {
    StreettPairs(
        (0..k)
            .map(|_| {
                let recurrent: Vec<usize> =
                    (0..num_states).filter(|_| rng.gen_bool(p)).collect();
                let persistent: Vec<usize> =
                    (0..num_states).filter(|_| rng.gen_bool(p)).collect();
                StreettPair::new(recurrent, persistent)
            })
            .collect(),
    )
}

/// A random deterministic Streett automaton together with its pair list.
pub fn random_streett<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    num_states: usize,
    k: usize,
    p: f64,
) -> (OmegaAutomaton, StreettPairs) {
    let pairs = random_pairs(rng, num_states, k, p);
    let structure = random_structure(rng, alphabet, num_states);
    let aut = structure.with_acceptance(pairs.acceptance(num_states));
    (aut, pairs)
}

/// A random lasso with spoke length up to `max_spoke` and loop length in
/// `1..=max_cycle`.
pub fn random_lasso<R: Rng>(
    rng: &mut R,
    alphabet: &Alphabet,
    max_spoke: usize,
    max_cycle: usize,
) -> Lasso {
    let spoke_len = rng.gen_range(0..=max_spoke);
    let cycle_len = rng.gen_range(1..=max_cycle.max(1));
    let rand_word = |rng: &mut R, len: usize| {
        (0..len)
            .map(|_| crate::alphabet::Symbol(rng.gen_range(0..alphabet.len()) as u8))
            .collect()
    };
    let spoke = rand_word(rng, spoke_len);
    let cycle = rand_word(rng, cycle_len);
    Lasso::new(spoke, cycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn random_dfa_is_wellformed() {
        let mut rng = StdRng::seed_from_u64(1);
        let sigma = ab();
        for _ in 0..20 {
            let d = random_dfa(&mut rng, &sigma, 8, 0.4);
            assert_eq!(d.num_states(), 8);
            // Exercise the language a bit.
            let _ = d.is_empty();
            let _ = d.minimize();
        }
    }

    #[test]
    fn random_streett_classifiable() {
        let mut rng = StdRng::seed_from_u64(2);
        let sigma = ab();
        for _ in 0..10 {
            let (aut, pairs) = random_streett(&mut rng, &sigma, 6, 2, 0.3);
            assert_eq!(pairs.len(), 2);
            let c = crate::classify::classify(&aut);
            // Hierarchy invariants must hold on arbitrary automata.
            assert!(!c.is_obligation || (c.is_recurrence && c.is_persistence));
            assert!(!c.is_safety || c.is_obligation);
            assert!(!c.is_guarantee || c.is_obligation);
            assert!(c.reactivity_index >= 1);
        }
    }

    #[test]
    fn random_lasso_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let sigma = ab();
        for _ in 0..50 {
            let w = random_lasso(&mut rng, &sigma, 4, 3);
            assert!(w.spoke().len() <= 4);
            assert!((1..=3).contains(&w.cycle().len()));
        }
    }
}
