//! Export to the HOA (Hanoi Omega-Automata) interchange format, so
//! automata built here can be inspected with external tools (Spot's
//! `autfilt`, owl, …).
//!
//! The encoding:
//!
//! * atomic propositions are the bits of the symbol index (for valuation
//!   alphabets this is exactly the proposition list; for letter alphabets
//!   it is a binary encoding of the letter);
//! * each distinct acceptance atom set becomes one HOA acceptance set;
//!   `Inf`/`Fin` atoms map to `Inf(i)`/`Fin(i)` and the boolean structure
//!   is emitted verbatim;
//! * transitions are labelled with the conjunction of proposition
//!   literals describing their symbol.

use crate::acceptance::Acceptance;
use crate::alphabet::Symbol;
use crate::bitset::BitSet;
use crate::omega::OmegaAutomaton;
use crate::StateId;
use std::fmt::Write as _;

/// Renders a deterministic ω-automaton in HOA v1 format.
pub fn omega_to_hoa(aut: &OmegaAutomaton) -> String {
    let n_sym = aut.alphabet().len();
    let ap_count = bits_needed(n_sym);
    // The acceptance walk interns atom sets as it renders, so every index
    // in the formula refers to a set collected in the same pass — there is
    // no way for the two to fall out of sync.
    let mut atoms: Vec<BitSet> = Vec::new();
    let formula = acceptance_formula(aut.acceptance(), &mut atoms);

    let mut out = String::new();
    out.push_str("HOA: v1\n");
    let _ = writeln!(out, "States: {}", aut.num_states());
    let _ = writeln!(out, "Start: {}", aut.initial());
    // AP names: real proposition names when available, else bit names.
    let props = aut.alphabet().propositions();
    let _ = write!(out, "AP: {ap_count}");
    for i in 0..ap_count {
        if i < props.len() {
            let _ = write!(out, " {}", hoa_quote(&props[i]));
        } else {
            let _ = write!(out, " \"bit{i}\"");
        }
    }
    out.push('\n');
    let _ = writeln!(out, "Acceptance: {} {}", atoms.len(), formula);
    // `complete` may only be claimed when every AP valuation has an edge.
    // The binary encoding introduces 2^ap_count valuations; when the
    // alphabet size is not a power of two the padding valuations have no
    // outgoing edges, so the exported automaton is not complete.
    if n_sym == 1 << ap_count {
        out.push_str("properties: deterministic complete\n");
    } else {
        out.push_str("properties: deterministic\n");
    }
    out.push_str("--BODY--\n");
    for q in 0..aut.num_states() as StateId {
        // Acceptance-set membership of the state.
        let memberships: Vec<String> = atoms
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(q as usize))
            .map(|(i, _)| i.to_string())
            .collect();
        if memberships.is_empty() {
            let _ = writeln!(out, "State: {q}");
        } else {
            let _ = writeln!(out, "State: {q} {{{}}}", memberships.join(" "));
        }
        for sym in aut.alphabet().symbols() {
            let _ = writeln!(
                out,
                "[{}] {}",
                symbol_label(sym, ap_count),
                aut.step(q, sym)
            );
        }
    }
    out.push_str("--END--\n");
    out
}

/// Renders an AP name as a double-quoted HOA string, escaping `"` and
/// `\` per the HOA v1 grammar (the only two characters it treats
/// specially inside quoted strings).
fn hoa_quote(name: &str) -> String {
    let mut quoted = String::with_capacity(name.len() + 2);
    quoted.push('"');
    for ch in name.chars() {
        if ch == '"' || ch == '\\' {
            quoted.push('\\');
        }
        quoted.push(ch);
    }
    quoted.push('"');
    quoted
}

fn bits_needed(n: usize) -> usize {
    let mut bits = 0;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits.max(1)
}

fn symbol_label(sym: Symbol, ap_count: usize) -> String {
    (0..ap_count)
        .map(|b| {
            if sym.index() & (1 << b) != 0 {
                b.to_string()
            } else {
                format!("!{b}")
            }
        })
        .collect::<Vec<_>>()
        .join("&")
}

/// Renders the acceptance formula, interning each distinct atom set into
/// `atoms` on first sight (so a lookup can never miss).
fn acceptance_formula(acc: &Acceptance, atoms: &mut Vec<BitSet>) -> String {
    fn idx(atoms: &mut Vec<BitSet>, s: &BitSet) -> usize {
        match atoms.iter().position(|a| a == s) {
            Some(i) => i,
            None => {
                atoms.push(s.clone());
                atoms.len() - 1
            }
        }
    }
    match acc {
        Acceptance::True => "t".to_string(),
        Acceptance::False => "f".to_string(),
        Acceptance::Inf(s) => format!("Inf({})", idx(atoms, s)),
        Acceptance::Fin(s) => format!("Fin({})", idx(atoms, s)),
        Acceptance::And(xs) => {
            let mut parts: Vec<String> = Vec::with_capacity(xs.len());
            for x in xs {
                parts.push(format!("({})", acceptance_formula(x, atoms)));
            }
            parts.join(" & ")
        }
        Acceptance::Or(xs) => {
            let mut parts: Vec<String> = Vec::with_capacity(xs.len());
            for x in xs {
                parts.push(format!("({})", acceptance_formula(x, atoms)));
            }
            parts.join(" | ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn buchi_automaton_exports() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        );
        let hoa = omega_to_hoa(&m);
        assert!(hoa.starts_with("HOA: v1\n"));
        assert!(hoa.contains("States: 2"));
        assert!(hoa.contains("Start: 0"));
        assert!(hoa.contains("Acceptance: 1 Inf(0)"));
        assert!(hoa.contains("State: 1 {0}"));
        assert!(hoa.contains("--BODY--") && hoa.ends_with("--END--\n"));
        // Letter b is index 1 → label "0" (bit set); a → "!0".
        assert!(hoa.contains("[!0] 0"));
        assert!(hoa.contains("[0] 1"));
    }

    #[test]
    fn proposition_alphabet_uses_names() {
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(hoa.contains("AP: 2 \"p\" \"q\""));
        assert!(hoa.contains("Acceptance: 0 t"));
    }

    #[test]
    fn streett_acceptance_structure() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, _| q,
            Acceptance::inf([0]).or(Acceptance::fin([1])),
        );
        let hoa = omega_to_hoa(&m);
        assert!(hoa.contains("Acceptance: 2 (Inf(0)) | (Fin(1))"));
    }

    /// Regression: AP names used to be written unescaped, so a
    /// proposition named `a"b` or `a\b` produced a malformed HOA header.
    #[test]
    fn ap_names_with_quotes_and_backslashes_are_escaped() {
        let sigma = Alphabet::of_propositions(["a\"b", "a\\b"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(
            hoa.contains("AP: 2 \"a\\\"b\" \"a\\\\b\""),
            "AP names must be escaped per the HOA v1 grammar, got:\n{hoa}"
        );
        // Every AP line token must still be a well-formed quoted string:
        // an even number of unescaped quotes on the line.
        let ap_line = hoa.lines().find(|l| l.starts_with("AP:")).unwrap();
        let mut quotes = 0usize;
        let mut escaped = false;
        for ch in ap_line.chars() {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                quotes += 1;
            }
        }
        assert_eq!(quotes % 2, 0, "unbalanced quotes in {ap_line:?}");
    }

    /// Regression: for alphabets whose size is not a power of two the
    /// binary AP encoding has padding valuations with no outgoing edges,
    /// so the export must not claim `complete`.
    #[test]
    fn non_power_of_two_alphabet_does_not_claim_complete() {
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(
            hoa.contains("properties: deterministic\n"),
            "determinism still holds, got:\n{hoa}"
        );
        assert!(
            !hoa.contains("complete"),
            "3 letters occupy 3 of the 4 two-bit valuations; the \
             export is not complete:\n{hoa}"
        );
        // Power-of-two alphabets keep the claim.
        for names in [vec!["a", "b"], vec!["a", "b", "c", "d"]] {
            let sigma = Alphabet::new(names).unwrap();
            let m = OmegaAutomaton::universal(&sigma);
            assert!(omega_to_hoa(&m).contains("properties: deterministic complete\n"));
        }
    }

    #[test]
    fn four_letter_alphabet_uses_two_bits() {
        let sigma = Alphabet::new(["a", "b", "c", "d"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(hoa.contains("AP: 2 \"bit0\" \"bit1\""));
        // Letter d = index 3 = both bits set.
        assert!(hoa.contains("[0&1] 0"));
    }
}
