//! Export to — and import from — the HOA (Hanoi Omega-Automata)
//! interchange format, so automata built here can be exchanged with
//! external tools (Spot's `autfilt`, owl, …) and ingested by the
//! classification service (`crates/serve`).
//!
//! The export encoding ([`omega_to_hoa`]):
//!
//! * atomic propositions are the bits of the symbol index (for valuation
//!   alphabets this is exactly the proposition list; for letter alphabets
//!   it is a binary encoding of the letter);
//! * each distinct acceptance atom set becomes one HOA acceptance set;
//!   `Inf`/`Fin` atoms map to `Inf(i)`/`Fin(i)` and the boolean structure
//!   is emitted verbatim;
//! * transitions are labelled with the conjunction of proposition
//!   literals describing their symbol.
//!
//! The parser ([`hoa_to_omega`]) accepts the deterministic state-based
//! fragment of HOA v1 this crate works with: the alphabet is rebuilt as
//! the valuation alphabet `2^AP` over the declared propositions (≤ 6),
//! every valuation must have exactly one outgoing edge per state, and
//! acceptance is an arbitrary boolean combination of `Inf`/`Fin` atoms.
//! `omega_to_hoa` output round-trips exactly whenever the source
//! alphabet has power-of-two size (proposition alphabets by name;
//! letter alphabets through the synthetic `bitN` propositions);
//! non-power-of-two letter alphabets export incomplete automata, which
//! the parser rejects ([`AutomatonError::NotDeterministic`]).

use crate::acceptance::Acceptance;
use crate::alphabet::{Alphabet, Symbol};
use crate::bitset::BitSet;
use crate::omega::OmegaAutomaton;
use crate::AutomatonError;
use crate::StateId;
use std::fmt::Write as _;

/// Renders a deterministic ω-automaton in HOA v1 format.
pub fn omega_to_hoa(aut: &OmegaAutomaton) -> String {
    let n_sym = aut.alphabet().len();
    let ap_count = bits_needed(n_sym);
    // The acceptance walk interns atom sets as it renders, so every index
    // in the formula refers to a set collected in the same pass — there is
    // no way for the two to fall out of sync.
    let mut atoms: Vec<BitSet> = Vec::new();
    let formula = acceptance_formula(aut.acceptance(), &mut atoms);

    let mut out = String::new();
    out.push_str("HOA: v1\n");
    let _ = writeln!(out, "States: {}", aut.num_states());
    let _ = writeln!(out, "Start: {}", aut.initial());
    // AP names: real proposition names when available, else bit names.
    let props = aut.alphabet().propositions();
    let _ = write!(out, "AP: {ap_count}");
    for i in 0..ap_count {
        if i < props.len() {
            let _ = write!(out, " {}", hoa_quote(&props[i]));
        } else {
            let _ = write!(out, " \"bit{i}\"");
        }
    }
    out.push('\n');
    let _ = writeln!(out, "Acceptance: {} {}", atoms.len(), formula);
    // `complete` may only be claimed when every AP valuation has an edge.
    // The binary encoding introduces 2^ap_count valuations; when the
    // alphabet size is not a power of two the padding valuations have no
    // outgoing edges, so the exported automaton is not complete.
    if n_sym == 1 << ap_count {
        out.push_str("properties: deterministic complete\n");
    } else {
        out.push_str("properties: deterministic\n");
    }
    out.push_str("--BODY--\n");
    for q in 0..aut.num_states() as StateId {
        // Acceptance-set membership of the state.
        let memberships: Vec<String> = atoms
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(q as usize))
            .map(|(i, _)| i.to_string())
            .collect();
        if memberships.is_empty() {
            let _ = writeln!(out, "State: {q}");
        } else {
            let _ = writeln!(out, "State: {q} {{{}}}", memberships.join(" "));
        }
        for sym in aut.alphabet().symbols() {
            let _ = writeln!(
                out,
                "[{}] {}",
                symbol_label(sym, ap_count),
                aut.step(q, sym)
            );
        }
    }
    out.push_str("--END--\n");
    out
}

/// Renders an AP name as a double-quoted HOA string, escaping `"` and
/// `\` per the HOA v1 grammar (the only two characters it treats
/// specially inside quoted strings).
fn hoa_quote(name: &str) -> String {
    let mut quoted = String::with_capacity(name.len() + 2);
    quoted.push('"');
    for ch in name.chars() {
        if ch == '"' || ch == '\\' {
            quoted.push('\\');
        }
        quoted.push(ch);
    }
    quoted.push('"');
    quoted
}

fn bits_needed(n: usize) -> usize {
    let mut bits = 0;
    while (1usize << bits) < n {
        bits += 1;
    }
    bits.max(1)
}

fn symbol_label(sym: Symbol, ap_count: usize) -> String {
    (0..ap_count)
        .map(|b| {
            if sym.index() & (1 << b) != 0 {
                b.to_string()
            } else {
                format!("!{b}")
            }
        })
        .collect::<Vec<_>>()
        .join("&")
}

/// Renders the acceptance formula, interning each distinct atom set into
/// `atoms` on first sight (so a lookup can never miss).
fn acceptance_formula(acc: &Acceptance, atoms: &mut Vec<BitSet>) -> String {
    fn idx(atoms: &mut Vec<BitSet>, s: &BitSet) -> usize {
        match atoms.iter().position(|a| a == s) {
            Some(i) => i,
            None => {
                atoms.push(s.clone());
                atoms.len() - 1
            }
        }
    }
    match acc {
        Acceptance::True => "t".to_string(),
        Acceptance::False => "f".to_string(),
        Acceptance::Inf(s) => format!("Inf({})", idx(atoms, s)),
        Acceptance::Fin(s) => format!("Fin({})", idx(atoms, s)),
        Acceptance::And(xs) => {
            let mut parts: Vec<String> = Vec::with_capacity(xs.len());
            for x in xs {
                parts.push(format!("({})", acceptance_formula(x, atoms)));
            }
            parts.join(" & ")
        }
        Acceptance::Or(xs) => {
            let mut parts: Vec<String> = Vec::with_capacity(xs.len());
            for x in xs {
                parts.push(format!("({})", acceptance_formula(x, atoms)));
            }
            parts.join(" | ")
        }
    }
}

fn err(message: impl Into<String>) -> AutomatonError {
    AutomatonError::HoaParse {
        message: message.into(),
    }
}

/// Acceptance formula over HOA acceptance-set *indices*; resolved to
/// state sets only after the body has been read.
enum SetFormula {
    True,
    False,
    Inf(usize),
    Fin(usize),
    And(Vec<SetFormula>),
    Or(Vec<SetFormula>),
}

impl SetFormula {
    fn resolve(&self, members: &[BitSet]) -> Acceptance {
        match self {
            SetFormula::True => Acceptance::True,
            SetFormula::False => Acceptance::False,
            SetFormula::Inf(i) => Acceptance::Inf(members[*i].clone()),
            SetFormula::Fin(i) => Acceptance::Fin(members[*i].clone()),
            SetFormula::And(xs) => {
                if xs.len() == 1 {
                    xs[0].resolve(members)
                } else {
                    Acceptance::And(xs.iter().map(|x| x.resolve(members)).collect())
                }
            }
            SetFormula::Or(xs) => {
                if xs.len() == 1 {
                    xs[0].resolve(members)
                } else {
                    Acceptance::Or(xs.iter().map(|x| x.resolve(members)).collect())
                }
            }
        }
    }
}

/// Cursor-based recursive-descent parser for HOA acceptance formulas:
/// `t`, `f`, `Inf(i)`, `Fin(i)`, parentheses, with `&` binding tighter
/// than `|`.
struct FormulaCursor<'a> {
    src: &'a str,
    pos: usize,
    num_sets: usize,
}

impl<'a> FormulaCursor<'a> {
    fn skip_ws(&mut self) {
        while self.src[self.pos..].starts_with(' ') {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.src[self.pos..].starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<SetFormula, AutomatonError> {
        let mut parts = vec![self.parse_and()?];
        while self.eat("|") {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            SetFormula::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<SetFormula, AutomatonError> {
        let mut parts = vec![self.parse_atom()?];
        while self.eat("&") {
            parts.push(self.parse_atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            SetFormula::And(parts)
        })
    }

    fn parse_set_index(&mut self) -> Result<usize, AutomatonError> {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        let digits: usize = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
        if digits == 0 {
            return Err(err(format!("expected acceptance-set index at {rest:?}")));
        }
        let i: usize = rest[..digits]
            .parse()
            .map_err(|_| err(format!("acceptance-set index out of range: {rest:?}")))?;
        self.pos += digits;
        if i >= self.num_sets {
            return Err(err(format!(
                "acceptance set {i} out of range (declared {})",
                self.num_sets
            )));
        }
        Ok(i)
    }

    fn parse_atom(&mut self) -> Result<SetFormula, AutomatonError> {
        if self.eat("(") {
            let inner = self.parse_or()?;
            if !self.eat(")") {
                return Err(err("unbalanced parenthesis in acceptance formula"));
            }
            return Ok(inner);
        }
        if self.eat("Inf(") {
            let i = self.parse_set_index()?;
            if !self.eat(")") {
                return Err(err("missing ')' after Inf set index"));
            }
            return Ok(SetFormula::Inf(i));
        }
        if self.eat("Fin(") {
            let i = self.parse_set_index()?;
            if !self.eat(")") {
                return Err(err("missing ')' after Fin set index"));
            }
            return Ok(SetFormula::Fin(i));
        }
        if self.eat("t") {
            return Ok(SetFormula::True);
        }
        if self.eat("f") {
            return Ok(SetFormula::False);
        }
        Err(err(format!(
            "unexpected token in acceptance formula at {:?}",
            &self.src[self.pos..]
        )))
    }
}

/// Parses the double-quoted AP names after `AP: n`, honouring the `\"`
/// and `\\` escapes the exporter produces.
fn parse_ap_names(rest: &str) -> Result<Vec<String>, AutomatonError> {
    let mut names = Vec::new();
    let mut chars = rest.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(' ' | '\t')) {
            chars.next();
        }
        match chars.next() {
            None => break,
            Some('"') => {
                let mut name = String::new();
                loop {
                    match chars.next() {
                        None => return Err(err("unterminated AP name string")),
                        Some('\\') => match chars.next() {
                            Some(c) => name.push(c),
                            None => return Err(err("dangling escape in AP name")),
                        },
                        Some('"') => break,
                        Some(c) => name.push(c),
                    }
                }
                names.push(name);
            }
            Some(c) => return Err(err(format!("expected quoted AP name, found {c:?}"))),
        }
    }
    Ok(names)
}

/// Parses a transition label — `t` or a conjunction of AP literals
/// (`0`, `!1`, …) — into the set of symbol indices it covers: all
/// valuations consistent with the mentioned literals.
fn parse_label(label: &str, ap_count: usize) -> Result<Vec<usize>, AutomatonError> {
    let label = label.trim();
    let (mut required, mut forbidden) = (0usize, 0usize);
    if label != "t" {
        for lit in label.split('&') {
            let lit = lit.trim();
            let (neg, digits) = match lit.strip_prefix('!') {
                Some(d) => (true, d.trim()),
                None => (false, lit),
            };
            let bit: usize = digits
                .parse()
                .map_err(|_| err(format!("bad literal {lit:?} in transition label")))?;
            if bit >= ap_count {
                return Err(err(format!(
                    "AP {bit} out of range in label (declared {ap_count})"
                )));
            }
            if neg {
                forbidden |= 1 << bit;
            } else {
                required |= 1 << bit;
            }
        }
        if required & forbidden != 0 {
            return Err(err(format!("contradictory transition label {label:?}")));
        }
    }
    Ok((0..1usize << ap_count)
        .filter(|v| v & required == required && v & forbidden == 0)
        .collect())
}

/// Parses the deterministic state-based HOA v1 fragment produced by
/// [`omega_to_hoa`] (and by external tools emitting that shape) back
/// into an [`OmegaAutomaton`] over the valuation alphabet `2^AP`.
///
/// # Errors
///
/// [`AutomatonError::HoaParse`] on malformed documents (missing
/// headers, bad acceptance formulas, out-of-range indices),
/// [`AutomatonError::NotDeterministic`] when some state lacks or
/// duplicates an edge for some valuation, and the usual
/// [`Alphabet::of_propositions`] errors for more than 6 or duplicate
/// APs.
pub fn hoa_to_omega(src: &str) -> Result<OmegaAutomaton, AutomatonError> {
    let mut lines = src.lines().map(str::trim).filter(|l| !l.is_empty());
    match lines.next() {
        Some("HOA: v1") => {}
        other => return Err(err(format!("expected \"HOA: v1\" header, found {other:?}"))),
    }

    let mut num_states: Option<usize> = None;
    let mut start: Option<StateId> = None;
    let mut ap_names: Option<Vec<String>> = None;
    let mut acceptance: Option<(usize, SetFormula)> = None;
    let mut saw_body = false;
    for line in lines.by_ref() {
        if line == "--BODY--" {
            saw_body = true;
            break;
        }
        let (key, rest) = line
            .split_once(':')
            .ok_or_else(|| err(format!("malformed header line {line:?}")))?;
        let rest = rest.trim();
        match key {
            "States" => {
                let n: usize = rest
                    .parse()
                    .map_err(|_| err(format!("bad state count {rest:?}")))?;
                num_states = Some(n);
            }
            "Start" => {
                let q: StateId = rest
                    .parse()
                    .map_err(|_| err(format!("bad start state {rest:?}")))?;
                start = Some(q);
            }
            "AP" => {
                let (count, names_part) = rest.split_once(' ').unwrap_or((rest, ""));
                let declared: usize = count
                    .parse()
                    .map_err(|_| err(format!("bad AP count in {rest:?}")))?;
                let names = parse_ap_names(names_part)?;
                if names.len() != declared {
                    return Err(err(format!(
                        "AP header declares {declared} propositions but lists {}",
                        names.len()
                    )));
                }
                ap_names = Some(names);
            }
            "Acceptance" => {
                let (count, formula_part) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(format!("malformed Acceptance header {rest:?}")))?;
                let num_sets: usize = count
                    .parse()
                    .map_err(|_| err(format!("bad acceptance-set count in {rest:?}")))?;
                let mut cursor = FormulaCursor {
                    src: formula_part,
                    pos: 0,
                    num_sets,
                };
                let formula = cursor.parse_or()?;
                cursor.skip_ws();
                if cursor.pos != formula_part.len() {
                    return Err(err(format!(
                        "trailing input after acceptance formula: {:?}",
                        &formula_part[cursor.pos..]
                    )));
                }
                acceptance = Some((num_sets, formula));
            }
            // Informational headers the exporter or external tools emit.
            "properties" | "name" | "tool" | "acc-name" => {}
            _ => return Err(err(format!("unsupported header {key:?}"))),
        }
    }
    if !saw_body {
        return Err(err("missing --BODY-- marker"));
    }
    let num_states = num_states.ok_or_else(|| err("missing States: header"))?;
    let start = start.ok_or_else(|| err("missing Start: header"))?;
    let ap_names = ap_names.ok_or_else(|| err("missing AP: header"))?;
    let (num_sets, formula) = acceptance.ok_or_else(|| err("missing Acceptance: header"))?;
    if num_states == 0 {
        return Err(err("automaton must have at least one state"));
    }
    if (start as usize) >= num_states {
        return Err(err(format!(
            "start state {start} out of range (automaton has {num_states})"
        )));
    }

    let alphabet = Alphabet::of_propositions(ap_names)?;
    let n_sym = alphabet.len();
    let mut delta: Vec<Option<StateId>> = vec![None; num_states * n_sym];
    let mut members: Vec<BitSet> = vec![BitSet::new(); num_sets];
    let mut current: Option<usize> = None;
    let mut saw_end = false;
    for line in lines.by_ref() {
        if line == "--END--" {
            saw_end = true;
            break;
        }
        if let Some(rest) = line.strip_prefix("State:") {
            // `State: q ["name"] [{set set ...}]`
            let rest = rest.trim();
            let digits = rest.bytes().take_while(|b| b.is_ascii_digit()).count();
            if digits == 0 {
                return Err(err(format!("malformed state line {line:?}")));
            }
            let q: usize = rest[..digits]
                .parse()
                .map_err(|_| err(format!("bad state index in {line:?}")))?;
            if q >= num_states {
                return Err(err(format!(
                    "state {q} out of range (declared {num_states})"
                )));
            }
            let mut tail = rest[digits..].trim();
            if let Some(after_quote) = tail.strip_prefix('"') {
                // Skip an optional state name; escapes as in AP names.
                let mut esc = false;
                let mut close = None;
                for (i, c) in after_quote.char_indices() {
                    if esc {
                        esc = false;
                    } else if c == '\\' {
                        esc = true;
                    } else if c == '"' {
                        close = Some(i);
                        break;
                    }
                }
                let close = close.ok_or_else(|| err("unterminated state name"))?;
                tail = after_quote[close + 1..].trim();
            }
            if let Some(sets) = tail.strip_prefix('{') {
                let sets = sets
                    .strip_suffix('}')
                    .ok_or_else(|| err(format!("unterminated acceptance sets in {line:?}")))?;
                for tok in sets.split_whitespace() {
                    let i: usize = tok
                        .parse()
                        .map_err(|_| err(format!("bad acceptance set {tok:?} in {line:?}")))?;
                    if i >= num_sets {
                        return Err(err(format!(
                            "acceptance set {i} out of range (declared {num_sets})"
                        )));
                    }
                    members[i].insert(q);
                }
            } else if !tail.is_empty() {
                return Err(err(format!("trailing input on state line {line:?}")));
            }
            current = Some(q);
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let q = current.ok_or_else(|| err("transition before any State: line"))?;
            let (label, dest_part) = rest
                .split_once(']')
                .ok_or_else(|| err(format!("unterminated transition label {line:?}")))?;
            let dest: usize = dest_part
                .trim()
                .parse()
                .map_err(|_| err(format!("bad destination in {line:?}")))?;
            if dest >= num_states {
                return Err(err(format!(
                    "destination {dest} out of range (declared {num_states})"
                )));
            }
            for v in parse_label(label, alphabet.propositions().len())? {
                let cell = &mut delta[q * n_sym + v];
                if cell.is_some() {
                    return Err(AutomatonError::NotDeterministic);
                }
                *cell = Some(dest as StateId);
            }
            continue;
        }
        return Err(err(format!("unexpected body line {line:?}")));
    }
    if !saw_end {
        return Err(err("missing --END-- marker"));
    }
    let delta: Vec<StateId> = delta
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or(AutomatonError::NotDeterministic)?;

    Ok(OmegaAutomaton::build(
        &alphabet,
        num_states,
        start,
        |q, sym| delta[q as usize * n_sym + sym.index()],
        formula.resolve(&members),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn buchi_automaton_exports() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        );
        let hoa = omega_to_hoa(&m);
        assert!(hoa.starts_with("HOA: v1\n"));
        assert!(hoa.contains("States: 2"));
        assert!(hoa.contains("Start: 0"));
        assert!(hoa.contains("Acceptance: 1 Inf(0)"));
        assert!(hoa.contains("State: 1 {0}"));
        assert!(hoa.contains("--BODY--") && hoa.ends_with("--END--\n"));
        // Letter b is index 1 → label "0" (bit set); a → "!0".
        assert!(hoa.contains("[!0] 0"));
        assert!(hoa.contains("[0] 1"));
    }

    #[test]
    fn proposition_alphabet_uses_names() {
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(hoa.contains("AP: 2 \"p\" \"q\""));
        assert!(hoa.contains("Acceptance: 0 t"));
    }

    #[test]
    fn streett_acceptance_structure() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let m = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, _| q,
            Acceptance::inf([0]).or(Acceptance::fin([1])),
        );
        let hoa = omega_to_hoa(&m);
        assert!(hoa.contains("Acceptance: 2 (Inf(0)) | (Fin(1))"));
    }

    /// Regression: AP names used to be written unescaped, so a
    /// proposition named `a"b` or `a\b` produced a malformed HOA header.
    #[test]
    fn ap_names_with_quotes_and_backslashes_are_escaped() {
        let sigma = Alphabet::of_propositions(["a\"b", "a\\b"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(
            hoa.contains("AP: 2 \"a\\\"b\" \"a\\\\b\""),
            "AP names must be escaped per the HOA v1 grammar, got:\n{hoa}"
        );
        // Every AP line token must still be a well-formed quoted string:
        // an even number of unescaped quotes on the line.
        let ap_line = hoa.lines().find(|l| l.starts_with("AP:")).unwrap();
        let mut quotes = 0usize;
        let mut escaped = false;
        for ch in ap_line.chars() {
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                quotes += 1;
            }
        }
        assert_eq!(quotes % 2, 0, "unbalanced quotes in {ap_line:?}");
    }

    /// Regression: for alphabets whose size is not a power of two the
    /// binary AP encoding has padding valuations with no outgoing edges,
    /// so the export must not claim `complete`.
    #[test]
    fn non_power_of_two_alphabet_does_not_claim_complete() {
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(
            hoa.contains("properties: deterministic\n"),
            "determinism still holds, got:\n{hoa}"
        );
        assert!(
            !hoa.contains("complete"),
            "3 letters occupy 3 of the 4 two-bit valuations; the \
             export is not complete:\n{hoa}"
        );
        // Power-of-two alphabets keep the claim.
        for names in [vec!["a", "b"], vec!["a", "b", "c", "d"]] {
            let sigma = Alphabet::new(names).unwrap();
            let m = OmegaAutomaton::universal(&sigma);
            assert!(omega_to_hoa(&m).contains("properties: deterministic complete\n"));
        }
    }

    #[test]
    fn four_letter_alphabet_uses_two_bits() {
        let sigma = Alphabet::new(["a", "b", "c", "d"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let hoa = omega_to_hoa(&m);
        assert!(hoa.contains("AP: 2 \"bit0\" \"bit1\""));
        // Letter d = index 3 = both bits set.
        assert!(hoa.contains("[0&1] 0"));
    }

    // ---- parser ----

    use crate::random::random_streett;
    use crate::random::rng::{SeedableRng, StdRng};

    /// Exports over a proposition alphabet round-trip structurally.
    #[test]
    fn proposition_export_round_trips_exactly() {
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        let p = 0;
        let m = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| {
                if sigma.proposition_holds(s, p) {
                    (q + 1) % 3
                } else {
                    q
                }
            },
            Acceptance::inf([2]).or(Acceptance::fin([0])),
        );
        let parsed = hoa_to_omega(&omega_to_hoa(&m)).unwrap();
        assert_eq!(parsed, m);
    }

    /// Letter alphabets of power-of-two size round-trip up to the
    /// synthetic `bitN` proposition renaming: same states, same
    /// transition structure, same acceptance.
    #[test]
    fn seeded_power_of_two_exports_round_trip() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let (m, _) = random_streett(&mut rng, &sigma, 8, 2, 0.3);
            let parsed = hoa_to_omega(&omega_to_hoa(&m)).unwrap();
            assert_eq!(parsed.num_states(), m.num_states());
            assert_eq!(parsed.initial(), m.initial());
            assert_eq!(parsed.acceptance(), m.acceptance());
            assert_eq!(parsed.alphabet().propositions(), ["bit0"]);
            for q in 0..m.num_states() as StateId {
                for (s, t) in m.alphabet().symbols().zip(parsed.alphabet().symbols()) {
                    assert_eq!(m.step(q, s), parsed.step(q, t));
                }
            }
        }
    }

    #[test]
    fn parser_accepts_partial_labels_and_t() {
        // One AP, `[t]` covering both valuations on state 1.
        let src = "HOA: v1\nStates: 2\nStart: 0\nAP: 1 \"p\"\n\
                   Acceptance: 1 Inf(0)\n--BODY--\n\
                   State: 0\n[!0] 0\n[0] 1\nState: 1 {0}\n[t] 1\n--END--\n";
        let m = hoa_to_omega(src).unwrap();
        let sigma = m.alphabet().clone();
        let p_true = sigma.valuation_symbol(&[true]);
        let p_false = sigma.valuation_symbol(&[false]);
        assert_eq!(m.step(0, p_false), 0);
        assert_eq!(m.step(0, p_true), 1);
        assert_eq!(m.step(1, p_true), 1);
        assert_eq!(m.step(1, p_false), 1);
        assert_eq!(m.acceptance(), &Acceptance::inf([1]));
    }

    #[test]
    fn parser_rejects_missing_and_duplicate_edges() {
        let missing = "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"p\"\n\
                       Acceptance: 0 t\n--BODY--\nState: 0\n[0] 0\n--END--\n";
        assert_eq!(hoa_to_omega(missing), Err(AutomatonError::NotDeterministic));
        let dup = "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"p\"\n\
                   Acceptance: 0 t\n--BODY--\nState: 0\n[t] 0\n[0] 0\n--END--\n";
        assert_eq!(hoa_to_omega(dup), Err(AutomatonError::NotDeterministic));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for (what, src) in [
            ("wrong version", "HOA: v2\n--BODY--\n--END--\n"),
            (
                "missing States",
                "HOA: v1\nStart: 0\nAP: 1 \"p\"\nAcceptance: 0 t\n--BODY--\n--END--\n",
            ),
            (
                "start out of range",
                "HOA: v1\nStates: 1\nStart: 3\nAP: 1 \"p\"\nAcceptance: 0 t\n--BODY--\n--END--\n",
            ),
            (
                "bad acceptance formula",
                "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"p\"\nAcceptance: 1 Inf(\n--BODY--\n--END--\n",
            ),
            (
                "set index out of range",
                "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"p\"\nAcceptance: 1 Inf(4)\n--BODY--\n--END--\n",
            ),
            (
                "missing END",
                "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"p\"\nAcceptance: 0 t\n--BODY--\nState: 0\n[t] 0\n",
            ),
            (
                "unterminated AP string",
                "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"p\nAcceptance: 0 t\n--BODY--\n--END--\n",
            ),
        ] {
            assert!(
                matches!(hoa_to_omega(src), Err(AutomatonError::HoaParse { .. })),
                "{what} should be an HoaParse error"
            );
        }
    }

    #[test]
    fn parser_reads_escaped_ap_names_and_state_names() {
        let sigma = Alphabet::of_propositions(["a\"b"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        let parsed = hoa_to_omega(&omega_to_hoa(&m)).unwrap();
        assert_eq!(parsed.alphabet().propositions(), ["a\"b"]);
        // Optional quoted state names (emitted by external tools) are
        // skipped.
        let named = "HOA: v1\nStates: 1\nStart: 0\nAP: 1 \"p\"\n\
                     Acceptance: 0 t\n--BODY--\nState: 0 \"the \\\"one\\\"\"\n[t] 0\n--END--\n";
        assert!(hoa_to_omega(named).is_ok());
    }

    #[test]
    fn incomplete_three_letter_export_is_rejected() {
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let m = OmegaAutomaton::universal(&sigma);
        assert_eq!(
            hoa_to_omega(&omega_to_hoa(&m)),
            Err(AutomatonError::NotDeterministic)
        );
    }

    /// Round-tripping commutes with content addressing: the structural
    /// hash of a parsed export equals the hash of a parsed re-export.
    #[test]
    fn round_trip_is_stable_under_hashing() {
        let sigma = Alphabet::of_propositions(["p"]).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let (m, _) = random_streett(&mut rng, &sigma, 6, 2, 0.4);
            let once = hoa_to_omega(&omega_to_hoa(&m)).unwrap();
            let twice = hoa_to_omega(&omega_to_hoa(&once)).unwrap();
            assert_eq!(
                crate::canonical::structural_hash(&once),
                crate::canonical::structural_hash(&twice)
            );
            assert_eq!(once, m);
        }
    }
}
