//! A zero-dependency parallel execution layer for the classification
//! stack: a scoped-thread worker pool over [`std::thread::scope`] with a
//! chunked work queue.
//!
//! The exact classifier walks `O(2^m)` color-lattice points per
//! automaton, and every point is an independent Tarjan pass; batch
//! consumers (`spec-lint --jobs`, the seeded bench sweeps) additionally
//! classify many independent automata in one invocation. Both axes
//! parallelize embarrassingly, but the workspace is `--offline` with zero
//! external dependencies, so instead of rayon this module provides the
//! minimal primitive everything needs: an order-preserving parallel map.
//!
//! Design:
//!
//! * **Scoped workers** — every [`map`]/[`map_indices`] call spawns its
//!   workers inside [`std::thread::scope`], so borrowed inputs (`&[T]`,
//!   a shared [`crate::analysis::Analysis`]) flow into workers without
//!   `Arc` plumbing, and no thread outlives the call.
//! * **Guided work queue** — workers claim contiguous index chunks from
//!   a single `AtomicUsize` cursor, each claim taking half an even share
//!   of the *remaining* indices (guided self-scheduling): coarse chunks
//!   up front amortize queue traffic, and the geometrically shrinking
//!   tail keeps one expensive chunk from straggling the scope.
//! * **One level of parallelism** — workers set a thread-local flag, and
//!   nested `map` calls run sequentially inside a worker. An outer batch
//!   sweep (`classify_suite`) therefore parallelizes across automata
//!   while each inner lattice walk stays sequential, instead of
//!   oversubscribing the machine with `threads²` threads.
//! * **Panic transparency** — a panicking worker re-raises its payload on
//!   the caller thread after the scope joins, so the first failure
//!   surfaces unchanged (see the poison-recovery notes on
//!   [`crate::analysis::Analysis`] for why the caches stay usable).
//!
//! The worker count comes from the `HIERARCHY_THREADS` environment
//! variable when set (a positive integer; `1` forces the sequential
//! path), else from [`std::thread::available_parallelism`]. Explicit
//! counts can be passed via the `_with` variants (the thread-scaling
//! series of `tab_parallel` does).

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Set inside pool workers so nested maps degrade to sequential.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The effective worker count: `HIERARCHY_THREADS` when set to a positive
/// integer, else the machine's available parallelism (1 if unknown).
///
/// Read on every call, so tests and experiments can re-point it between
/// runs without rebuilding any context.
pub fn thread_count() -> usize {
    match std::env::var("HIERARCHY_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available(),
        },
        Err(_) => available(),
    }
}

fn available() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Whether the current thread is a pool worker (nested maps run
/// sequentially there).
pub fn in_worker() -> bool {
    IN_POOL.with(Cell::get)
}

/// Order-preserving parallel map over a slice with the default worker
/// count ([`thread_count`]).
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_with(thread_count(), items, f)
}

/// Order-preserving parallel map over a slice with an explicit worker
/// count.
pub fn map_with<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indices_with(threads, items.len(), |i| f(&items[i]))
}

/// Order-preserving parallel map over `0..n` with the default worker
/// count.
pub fn map_indices<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map_indices_with(thread_count(), n, f)
}

/// Order-preserving parallel map over `0..n`: `result[i] = f(i)`.
///
/// Spawns at most `threads` scoped workers pulling chunks of indices from
/// a shared queue; with `threads <= 1`, a single item, or when already
/// inside a pool worker it runs inline with no thread spawned at all.
///
/// # Panics
///
/// Re-raises the panic of the first observed panicking worker after all
/// workers have been joined.
pub fn map_indices_with<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(n);
    if threads <= 1 || in_worker() {
        return (0..n).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let cursor = &cursor;
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    IN_POOL.with(|c| c.set(true));
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        // Guided self-scheduling: claim half an even
                        // share of the remaining indices. The first
                        // claims are ~n/(2·threads) — coarser than the
                        // old fixed n/(4·threads) grain, so short queues
                        // see fewer atomic round-trips — and the grain
                        // decays geometrically, so the last claims are
                        // single indices and no worker drags a large
                        // final chunk alone.
                        let mut start = cursor.load(Ordering::Relaxed);
                        let len = loop {
                            if start >= n {
                                break 0;
                            }
                            let grain = ((n - start) / (threads * 2)).max(1);
                            match cursor.compare_exchange_weak(
                                start,
                                start + grain,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            ) {
                                Ok(_) => break grain,
                                Err(current) => start = current,
                            }
                        };
                        if len == 0 {
                            break;
                        }
                        for i in start..start + len {
                            produced.push((i, f(i)));
                        }
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is covered by exactly one chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = map_with(threads, &items, |&x| x * x);
            assert_eq!(out.len(), items.len());
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i, "threads={threads}");
            }
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map_with(4, &empty, |x| *x).is_empty());
        assert_eq!(map_with(4, &[7u8], |x| *x + 1), vec![8]);
    }

    #[test]
    fn workers_actually_run_concurrent_code_paths() {
        // Each call increments a shared counter; the result must count
        // every index exactly once regardless of interleaving.
        let hits = AtomicU64::new(0);
        let out = map_indices_with(4, 257, |i| {
            hits.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
        assert_eq!(out, (0..257).collect::<Vec<_>>());
    }

    #[test]
    fn nested_maps_degrade_to_sequential() {
        // The inner map inside a worker must not spawn its own scope;
        // observable effect: it still computes correctly.
        let out = map_indices_with(4, 8, |i| {
            assert!(in_worker());
            map_indices_with(4, 8, |j| i * j).iter().sum::<usize>()
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 28);
        }
        assert!(!in_worker(), "flag is per-thread, caller is not a worker");
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            map_indices_with(4, 100, |i| {
                if i == 37 {
                    panic!("worker 37 dies");
                }
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn thread_count_honors_env_override() {
        // Serialize with other env-reading tests by using a scoped name.
        std::env::set_var("HIERARCHY_THREADS", "3");
        assert_eq!(thread_count(), 3);
        std::env::set_var("HIERARCHY_THREADS", "not-a-number");
        assert!(thread_count() >= 1);
        std::env::remove_var("HIERARCHY_THREADS");
        assert!(thread_count() >= 1);
    }
}
