//! Partition-refinement minimization of deterministic ω-automata.
//!
//! [`minimize`] computes the greatest acceptance-respecting bisimulation
//! of a deterministic [`OmegaAutomaton`] by Hopcroft-style partition
//! refinement and returns the quotient automaton together with the full
//! class structure ([`Minimization`]).
//!
//! **Seed partition.** States are first split by their *atom signature* —
//! membership in each acceptance atom set (for a Streett condition
//! `⋀ᵢ (Inf Rᵢ → Inf Pᵢ)` these are exactly the `Rᵢ`/`Pᵢ` sets, so the
//! seed is Streett-pair-respecting). Two states with the same signature
//! contribute identically to every `Inf`/`Fin` atom of any run passing
//! through them.
//!
//! **Refinement.** A block `B` is split by `(C, s)` when only part of `B`
//! steps into `C` under symbol `s`. At the fixpoint, any two states of a
//! block induce runs with identical atom-visit sequences on every input
//! word, hence the same acceptance verdict: the quotient is
//! language-equal to the input. This is the classical soundness argument
//! for membership-based ω-acceptance (see also `OmegaAutomaton::reduce`,
//! the naive Moore-style refinement kept as a differential oracle — both
//! compute the same partition, this one in `O(k·n·log n)` with the
//! smaller-half worklist instead of `O(k·n²)` signature hashing).
//!
//! **Canonical numbering.** Quotient classes are renumbered by BFS from
//! the initial class in symbol order, so minimization is *structurally*
//! idempotent: `minimize(minimize(a).quotient).quotient ==
//! minimize(a).quotient` as plain `==` on automata, not merely up to
//! isomorphism. Unreachable states are dropped (they never affect the
//! language).
//!
//! The hierarchy verdicts of the paper (safety, guarantee, obligation,
//! recurrence, persistence, reactivity) are properties of the recognized
//! language, so they are invariant under this quotient — which is what
//! lets [`crate::analysis::Analysis`] run every lattice walk on the
//! quotient first (the "quotient-first pipeline").

use std::collections::HashMap;

use crate::acceptance::Acceptance;
use crate::alphabet::Symbol;
use crate::bitset::BitSet;
use crate::omega::OmegaAutomaton;
use crate::StateId;

/// The result of [`minimize`]: the canonical quotient plus the mapping
/// between raw states and quotient classes.
#[derive(Debug, Clone)]
pub struct Minimization {
    /// The quotient automaton (trim, canonically BFS-numbered,
    /// language-equal to the input).
    pub quotient: OmegaAutomaton,
    /// For each raw state, its quotient class — `None` for states
    /// unreachable from the initial state (they have no class).
    pub class_of: Vec<Option<StateId>>,
    /// For each quotient class, the sorted raw states it merges.
    pub classes: Vec<Vec<StateId>>,
}

impl Minimization {
    /// Whether the quotient has strictly fewer states than the input
    /// (either refinement merged states or trimming dropped unreachable
    /// ones).
    pub fn reduced(&self) -> bool {
        self.quotient.num_states() < self.class_of.len()
    }
}

/// Minimizes `aut` by acceptance-aware partition refinement. See the
/// module docs for the algorithm and its guarantees.
pub fn minimize(aut: &OmegaAutomaton) -> Minimization {
    let n_raw = aut.num_states();
    let k = aut.alphabet().len();

    // --- 1. Dense BFS numbering of the reachable part. -----------------
    let mut dense = vec![StateId::MAX; n_raw];
    let mut order: Vec<StateId> = Vec::with_capacity(n_raw);
    dense[aut.initial() as usize] = 0;
    order.push(aut.initial());
    let mut head = 0;
    while head < order.len() {
        let q = order[head];
        head += 1;
        for sym in aut.alphabet().symbols() {
            let t = aut.step(q, sym);
            if dense[t as usize] == StateId::MAX {
                dense[t as usize] = order.len() as StateId;
                order.push(t);
            }
        }
    }
    let n = order.len();

    // Dense transition table over reachable states only.
    let mut delta = vec![0u32; n * k];
    for (i, &q) in order.iter().enumerate() {
        for s in 0..k {
            delta[i * k + s] = dense[aut.step(q, Symbol(s as u8)) as usize];
        }
    }

    // --- 2. Seed partition: atom-membership signatures. -----------------
    let atoms = aut.acceptance().atom_sets();
    let mut block_of = vec![0usize; n];
    let mut sig_ids: HashMap<Vec<bool>, usize> = HashMap::new();
    for (i, &q) in order.iter().enumerate() {
        let sig: Vec<bool> = atoms.iter().map(|s| s.contains(q as usize)).collect();
        let next = sig_ids.len();
        block_of[i] = *sig_ids.entry(sig).or_insert(next);
    }
    let mut num_blocks = sig_ids.len();
    drop(sig_ids);

    // Partition as a permutation of 0..n grouped by block, with per-block
    // [start, end) ranges and a per-block count of marked states.
    let mut elems: Vec<u32> = (0..n as u32).collect();
    elems.sort_by_key(|&q| block_of[q as usize]);
    let mut pos = vec![0u32; n];
    for (i, &q) in elems.iter().enumerate() {
        pos[q as usize] = i as u32;
    }
    let mut start = vec![0usize; n]; // capacity for up to n blocks
    let mut end = vec![0usize; n];
    for (i, &q) in elems.iter().enumerate() {
        let b = block_of[q as usize];
        if i == 0 || block_of[elems[i - 1] as usize] != b {
            start[b] = i;
        }
        end[b] = i + 1;
    }
    let mut marked = vec![0usize; n];

    // --- 3. Per-symbol predecessor lists (CSR). -------------------------
    // preds of t under s = { q | delta[q·k+s] == t }, flattened per symbol.
    let mut pre_off = vec![0u32; k * (n + 1)];
    for q in 0..n {
        for s in 0..k {
            pre_off[s * (n + 1) + delta[q * k + s] as usize + 1] += 1;
        }
    }
    for s in 0..k {
        for t in 0..n {
            pre_off[s * (n + 1) + t + 1] += pre_off[s * (n + 1) + t];
        }
    }
    let mut preds = vec![0u32; k * n];
    let mut fill = pre_off.clone();
    for q in 0..n {
        for s in 0..k {
            let t = delta[q * k + s] as usize;
            let slot = &mut fill[s * (n + 1) + t];
            preds[s * n + *slot as usize] = q as u32;
            *slot += 1;
        }
    }

    // --- 4. Hopcroft worklist refinement. -------------------------------
    // Every (seed block, symbol) starts in the worklist; after a split the
    // smaller half (or both, if the split block was queued) is added.
    let mut work: Vec<(usize, usize)> = Vec::new();
    let mut in_work = vec![false; n * k];
    for b in 0..num_blocks {
        for s in 0..k {
            in_work[b * k + s] = true;
            work.push((b, s));
        }
    }
    let mut touched: Vec<usize> = Vec::new();
    while let Some((splitter, s)) = work.pop() {
        in_work[splitter * k + s] = false;
        // Snapshot the splitter: it may itself be split below.
        let members: Vec<u32> = elems[start[splitter]..end[splitter]].to_vec();
        // Mark all s-predecessors of the splitter. Delta is functional,
        // so no state is marked twice in one pass.
        for &t in &members {
            let lo = pre_off[s * (n + 1) + t as usize] as usize;
            let hi = pre_off[s * (n + 1) + t as usize + 1] as usize;
            for &q in &preds[s * n + lo..s * n + hi] {
                let b = block_of[q as usize];
                if marked[b] == 0 {
                    touched.push(b);
                }
                // Swap q into the marked prefix of its block.
                let dst = start[b] + marked[b];
                let src = pos[q as usize] as usize;
                elems.swap(src, dst);
                pos[elems[src] as usize] = src as u32;
                pos[elems[dst] as usize] = dst as u32;
                marked[b] += 1;
            }
        }
        for &b in &touched {
            let m = marked[b];
            marked[b] = 0;
            if m == end[b] - start[b] {
                continue; // every state stepped into the splitter
            }
            // Split off the marked prefix as a new block.
            let nb = num_blocks;
            num_blocks += 1;
            start[nb] = start[b];
            end[nb] = start[b] + m;
            start[b] += m;
            for i in start[nb]..end[nb] {
                block_of[elems[i] as usize] = nb;
            }
            for t in 0..k {
                if in_work[b * k + t] {
                    in_work[nb * k + t] = true;
                    work.push((nb, t));
                } else {
                    // Queue the smaller half — Hopcroft's trick.
                    let small = if end[nb] - start[nb] <= end[b] - start[b] {
                        nb
                    } else {
                        b
                    };
                    in_work[small * k + t] = true;
                    work.push((small, t));
                }
            }
        }
        touched.clear();
    }

    // --- 5. Canonical BFS renumbering of the blocks. --------------------
    let mut canon = vec![StateId::MAX; num_blocks];
    let mut block_order: Vec<usize> = Vec::with_capacity(num_blocks);
    canon[block_of[0]] = 0; // dense state 0 is the initial state
    block_order.push(block_of[0]);
    let mut head = 0;
    while head < block_order.len() {
        let b = block_order[head];
        head += 1;
        let rep = elems[start[b]] as usize;
        for s in 0..k {
            let tb = block_of[delta[rep * k + s] as usize];
            if canon[tb] == StateId::MAX {
                canon[tb] = block_order.len() as StateId;
                block_order.push(tb);
            }
        }
    }
    debug_assert_eq!(block_order.len(), num_blocks, "all blocks reachable");

    // --- 6. Build the quotient and the class maps. ----------------------
    let mut qdelta = vec![0 as StateId; num_blocks * k];
    for (c, &b) in block_order.iter().enumerate() {
        let rep = elems[start[b]] as usize;
        for s in 0..k {
            qdelta[c * k + s] = canon[block_of[delta[rep * k + s] as usize]];
        }
    }
    let acceptance: Acceptance = aut.acceptance().map_sets(&|set: &BitSet| {
        set.iter()
            .filter(|&q| dense[q] != StateId::MAX)
            .map(|q| canon[block_of[dense[q] as usize]] as usize)
            .collect()
    });
    let quotient = OmegaAutomaton::build(
        aut.alphabet(),
        num_blocks,
        0,
        |q, s| qdelta[q as usize * k + s.index()],
        acceptance,
    );

    let mut class_of = vec![None; n_raw];
    let mut classes = vec![Vec::new(); num_blocks];
    for q in 0..n_raw {
        if dense[q] != StateId::MAX {
            let c = canon[block_of[dense[q] as usize]];
            class_of[q] = Some(c);
            classes[c as usize].push(q as StateId);
        }
    }
    // BFS visit order is not state order; keep members sorted for
    // deterministic reporting (lint AUT004 prints these).
    for members in &mut classes {
        members.sort_unstable();
    }

    Minimization {
        quotient,
        class_of,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::random::random_streett;
    use crate::random::rng::{Rng, SeedableRng, StdRng};

    fn sigma() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Two glued copies of a 2-state automaton collapse to the 2-state
    /// original, with the right class structure.
    #[test]
    fn merges_glued_copies() {
        let sigma = sigma();
        let b = sigma.symbol("b").unwrap();
        // A 2-state flip-flop (b toggles) glued to a mirror copy {2,3}:
        // a drifts from copy one into the mirror, so all four states are
        // reachable, and 0 ≅ 2, 1 ≅ 3.
        let aut = OmegaAutomaton::build(
            &sigma,
            4,
            0,
            |q, s| {
                if s == b {
                    [1, 0, 3, 2][q as usize] // toggle within the copy
                } else {
                    [2, 3, 2, 3][q as usize] // drift into the mirror
                }
            },
            Acceptance::inf([1, 3]),
        );
        let min = minimize(&aut);
        assert_eq!(min.quotient.num_states(), 2);
        assert!(min.reduced());
        assert_eq!(min.classes, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(min.class_of, vec![Some(0), Some(1), Some(0), Some(1)]);
        assert!(min.quotient.equivalent(&aut));
    }

    /// Unreachable states are dropped and get no class.
    #[test]
    fn drops_unreachable_states() {
        let sigma = sigma();
        let aut = OmegaAutomaton::build(&sigma, 3, 0, |_, _| 0, Acceptance::inf([0, 2]));
        let min = minimize(&aut);
        assert_eq!(min.quotient.num_states(), 1);
        assert_eq!(min.class_of, vec![Some(0), None, None]);
        assert_eq!(min.classes, vec![vec![0]]);
        assert!(min.reduced());
    }

    /// Hopcroft agrees with the Moore-refinement oracle `reduce()` on the
    /// number of classes, and the quotients are language-equal, across
    /// random Streett automata.
    #[test]
    fn agrees_with_moore_oracle() {
        let sigma = sigma();
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for case in 0..120 {
            let n = rng.gen_range(2..=24usize);
            let k = rng.gen_range(1..=2usize);
            let (aut, _) = random_streett(&mut rng, &sigma, n, k, 0.3);
            let min = minimize(&aut);
            let moore = aut.reduce();
            assert_eq!(
                min.quotient.num_states(),
                moore.num_states(),
                "case {case}: class counts differ"
            );
            assert!(
                min.quotient.equivalent(&aut),
                "case {case}: quotient changed the language"
            );
        }
    }

    /// Structural idempotence: minimizing a quotient returns it verbatim.
    #[test]
    fn is_structurally_idempotent() {
        let sigma = sigma();
        let mut rng = StdRng::seed_from_u64(42);
        for case in 0..80 {
            let n = rng.gen_range(2..=20usize);
            let (aut, _) = random_streett(&mut rng, &sigma, n, 1, 0.35);
            let once = minimize(&aut).quotient;
            let twice = minimize(&once);
            assert_eq!(once, twice.quotient, "case {case}");
            assert!(!twice.reduced(), "case {case}: quotient re-reduced");
        }
    }

    /// Every class is atom-signature homogeneous (the seed partition is
    /// respected by all refinement steps).
    #[test]
    fn classes_respect_atom_signatures() {
        let sigma = sigma();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let n = rng.gen_range(2..=16usize);
            let (aut, _) = random_streett(&mut rng, &sigma, n, 2, 0.3);
            let atoms = aut.acceptance().atom_sets();
            let min = minimize(&aut);
            for members in &min.classes {
                let sig = |q: StateId| -> Vec<bool> {
                    atoms.iter().map(|s| s.contains(q as usize)).collect()
                };
                let first = sig(members[0]);
                assert!(members.iter().all(|&q| sig(q) == first));
            }
        }
    }
}
