//! The paper's own structural decision procedures (§5.1) and κ-automaton
//! constructions (Proposition 5.1), implemented for Streett predicate
//! automata.
//!
//! These procedures work on the *structure* of a Streett automaton — state
//! sets and transitions — rather than on its language, which makes them fast
//! but specific to the Streett shape. The semantically exact procedures live
//! in [`crate::classify`]; the test-suite and the `TAB-DEC` experiment
//! cross-validate the two.
//!
//! Contents:
//!
//! * [`good_states`] — the paper's `G = ⋂ᵢ (Rᵢ ∪ Pᵢ)`;
//! * [`successor_closure`] — the paper's `Â`, the smallest transition-closed
//!   superset;
//! * [`is_safety_structural`] / [`is_guarantee_structural`] — "`B̂ ∩ G = ∅`"
//!   and its dual;
//! * shape predicates for single-pair automata (safety / guarantee / simple
//!   obligation / obligation-with-rank / recurrence / persistence shapes,
//!   §5);
//! * [`safety_automaton`] / [`guarantee_automaton`] /
//!   [`recurrence_automaton`] / [`persistence_automaton`] — the Prop 5.1
//!   constructions producing a κ-shaped automaton from an automaton whose
//!   language is a κ-property.

use crate::acceptance::Acceptance;
use crate::alphabet::Symbol;
use crate::bitset::BitSet;
use crate::classify;
use crate::omega::OmegaAutomaton;
use crate::scc::tarjan_scc;
use crate::streett::StreettPairs;
use crate::StateId;
use std::collections::VecDeque;

/// The paper's good-state set `G = ⋂ᵢ (Rᵢ ∪ Pᵢ)` for a Streett pair list
/// over `num_states` states. The bad set is its complement.
pub fn good_states(pairs: &StreettPairs, num_states: usize) -> BitSet {
    let mut g = BitSet::all(num_states);
    for p in &pairs.0 {
        g.intersect_with(&p.recurrent.union(&p.persistent));
    }
    g
}

/// The successor closure `Â`: the smallest set containing `set` and closed
/// under transitions (the paper's "closed set of automaton states").
pub fn successor_closure(aut: &OmegaAutomaton, set: &BitSet) -> BitSet {
    let mut closed = set.clone();
    let mut queue: VecDeque<usize> = set.iter().collect();
    while let Some(q) = queue.pop_front() {
        for sym in aut.alphabet().symbols() {
            let t = aut.step(q as StateId, sym) as usize;
            if closed.insert(t) {
                queue.push_back(t);
            }
        }
    }
    closed
}

/// §5.1, "checking for a safety property": the automaton specifies a safety
/// property iff `B̂ ∩ G = ∅`, i.e. no good state is reachable from a bad
/// state.
///
/// **Soundness caveat (verified computationally, see the `TAB-DEC`
/// experiment and EXPERIMENTS.md):** with `G = ⋂ᵢ(Rᵢ ∪ Pᵢ)` this check is
/// sound for *single-pair* automata; for `k ≥ 2` pairs a cycle of bad
/// states can still satisfy the Streett condition crosswise (one pair met
/// through its `R`, another through its `P`), so the check as printed in
/// the paper over-approximates. The exact semantic check is
/// [`classify::is_safety`].
pub fn is_safety_structural(aut: &OmegaAutomaton, pairs: &StreettPairs) -> bool {
    let g = good_states(pairs, aut.num_states());
    let b = g.complement(aut.num_states());
    successor_closure(aut, &b).is_disjoint(&g)
}

/// §5.1, "checking for a guarantee property": `Ĝ ∩ B = ∅` — no bad state is
/// reachable from a good state.
pub fn is_guarantee_structural(aut: &OmegaAutomaton, pairs: &StreettPairs) -> bool {
    let g = good_states(pairs, aut.num_states());
    let b = g.complement(aut.num_states());
    successor_closure(aut, &g).is_disjoint(&b)
}

/// Whether a single-pair automaton has the paper's *safety shape*: no
/// transition from a bad state to a good state (`G = R ∪ P`).
pub fn is_safety_shaped(aut: &OmegaAutomaton, recurrent: &BitSet, persistent: &BitSet) -> bool {
    let g = recurrent.union(persistent);
    no_edge(aut, &g.complement(aut.num_states()), &g)
}

/// Whether a single-pair automaton has the paper's *guarantee shape*: no
/// transition from a good state to a bad state.
pub fn is_guarantee_shaped(aut: &OmegaAutomaton, recurrent: &BitSet, persistent: &BitSet) -> bool {
    let g = recurrent.union(persistent);
    no_edge(aut, &g, &g.complement(aut.num_states()))
}

/// Whether a single-pair automaton has the paper's *simple obligation
/// shape*: no transition from `q ∉ P` to `q' ∈ P`, and none from `q ∈ R` to
/// `q' ∉ R` (once a run leaves `P` it never re-enters; once it enters `R` it
/// never leaves).
pub fn is_simple_obligation_shaped(
    aut: &OmegaAutomaton,
    recurrent: &BitSet,
    persistent: &BitSet,
) -> bool {
    let n = aut.num_states();
    no_edge(aut, &persistent.complement(n), persistent)
        && no_edge(aut, recurrent, &recurrent.complement(n))
}

/// The minimal degree `k` for which a single-pair automaton admits the
/// paper's *general obligation* rank function (ranks never decrease along
/// transitions, bad→good transitions strictly increase, and no good state of
/// maximal rank has a transition to a bad state), or `None` if no rank
/// function of any degree exists (some SCC mixes a bad→good transition into
/// a cycle).
pub fn obligation_shape_degree(
    aut: &OmegaAutomaton,
    recurrent: &BitSet,
    persistent: &BitSet,
) -> Option<usize> {
    let g = recurrent.union(persistent);
    let reachable = aut.reachable_states();
    let sccs = tarjan_scc(aut, Some(&reachable));
    // Ranks are forced constant on SCCs, so a bad→good edge inside one SCC
    // is fatal.
    for q in reachable.iter() {
        for sym in aut.alphabet().symbols() {
            let t = aut.step(q as StateId, sym) as usize;
            if sccs.component[q] == sccs.component[t] && !g.contains(q) && g.contains(t) {
                return None;
            }
        }
    }
    // Minimal rank per component: the maximal number of bad→good crossings
    // on any path from the initial component. Tarjan numbers successors with
    // smaller indices, so decreasing index order is topological.
    let n_comp = sccs.len();
    let mut rank: Vec<Option<usize>> = vec![None; n_comp];
    let init_comp = sccs.component[aut.initial() as usize];
    rank[init_comp] = Some(0);
    for c in (0..n_comp).rev() {
        let Some(rc) = rank[c] else { continue };
        for &q in &sccs.members[c] {
            for sym in aut.alphabet().symbols() {
                let t = aut.step(q, sym) as usize;
                let ct = sccs.component[t];
                if ct == c {
                    continue;
                }
                let crossing = usize::from(!g.contains(q as usize) && g.contains(t));
                let candidate = rc + crossing;
                if rank[ct].is_none_or(|r| r < candidate) {
                    rank[ct] = Some(candidate);
                }
            }
        }
    }
    let mut k = rank.iter().flatten().copied().max().unwrap_or(0);
    // "No transition from a good state of rank k to a bad state": bump the
    // degree if some maximal-rank good state exits to a bad state.
    let max_rank_violation = reachable.iter().any(|q| {
        rank[sccs.component[q]] == Some(k)
            && g.contains(q)
            && aut
                .alphabet()
                .symbols()
                .any(|sym| !g.contains(aut.step(q as StateId, sym) as usize))
    });
    if max_rank_violation {
        k += 1;
    }
    Some(k.max(1))
}

/// Whether a pair list has the paper's *recurrence shape*: every persistent
/// set is empty (pure generalized Büchi).
pub fn is_recurrence_shaped(pairs: &StreettPairs) -> bool {
    pairs.0.iter().all(|p| p.persistent.is_empty())
}

/// Whether a pair list has the paper's *persistence shape*: every recurrent
/// set is empty (pure generalized co-Büchi).
pub fn is_persistence_shaped(pairs: &StreettPairs) -> bool {
    pairs.0.iter().all(|p| p.recurrent.is_empty())
}

fn no_edge(aut: &OmegaAutomaton, from: &BitSet, to: &BitSet) -> bool {
    !from.iter().any(|q| {
        aut.alphabet()
            .symbols()
            .any(|sym| to.contains(aut.step(q as StateId, sym) as usize))
    })
}

/// Prop 5.1 (safety direction): builds a *safety-shaped* automaton for the
/// language of `aut`, valid whenever that language is a safety property.
///
/// Construction (the paper's `M'`): keep the live part of the automaton
/// (the states reached by `Pref(Π)`), redirect every transition that leaves
/// it into an absorbing bad sink, and accept iff the run stays good forever
/// (the Streett pair `(G, G)`).
///
/// Returns `None` if the language is not a safety property.
pub fn safety_automaton(aut: &OmegaAutomaton) -> Option<OmegaAutomaton> {
    if !classify::is_safety(aut) {
        return None;
    }
    Some(safety_shaped_from_live(aut, &aut.live_states()))
}

/// [`safety_automaton`] through a shared [`crate::analysis::Analysis`]
/// context: the safety verdict and the live set come from the context's
/// caches. The result may keep fewer (unreachable) states than the free
/// version but is language-equal.
pub fn safety_automaton_ctx(ctx: &crate::analysis::Analysis) -> Option<OmegaAutomaton> {
    if !ctx.is_safety() {
        return None;
    }
    Some(safety_shaped_from_live(ctx.automaton(), &ctx.live()))
}

fn safety_shaped_from_live(aut: &OmegaAutomaton, live: &BitSet) -> OmegaAutomaton {
    if !live.contains(aut.initial() as usize) {
        // Empty language: a lone bad sink (safety-shaped, rejects all).
        return OmegaAutomaton::build(
            aut.alphabet(),
            1,
            0,
            |_, _| 0,
            Acceptance::Fin(BitSet::all(1)),
        );
    }
    let order: Vec<usize> = live.iter().collect();
    let mut dense = vec![StateId::MAX; aut.num_states()];
    for (i, &q) in order.iter().enumerate() {
        dense[q] = i as StateId;
    }
    let sink = order.len() as StateId;
    let n = order.len() + 1;
    let alphabet = aut.alphabet().clone();
    let aut_c = aut.clone();
    let live_c = live.clone();
    let good: BitSet = (0..order.len()).collect();
    let acceptance = Acceptance::Inf(good).or(Acceptance::Fin(BitSet::from_iter([sink as usize])));
    let initial = dense[aut.initial() as usize];
    let delta = move |q: StateId, sym: Symbol| -> StateId {
        if q == sink {
            return sink;
        }
        let t = aut_c.step(order[q as usize] as StateId, sym) as usize;
        if live_c.contains(t) {
            dense[t]
        } else {
            sink
        }
    };
    OmegaAutomaton::build(&alphabet, n, initial, delta, acceptance)
}

/// Prop 5.1 (guarantee direction): builds a *guarantee-shaped* automaton
/// for the language of `aut`, valid whenever that language is a guarantee
/// property.
///
/// Construction: the universal states (residual language `Σ^ω`) collapse
/// into an absorbing good sink; the run is accepted iff it reaches the
/// sink.
///
/// Returns `None` if the language is not a guarantee property.
pub fn guarantee_automaton(aut: &OmegaAutomaton) -> Option<OmegaAutomaton> {
    if !classify::is_guarantee(aut) {
        return None;
    }
    // Universal states = dead states of the complement.
    let co_live = aut.complement().live_states();
    let universal = co_live.complement(aut.num_states());
    Some(guarantee_shaped_from_universal(aut, &universal))
}

/// [`guarantee_automaton`] through a shared [`crate::analysis::Analysis`]
/// context: the guarantee verdict and the complement's live set come from
/// the context (the latter is `live_reachable` of the negated acceptance,
/// no complement automaton is built). Unreachable co-live states are
/// folded into the sink, which cannot change the language.
pub fn guarantee_automaton_ctx(ctx: &crate::analysis::Analysis) -> Option<OmegaAutomaton> {
    if !ctx.is_guarantee() {
        return None;
    }
    let aut = ctx.automaton();
    let co_live = ctx.live_reachable(&aut.acceptance().negated());
    let universal = co_live.complement(aut.num_states());
    Some(guarantee_shaped_from_universal(aut, &universal))
}

fn guarantee_shaped_from_universal(aut: &OmegaAutomaton, universal: &BitSet) -> OmegaAutomaton {
    if universal.contains(aut.initial() as usize) {
        // Universal language: a lone good sink.
        return OmegaAutomaton::build(aut.alphabet(), 1, 0, |_, _| 0, Acceptance::inf([0]));
    }
    let order: Vec<usize> = (0..aut.num_states())
        .filter(|q| !universal.contains(*q))
        .collect();
    let mut dense = vec![StateId::MAX; aut.num_states()];
    for (i, &q) in order.iter().enumerate() {
        dense[q] = i as StateId;
    }
    let sink = order.len() as StateId;
    let n = order.len() + 1;
    let alphabet = aut.alphabet().clone();
    let aut_c = aut.clone();
    let initial = dense[aut.initial() as usize];
    let delta = move |q: StateId, sym: Symbol| -> StateId {
        if q == sink {
            return sink;
        }
        let t = aut_c.step(order[q as usize] as StateId, sym) as usize;
        if universal.contains(t) {
            sink
        } else {
            dense[t]
        }
    };
    OmegaAutomaton::build(
        &alphabet,
        n,
        initial,
        delta,
        Acceptance::inf([sink as usize]),
    )
}

/// States lying on some cycle that (a) is accepting for `acc` and (b) avoids
/// `avoid` — the paper's `A₁`, the states participating in *persistent
/// cycles* with respect to a pair.
pub fn states_on_accepting_cycles_avoiding(
    aut: &OmegaAutomaton,
    acc: &Acceptance,
    avoid: &BitSet,
) -> BitSet {
    let reachable = aut.reachable_states();
    accepting_cycle_states(aut, &reachable, acc, avoid, |allowed| {
        std::sync::Arc::new(tarjan_scc(aut, Some(allowed)))
    })
}

/// [`states_on_accepting_cycles_avoiding`] through a shared
/// [`crate::analysis::Analysis`] context, so its restricted SCC passes
/// land in (and are served from) the context's memo table.
pub fn states_on_accepting_cycles_avoiding_ctx(
    ctx: &crate::analysis::Analysis,
    acc: &Acceptance,
    avoid: &BitSet,
) -> BitSet {
    accepting_cycle_states(ctx.automaton(), ctx.reachable(), acc, avoid, |allowed| {
        ctx.sccs(Some(allowed))
    })
}

fn accepting_cycle_states(
    aut: &OmegaAutomaton,
    reachable: &BitSet,
    acc: &Acceptance,
    avoid: &BitSet,
    mut scc_of: impl FnMut(&BitSet) -> std::sync::Arc<crate::scc::SccDecomposition>,
) -> BitSet {
    let mut out = BitSet::with_capacity(aut.num_states());
    for pair in acc.dnf() {
        let mut allowed = reachable.clone();
        allowed.difference_with(&pair.fin);
        allowed.difference_with(avoid);
        if allowed.is_empty() {
            continue;
        }
        let sccs = scc_of(&allowed);
        for c in 0..sccs.len() {
            if !sccs.has_cycle[c] {
                continue;
            }
            let members = sccs.member_set(c);
            if pair.infs.iter().all(|s| members.intersects(s)) {
                out.union_with(&members);
            }
        }
    }
    out
}

/// Prop 5.1 (recurrence direction): given a Streett automaton whose
/// language is a recurrence property, builds an equivalent *deterministic
/// Büchi* automaton.
///
/// The construction follows the paper: each pair `(Rᵢ, Pᵢ)` is replaced by
/// `(Rᵢ ∪ Aᵢ, ∅)` where `Aᵢ` collects the states of the pair's persistent
/// cycles (accepting cycles avoiding `Rᵢ`); once all persistent sets are
/// empty the automaton is generalized Büchi, which a modulo-`k` counter
/// product reduces to plain Büchi.
///
/// Returns `None` if the language is not a recurrence property.
pub fn recurrence_automaton(aut: &OmegaAutomaton, pairs: &StreettPairs) -> Option<OmegaAutomaton> {
    let n = aut.num_states();
    let with_pairs = aut.with_acceptance(pairs.acceptance(n));
    if !classify::is_recurrence(&with_pairs) {
        return None;
    }
    if pairs.is_empty() {
        return Some(aut.with_acceptance(Acceptance::Inf(BitSet::all(n))));
    }
    // Sequentially absorb persistent cycles.
    let mut infs: Vec<BitSet> = Vec::new();
    for i in 0..pairs.len() {
        // Current acceptance: already-processed pairs as pure Inf, the rest
        // in original Streett form.
        let mut acc = infs
            .iter()
            .map(|s| Acceptance::Inf(s.clone()))
            .fold(Acceptance::True, Acceptance::and);
        for p in &pairs.0[i..] {
            acc = acc.and(p.acceptance(n));
        }
        let a_i = states_on_accepting_cycles_avoiding(aut, &acc, &pairs.0[i].recurrent);
        infs.push(pairs.0[i].recurrent.union(&a_i));
    }
    // Generalized Büchi (Inf of every set in `infs`) → Büchi by counter.
    Some(generalized_buchi_to_buchi(aut, &infs))
}

/// Prop 5.1 (persistence direction): given a *Rabin* automaton — pairs
/// `(Eᵢ, Fᵢ)`, accepting iff some `i` has `inf ∩ Fᵢ ≠ ∅` and
/// `inf ∩ Eᵢ = ∅` — whose language is a persistence property, builds an
/// equivalent *deterministic co-Büchi* automaton by dualizing through
/// [`recurrence_automaton`], exactly as the paper does.
///
/// Returns `None` if the language is not a persistence property.
pub fn persistence_automaton(
    aut: &OmegaAutomaton,
    rabin: &[(BitSet, BitSet)],
) -> Option<OmegaAutomaton> {
    let n = aut.num_states();
    // Complement acceptance: Streett pairs (R = Eᵢ, P = Q − Fᵢ).
    let streett = StreettPairs(
        rabin
            .iter()
            .map(|(e, f)| crate::streett::StreettPair {
                recurrent: e.clone(),
                persistent: f.complement(n),
            })
            .collect(),
    );
    let dba = recurrence_automaton(aut, &streett)?;
    Some(dba.complement())
}

/// Degeneralization: reduces "visit every set of `infs` infinitely often"
/// on `aut`'s structure to a single Büchi condition via a modulo-`k`
/// counter.
pub fn generalized_buchi_to_buchi(aut: &OmegaAutomaton, infs: &[BitSet]) -> OmegaAutomaton {
    let k = infs.len();
    if k == 0 {
        return aut.with_acceptance(Acceptance::Inf(BitSet::all(aut.num_states())));
    }
    if k == 1 {
        return aut.with_acceptance(Acceptance::Inf(infs[0].clone()));
    }
    let n = aut.num_states();
    let alphabet = aut.alphabet().clone();
    let id = move |q: usize, j: usize| (j * n + q) as StateId;
    let infs_owned: Vec<BitSet> = infs.to_vec();
    let aut_c = aut.clone();
    let delta = move |s: StateId, sym: Symbol| -> StateId {
        let (q, j) = ((s as usize) % n, (s as usize) / n);
        let j2 = if infs_owned[j].contains(q) {
            (j + 1) % k
        } else {
            j
        };
        id(aut_c.step(q as StateId, sym) as usize, j2)
    };
    // Accepting: awaiting the last set while standing on it (from such a
    // state the counter wraps, so visiting it infinitely often means every
    // set is visited infinitely often).
    let marked: BitSet = infs[k - 1].iter().map(|q| (k - 1) * n + q).collect();
    OmegaAutomaton::build(
        &alphabet,
        n * k,
        id(aut.initial() as usize, 0),
        delta,
        Acceptance::Inf(marked),
    )
    .trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::streett::StreettPair;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// □a over {a,b}: state 1 = bad trap.
    fn always_a(sigma: &Alphabet) -> (OmegaAutomaton, StreettPairs) {
        let b = sigma.symbol("b").unwrap();
        let pairs = StreettPairs::single(StreettPair::new([0], [0]));
        let aut = OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            pairs.acceptance(2),
        );
        (aut, pairs)
    }

    /// ◇b over {a,b}: state 1 = good trap.
    fn eventually_b(sigma: &Alphabet) -> (OmegaAutomaton, StreettPairs) {
        let b = sigma.symbol("b").unwrap();
        let pairs = StreettPairs::single(StreettPair::new([1], [1]));
        let aut = OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            pairs.acceptance(2),
        );
        (aut, pairs)
    }

    /// □◇b over {a,b} (last-symbol tracker, Büchi on the b-state).
    fn inf_b(sigma: &Alphabet) -> (OmegaAutomaton, StreettPairs) {
        let b = sigma.symbol("b").unwrap();
        let pairs = StreettPairs::single(StreettPair::new([1], []));
        let aut = OmegaAutomaton::build(
            sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            pairs.acceptance(2),
        );
        (aut, pairs)
    }

    #[test]
    fn structural_checks_match_paper_examples() {
        let sigma = ab();
        let (saf, saf_pairs) = always_a(&sigma);
        assert!(is_safety_structural(&saf, &saf_pairs));
        assert!(!is_guarantee_structural(&saf, &saf_pairs));
        let (gua, gua_pairs) = eventually_b(&sigma);
        assert!(is_guarantee_structural(&gua, &gua_pairs));
        assert!(!is_safety_structural(&gua, &gua_pairs));
        let (rec, rec_pairs) = inf_b(&sigma);
        assert!(!is_safety_structural(&rec, &rec_pairs));
        assert!(!is_guarantee_structural(&rec, &rec_pairs));
    }

    #[test]
    fn structural_checks_agree_with_semantic() {
        let sigma = ab();
        for (aut, pairs) in [always_a(&sigma), eventually_b(&sigma), inf_b(&sigma)] {
            assert_eq!(
                is_safety_structural(&aut, &pairs),
                classify::is_safety(&aut)
            );
            assert_eq!(
                is_guarantee_structural(&aut, &pairs),
                classify::is_guarantee(&aut)
            );
        }
    }

    #[test]
    fn shape_predicates() {
        let sigma = ab();
        let (saf, p) = always_a(&sigma);
        assert!(is_safety_shaped(
            &saf,
            &p.0[0].recurrent,
            &p.0[0].persistent
        ));
        assert!(!is_guarantee_shaped(
            &saf,
            &p.0[0].recurrent,
            &p.0[0].persistent
        ));
        let (gua, p) = eventually_b(&sigma);
        assert!(is_guarantee_shaped(
            &gua,
            &p.0[0].recurrent,
            &p.0[0].persistent
        ));
        let (rec, p) = inf_b(&sigma);
        assert!(is_recurrence_shaped(&p));
        assert!(!is_persistence_shaped(&p));
        assert!(!is_safety_shaped(
            &rec,
            &p.0[0].recurrent,
            &p.0[0].persistent
        ));
        assert!(!is_guarantee_shaped(
            &rec,
            &p.0[0].recurrent,
            &p.0[0].persistent
        ));
    }

    #[test]
    fn simple_obligation_shape() {
        let sigma = ab();
        // □a as pair (R={0}, P={0}): leaving P = {0} must be permanent ✓;
        // entering R must be permanent — state 0 is initial and R = {0},
        // transitions 0→1 leave R: violates "no transition from q ∈ R to
        // q' ∉ R".
        let (saf, p) = always_a(&sigma);
        assert!(!is_simple_obligation_shaped(
            &saf,
            &p.0[0].recurrent,
            &p.0[0].persistent
        ));
        // With R = ∅, P = {0} the same automaton is simple-obligation
        // shaped.
        assert!(is_simple_obligation_shaped(
            &saf,
            &BitSet::new(),
            &BitSet::from_iter([0])
        ));
    }

    #[test]
    fn safety_construction_roundtrip() {
        let sigma = ab();
        let (saf, _) = always_a(&sigma);
        let built = safety_automaton(&saf).unwrap();
        assert!(built.equivalent(&saf));
        let (rec, _) = inf_b(&sigma);
        assert!(safety_automaton(&rec).is_none());
    }

    #[test]
    fn guarantee_construction_roundtrip() {
        let sigma = ab();
        let (gua, _) = eventually_b(&sigma);
        let built = guarantee_automaton(&gua).unwrap();
        assert!(built.equivalent(&gua));
        let (saf, _) = always_a(&sigma);
        assert!(guarantee_automaton(&saf).is_none());
    }

    #[test]
    fn constructions_on_trivial_languages() {
        let sigma = ab();
        let empty = OmegaAutomaton::empty(&sigma);
        let full = OmegaAutomaton::universal(&sigma);
        assert!(safety_automaton(&empty).unwrap().is_empty());
        assert!(safety_automaton(&full).unwrap().is_universal());
        assert!(guarantee_automaton(&empty).unwrap().is_empty());
        assert!(guarantee_automaton(&full).unwrap().is_universal());
    }

    #[test]
    fn recurrence_construction_on_buchi_language() {
        let sigma = ab();
        let (rec, pairs) = inf_b(&sigma);
        let dba = recurrence_automaton(&rec, &pairs).unwrap();
        assert!(dba.equivalent(&rec));
        assert!(matches!(dba.acceptance(), Acceptance::Inf(_)));
    }

    #[test]
    fn recurrence_construction_absorbs_persistent_cycles() {
        let sigma = ab();
        // □a as a Streett pair (R={0}, P={0}): a safety (hence recurrence)
        // property whose pair has a non-trivial persistent part.
        let (saf, pairs) = always_a(&sigma);
        let dba = recurrence_automaton(&saf, &pairs).unwrap();
        assert!(dba.equivalent(&saf));
        assert!(matches!(dba.acceptance(), Acceptance::Inf(_)));
    }

    #[test]
    fn recurrence_construction_rejects_persistence_language() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // ◇□a as a single Streett pair (R = ∅, P = {0}).
        let pairs = StreettPairs::single(StreettPair::new([], [0]));
        let aut = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            pairs.acceptance(2),
        );
        assert!(recurrence_automaton(&aut, &pairs).is_none());
    }

    #[test]
    fn recurrence_construction_two_pairs() {
        let sigma = ab();
        // □◇a ∧ □◇b: generalized Büchi via two pure pairs.
        let b = sigma.symbol("b").unwrap();
        let pairs = StreettPairs(vec![StreettPair::new([0], []), StreettPair::new([1], [])]);
        let aut = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            pairs.acceptance(2),
        );
        let dba = recurrence_automaton(&aut, &pairs).unwrap();
        assert!(dba.equivalent(&aut));
        assert!(matches!(dba.acceptance(), Acceptance::Inf(_)));
    }

    #[test]
    fn persistence_construction_via_duality() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // ◇□a as a Rabin automaton: pair (E = {1}, F = {0}).
        let rabin = vec![(BitSet::from_iter([1]), BitSet::from_iter([0]))];
        let aut = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            crate::streett::rabin(&rabin),
        );
        let dca = persistence_automaton(&aut, &rabin).unwrap();
        assert!(dca.equivalent(&aut));
        // □◇b as Rabin: pair (E = ∅, F = {1}) — not persistence.
        let rabin2 = vec![(BitSet::new(), BitSet::from_iter([1]))];
        let aut2 = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            crate::streett::rabin(&rabin2),
        );
        assert!(persistence_automaton(&aut2, &rabin2).is_none());
    }

    #[test]
    fn degeneralization_correct() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::True,
        );
        let infs = vec![BitSet::from_iter([0]), BitSet::from_iter([1])];
        let dba = generalized_buchi_to_buchi(&aut, &infs);
        let direct = aut.with_acceptance(Acceptance::inf([0]).and(Acceptance::inf([1])));
        assert!(dba.equivalent(&direct));
        assert!(matches!(dba.acceptance(), Acceptance::Inf(_)));
    }

    #[test]
    fn obligation_shape_degree_examples() {
        let sigma = Alphabet::new(["a", "c"]).unwrap();
        let c = sigma.symbol("c").unwrap();
        // ◇c: 0(B) → 1(G, absorbing): degree 1.
        let aut = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == c { 1 } else { 0 },
            Acceptance::inf([1]),
        );
        let r = BitSet::from_iter([1]);
        let p = BitSet::from_iter([1]);
        assert_eq!(obligation_shape_degree(&aut, &r, &p), Some(1));
        // A bad→good edge within an SCC kills the rank function:
        // 0 <-> 1 where 0 is bad, 1 is good.
        let flip = OmegaAutomaton::build(&sigma, 2, 0, |q, _| 1 - q, Acceptance::inf([1]));
        assert_eq!(obligation_shape_degree(&flip, &r, &p), None);
    }

    #[test]
    fn good_states_intersection() {
        let pairs = StreettPairs(vec![
            StreettPair::new([0, 1], [2]),
            StreettPair::new([1, 3], []),
        ]);
        // (R₁∪P₁) = {0,1,2}; (R₂∪P₂) = {1,3}; G = {1}.
        assert_eq!(good_states(&pairs, 4), BitSet::from_iter([1]));
    }

    #[test]
    fn successor_closure_reaches_traps() {
        let sigma = ab();
        let (saf, _) = always_a(&sigma);
        let cl = successor_closure(&saf, &BitSet::from_iter([0]));
        assert_eq!(cl, BitSet::from_iter([0, 1]));
        let cl1 = successor_closure(&saf, &BitSet::from_iter([1]));
        assert_eq!(cl1, BitSet::from_iter([1]));
    }
}
