//! Shared memoized analysis context for one ω-automaton.
//!
//! Every decision procedure in this crate — classification, emptiness,
//! safety closure, topology, counter-freedom — bottoms out in the same
//! few graph computations: forward reachability, SCC decompositions of
//! restricted subgraphs, the condensation DAG, and boolean products with
//! other automata. Before this module each consumer recomputed them from
//! scratch, so asking for a full classification cost several independent
//! color-lattice traversals (`is_safety` built a product, `is_recurrence`
//! and `is_persistence` each ran their own `ChainAnalysis`, …).
//!
//! [`Analysis`] owns one automaton and memoizes all of those intermediates
//! behind interior mutability, so the context can be shared by reference
//! (`&Analysis`) across the whole classification stack:
//!
//! * [`Analysis::sccs`] — SCC decompositions keyed by the allowed-set
//!   restriction. The color-lattice points of [`ChainAnalysis`], the
//!   per-disjunct restrictions of the emptiness check, and the liveness
//!   computation all hit the *same* keys (a DNF disjunct's `Fin` set is a
//!   union of acceptance atoms, so `reachable − fin` *is* a lattice
//!   point), which is what makes the single-walk classification below
//!   possible.
//! * [`Analysis::condensation`] — the reachable condensation DAG with
//!   per-component acceptance status, reused by the obligation-index DP
//!   and available to the topology layer.
//! * [`Analysis::classification`] — the **full verdict**: all six class
//!   memberships plus the obligation and reactivity indices from one
//!   shared color-lattice traversal. Safety and guarantee membership are
//!   read off the per-anchor canonical-cycle statuses instead of building
//!   closure products (see `classification` for the argument).
//! * [`Analysis::product_with`] — pairwise products keyed by the other
//!   operand, so repeated inclusion/equivalence queries against the same
//!   automaton build the product once.
//!
//! The free functions in [`crate::classify`], [`crate::emptiness`], etc.
//! remain as thin uncached wrappers (and as independent oracles for the
//! cross-validation tests); [`Analysis`] is the engine underneath
//! `hierarchy_core::Property`.
//!
//! All caches use `OnceLock`/`Mutex` interior mutability, so `Analysis`
//! is `Send + Sync` and can back a shared `Property` value; the
//! [`AnalysisStats`] counters record how many SCC passes actually ran
//! versus how many were served from cache (the `TAB-DEC` experiment
//! reports them). One shared context is exactly what the parallel sweep
//! of [`crate::par`] fans out over: the SCC memo keys each restriction to
//! a once-cell, so concurrent workers never duplicate a Tarjan pass, and
//! every cache lock recovers from poisoning (the caches hold only
//! memoized pure results, so a panicking worker's lock leaves nothing
//! half-mutated — see `lock_recover`).

use crate::acceptance::Acceptance;
use crate::bitset::BitSet;
use crate::classify::{self, ChainAnalysis, Classification};
use crate::counterfree::{self, CounterFreedom};
use crate::emptiness;
use crate::flat::FlatAutomaton;
use crate::lasso::Lasso;
use crate::minimize::{minimize, Minimization};
use crate::omega::OmegaAutomaton;
use crate::scc::SccDecomposition;
use crate::StateId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Locks a cache mutex, recovering from poisoning.
///
/// The caches only ever hold memoized results of pure computations, so a
/// panic on another thread that happened to hold a cache lock cannot have
/// left partial state behind that matters: whatever was inserted is a
/// valid memo entry, and whatever wasn't will be recomputed. Recovering
/// here keeps one panicking worker (e.g. inside a [`crate::par`] sweep)
/// from cascading into unrelated `PoisonError` panics on every later
/// cache access, which used to mask the original failure.
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Snapshot of the cache instrumentation counters of an [`Analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisStats {
    /// Tarjan passes actually executed.
    pub scc_passes: u64,
    /// States swept across all executed Tarjan passes (the size of each
    /// pass's restriction). Pass *count* is invariant under the
    /// signature-preserving quotient — the occupied color lattice is the
    /// same — so this is the counter that shows what quotient-first
    /// analysis actually saves per pass.
    pub scc_state_visits: u64,
    /// SCC requests served from the memo table.
    pub scc_hits: u64,
    /// Boolean products actually constructed.
    pub products_built: u64,
    /// Product requests served from the memo table.
    pub product_hits: u64,
    /// Direct inclusion/equivalence oracle runs actually executed
    /// (see [`Analysis::is_subset_of`]).
    pub inclusion_checks: u64,
    /// Inclusion/equivalence requests served from the memo table.
    pub inclusion_hits: u64,
}

impl AnalysisStats {
    /// The per-field difference `self − baseline`, saturating at zero.
    ///
    /// This is how a long-lived context (the classification daemon keeps
    /// one per warm artifact) attributes cost to a single request: take
    /// a snapshot before, one after, and subtract. Saturating rather
    /// than panicking keeps a stale baseline — e.g. one taken before a
    /// concurrent [`Analysis::reset_stats`] — harmless.
    pub fn delta_since(&self, baseline: AnalysisStats) -> AnalysisStats {
        AnalysisStats {
            scc_passes: self.scc_passes.saturating_sub(baseline.scc_passes),
            scc_state_visits: self
                .scc_state_visits
                .saturating_sub(baseline.scc_state_visits),
            scc_hits: self.scc_hits.saturating_sub(baseline.scc_hits),
            products_built: self.products_built.saturating_sub(baseline.products_built),
            product_hits: self.product_hits.saturating_sub(baseline.product_hits),
            inclusion_checks: self
                .inclusion_checks
                .saturating_sub(baseline.inclusion_checks),
            inclusion_hits: self.inclusion_hits.saturating_sub(baseline.inclusion_hits),
        }
    }

    /// Sum of all counters — a single "work units" scalar for coarse
    /// per-request reporting.
    pub fn total(&self) -> u64 {
        self.scc_passes
            + self.scc_state_visits
            + self.scc_hits
            + self.products_built
            + self.product_hits
            + self.inclusion_checks
            + self.inclusion_hits
    }
}

#[derive(Debug, Default)]
struct StatCells {
    scc_passes: AtomicU64,
    scc_state_visits: AtomicU64,
    scc_hits: AtomicU64,
    products_built: AtomicU64,
    product_hits: AtomicU64,
    inclusion_checks: AtomicU64,
    inclusion_hits: AtomicU64,
}

impl StatCells {
    fn snapshot(&self) -> AnalysisStats {
        AnalysisStats {
            scc_passes: self.scc_passes.load(Ordering::Relaxed),
            scc_state_visits: self.scc_state_visits.load(Ordering::Relaxed),
            scc_hits: self.scc_hits.load(Ordering::Relaxed),
            products_built: self.products_built.load(Ordering::Relaxed),
            product_hits: self.product_hits.load(Ordering::Relaxed),
            inclusion_checks: self.inclusion_checks.load(Ordering::Relaxed),
            inclusion_hits: self.inclusion_hits.load(Ordering::Relaxed),
        }
    }

    fn from_snapshot(s: AnalysisStats) -> StatCells {
        StatCells {
            scc_passes: AtomicU64::new(s.scc_passes),
            scc_state_visits: AtomicU64::new(s.scc_state_visits),
            scc_hits: AtomicU64::new(s.scc_hits),
            products_built: AtomicU64::new(s.products_built),
            product_hits: AtomicU64::new(s.product_hits),
            inclusion_checks: AtomicU64::new(s.inclusion_checks),
            inclusion_hits: AtomicU64::new(s.inclusion_hits),
        }
    }

    fn reset(&self) {
        self.scc_passes.store(0, Ordering::Relaxed);
        self.scc_state_visits.store(0, Ordering::Relaxed);
        self.scc_hits.store(0, Ordering::Relaxed);
        self.products_built.store(0, Ordering::Relaxed);
        self.product_hits.store(0, Ordering::Relaxed);
        self.inclusion_checks.store(0, Ordering::Relaxed);
        self.inclusion_hits.store(0, Ordering::Relaxed);
    }
}

/// The boolean operation of a cached product (see
/// [`Analysis::product_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProductOp {
    /// `L(self) ∩ L(other)`.
    Intersection,
    /// `L(self) ∪ L(other)`.
    Union,
    /// `L(self) − L(other)`.
    Difference,
}

/// Cache key identifying the *other* operand of a product: its transition
/// table, initial state, and acceptance condition (the alphabet is forced
/// equal to ours by an assertion).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ProductKey {
    delta: Vec<StateId>,
    initial: StateId,
    acceptance: Acceptance,
    op: ProductOp,
}

impl ProductKey {
    fn of(other: &OmegaAutomaton, op: ProductOp) -> ProductKey {
        ProductKey {
            delta: delta_table(other),
            initial: other.initial(),
            acceptance: other.acceptance().clone(),
            op,
        }
    }
}

fn delta_table(aut: &OmegaAutomaton) -> Vec<StateId> {
    let mut delta = Vec::with_capacity(aut.num_states() * aut.alphabet().len());
    for q in 0..aut.num_states() as StateId {
        for sym in aut.alphabet().symbols() {
            delta.push(aut.step(q, sym));
        }
    }
    delta
}

/// Which verdict of the direct oracle a memo entry answers (see
/// [`Analysis::is_subset_of`] / [`Analysis::equivalent`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OracleQuery {
    /// `L(self) ⊆ L(other)`.
    Included,
    /// `L(self) = L(other)`.
    Equivalent,
}

/// Cache key of a memoized inclusion/equivalence verdict: the *other*
/// operand's structure plus which question was asked.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct InclusionKey {
    delta: Vec<StateId>,
    initial: StateId,
    acceptance: Acceptance,
    query: OracleQuery,
}

impl InclusionKey {
    fn of(other: &OmegaAutomaton, query: OracleQuery) -> InclusionKey {
        InclusionKey {
            delta: delta_table(other),
            initial: other.initial(),
            acceptance: other.acceptance().clone(),
            query,
        }
    }
}

/// The condensation DAG of the reachable part of the automaton, with the
/// acceptance status of every component.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// The underlying SCC decomposition (restricted to reachable states;
    /// components in reverse topological order, successors first).
    pub sccs: Arc<SccDecomposition>,
    /// `succs[c]` lists the distinct successor components of `c` (every
    /// inter-component edge goes from a higher index to a lower one).
    pub succs: Vec<Vec<usize>>,
    /// `status[c]` is `Some(accepting)` for components with a cycle and
    /// `None` for transient components.
    pub status: Vec<Option<bool>>,
}

/// One claimable slot of the per-restriction SCC memo: whoever inserts
/// the cell computes the decomposition; same-key racers block on it.
type SccCell = Arc<OnceLock<Arc<SccDecomposition>>>;

/// A per-automaton memoized analysis context (see the module docs).
///
/// Construction is cheap; every intermediate is computed lazily on first
/// use and shared afterwards. All caches sit behind interior mutability,
/// so a shared `&Analysis` is all any consumer needs.
#[derive(Debug)]
pub struct Analysis {
    aut: OmegaAutomaton,
    /// Whether the quotient-first pipeline is active (see
    /// [`Analysis::new_raw`] for when it is not).
    quotient_enabled: bool,
    stats: StatCells,
    /// The flat CSR transition core — built once, consumed by every
    /// Tarjan pass in place of the automaton's per-symbol enumeration.
    flat: OnceLock<Arc<FlatAutomaton>>,
    /// The partition-refinement minimization of `aut` (lazy).
    minimization: OnceLock<Arc<Minimization>>,
    /// The analysis context of the quotient automaton, when quotienting
    /// is enabled *and* actually shrank the automaton (`None` otherwise).
    /// The inner context is always a raw one, so the recursion stops
    /// here.
    quotient: OnceLock<Option<Box<Analysis>>>,
    reachable: OnceLock<BitSet>,
    /// Per-restriction decompositions. Each key owns a once-cell so that
    /// concurrent workers asking for the *same* restriction block on one
    /// computation instead of racing duplicate Tarjan passes — the
    /// `scc_passes` counter is exact even under the parallel sweep, and
    /// the `2^m` lattice budget holds for any number of threads.
    sccs: Mutex<HashMap<Option<BitSet>, SccCell>>,
    condensation: OnceLock<Arc<Condensation>>,
    chains: OnceLock<Arc<ChainAnalysis>>,
    live_for: Mutex<HashMap<Acceptance, Arc<BitSet>>>,
    classification: OnceLock<Classification>,
    counter_freedom: OnceLock<CounterFreedom>,
    products: Mutex<HashMap<ProductKey, Arc<OmegaAutomaton>>>,
    /// Memoized verdicts of the direct inclusion/equivalence oracle,
    /// keyed by the other operand (quotiented when the pipeline is on).
    inclusions: Mutex<HashMap<InclusionKey, bool>>,
}

impl Clone for Analysis {
    fn clone(&self) -> Self {
        Analysis {
            aut: self.aut.clone(),
            quotient_enabled: self.quotient_enabled,
            stats: StatCells::from_snapshot(self.stats.snapshot()),
            flat: self.flat.clone(),
            minimization: self.minimization.clone(),
            quotient: self.quotient.clone(),
            reachable: self.reachable.clone(),
            sccs: Mutex::new(lock_recover(&self.sccs).clone()),
            condensation: self.condensation.clone(),
            chains: self.chains.clone(),
            live_for: Mutex::new(lock_recover(&self.live_for).clone()),
            classification: self.classification.clone(),
            counter_freedom: self.counter_freedom.clone(),
            products: Mutex::new(lock_recover(&self.products).clone()),
            inclusions: Mutex::new(lock_recover(&self.inclusions).clone()),
        }
    }
}

impl Analysis {
    /// Wraps `aut` with empty caches, with the quotient-first pipeline
    /// enabled: language-level queries (the classification, the Rabin
    /// index, inclusion and equivalence) run on the partition-refinement
    /// quotient of `aut` whenever minimization actually shrinks it. The
    /// hierarchy verdicts are properties of the language, so the results
    /// are identical — a debug-mode tripwire asserts the quotient verdict
    /// against the raw one on every classification.
    pub fn new(aut: OmegaAutomaton) -> Self {
        Self::with_quotient(aut, true)
    }

    /// Wraps `aut` with empty caches and quotienting disabled: every
    /// query runs on the raw automaton. Used for the inner quotient
    /// context itself, by the differential tests, and by the
    /// `tab_minimize` experiment to measure the raw baseline.
    pub fn new_raw(aut: OmegaAutomaton) -> Self {
        Self::with_quotient(aut, false)
    }

    fn with_quotient(aut: OmegaAutomaton, quotient_enabled: bool) -> Self {
        Analysis {
            aut,
            quotient_enabled,
            stats: StatCells::default(),
            flat: OnceLock::new(),
            minimization: OnceLock::new(),
            quotient: OnceLock::new(),
            reachable: OnceLock::new(),
            sccs: Mutex::new(HashMap::new()),
            condensation: OnceLock::new(),
            chains: OnceLock::new(),
            live_for: Mutex::new(HashMap::new()),
            classification: OnceLock::new(),
            counter_freedom: OnceLock::new(),
            products: Mutex::new(HashMap::new()),
            inclusions: Mutex::new(HashMap::new()),
        }
    }

    /// The analyzed automaton.
    pub fn automaton(&self) -> &OmegaAutomaton {
        &self.aut
    }

    /// The flat CSR transition core of the automaton (built on first
    /// use). All Tarjan passes of this context walk its deduplicated
    /// successor graph instead of re-enumerating `step()` per symbol.
    pub fn flat(&self) -> &FlatAutomaton {
        self.flat
            .get_or_init(|| Arc::new(FlatAutomaton::of(&self.aut)))
    }

    /// The partition-refinement minimization of the automaton (computed
    /// on first use). Exposed so consumers like lint rule `AUT004` can
    /// report the exact quotient classes.
    pub fn minimization(&self) -> &Minimization {
        self.minimization
            .get_or_init(|| Arc::new(minimize(&self.aut)))
    }

    /// The analysis context of the quotient automaton — `Some` only when
    /// quotienting is enabled for this context *and* minimization
    /// strictly shrank the automaton. The inner context is raw (it never
    /// re-quotients), and it carries its own [`AnalysisStats`]; see
    /// [`Self::stats_total`] for combined counters.
    pub fn quotient_analysis(&self) -> Option<&Analysis> {
        self.quotient
            .get_or_init(|| {
                if !self.quotient_enabled {
                    return None;
                }
                let min = self.minimization();
                if !min.reduced() {
                    return None;
                }
                Some(Box::new(Analysis::new_raw(min.quotient.clone())))
            })
            .as_deref()
    }

    /// Forward-reachable states (computed once).
    pub fn reachable(&self) -> &BitSet {
        self.reachable.get_or_init(|| self.aut.reachable_states())
    }

    /// The SCC decomposition of the subgraph induced by `allowed`,
    /// memoized per distinct restriction. Every consumer of this context
    /// — the color-lattice walk, liveness, emptiness, the condensation —
    /// routes its Tarjan runs through here, which is what makes their
    /// restrictions coincide and the total pass count collapse.
    pub fn sccs(&self, allowed: Option<&BitSet>) -> Arc<SccDecomposition> {
        // Claim (or find) the key's once-cell under the map lock, then
        // compute outside it: workers on distinct restrictions run fully
        // in parallel, while workers racing on the same restriction block
        // on the cell and share the single pass.
        let cell = {
            let mut map = lock_recover(&self.sccs);
            Arc::clone(
                map.entry(allowed.cloned())
                    .or_insert_with(|| Arc::new(OnceLock::new())),
            )
        };
        let mut computed_here = false;
        let dec = cell.get_or_init(|| {
            computed_here = true;
            self.stats.scc_passes.fetch_add(1, Ordering::Relaxed);
            let swept = allowed.map_or(self.aut.num_states(), BitSet::len) as u64;
            self.stats
                .scc_state_visits
                .fetch_add(swept, Ordering::Relaxed);
            // Walk the flat CSR core: same DFS order as the automaton
            // (dedup is order-preserving), contiguous successor slices.
            Arc::new(crate::scc::tarjan_scc(self.flat().graph(), allowed))
        });
        if !computed_here {
            self.stats.scc_hits.fetch_add(1, Ordering::Relaxed);
        }
        Arc::clone(dec)
    }

    /// The reachable condensation DAG with per-component acceptance
    /// status. The SCC pass underneath is shared with [`Self::chains`]:
    /// the full color set's lattice restriction *is* the reachable set.
    pub fn condensation(&self) -> Arc<Condensation> {
        Arc::clone(self.condensation.get_or_init(|| {
            let reachable = self.reachable();
            let sccs = self.sccs(Some(reachable));
            let n_comp = sccs.len();
            let status: Vec<Option<bool>> = (0..n_comp)
                .map(|c| {
                    sccs.has_cycle[c].then(|| {
                        self.aut
                            .acceptance()
                            .accepts_infinity_set(&sccs.member_set(c))
                    })
                })
                .collect();
            let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n_comp];
            for q in reachable.iter() {
                let cq = sccs.component[q];
                for sym in self.aut.alphabet().symbols() {
                    let ct = sccs.component[self.aut.step(q as StateId, sym) as usize];
                    if ct != cq && !succs[cq].contains(&ct) {
                        succs[cq].push(ct);
                    }
                }
            }
            Arc::new(Condensation {
                sccs,
                succs,
                status,
            })
        }))
    }

    /// The per-anchor canonical-cycle analysis over the color lattice,
    /// with its SCC passes routed through [`Self::sccs`]. Distinct
    /// lattice points with identical restrictions (unused color
    /// combinations) collapse to one pass.
    ///
    /// The lattice points fan out across the [`crate::par`] worker pool
    /// (sharing this context — the per-key once-cells of [`Self::sccs`]
    /// keep the pass count exact under concurrency), and the `OnceLock`
    /// around the whole analysis guarantees at most one sweep even when
    /// several threads ask for the verdict at once.
    pub fn chains(&self) -> Arc<ChainAnalysis> {
        Arc::clone(self.chains.get_or_init(|| {
            Arc::new(ChainAnalysis::new_par(
                &self.aut,
                self.reachable(),
                |allowed| self.sccs(Some(allowed)),
            ))
        }))
    }

    /// The reachable live states under an arbitrary acceptance condition
    /// over this automaton's structure: states (restricted to the
    /// reachable part) from which an `acc`-accepting run can still start.
    ///
    /// With `acc = self.automaton().acceptance()` this agrees with
    /// [`crate::emptiness::live_states`] on all reachable states (the free
    /// version also reports unreachable live states, which no language
    /// question can observe). Each DNF disjunct's restriction
    /// `reachable − fin` is a color-lattice point, so the SCC passes here
    /// are shared with [`Self::chains`].
    pub fn live_reachable(&self, acc: &Acceptance) -> Arc<BitSet> {
        if let Some(hit) = lock_recover(&self.live_for).get(acc) {
            return Arc::clone(hit);
        }
        let reachable = self.reachable();
        let mut good = BitSet::with_capacity(self.aut.num_states());
        for pair in acc.dnf() {
            let mut allowed = reachable.clone();
            allowed.difference_with(&pair.fin);
            if allowed.is_empty() {
                continue;
            }
            let sccs = self.sccs(Some(&allowed));
            for c in 0..sccs.len() {
                if !sccs.has_cycle[c] {
                    continue;
                }
                let members = sccs.member_set(c);
                if pair.infs.iter().all(|s| members.intersects(s)) {
                    good.union_with(&members);
                }
            }
        }
        let mut live = emptiness::backward_closure(&self.aut, good);
        live.intersect_with(reachable);
        let live = Arc::new(live);
        lock_recover(&self.live_for).insert(acc.clone(), Arc::clone(&live));
        live
    }

    /// Reachable live states under the automaton's own acceptance.
    pub fn live(&self) -> Arc<BitSet> {
        self.live_reachable(&self.aut.acceptance().clone())
    }

    /// The **full verdict**: all six class memberships plus the
    /// obligation and reactivity indices, from one shared color-lattice
    /// traversal (computed once, then cached).
    ///
    /// Recurrence, persistence, obligation, simple reactivity, and the
    /// reactivity index are Wagner-style chain queries on
    /// [`Self::chains`], exactly as in [`crate::classify`]. Safety and
    /// guarantee, which the free path decides with closure products, are
    /// read off the same per-anchor statuses:
    ///
    /// * **safety** — `Π` equals its closure `A(Pref Π)` iff no *live*
    ///   reachable state lies on a rejecting cycle: dead states are
    ///   successor-closed, so a run of the closure automaton is accepted
    ///   iff it stays live forever, and such a run escapes `Π` exactly
    ///   when it can settle into a rejecting cycle of live states. The
    ///   canonical per-anchor cycles cover all cycles' statuses, so this
    ///   is "every anchor in [`Self::live`] has only accepting entries".
    /// * **guarantee** — safety of the complement. The complement has the
    ///   same atoms, hence the same canonical SCCs with negated statuses,
    ///   and its live set is `live_reachable(acc.negated())`; so the
    ///   check is "every co-live anchor has only rejecting entries".
    ///
    /// When the quotient-first pipeline is active, the verdict is
    /// computed on the partition-refinement quotient (strictly fewer
    /// states, hence cheaper lattice restrictions) — sound because every
    /// hierarchy class is a property of the language and the quotient is
    /// language-equal. A debug-mode tripwire re-derives the verdict on
    /// the raw automaton and asserts identity.
    pub fn classification(&self) -> &Classification {
        self.classification.get_or_init(|| {
            if let Some(q) = self.quotient_analysis() {
                let verdict = q.classification().clone();
                debug_assert_eq!(
                    verdict,
                    self.classification_raw(),
                    "quotient-first tripwire: the verdict on the quotient \
                     differs from the raw automaton's"
                );
                return verdict;
            }
            self.classification_raw()
        })
    }

    /// The full verdict computed directly on this context's automaton
    /// (no quotient routing) — the single shared color-lattice walk.
    fn classification_raw(&self) -> Classification {
        {
            let chains = self.chains();
            let statuses = chains.anchor_statuses();
            let is_recurrence = !chains.has_chain(&[true, false]);
            let is_persistence = !chains.has_chain(&[false, true]);
            let is_obligation = is_recurrence && is_persistence;
            let is_simple_reactivity = !chains.has_chain(&[false, true, false]);
            let live = self.live();
            let is_safety = live
                .iter()
                .all(|q| statuses[q].iter().all(|&(accepting, _)| accepting));
            let co_live = self.live_reachable(&self.aut.acceptance().negated());
            let is_guarantee = co_live
                .iter()
                .all(|q| statuses[q].iter().all(|&(accepting, _)| !accepting));
            let obligation_index = is_obligation.then(|| self.obligation_index());
            Classification {
                is_safety,
                is_guarantee,
                is_obligation,
                is_recurrence,
                is_persistence,
                is_simple_reactivity,
                obligation_index,
                reactivity_index: chains.alternating_index(false),
            }
        }
    }

    /// The obligation index (the `Obl_n` level), via the condensation DP
    /// of [`crate::classify::obligation_index_of`] on the cached
    /// condensation. Only meaningful when the language is an obligation.
    pub fn obligation_index(&self) -> usize {
        let cond = self.condensation();
        let init = cond.sccs.component[self.aut.initial() as usize];
        classify::obligation_index_from_condensation(&cond.succs, &cond.status, init)
    }

    /// The exact reactivity index (minimal Streett pair count).
    pub fn reactivity_index(&self) -> usize {
        self.classification().reactivity_index
    }

    /// The exact Rabin index: the reactivity index of the complement,
    /// read off the *same* chain analysis — the complement's rejecting/
    /// accepting alternations are ours with the roles swapped, so no
    /// second lattice walk is needed.
    pub fn rabin_index(&self) -> usize {
        if let Some(q) = self.quotient_analysis() {
            let idx = q.rabin_index();
            debug_assert_eq!(
                idx,
                self.chains().alternating_index(true),
                "quotient-first tripwire: Rabin index mismatch"
            );
            return idx;
        }
        self.chains().alternating_index(true)
    }

    /// Whether the language is universal (`L = Σ^ω`): the complement —
    /// same structure, negated acceptance — must be empty, i.e. the
    /// initial state must not be live under the negated condition. The
    /// lattice restrictions of `live_reachable` are shared with the
    /// guarantee check of the full verdict, so asking both costs no extra
    /// SCC pass.
    pub fn is_universal(&self) -> bool {
        !self
            .live_reachable(&self.aut.acceptance().negated())
            .contains(self.aut.initial() as usize)
    }

    /// Whether the language is a safety property (from the full verdict).
    pub fn is_safety(&self) -> bool {
        self.classification().is_safety
    }

    /// Whether the language is a guarantee property.
    pub fn is_guarantee(&self) -> bool {
        self.classification().is_guarantee
    }

    /// Whether the language is an obligation property.
    pub fn is_obligation(&self) -> bool {
        self.classification().is_obligation
    }

    /// Whether the language is a recurrence property.
    pub fn is_recurrence(&self) -> bool {
        self.classification().is_recurrence
    }

    /// Whether the language is a persistence property.
    pub fn is_persistence(&self) -> bool {
        self.classification().is_persistence
    }

    /// Whether the language is a simple reactivity property.
    pub fn is_simple_reactivity(&self) -> bool {
        self.classification().is_simple_reactivity
    }

    /// The safety closure `A(Pref Π)` (language-equal to
    /// [`crate::classify::safety_closure`]; the dead set may differ on
    /// unreachable states, which no run from the initial state visits).
    pub fn safety_closure(&self) -> OmegaAutomaton {
        let dead = self.live().complement(self.aut.num_states());
        self.aut.with_acceptance(Acceptance::Fin(dead))
    }

    /// Whether the language is dense in `Σ^ω` (every reachable state is
    /// live) — the liveness test of the topology layer.
    pub fn is_dense(&self) -> bool {
        self.reachable().is_subset(&self.live())
    }

    /// Whether the language is empty (the initial state is not live).
    pub fn is_empty(&self) -> bool {
        !self.live().contains(self.aut.initial() as usize)
    }

    /// An accepted lasso, or `None` when the language is empty; the SCC
    /// passes are shared with everything else in the context.
    pub fn accepted_lasso(&self) -> Option<Lasso> {
        for pair in self.aut.acceptance().dnf() {
            let mut allowed = self.reachable().clone();
            allowed.difference_with(&pair.fin);
            if allowed.is_empty() {
                continue;
            }
            let sccs = self.sccs(Some(&allowed));
            for c in 0..sccs.len() {
                if !sccs.has_cycle[c] {
                    continue;
                }
                let members = sccs.member_set(c);
                if pair.infs.iter().all(|s| members.intersects(s)) {
                    return Some(emptiness::build_witness(&self.aut, &members, &pair));
                }
            }
        }
        None
    }

    /// The counter-freedom verdict (memoized; uses the default monoid
    /// cap).
    pub fn counter_freedom(&self) -> &CounterFreedom {
        self.counter_freedom
            .get_or_init(|| counterfree::check_omega(&self.aut, counterfree::DEFAULT_MONOID_CAP))
    }

    /// The boolean product of this automaton with `other`, memoized per
    /// `(other, op)` pair, so repeated inclusion or equivalence queries
    /// against the same operand build the product automaton once.
    ///
    /// When the quotient-first pipeline is active, *both* operands are
    /// quotiented before the product is built (and the memo key is the
    /// quotiented operand, so repeated queries still hit the cache —
    /// minimization is deterministic). The product is then language-equal
    /// to the raw one, which is all any consumer observes: every caller
    /// asks language-level questions (emptiness for inclusion, or wraps
    /// the product as a new property).
    ///
    /// # Panics
    ///
    /// Panics if the alphabets differ (as the underlying product does).
    pub fn product_with(&self, other: &OmegaAutomaton, op: ProductOp) -> Arc<OmegaAutomaton> {
        assert_eq!(
            self.aut.alphabet(),
            other.alphabet(),
            "product operands must share an alphabet"
        );
        let lhs = self.effective_automaton();
        let rhs_min;
        let rhs = if self.quotient_enabled {
            rhs_min = minimize(other);
            if rhs_min.reduced() {
                &rhs_min.quotient
            } else {
                other
            }
        } else {
            other
        };
        let key = ProductKey::of(rhs, op);
        if let Some(hit) = lock_recover(&self.products).get(&key) {
            self.stats.product_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Compute outside the lock; a racing duplicate build is harmless
        // (last write wins, both results are identical).
        self.stats.products_built.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(match op {
            ProductOp::Intersection => lhs.intersection(rhs),
            ProductOp::Union => lhs.union(rhs),
            ProductOp::Difference => lhs.difference(rhs),
        });
        lock_recover(&self.products).insert(key, Arc::clone(&built));
        built
    }

    /// The automaton language-level queries actually run on: the
    /// quotient when the quotient-first pipeline produced one, the raw
    /// automaton otherwise.
    fn effective_automaton(&self) -> &OmegaAutomaton {
        self.quotient_analysis()
            .map_or(&self.aut, |q| q.automaton())
    }

    /// Language inclusion `L(self) ⊆ L(other)`, decided by the direct
    /// product-graph oracle of [`crate::inclusion`] (no complement, no
    /// DNF) on the quotiented operands when the quotient-first pipeline
    /// is enabled, memoized per operand. In debug builds every verdict
    /// is cross-checked against the classical complement+product oracle
    /// on the *raw* operands — one tripwire covering both the
    /// quotient-first routing and the new algorithm.
    pub fn is_subset_of(&self, other: &OmegaAutomaton) -> bool {
        self.inclusion_verdict(other, OracleQuery::Included)
    }

    /// Language equivalence through the same direct oracle (both
    /// directions share one product graph), memoized per operand, with
    /// the same debug-mode differential tripwire as
    /// [`Self::is_subset_of`].
    pub fn equivalent(&self, other: &OmegaAutomaton) -> bool {
        self.inclusion_verdict(other, OracleQuery::Equivalent)
    }

    fn inclusion_verdict(&self, other: &OmegaAutomaton, query: OracleQuery) -> bool {
        let lhs = self.effective_automaton();
        let rhs_min;
        let rhs = if self.quotient_enabled {
            rhs_min = minimize(other);
            if rhs_min.reduced() {
                &rhs_min.quotient
            } else {
                other
            }
        } else {
            other
        };
        let key = InclusionKey::of(rhs, query);
        if let Some(&hit) = lock_recover(&self.inclusions).get(&key) {
            self.stats.inclusion_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.stats.inclusion_checks.fetch_add(1, Ordering::Relaxed);
        let res = match query {
            OracleQuery::Included => crate::inclusion::included(lhs, rhs),
            OracleQuery::Equivalent => crate::inclusion::equivalent(lhs, rhs),
        };
        debug_assert_eq!(
            res,
            match query {
                OracleQuery::Included => self.aut.is_subset_of_via_complement(other),
                OracleQuery::Equivalent => self.aut.equivalent_via_complement(other),
            },
            "inclusion-oracle tripwire: direct verdict on the (quotiented) \
             operands differs from the complement oracle on the raw ones"
        );
        lock_recover(&self.inclusions).insert(key, res);
        res
    }

    /// A snapshot of the cache counters of *this* context only. The
    /// quotient context (when one exists) counts separately — see
    /// [`Self::stats_total`].
    pub fn stats(&self) -> AnalysisStats {
        self.stats.snapshot()
    }

    /// Combined cache counters: this context plus its quotient context,
    /// if one has been created. This is the honest total cost of the
    /// quotient-first pipeline (the `tab_minimize` experiment reports
    /// it); [`Self::stats`] alone under-counts when work was routed to
    /// the quotient.
    pub fn stats_total(&self) -> AnalysisStats {
        let mut s = self.stats.snapshot();
        if let Some(Some(q)) = self.quotient.get() {
            let qs = q.stats_total();
            s.scc_passes += qs.scc_passes;
            s.scc_state_visits += qs.scc_state_visits;
            s.scc_hits += qs.scc_hits;
            s.products_built += qs.products_built;
            s.product_hits += qs.product_hits;
            s.inclusion_checks += qs.inclusion_checks;
            s.inclusion_hits += qs.inclusion_hits;
        }
        s
    }

    /// Zeroes the cache counters of this context (and of its quotient
    /// context, if one has been created), leaving every memo table
    /// intact.
    ///
    /// Long-lived contexts — the classification daemon holds one per
    /// warm artifact — use this together with
    /// [`AnalysisStats::delta_since`] to report per-request work without
    /// rebuilding the context. Takes `&self`: the counters are atomics,
    /// so a reset is safe (if imprecise for in-flight requests) even
    /// while workers are querying.
    pub fn reset_stats(&self) {
        self.stats.reset();
        if let Some(Some(q)) = self.quotient.get() {
            q.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Last-symbol tracker over {a,b}.
    fn last_sym(sigma: &Alphabet, acc: Acceptance) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(sigma, 2, 0, |_, s| if s == b { 1 } else { 0 }, acc)
    }

    #[test]
    fn full_verdict_matches_free_functions() {
        let sigma = ab();
        let cases = [
            last_sym(&sigma, Acceptance::inf([1])), // □◇b
            last_sym(&sigma, Acceptance::fin([1])), // ◇□a
            OmegaAutomaton::empty(&sigma),
            OmegaAutomaton::universal(&sigma),
        ];
        for aut in cases {
            let ctx = Analysis::new(aut.clone());
            let free = classify::classify(&aut);
            assert_eq!(ctx.classification(), &free);
        }
    }

    #[test]
    fn scc_passes_are_shared_across_queries() {
        let sigma = ab();
        let ctx = Analysis::new(last_sym(&sigma, Acceptance::inf([1])));
        let _ = ctx.classification();
        let passes_after_classify = ctx.stats().scc_passes;
        // Everything else reuses the same lattice points.
        let _ = ctx.safety_closure();
        let _ = ctx.accepted_lasso();
        let _ = ctx.condensation();
        let _ = ctx.rabin_index();
        assert_eq!(ctx.stats().scc_passes, passes_after_classify);
        assert!(ctx.stats().scc_hits > 0);
    }

    #[test]
    fn classification_is_cached() {
        let sigma = ab();
        let ctx = Analysis::new(last_sym(&sigma, Acceptance::inf([1])));
        let first = ctx.classification().clone();
        let passes = ctx.stats().scc_passes;
        for _ in 0..10 {
            assert_eq!(ctx.classification(), &first);
        }
        assert_eq!(ctx.stats().scc_passes, passes);
    }

    #[test]
    fn product_cache_hits_on_repeat() {
        let sigma = ab();
        let ctx = Analysis::new(last_sym(&sigma, Acceptance::inf([1])));
        let other = last_sym(&sigma, Acceptance::fin([1]));
        let p1 = ctx.product_with(&other, ProductOp::Union);
        let p2 = ctx.product_with(&other, ProductOp::Union);
        assert!(p1.equivalent(&p2));
        let s = ctx.stats();
        assert_eq!(s.products_built, 1);
        assert_eq!(s.product_hits, 1);
    }

    #[test]
    fn inclusion_memo_hits_on_repeat_and_both_directions_are_checked() {
        let sigma = ab();
        // □◇b and ◇□a are disjoint non-empty languages, so *neither*
        // inclusion direction holds. (This used to assert the forward
        // direction twice, leaving the reverse direction untested.)
        let ctx = Analysis::new(last_sym(&sigma, Acceptance::inf([1])));
        let other = last_sym(&sigma, Acceptance::fin([1]));
        assert!(!ctx.is_subset_of(&other));
        assert!(!ctx.is_subset_of(&other)); // repeat: memo hit
        let rev = Analysis::new(other.clone());
        assert!(!rev.is_subset_of(ctx.automaton()));
        let s = ctx.stats();
        assert_eq!(s.inclusion_checks, 1);
        assert_eq!(s.inclusion_hits, 1);
        // Equivalence is a distinct memo entry, then hits on repeat.
        assert!(!ctx.equivalent(&other));
        assert!(!ctx.equivalent(&other));
        let s = ctx.stats();
        assert_eq!(s.inclusion_checks, 2);
        assert_eq!(s.inclusion_hits, 2);
    }

    #[test]
    fn clone_preserves_caches() {
        let sigma = ab();
        let ctx = Analysis::new(last_sym(&sigma, Acceptance::inf([1])));
        let verdict = ctx.classification().clone();
        let cloned = ctx.clone();
        let passes = cloned.stats().scc_passes;
        assert_eq!(cloned.classification(), &verdict);
        assert_eq!(cloned.stats().scc_passes, passes, "clone reuses caches");
    }

    /// Regression: a worker panicking while it happens to hold a cache
    /// lock used to poison the mutex, turning every later cache access
    /// into an unrelated `PoisonError` panic that masked the original
    /// failure. The caches hold only memoized pure results, so recovery
    /// is sound — after the simulated worker death the context must keep
    /// answering queries, with the same verdict a fresh context computes.
    #[test]
    fn cache_locks_recover_from_poisoning() {
        let sigma = ab();
        let aut = last_sym(&sigma, Acceptance::inf([1]));
        let ctx = Analysis::new(aut.clone());

        // Poison all three cache mutexes the way a dying worker would:
        // panic while holding the guard.
        let died = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _sccs = lock_recover(&ctx.sccs);
            let _live = lock_recover(&ctx.live_for);
            let _products = lock_recover(&ctx.products);
            let _inclusions = lock_recover(&ctx.inclusions);
            panic!("worker dies holding the cache locks");
        }));
        assert!(died.is_err());
        assert!(ctx.sccs.lock().is_err(), "mutex must actually be poisoned");

        // Every cache-touching query must still work and agree with a
        // fresh (never-poisoned) context.
        let fresh = Analysis::new(aut.clone());
        assert_eq!(ctx.classification(), fresh.classification());
        assert_eq!(*ctx.live(), *fresh.live());
        let other = last_sym(&sigma, Acceptance::fin([1]));
        assert_eq!(ctx.is_subset_of(&other), fresh.is_subset_of(&other));
        let cloned = ctx.clone();
        assert_eq!(cloned.classification(), fresh.classification());
    }

    #[test]
    fn emptiness_and_liveness_agree_with_free_versions() {
        let sigma = ab();
        for acc in [
            Acceptance::inf([1]),
            Acceptance::fin([1]),
            Acceptance::inf([1]).and(Acceptance::fin([1])),
        ] {
            let aut = last_sym(&sigma, acc);
            let ctx = Analysis::new(aut.clone());
            assert_eq!(ctx.is_empty(), aut.is_empty());
            match (ctx.accepted_lasso(), aut.accepted_lasso()) {
                (Some(w1), Some(w2)) => {
                    assert!(aut.accepts(&w1) && aut.accepts(&w2));
                }
                (None, None) => {}
                (a, b) => panic!("emptiness disagreement: {a:?} vs {b:?}"),
            }
            // live_reachable = free live ∩ reachable.
            let mut free_live = emptiness::live_states(&aut);
            free_live.intersect_with(ctx.reachable());
            assert_eq!(*ctx.live(), free_live);
        }
    }

    /// Per-request attribution: snapshot → work → delta shows exactly
    /// that work; reset zeroes the counters without touching the memo
    /// tables (the second classification is still a pure cache hit).
    #[test]
    fn stats_delta_and_reset() {
        let sigma = ab();
        let ctx = Analysis::new(last_sym(&sigma, Acceptance::inf([1])));
        let before = ctx.stats_total();
        ctx.classification();
        let after_cold = ctx.stats_total();
        let cold = after_cold.delta_since(before);
        assert!(cold.scc_passes > 0, "cold classification runs passes");

        ctx.reset_stats();
        let zero = ctx.stats_total();
        assert_eq!(zero, AnalysisStats::default());

        // The memo survives the reset: a repeat query does no new passes.
        ctx.classification();
        let warm = ctx.stats_total().delta_since(zero);
        assert_eq!(warm.scc_passes, 0, "classification memo must survive reset");

        // A stale baseline (taken before the reset) saturates, never
        // underflows.
        let stale = after_cold;
        let sat = ctx.stats_total().delta_since(stale);
        assert_eq!(sat.scc_passes, 0);
        assert!(sat.total() <= after_cold.total());
    }

    /// Resetting propagates into the quotient context when one exists,
    /// so `stats_total` deltas stay honest for quotient-routed work.
    #[test]
    fn reset_stats_covers_quotient_context() {
        let sigma = ab();
        // Duplicate the 2-state tracker into 4 states so the quotient
        // strictly shrinks and quotient-first routing kicks in.
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            4,
            0,
            |q, s| {
                let bit = if s == b { 1 } else { 0 };
                bit + 2 * (1 - q / 2) // flip halves so both copies are reachable
            },
            Acceptance::inf([1, 3]),
        );
        let ctx = Analysis::new(aut);
        ctx.classification();
        assert!(
            ctx.quotient_analysis().is_some(),
            "test needs quotient routing"
        );
        assert!(ctx.stats_total().total() > 0);
        ctx.reset_stats();
        assert_eq!(ctx.stats_total(), AnalysisStats::default());
    }
}
