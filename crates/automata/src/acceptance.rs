//! Acceptance conditions for deterministic ω-automata.
//!
//! An [`Acceptance`] condition is a positive boolean combination of the atoms
//! `Inf(S)` ("the run visits `S` infinitely often") and `Fin(S)` ("the run
//! visits `S` only finitely often") — the Emerson–Lei style used by modern
//! ω-automata libraries. Negation is available as [`Acceptance::negated`]
//! through the dualities `¬Inf(S) = Fin(S)` and `¬Fin(S) = Inf(S)`, so the
//! class of conditions is closed under all boolean operations.
//!
//! All of the paper's automaton types are instances:
//!
//! * Büchi (`R` set): `Inf(R)`
//! * co-Büchi (`P` set): `Fin(Q − P)`
//! * a Streett pair `(R, P)` — the paper's "either `inf(r) ∩ R ≠ ∅` or
//!   `inf(r) ⊆ P`": `Inf(R) ∨ Fin(Q − P)`
//! * a full Streett list: the conjunction of its pairs
//! * Rabin: the disjunction of `Inf(Fᵢ) ∧ Fin(Eᵢ)` pairs.
//!
//! The truth of a condition depends only on the *infinity set* of a run, so
//! it can be evaluated on any set of states, in particular on the cycles that
//! drive the classification procedures.

use crate::bitset::BitSet;
use std::fmt;

/// A positive boolean combination of `Inf`/`Fin` atoms over state sets.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::acceptance::Acceptance;
/// use hierarchy_automata::bitset::BitSet;
///
/// // A Streett pair (R = {1}, P = {0,1}) over 3 states:
/// let pair = Acceptance::inf([1]).or(Acceptance::fin([2]));
/// let cycle = BitSet::from_iter([0, 1]);
/// assert!(pair.accepts_infinity_set(&cycle));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Acceptance {
    /// Accepts every run.
    True,
    /// Rejects every run.
    False,
    /// The run visits the set infinitely often.
    Inf(BitSet),
    /// The run visits the set only finitely often.
    Fin(BitSet),
    /// All sub-conditions hold.
    And(Vec<Acceptance>),
    /// At least one sub-condition holds.
    Or(Vec<Acceptance>),
}

impl Acceptance {
    /// Convenience constructor for `Inf` of a list of states.
    pub fn inf<I: IntoIterator<Item = usize>>(states: I) -> Self {
        Acceptance::Inf(states.into_iter().collect())
    }

    /// Convenience constructor for `Fin` of a list of states.
    pub fn fin<I: IntoIterator<Item = usize>>(states: I) -> Self {
        Acceptance::Fin(states.into_iter().collect())
    }

    /// The min-even parity condition for a per-state priority
    /// assignment: a run is accepting iff the minimal priority among
    /// the states it visits infinitely often is even.
    ///
    /// The result is the standard `Inf`/`Fin` chain
    /// `Inf(S₀) ∨ (Fin(S₁) ∧ (Inf(S₂) ∨ …))` (where `Sₚ` is the set of
    /// states with priority `p`), which [`crate::inclusion::ParityView`]
    /// recognizes, so automata built from it take the parity fast path
    /// of the direct inclusion oracle.
    ///
    /// ```
    /// use hierarchy_automata::acceptance::Acceptance;
    /// use hierarchy_automata::bitset::BitSet;
    ///
    /// let acc = Acceptance::parity_min_even(&[0, 1, 2]);
    /// assert!(acc.accepts_infinity_set(&BitSet::from_iter([0, 1])));
    /// assert!(!acc.accepts_infinity_set(&BitSet::from_iter([1, 2])));
    /// ```
    pub fn parity_min_even(priorities: &[u32]) -> Acceptance {
        let max = priorities.iter().copied().max().unwrap_or(0);
        let mut acc = Acceptance::False;
        for p in (0..=max).rev() {
            let level: BitSet = priorities
                .iter()
                .enumerate()
                .filter(|&(_, &q)| q == p)
                .map(|(i, _)| i)
                .collect();
            if level.is_empty() {
                continue;
            }
            acc = if p % 2 == 0 {
                Acceptance::Inf(level).or(acc)
            } else {
                Acceptance::Fin(level).and(acc)
            };
        }
        acc
    }

    /// Conjunction of two conditions.
    pub fn and(self, other: Acceptance) -> Acceptance {
        match (self, other) {
            (Acceptance::True, x) | (x, Acceptance::True) => x,
            (Acceptance::False, _) | (_, Acceptance::False) => Acceptance::False,
            (Acceptance::And(mut a), Acceptance::And(b)) => {
                a.extend(b);
                Acceptance::And(a)
            }
            (Acceptance::And(mut a), x) => {
                a.push(x);
                Acceptance::And(a)
            }
            (x, Acceptance::And(mut b)) => {
                b.insert(0, x);
                Acceptance::And(b)
            }
            (a, b) => Acceptance::And(vec![a, b]),
        }
    }

    /// Disjunction of two conditions.
    pub fn or(self, other: Acceptance) -> Acceptance {
        match (self, other) {
            (Acceptance::False, x) | (x, Acceptance::False) => x,
            (Acceptance::True, _) | (_, Acceptance::True) => Acceptance::True,
            (Acceptance::Or(mut a), Acceptance::Or(b)) => {
                a.extend(b);
                Acceptance::Or(a)
            }
            (Acceptance::Or(mut a), x) => {
                a.push(x);
                Acceptance::Or(a)
            }
            (x, Acceptance::Or(mut b)) => {
                b.insert(0, x);
                Acceptance::Or(b)
            }
            (a, b) => Acceptance::Or(vec![a, b]),
        }
    }

    /// The negated condition (dualized: `Inf ↔ Fin`, `And ↔ Or`).
    pub fn negated(&self) -> Acceptance {
        match self {
            Acceptance::True => Acceptance::False,
            Acceptance::False => Acceptance::True,
            Acceptance::Inf(s) => Acceptance::Fin(s.clone()),
            Acceptance::Fin(s) => Acceptance::Inf(s.clone()),
            Acceptance::And(xs) => Acceptance::Or(xs.iter().map(Acceptance::negated).collect()),
            Acceptance::Or(xs) => Acceptance::And(xs.iter().map(Acceptance::negated).collect()),
        }
    }

    /// Evaluates the condition on a run's infinity set (equivalently, on a
    /// cycle of the automaton).
    pub fn accepts_infinity_set(&self, inf: &BitSet) -> bool {
        match self {
            Acceptance::True => true,
            Acceptance::False => false,
            Acceptance::Inf(s) => inf.intersects(s),
            Acceptance::Fin(s) => inf.is_disjoint(s),
            Acceptance::And(xs) => xs.iter().all(|x| x.accepts_infinity_set(inf)),
            Acceptance::Or(xs) => xs.iter().any(|x| x.accepts_infinity_set(inf)),
        }
    }

    /// All atom sets appearing in the condition, in syntactic order.
    /// These are the "colors" used by the classification procedures.
    pub fn atom_sets(&self) -> Vec<BitSet> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<BitSet>) {
        match self {
            Acceptance::True | Acceptance::False => {}
            Acceptance::Inf(s) | Acceptance::Fin(s) => {
                if !out.contains(s) {
                    out.push(s.clone());
                }
            }
            Acceptance::And(xs) | Acceptance::Or(xs) => {
                for x in xs {
                    x.collect_atoms(out);
                }
            }
        }
    }

    /// Rewrites every atom set through `f` (used when embedding an automaton
    /// into a product or after a state renumbering).
    pub fn map_sets<F: Fn(&BitSet) -> BitSet>(&self, f: &F) -> Acceptance {
        match self {
            Acceptance::True => Acceptance::True,
            Acceptance::False => Acceptance::False,
            Acceptance::Inf(s) => Acceptance::Inf(f(s)),
            Acceptance::Fin(s) => Acceptance::Fin(f(s)),
            Acceptance::And(xs) => Acceptance::And(xs.iter().map(|x| x.map_sets(f)).collect()),
            Acceptance::Or(xs) => Acceptance::Or(xs.iter().map(|x| x.map_sets(f)).collect()),
        }
    }

    /// Converts the condition to disjunctive normal form, where each
    /// disjunct is a [`GeneralizedRabinPair`]: "avoid `fin` entirely and
    /// visit every set of `infs` infinitely often".
    ///
    /// An empty result means the condition is unsatisfiable (`False`); a
    /// single pair with empty `fin` and no `infs` means `True`.
    pub fn dnf(&self) -> Vec<GeneralizedRabinPair> {
        match self {
            Acceptance::True => vec![GeneralizedRabinPair::trivial()],
            Acceptance::False => vec![],
            Acceptance::Inf(s) => vec![GeneralizedRabinPair {
                fin: BitSet::new(),
                infs: vec![s.clone()],
            }],
            Acceptance::Fin(s) => vec![GeneralizedRabinPair {
                fin: s.clone(),
                infs: vec![],
            }],
            Acceptance::Or(xs) => {
                let mut out = Vec::new();
                for x in xs {
                    out.extend(x.dnf());
                }
                out
            }
            Acceptance::And(xs) => {
                let mut acc = vec![GeneralizedRabinPair::trivial()];
                for x in xs {
                    let d = x.dnf();
                    let mut next = Vec::new();
                    for p in &acc {
                        for q in &d {
                            next.push(p.conjoin(q));
                        }
                    }
                    acc = next;
                }
                acc
            }
        }
    }
}

impl fmt::Display for Acceptance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Acceptance::True => write!(f, "t"),
            Acceptance::False => write!(f, "f"),
            Acceptance::Inf(s) => write!(f, "Inf({s:?})"),
            Acceptance::Fin(s) => write!(f, "Fin({s:?})"),
            Acceptance::And(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" & "))
            }
            Acceptance::Or(xs) => {
                let parts: Vec<String> = xs.iter().map(|x| format!("({x})")).collect();
                write!(f, "{}", parts.join(" | "))
            }
        }
    }
}

/// One disjunct of an acceptance DNF: visit no state of `fin`, and visit
/// every set in `infs` infinitely often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralizedRabinPair {
    /// States the run must eventually avoid. (For cycle-based analysis: the
    /// cycle must not intersect this set.)
    pub fin: BitSet,
    /// Sets the run must intersect infinitely often.
    pub infs: Vec<BitSet>,
}

impl GeneralizedRabinPair {
    /// The trivially true pair.
    pub fn trivial() -> Self {
        GeneralizedRabinPair {
            fin: BitSet::new(),
            infs: Vec::new(),
        }
    }

    /// Conjunction of two pairs.
    pub fn conjoin(&self, other: &GeneralizedRabinPair) -> GeneralizedRabinPair {
        let mut infs = self.infs.clone();
        for s in &other.infs {
            if !infs.contains(s) {
                infs.push(s.clone());
            }
        }
        GeneralizedRabinPair {
            fin: self.fin.union(&other.fin),
            infs,
        }
    }

    /// Whether a cycle (set of states) satisfies this pair.
    pub fn accepts_cycle(&self, cycle: &BitSet) -> bool {
        cycle.is_disjoint(&self.fin) && self.infs.iter().all(|s| cycle.intersects(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(xs: &[usize]) -> BitSet {
        xs.iter().copied().collect()
    }

    #[test]
    fn eval_atoms() {
        let inf = Acceptance::inf([1, 2]);
        assert!(inf.accepts_infinity_set(&set(&[2, 5])));
        assert!(!inf.accepts_infinity_set(&set(&[0, 5])));
        let fin = Acceptance::fin([1, 2]);
        assert!(fin.accepts_infinity_set(&set(&[0, 5])));
        assert!(!fin.accepts_infinity_set(&set(&[2])));
        assert!(Acceptance::True.accepts_infinity_set(&set(&[])));
        assert!(!Acceptance::False.accepts_infinity_set(&set(&[0])));
    }

    #[test]
    fn negation_is_complement() {
        let c = Acceptance::inf([0])
            .and(Acceptance::fin([1]))
            .or(Acceptance::inf([2]));
        let n = c.negated();
        for bits in 0u8..8 {
            let inf: BitSet = (0..3).filter(|i| bits & (1 << i) != 0).collect();
            assert_ne!(
                c.accepts_infinity_set(&inf),
                n.accepts_infinity_set(&inf),
                "negation failed on {inf:?}"
            );
        }
    }

    #[test]
    fn and_or_simplify_constants() {
        assert_eq!(
            Acceptance::True.and(Acceptance::inf([0])),
            Acceptance::inf([0])
        );
        assert_eq!(
            Acceptance::False.and(Acceptance::inf([0])),
            Acceptance::False
        );
        assert_eq!(
            Acceptance::False.or(Acceptance::inf([0])),
            Acceptance::inf([0])
        );
        assert_eq!(Acceptance::True.or(Acceptance::inf([0])), Acceptance::True);
    }

    #[test]
    fn dnf_agrees_with_direct_eval() {
        // Streett-like: (Inf{0} | Fin{1}) & (Inf{2} | Fin{0})
        let c = Acceptance::inf([0])
            .or(Acceptance::fin([1]))
            .and(Acceptance::inf([2]).or(Acceptance::fin([0])));
        let dnf = c.dnf();
        for bits in 0u8..8 {
            let inf: BitSet = (0..3).filter(|i| bits & (1 << i) != 0).collect();
            if inf.is_empty() {
                continue; // infinity sets are never empty for real runs
            }
            let direct = c.accepts_infinity_set(&inf);
            let via_dnf = dnf.iter().any(|p| p.accepts_cycle(&inf));
            assert_eq!(direct, via_dnf, "DNF mismatch on {inf:?}");
        }
    }

    #[test]
    fn dnf_of_constants() {
        assert!(Acceptance::False.dnf().is_empty());
        let t = Acceptance::True.dnf();
        assert_eq!(t.len(), 1);
        assert!(t[0].fin.is_empty() && t[0].infs.is_empty());
    }

    #[test]
    fn atom_sets_deduplicated() {
        let c = Acceptance::inf([0]).and(Acceptance::fin([0]).or(Acceptance::inf([1])));
        let atoms = c.atom_sets();
        assert_eq!(atoms.len(), 2);
        assert!(atoms.contains(&set(&[0])) && atoms.contains(&set(&[1])));
    }

    #[test]
    fn map_sets_renumbers() {
        let c = Acceptance::inf([0, 1]).and(Acceptance::fin([2]));
        let shifted = c.map_sets(&|s| s.iter().map(|i| i + 10).collect());
        assert!(shifted.accepts_infinity_set(&set(&[11])));
        assert!(!shifted.accepts_infinity_set(&set(&[1])));
        assert!(!shifted.accepts_infinity_set(&set(&[11, 12])));
    }

    #[test]
    fn parity_min_even_matches_direct_evaluation() {
        // Priorities with a gap (no priority-3 states) and a repeated level.
        let prios: Vec<u32> = vec![2, 0, 1, 4, 2, 1];
        let acc = Acceptance::parity_min_even(&prios);
        for bits in 1u8..64 {
            let inf: BitSet = (0..6).filter(|i| bits & (1 << i) != 0).collect();
            let min = inf.iter().map(|q| prios[q]).min().unwrap();
            assert_eq!(
                acc.accepts_infinity_set(&inf),
                min % 2 == 0,
                "parity chain disagrees on {inf:?} (min priority {min})"
            );
        }
        // Degenerate assignments collapse to the constants.
        assert_eq!(
            Acceptance::parity_min_even(&[0, 0]),
            Acceptance::inf([0, 1])
        );
        assert_eq!(Acceptance::parity_min_even(&[]), Acceptance::False);
    }

    #[test]
    fn display_is_readable() {
        let c = Acceptance::inf([0]).or(Acceptance::fin([1]));
        let s = c.to_string();
        assert!(s.contains("Inf") && s.contains("Fin") && s.contains('|'));
    }
}
