//! Tableau translation of **future** LTL to nondeterministic Büchi
//! automata.
//!
//! This is the classical declarative construction: a state is a set of
//! obligations (subformulas that must hold of the current suffix); reading
//! a symbol decomposes the obligations into "now" checks on the symbol and
//! "next" obligations, branching on disjunctions and on the until/unless
//! expansion laws. A modulo counter over the strong-eventuality subformulas
//! (`U`, `F`) provides the Büchi condition.
//!
//! The translation exists to *cross-validate* the deterministic pipeline
//! (`to_automaton`) on sampled lasso words — the two constructions share no
//! code.

use crate::ast::Formula;
use crate::rewrites;
use hierarchy_automata::alphabet::{Alphabet, Symbol};
use hierarchy_automata::nba::Nba;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Error: the formula contains past operators (the tableau handles pure
/// future LTL; eliminate past first or use the deterministic pipeline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotFutureError {
    /// Display form of the formula.
    pub formula: String,
}

impl fmt::Display for NotFutureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the tableau translation handles future LTL only, got {}",
            self.formula
        )
    }
}

impl std::error::Error for NotFutureError {}

/// Translates a future LTL formula to an equivalent NBA over `alphabet`.
///
/// # Errors
///
/// Returns [`NotFutureError`] if the formula contains past operators.
pub fn translate(alphabet: &Alphabet, formula: &Formula) -> Result<Nba, NotFutureError> {
    if !formula.is_future() {
        return Err(NotFutureError {
            formula: formula.to_string(),
        });
    }
    let f = rewrites::nnf(formula);
    // Index the strong-eventuality subformulas for the acceptance counter.
    let mut eventualities: Vec<Formula> = Vec::new();
    collect_eventualities(&f, &mut eventualities);
    let k = eventualities.len();

    // Obligation sets are canonical BTreeSets of formula strings — formulas
    // are small here, and string keys give a cheap total order.
    type Obligations = BTreeSet<String>;
    let mut formula_of: HashMap<String, Formula> = HashMap::new();
    let intern = |g: &Formula, map: &mut HashMap<String, Formula>| -> String {
        let key = g.to_string();
        map.entry(key.clone()).or_insert_with(|| g.clone());
        key
    };

    // NBA states: (obligations, counter, flag). Built lazily.
    let mut nba = Nba::new(alphabet);
    let mut ids: HashMap<(Obligations, usize, bool), u32> = HashMap::new();
    let mut work: Vec<(Obligations, usize, bool)> = Vec::new();

    let initial: Obligations = [intern(&f, &mut formula_of)].into_iter().collect();
    {
        let key = (initial.clone(), 0usize, false);
        let id = nba.add_state();
        ids.insert(key.clone(), id);
        nba.set_initial(id);
        if k == 0 {
            // No eventualities to discharge: every state is accepting.
            nba.add_accepting(id);
        }
        work.push(key);
    }

    while let Some((obls, counter, _flag)) = work.pop() {
        let from = ids[&(obls.clone(), counter, _flag)];
        for sym in alphabet.symbols() {
            // Decompose all obligations under `sym`; each outcome is a set
            // of next obligations plus the set of deferred eventualities.
            let formulas: Vec<Formula> = obls.iter().map(|s| formula_of[s].clone()).collect();
            let mut outcomes: Vec<(Vec<Formula>, BTreeSet<usize>)> =
                vec![(Vec::new(), BTreeSet::new())];
            let mut ok = true;
            for g in &formulas {
                let mut next_outcomes = Vec::new();
                for (nexts, deferred) in &outcomes {
                    for (extra_next, extra_deferred, feasible) in decompose(g, sym, &eventualities)
                    {
                        if !feasible {
                            continue;
                        }
                        let mut n2 = nexts.clone();
                        n2.extend(extra_next);
                        let mut d2 = deferred.clone();
                        d2.extend(extra_deferred);
                        next_outcomes.push((n2, d2));
                    }
                }
                outcomes = next_outcomes;
                if outcomes.is_empty() {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            for (nexts, deferred) in outcomes {
                let next_obls: Obligations =
                    nexts.iter().map(|g| intern(g, &mut formula_of)).collect();
                // Advance the counter past non-deferred eventualities.
                let (next_counter, next_flag) = if k == 0 {
                    (0, true)
                } else {
                    let mut c = counter;
                    let mut wrapped = false;
                    // Advance while the awaited eventuality is not deferred
                    // on this transition (bounded by one full cycle).
                    for _ in 0..k {
                        if deferred.contains(&c) {
                            break;
                        }
                        c += 1;
                        if c == k {
                            c = 0;
                            wrapped = true;
                        }
                    }
                    (c, wrapped)
                };
                let key = (next_obls.clone(), next_counter, next_flag);
                let to = *ids.entry(key.clone()).or_insert_with(|| {
                    let id = nba.add_state();
                    if next_flag || k == 0 {
                        nba.add_accepting(id);
                    }
                    work.push(key);
                    id
                });
                nba.add_transition(from, sym, to);
            }
        }
    }
    Ok(nba)
}

/// Decomposes one obligation under a symbol. Each element of the result is
/// `(next obligations, deferred eventuality indices, feasible)`.
fn decompose(
    g: &Formula,
    sym: Symbol,
    eventualities: &[Formula],
) -> Vec<(Vec<Formula>, Vec<usize>, bool)> {
    let ev_idx = |g: &Formula| eventualities.iter().position(|e| e == g);
    match g {
        Formula::True => vec![(vec![], vec![], true)],
        Formula::False => vec![(vec![], vec![], false)],
        Formula::Atom(_, set) => vec![(vec![], vec![], set.contains(sym))],
        Formula::Not(x) => match x.as_ref() {
            Formula::Atom(_, set) => vec![(vec![], vec![], !set.contains(sym))],
            _ => unreachable!("input is in negation normal form"),
        },
        Formula::And(x, y) => {
            let mut out = Vec::new();
            for (nx, dx, fx) in decompose(x, sym, eventualities) {
                if !fx {
                    continue;
                }
                for (ny, dy, fy) in decompose(y, sym, eventualities) {
                    if !fy {
                        continue;
                    }
                    let mut n = nx.clone();
                    n.extend(ny);
                    let mut d = dx.clone();
                    d.extend(dy);
                    out.push((n, d, true));
                }
            }
            if out.is_empty() {
                vec![(vec![], vec![], false)]
            } else {
                out
            }
        }
        Formula::Or(x, y) => {
            let mut out = decompose(x, sym, eventualities);
            out.extend(decompose(y, sym, eventualities));
            out
        }
        Formula::Next(x) => vec![(vec![x.as_ref().clone()], vec![], true)],
        Formula::Eventually(x) => {
            // ◇x ≡ x ∨ X◇x; the delay branch defers the eventuality.
            let mut out = decompose(x, sym, eventualities);
            let d = ev_idx(g).into_iter().collect::<Vec<_>>();
            out.push((vec![g.clone()], d, true));
            out
        }
        Formula::Always(x) => {
            // □x ≡ x ∧ X□x.
            let mut out = Vec::new();
            for (nx, dx, fx) in decompose(x, sym, eventualities) {
                if !fx {
                    continue;
                }
                let mut n = nx;
                n.push(g.clone());
                out.push((n, dx, true));
            }
            if out.is_empty() {
                vec![(vec![], vec![], false)]
            } else {
                out
            }
        }
        Formula::Until(x, y) => {
            // x U y ≡ y ∨ (x ∧ X(x U y)); the delay branch defers.
            let mut out = decompose(y, sym, eventualities);
            let d: Vec<usize> = ev_idx(g).into_iter().collect();
            for (nx, dx, fx) in decompose(x, sym, eventualities) {
                if !fx {
                    continue;
                }
                let mut n = nx;
                n.push(g.clone());
                let mut dd = dx;
                dd.extend(d.iter().copied());
                out.push((n, dd, true));
            }
            out
        }
        Formula::WUntil(x, y) => {
            // x W y ≡ y ∨ (x ∧ X(x W y)) — no eventuality.
            let mut out = decompose(y, sym, eventualities);
            for (nx, dx, fx) in decompose(x, sym, eventualities) {
                if !fx {
                    continue;
                }
                let mut n = nx;
                n.push(g.clone());
                out.push((n, dx, true));
            }
            out
        }
        _ => unreachable!("future-only input"),
    }
}

fn collect_eventualities(f: &Formula, out: &mut Vec<Formula>) {
    if matches!(f, Formula::Eventually(_) | Formula::Until(..)) && !out.contains(f) {
        out.push(f.clone());
    }
    for c in f.children() {
        collect_eventualities(c, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::holds;
    use hierarchy_automata::lasso::Lasso;
    use hierarchy_automata::random::random_lasso;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;

    fn letters() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn check(src: &str, seed: u64) {
        let sigma = letters();
        let f = Formula::parse(&sigma, src).unwrap();
        let nba = translate(&sigma, &f).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..250 {
            let w = random_lasso(&mut rng, &sigma, 4, 4);
            assert_eq!(
                holds(&f, &w).unwrap(),
                nba.accepts(&w),
                "{src} disagrees on {}",
                w.display(&sigma)
            );
        }
    }

    #[test]
    fn atoms_and_booleans() {
        check("a", 1);
        check("!a", 2);
        check("a & b", 3);
        check("a | b", 4);
        check("true", 5);
    }

    #[test]
    fn false_is_empty() {
        let sigma = letters();
        let nba = translate(&sigma, &Formula::False).unwrap();
        assert!(nba.is_empty());
    }

    #[test]
    fn modalities() {
        check("F b", 6);
        check("G a", 7);
        check("G F b", 8);
        check("F G a", 9);
        check("X a", 10);
        check("X X b", 11);
    }

    #[test]
    fn untils() {
        check("a U b", 12);
        check("a W b", 13);
        check("(a U b) U a", 14);
        check("G (a -> F b)", 15);
        check("F a & G (a -> b | X b)", 16);
    }

    #[test]
    fn nested_and_negated() {
        check("!(a U b)", 17);
        check("!(G F a)", 18);
        check("G F a -> G F b", 19);
        check("(G a | F b) & (G b | F a)", 20);
    }

    #[test]
    fn rejects_past() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "F (Y a)").unwrap();
        assert!(translate(&sigma, &f).is_err());
    }

    #[test]
    fn agreement_with_deterministic_pipeline() {
        use crate::to_automaton::compile_over;
        let sigma = letters();
        let mut rng = StdRng::seed_from_u64(99);
        for src in ["G (a -> F b)", "F G a", "a U b", "G F a -> G F b"] {
            let f = Formula::parse(&sigma, src).unwrap();
            let nba = translate(&sigma, &f).unwrap();
            let det = compile_over(&sigma, &f).unwrap();
            for _ in 0..200 {
                let w = random_lasso(&mut rng, &sigma, 4, 4);
                assert_eq!(
                    nba.accepts(&w),
                    det.accepts(&w),
                    "{src} pipelines disagree on {}",
                    w.display(&sigma)
                );
            }
        }
        let _ = Lasso::parse(&sigma, "", "a");
    }
}
