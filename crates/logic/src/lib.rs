#![warn(missing_docs)]

//! The **temporal-logic view** of the Manna–Pnueli hierarchy (Section 4 of
//! *A Hierarchy of Temporal Properties*, PODC 1990): linear temporal logic
//! with past operators, its lasso-word semantics, and the correspondence
//! between the paper's formula classes and the semantic hierarchy.
//!
//! The paper's six formula classes, each built from a *past* formula `p`
//! (or a boolean combination):
//!
//! | class             | shape                      |
//! |-------------------|----------------------------|
//! | safety            | `□p`                       |
//! | guarantee         | `◇p`                       |
//! | obligation        | `⋀ᵢ (□pᵢ ∨ ◇qᵢ)`           |
//! | recurrence        | `□◇p`                      |
//! | persistence       | `◇□p`                      |
//! | simple reactivity | `□◇p ∨ ◇□q`                |
//! | reactivity        | `⋀ᵢ (□◇pᵢ ∨ ◇□qᵢ)`         |
//!
//! Provided here:
//!
//! * [`Formula`] — LTL with full past (`Y`/`Z`/`S`/`B`/`O`/`H`) and future
//!   (`X`/`U`/`W`/`F`/`G`) operators over symbol-set atoms, with a parser
//!   ([`Formula::parse`]) and pretty-printer;
//! * [`semantics`] — exact evaluation on lasso words for the
//!   *future-over-past* fragment (the hierarchy's canonical shape, which by
//!   the paper's normal-form theorem is expressively complete);
//! * [`tester`] — the deterministic past testers of \[LPZ85]: a DFA whose
//!   state knows the truth of every tracked past formula at the current
//!   position (the paper's Proposition 5.3 construction);
//! * [`to_automaton`] — compilation of hierarchy formulas to deterministic
//!   ω-automata in the corresponding κ-automaton shape;
//! * [`syntactic`] — the syntactic classifier for the formula grammar,
//!   including the paper's named *κ-equivalent* idioms (conditional
//!   safety/guarantee/persistence, response, exception, fairness);
//! * [`rewrites`] — the paper's equivalences as verified rewrite rules
//!   (e.g. `□(p → ◇q) ≡ □◇(¬p S̃ q)`), used to canonicalize formulas into
//!   the hierarchy grammar;
//! * [`nba`] — a tableau translation of *future* LTL to nondeterministic
//!   Büchi automata, the independent oracle for cross-validation.
//!
//! # Example
//!
//! ```
//! use hierarchy_automata::prelude::*;
//! use hierarchy_logic::{Formula, to_automaton};
//!
//! let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
//! // Response: □(p → ◇q) — a recurrence property.
//! let f = Formula::parse(&sigma, "G (p -> F q)").unwrap();
//! let aut = to_automaton::compile_over(&sigma, &f).unwrap();
//! let c = classify::classify(&aut);
//! assert!(c.is_recurrence && !c.is_obligation);
//! ```

pub mod ast;
pub mod nba;
pub mod parser;
pub mod random_formula;
pub mod rewrites;
pub mod semantics;
pub mod syntactic;
pub mod tester;
pub mod to_automaton;

pub use ast::Formula;
pub use parser::ParseError;
pub use syntactic::SyntacticClass;
