//! Exact lasso-word semantics for the future-over-past fragment.
//!
//! The evaluator supports every formula in which **past operators are only
//! applied to past formulas** (future and boolean operators may be applied
//! to anything). This is the shape of the paper's entire hierarchy — and by
//! the paper's normal-form theorem (every formula is equivalent to a
//! reactivity formula `⋀ᵢ (□◇pᵢ ∨ ◇□qᵢ)` with past `pᵢ, qᵢ`), the fragment
//! is expressively complete.
//!
//! # Algorithm
//!
//! On an ultimately periodic word `u·vω`:
//!
//! 1. All past subformulas are evaluated *forward* using their recurrence
//!    laws (`p S q ≡ q ∨ (p ∧ ⊖(p S q))`, …). Because LTL+Past is
//!    star-free, the vector of past-truths at the loop entry must repeat;
//!    we run until it does, obtaining a pre-period `S` and a period `P`
//!    (a multiple of `|v|`) after which every past truth is periodic.
//! 2. Future subformulas are evaluated *backward* over the window
//!    `[0, S+P)` whose tail `[S, S+P)` wraps around: least fixpoints for
//!    `U`/`F`, greatest fixpoints for `W`/`G`, computed by iterating the
//!    expansion laws around the circle until convergence.

use crate::ast::Formula;
use hierarchy_automata::lasso::Lasso;
use std::collections::HashMap;
use std::fmt;

/// Errors from the lasso evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SemanticsError {
    /// A past operator was applied to a formula containing future
    /// operators; such nesting is outside the supported (and, by the
    /// normal-form theorem, expressively complete) fragment.
    PastOverFuture {
        /// Display form of the offending subformula.
        formula: String,
    },
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::PastOverFuture { formula } => write!(
                f,
                "past operator applied to a future formula: {formula} \
                 (rewrite into the future-over-past normal form first)"
            ),
        }
    }
}

impl std::error::Error for SemanticsError {}

/// Whether `formula` holds on the infinite word denoted by `lasso`
/// (evaluated at position 0, the paper's `σ ⊨ p`).
///
/// # Errors
///
/// Returns [`SemanticsError::PastOverFuture`] for formulas outside the
/// future-over-past fragment.
pub fn holds(formula: &Formula, lasso: &Lasso) -> Result<bool, SemanticsError> {
    Ok(evaluate(formula, lasso)?[0])
}

/// Evaluates `formula` at every position of the lasso, returning the truth
/// values over the window `[0, S+P)`; positions `≥ S+P` repeat the window's
/// tail of length `P`. Mostly useful for tests; most callers want
/// [`holds`].
///
/// # Errors
///
/// Returns [`SemanticsError::PastOverFuture`] for formulas outside the
/// future-over-past fragment.
pub fn evaluate(formula: &Formula, lasso: &Lasso) -> Result<Vec<bool>, SemanticsError> {
    check_fragment(formula)?;
    // Deduplicated post-order list of subformulas.
    let mut order: Vec<&Formula> = Vec::new();
    let mut index: HashMap<&Formula, usize> = HashMap::new();
    postorder(formula, &mut order, &mut index);
    let n = order.len();
    let past_nodes: Vec<usize> = (0..n).filter(|&i| order[i].is_past()).collect();

    // ---- Phase 1: forward evaluation of past nodes with stabilization.
    let spoke = lasso.spoke().len();
    let cycle = lasso.cycle().len();
    // vals[j][i] = truth of subformula i at position j (past nodes only in
    // this phase; other entries stay false for now).
    let mut vals: Vec<Vec<bool>> = Vec::new();
    let mut entry_snapshots: HashMap<Vec<bool>, usize> = HashMap::new();
    let (pre_period, period);
    let mut j = 0usize;
    loop {
        // Snapshot at loop-entry positions: the previous row determines the
        // entire future of the forward recursion.
        if j >= spoke && (j - spoke).is_multiple_of(cycle) && j > 0 {
            let snap: Vec<bool> = past_nodes.iter().map(|&i| vals[j - 1][i]).collect();
            if let Some(&first) = entry_snapshots.get(&snap) {
                pre_period = first;
                period = j - first;
                break;
            }
            entry_snapshots.insert(snap, j);
        }
        assert!(
            j < spoke + cycle * (1 << 22),
            "past evaluation failed to stabilize (formula too large?)"
        );
        let sym = lasso.at(j);
        let mut row = vec![false; n];
        for &i in &past_nodes {
            let value = {
                let prev = |child: &Formula| -> Option<bool> {
                    if j == 0 {
                        None
                    } else {
                        Some(vals[j - 1][index[child]])
                    }
                };
                let cur = |child: &Formula| -> bool { row[index[child]] };
                match order[i] {
                    Formula::True => true,
                    Formula::False => false,
                    Formula::Atom(_, set) => set.contains(sym),
                    Formula::Not(x) => !cur(x),
                    Formula::And(x, y) => cur(x) && cur(y),
                    Formula::Or(x, y) => cur(x) || cur(y),
                    Formula::Prev(x) => prev(x).unwrap_or(false),
                    Formula::WPrev(x) => prev(x).unwrap_or(true),
                    Formula::Since(x, y) => cur(y) || (cur(x) && prev(order[i]).unwrap_or(false)),
                    Formula::WSince(x, y) => cur(y) || (cur(x) && prev(order[i]).unwrap_or(true)),
                    Formula::Once(x) => cur(x) || prev(order[i]).unwrap_or(false),
                    Formula::Historically(x) => cur(x) && prev(order[i]).unwrap_or(true),
                    _ => unreachable!("future node in past phase"),
                }
            };
            row[i] = value;
        }
        vals.push(row);
        j += 1;
    }
    let window = pre_period + period;
    vals.truncate(window);

    // ---- Phase 2: backward evaluation of the remaining nodes.
    let succ = |j: usize| if j + 1 < window { j + 1 } else { pre_period };
    for i in 0..n {
        if order[i].is_past() {
            continue;
        }
        match order[i] {
            Formula::Not(x) => {
                let xi = index[x.as_ref()];
                for row in vals.iter_mut() {
                    row[i] = !row[xi];
                }
            }
            Formula::And(x, y) => {
                let (xi, yi) = (index[x.as_ref()], index[y.as_ref()]);
                for row in vals.iter_mut() {
                    row[i] = row[xi] && row[yi];
                }
            }
            Formula::Or(x, y) => {
                let (xi, yi) = (index[x.as_ref()], index[y.as_ref()]);
                for row in vals.iter_mut() {
                    row[i] = row[xi] || row[yi];
                }
            }
            Formula::Next(x) => {
                let xi = index[x.as_ref()];
                for j in (0..window).rev() {
                    vals[j][i] = vals[succ(j)][xi];
                }
            }
            Formula::Eventually(x) => {
                let xi = index[x.as_ref()];
                fixpoint(&mut vals, i, pre_period, window, false, |row_succ, row| {
                    row[xi] || row_succ
                });
            }
            Formula::Always(x) => {
                let xi = index[x.as_ref()];
                fixpoint(&mut vals, i, pre_period, window, true, |row_succ, row| {
                    row[xi] && row_succ
                });
            }
            Formula::Until(x, y) => {
                let (xi, yi) = (index[x.as_ref()], index[y.as_ref()]);
                fixpoint(&mut vals, i, pre_period, window, false, |row_succ, row| {
                    row[yi] || (row[xi] && row_succ)
                });
            }
            Formula::WUntil(x, y) => {
                let (xi, yi) = (index[x.as_ref()], index[y.as_ref()]);
                fixpoint(&mut vals, i, pre_period, window, true, |row_succ, row| {
                    row[yi] || (row[xi] && row_succ)
                });
            }
            _ => unreachable!("past node handled in phase 1"),
        }
    }

    let top = index[formula];
    Ok((0..window).map(|j| vals[j][top]).collect())
}

/// Iterates a one-step expansion law to its fixpoint over the circular
/// tail, then sweeps the stem backwards once. `init` seeds the circle
/// (false = least fixpoint for strong operators, true = greatest for weak
/// ones).
fn fixpoint<F>(
    vals: &mut [Vec<bool>],
    node: usize,
    pre_period: usize,
    window: usize,
    init: bool,
    step: F,
) where
    F: Fn(bool, &[bool]) -> bool,
{
    for row in vals[pre_period..window].iter_mut() {
        row[node] = init;
    }
    // The circle has window - pre_period positions; each pass propagates
    // information at least one step, so |circle| + 1 passes suffice.
    let circle = window - pre_period;
    for _ in 0..=circle {
        let mut changed = false;
        for j in (pre_period..window).rev() {
            let s = if j + 1 < window { j + 1 } else { pre_period };
            let succ_val = vals[s][node];
            let new = step(succ_val, &vals[j]);
            if new != vals[j][node] {
                vals[j][node] = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for j in (0..pre_period).rev() {
        let succ_val = vals[j + 1][node];
        let new = step(succ_val, &vals[j]);
        vals[j][node] = new;
    }
}

fn postorder<'a>(
    f: &'a Formula,
    order: &mut Vec<&'a Formula>,
    index: &mut HashMap<&'a Formula, usize>,
) {
    if index.contains_key(f) {
        return;
    }
    for c in f.children() {
        postorder(c, order, index);
    }
    index.insert(f, order.len());
    order.push(f);
}

fn check_fragment(f: &Formula) -> Result<(), SemanticsError> {
    let past_op = matches!(
        f,
        Formula::Prev(_)
            | Formula::WPrev(_)
            | Formula::Since(..)
            | Formula::WSince(..)
            | Formula::Once(_)
            | Formula::Historically(_)
    );
    if past_op && f.children().iter().any(|c| !c.is_past()) {
        return Err(SemanticsError::PastOverFuture {
            formula: f.to_string(),
        });
    }
    for c in f.children() {
        check_fragment(c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;

    fn letters() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn holds_on(formula: &str, spoke: &str, cycle: &str) -> bool {
        let sigma = letters();
        let f = Formula::parse(&sigma, formula).unwrap();
        let w = Lasso::parse(&sigma, spoke, cycle).unwrap();
        holds(&f, &w).unwrap()
    }

    #[test]
    fn state_formulas_at_origin() {
        assert!(holds_on("a", "a", "b"));
        assert!(!holds_on("b", "a", "b"));
        assert!(holds_on("a | b", "b", "a"));
        assert!(holds_on("!b", "a", "b"));
    }

    #[test]
    fn future_operators() {
        assert!(holds_on("F b", "aaa", "b"));
        assert!(!holds_on("F b", "", "a"));
        assert!(holds_on("G a", "", "a"));
        assert!(!holds_on("G a", "ab", "a"));
        assert!(holds_on("X b", "ab", "a"));
        assert!(!holds_on("X a", "ab", "a"));
        assert!(holds_on("a U b", "aab", "a"));
        assert!(!holds_on("a U b", "", "a"));
        assert!(holds_on("a W b", "", "a")); // weak: □a suffices
    }

    #[test]
    fn until_weak_vs_strong() {
        // On b-less a^ω: aUb false, aWb true.
        assert!(!holds_on("a U b", "", "a"));
        assert!(holds_on("a W b", "", "a"));
        // When b occurs, both hold.
        assert!(holds_on("a U b", "ab", "a"));
        assert!(holds_on("a W b", "ab", "a"));
        // First letter b: both hold immediately.
        assert!(holds_on("a U b", "b", "a"));
    }

    #[test]
    fn recurrence_persistence_modalities() {
        assert!(holds_on("G F b", "", "ab"));
        assert!(!holds_on("G F b", "bbb", "a"));
        assert!(holds_on("F G a", "bbb", "a"));
        assert!(!holds_on("F G a", "", "ab"));
    }

    #[test]
    fn past_operators_via_future_wrapper() {
        // ◇(b ∧ ⊖a): some b preceded by an a.
        assert!(holds_on("F (b & Y a)", "ab", "a"));
        assert!(holds_on("F (b & Y a)", "", "ab"));
        assert!(!holds_on("F (b & Y a)", "", "b")); // b's never preceded by a
                                                    // first: Z false holds only at position 0.
        assert!(holds_on("first", "a", "b"));
        assert!(!holds_on("X first", "a", "b"));
        // O / H
        assert!(holds_on("F (G (O b))", "ab", "a")); // once b stays true
        assert!(holds_on("G H a", "", "a"));
        assert!(!holds_on("G H a", "ab", "a"));
    }

    #[test]
    fn since_and_wsince() {
        // At position 2 of "a b a(...)": a S b? position 2: a holds, pos 1 b.
        // Check via F(first-anchored): (¬b) S a: "no b since the last a".
        // On (ab)^ω at any b-position: (!b) S a fails (current is b)… use
        // the paper's no-pending-request formula: □◇((¬a) B b) on a word
        // where every a is followed by b.
        assert!(holds_on("G F (!a B b)", "", "ab"));
        // With a request never answered: a^ω after one a, no b ever.
        assert!(!holds_on("G F (!a B b)", "", "a"));
        // Strong since needs the anchor to have happened.
        assert!(holds_on("F (a S b)", "ba", "a"));
        assert!(!holds_on("F (a S b)", "", "a"));
    }

    #[test]
    fn response_equivalence_on_samples() {
        // □(a → ◇b) ≡ □◇(¬a B b) — the paper's response law.
        use hierarchy_automata::random::random_lasso;
        use hierarchy_automata::random::rng::SeedableRng;
        use hierarchy_automata::random::rng::StdRng;
        let sigma = letters();
        let lhs = Formula::parse(&sigma, "G (a -> F b)").unwrap();
        let rhs = Formula::parse(&sigma, "G F (!a B b)").unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let w = random_lasso(&mut rng, &sigma, 5, 4);
            assert_eq!(
                holds(&lhs, &w).unwrap(),
                holds(&rhs, &w).unwrap(),
                "response law fails on {}",
                w.display(&sigma)
            );
        }
    }

    #[test]
    fn past_over_future_rejected() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "Y (F a)").unwrap();
        assert!(matches!(
            holds(&f, &Lasso::parse(&sigma, "", "a").unwrap()),
            Err(SemanticsError::PastOverFuture { .. })
        ));
        let g = Formula::parse(&sigma, "(F a) S b").unwrap();
        assert!(holds(&g, &Lasso::parse(&sigma, "", "a").unwrap()).is_err());
    }

    #[test]
    fn stabilization_beyond_one_period() {
        // Once-operator values keep changing for a while: O b on a^5 b a^ω…
        // and a formula whose past state stabilizes only after the loop has
        // been traversed once.
        assert!(holds_on("F (G (O b))", "aaaaab", "a"));
        assert!(!holds_on("F (O b)", "", "a"));
        // Y-chains need a few steps to stabilize.
        assert!(holds_on("F (Y Y Y a)", "", "ab"));
        assert!(holds_on("G (b -> Y a)", "", "ab"));
        assert!(!holds_on("G (b -> Y a)", "", "abb"));
    }

    #[test]
    fn evaluate_full_window() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "b").unwrap();
        let w = Lasso::parse(&sigma, "a", "ab").unwrap();
        let vals = evaluate(&f, &w).unwrap();
        // Window covers at least spoke + cycle.
        assert!(vals.len() >= 3);
        assert!(!vals[0]); // a
        assert!(!vals[1]); // a
        assert!(vals[2]); // b
    }
}
