//! Syntactic classification of formulas into the hierarchy — the paper's
//! grammar of safety / guarantee / obligation / recurrence / persistence /
//! reactivity formulas, together with the class-combination laws
//! (Section 4's closure results).
//!
//! [`SyntacticClass::of`] classifies a formula *as written* (after
//! canonicalization) — an upper bound on the semantic class. The exact
//! semantic class is computed by compiling to an automaton and running
//! [`hierarchy_automata::classify`]; the two coincide exactly when the
//! formula has no semantic slack (e.g. `□p ∧ ◇false` is syntactically an
//! obligation but semantically `false`).

use crate::ast::Formula;
use crate::rewrites;
use std::fmt;

/// A class of the syntactic hierarchy, ordered by inclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntacticClass {
    /// A past or state formula evaluated at the origin — clopen, hence
    /// both a safety and a guarantee formula.
    PastOrState,
    /// `□p` shapes and their positive combinations.
    Safety,
    /// `◇p` shapes and their positive combinations.
    Guarantee,
    /// Boolean combination of safety and guarantee; the payload is the
    /// conjunctive-normal-form size (the `Obl_k` level).
    Obligation(usize),
    /// `□◇p` shapes and their positive combinations.
    Recurrence,
    /// `◇□p` shapes and their positive combinations.
    Persistence,
    /// Combinations of recurrence and persistence; the payload is the CNF
    /// size (the reactivity level, 1 = simple reactivity).
    Reactivity(usize),
}

impl SyntacticClass {
    /// Classifies a formula syntactically, canonicalizing first. Returns
    /// `None` when the formula cannot be brought into the hierarchy
    /// grammar.
    pub fn of(f: &Formula) -> Option<SyntacticClass> {
        let c = rewrites::canonicalize(f);
        Self::of_canonical(&c)
    }

    /// Classifies an already-canonical formula.
    pub fn of_canonical(f: &Formula) -> Option<SyntacticClass> {
        if f.is_past() {
            return Some(SyntacticClass::PastOrState);
        }
        match f {
            Formula::And(x, y) => Some(Self::of_canonical(x)?.and(Self::of_canonical(y)?)),
            Formula::Or(x, y) => Some(Self::of_canonical(x)?.or(Self::of_canonical(y)?)),
            Formula::Always(x) => match x.as_ref() {
                Formula::Eventually(p) if p.is_past() => Some(SyntacticClass::Recurrence),
                p if p.is_past() => Some(SyntacticClass::Safety),
                _ => None,
            },
            Formula::Eventually(x) => match x.as_ref() {
                Formula::Always(p) if p.is_past() => Some(SyntacticClass::Persistence),
                p if p.is_past() => Some(SyntacticClass::Guarantee),
                _ => None,
            },
            _ => None,
        }
    }

    /// The class of a conjunction, per the paper's closure laws.
    pub fn and(self, other: SyntacticClass) -> SyntacticClass {
        use SyntacticClass::*;
        match (self, other) {
            (PastOrState, x) | (x, PastOrState) => x,
            (Safety, Safety) => Safety,
            (Guarantee, Guarantee) => Guarantee,
            // Safety ∧ guarantee: CNF (□p) ∧ (◇q) = two singleton clauses…
            // but □p ∧ ◇q = (□p ∨ ◇false) ∧ (□false ∨ ◇q): still one
            // clause each — the CNF size is the max needed: here 2 clauses
            // of the simple form; the paper's `Obl_k` counts conjuncts.
            (Safety, Guarantee) | (Guarantee, Safety) => Obligation(2),
            (Obligation(n), Safety | Guarantee) | (Safety | Guarantee, Obligation(n)) => {
                Obligation(n + 1)
            }
            (Obligation(n), Obligation(m)) => Obligation(n + m),
            (Recurrence, Recurrence) => Recurrence,
            (Persistence, Persistence) => Persistence,
            (Recurrence, Safety | Guarantee | Obligation(_))
            | (Safety | Guarantee | Obligation(_), Recurrence) => Recurrence,
            (Persistence, Safety | Guarantee | Obligation(_))
            | (Safety | Guarantee | Obligation(_), Persistence) => Persistence,
            (Recurrence, Persistence) | (Persistence, Recurrence) => Reactivity(2),
            (Reactivity(n), Reactivity(m)) => Reactivity(n + m),
            (Reactivity(n), Recurrence | Persistence)
            | (Recurrence | Persistence, Reactivity(n)) => Reactivity(n + 1),
            (Reactivity(n), _) | (_, Reactivity(n)) => Reactivity(n + 1),
        }
    }

    /// The class of a disjunction, per the paper's closure laws.
    pub fn or(self, other: SyntacticClass) -> SyntacticClass {
        use SyntacticClass::*;
        match (self, other) {
            (PastOrState, x) | (x, PastOrState) => x,
            (Safety, Safety) => Safety,
            (Guarantee, Guarantee) => Guarantee,
            // □p ∨ ◇q is exactly a simple obligation.
            (Safety, Guarantee) | (Guarantee, Safety) => Obligation(1),
            // Disjunction distributes over the CNFs: sizes multiply.
            (Obligation(n), Obligation(m)) => Obligation(n * m),
            (Obligation(n), Safety | Guarantee) | (Safety | Guarantee, Obligation(n)) => {
                Obligation(n)
            }
            (Recurrence, Recurrence) => Recurrence,
            (Persistence, Persistence) => Persistence,
            // Recurrence ∨ guarantee collapses into recurrence (the class
            // is closed under union with lower classes), etc.
            (Recurrence, Safety | Guarantee | Obligation(_))
            | (Safety | Guarantee | Obligation(_), Recurrence) => Recurrence,
            (Persistence, Safety | Guarantee | Obligation(_))
            | (Safety | Guarantee | Obligation(_), Persistence) => Persistence,
            // □◇p ∨ ◇□q is exactly a simple reactivity formula.
            (Recurrence, Persistence) | (Persistence, Recurrence) => Reactivity(1),
            (Reactivity(n), Reactivity(m)) => Reactivity(n * m),
            (Reactivity(n), _) | (_, Reactivity(n)) => Reactivity(n),
        }
    }

    /// Whether this class is contained in `other` in the hierarchy diagram
    /// (Figure 1).
    pub fn is_subclass_of(self, other: SyntacticClass) -> bool {
        use SyntacticClass::*;
        let level = |c: SyntacticClass| -> u8 {
            match c {
                PastOrState => 0,
                Safety | Guarantee => 1,
                Obligation(_) => 2,
                Recurrence | Persistence => 3,
                Reactivity(_) => 4,
            }
        };
        match (self, other) {
            (a, b) if a == b => true,
            (PastOrState, _) => true,
            (Safety, Guarantee) | (Guarantee, Safety) => false,
            (Recurrence, Persistence) | (Persistence, Recurrence) => false,
            (Obligation(n), Obligation(m)) => n <= m,
            (Reactivity(n), Reactivity(m)) => n <= m,
            (Safety | Guarantee, Obligation(_)) => true,
            (a, Recurrence) | (a, Persistence) => level(a) <= 2,
            (_, Reactivity(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for SyntacticClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyntacticClass::PastOrState => write!(f, "state/past (clopen)"),
            SyntacticClass::Safety => write!(f, "safety"),
            SyntacticClass::Guarantee => write!(f, "guarantee"),
            SyntacticClass::Obligation(n) => write!(f, "obligation (Obl_{n})"),
            SyntacticClass::Recurrence => write!(f, "recurrence"),
            SyntacticClass::Persistence => write!(f, "persistence"),
            SyntacticClass::Reactivity(1) => write!(f, "simple reactivity"),
            SyntacticClass::Reactivity(n) => write!(f, "reactivity (level {n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;

    fn letters() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn class_of(src: &str) -> SyntacticClass {
        let sigma = letters();
        SyntacticClass::of(&Formula::parse(&sigma, src).unwrap()).unwrap()
    }

    #[test]
    fn basic_shapes() {
        assert_eq!(class_of("G a"), SyntacticClass::Safety);
        assert_eq!(class_of("F a"), SyntacticClass::Guarantee);
        assert_eq!(class_of("G F a"), SyntacticClass::Recurrence);
        assert_eq!(class_of("F G a"), SyntacticClass::Persistence);
        assert_eq!(class_of("a"), SyntacticClass::PastOrState);
        assert_eq!(class_of("G a | F b"), SyntacticClass::Obligation(1));
        assert_eq!(class_of("G F a | F G b"), SyntacticClass::Reactivity(1));
    }

    #[test]
    fn paper_idioms_classify() {
        // Response is recurrence-equivalent.
        assert_eq!(class_of("G (a -> F b)"), SyntacticClass::Recurrence);
        // Conditional safety is safety-equivalent.
        assert_eq!(class_of("a -> G b"), SyntacticClass::Safety);
        // Strong fairness is simple reactivity.
        assert_eq!(class_of("G F a -> G F b"), SyntacticClass::Reactivity(1));
        // Conditional persistence.
        assert_eq!(class_of("G (a -> F G b)"), SyntacticClass::Persistence);
        // Total correctness / guarantee.
        assert_eq!(class_of("a -> F b"), SyntacticClass::Guarantee);
        // Exception handling: ◇p → ◇(q ∧ ⟐p) is an obligation.
        assert!(matches!(
            class_of("F a -> F (b & O a)"),
            SyntacticClass::Obligation(_)
        ));
    }

    #[test]
    fn conjunction_laws() {
        assert_eq!(class_of("G a & G b"), SyntacticClass::Safety);
        assert_eq!(class_of("F a & F b"), SyntacticClass::Guarantee);
        assert_eq!(class_of("G F a & G F b"), SyntacticClass::Recurrence);
        assert_eq!(class_of("F G a & F G b"), SyntacticClass::Persistence);
        assert_eq!(
            class_of("(G F a | F G b) & (G F b | F G a)"),
            SyntacticClass::Reactivity(2)
        );
        assert_eq!(
            class_of("(G a | F b) & (G b | F a)"),
            SyntacticClass::Obligation(2)
        );
    }

    #[test]
    fn subclass_relation_matches_figure1() {
        use SyntacticClass::*;
        assert!(Safety.is_subclass_of(Obligation(1)));
        assert!(Guarantee.is_subclass_of(Obligation(1)));
        assert!(Obligation(1).is_subclass_of(Recurrence));
        assert!(Obligation(3).is_subclass_of(Persistence));
        assert!(Recurrence.is_subclass_of(Reactivity(1)));
        assert!(Persistence.is_subclass_of(Reactivity(1)));
        assert!(!Safety.is_subclass_of(Guarantee));
        assert!(!Recurrence.is_subclass_of(Persistence));
        assert!(!Recurrence.is_subclass_of(Obligation(5)));
        assert!(Obligation(2).is_subclass_of(Obligation(3)));
        assert!(!Obligation(3).is_subclass_of(Obligation(2)));
        assert!(Reactivity(1).is_subclass_of(Reactivity(2)));
        assert!(PastOrState.is_subclass_of(Safety));
        assert!(PastOrState.is_subclass_of(Guarantee));
    }

    #[test]
    fn untranslatable_returns_none() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "G ((F a) U (G b))").unwrap();
        assert_eq!(SyntacticClass::of(&f), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(SyntacticClass::Safety.to_string(), "safety");
        assert_eq!(
            SyntacticClass::Obligation(2).to_string(),
            "obligation (Obl_2)"
        );
        assert_eq!(
            SyntacticClass::Reactivity(1).to_string(),
            "simple reactivity"
        );
    }
}
