//! A recursive-descent parser for temporal formulas.
//!
//! Grammar (loosest binding first):
//!
//! ```text
//! formula ::= iff
//! iff     ::= implies ('<->' implies)*
//! implies ::= or ('->' implies)?            // right associative
//! or      ::= and ('|' and)*
//! and     ::= binary ('&' binary)*
//! binary  ::= unary (('U'|'W'|'S'|'B') unary)*   // left associative
//! unary   ::= ('!'|'X'|'F'|'G'|'Y'|'Z'|'O'|'H')* primary
//! primary ::= 'true' | 'false' | 'first' | ident | '(' formula ')'
//! ```
//!
//! Identifiers name propositions (valuation alphabets) or letters (plain
//! alphabets). The single-letter operator names `U W S B X F G Y Z O H` are
//! reserved; `first` denotes the paper's initial-position formula `¬⊖T`.

use crate::ast::Formula;
use hierarchy_automata::alphabet::Alphabet;
use std::fmt;

/// A formula syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Token index where the problem occurred.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "formula error at token {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Not,
    And,
    Or,
    Implies,
    Iff,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '!' | '¬' => {
                out.push(Token::Not);
                i += 1;
            }
            '&' | '∧' => {
                out.push(Token::And);
                i += 1;
                if chars.get(i) == Some(&'&') {
                    i += 1;
                }
            }
            '|' | '∨' => {
                out.push(Token::Or);
                i += 1;
                if chars.get(i) == Some(&'|') {
                    i += 1;
                }
            }
            '-' | '=' => {
                if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Implies);
                    i += 2;
                } else {
                    return Err(ParseError {
                        position: out.len(),
                        message: format!("unexpected character {c:?}"),
                    });
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'-') && chars.get(i + 2) == Some(&'>') {
                    out.push(Token::Iff);
                    i += 3;
                } else {
                    return Err(ParseError {
                        position: out.len(),
                        message: "expected '<->'".to_string(),
                    });
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(ParseError {
                    position: out.len(),
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

/// Parses a formula over the given alphabet.
///
/// # Errors
///
/// Returns a [`ParseError`] on bad syntax or atoms not in the alphabet.
pub fn parse(alphabet: &Alphabet, input: &str) -> Result<Formula, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = P {
        alphabet,
        tokens: &tokens,
        pos: 0,
    };
    let f = p.iff()?;
    if p.pos != tokens.len() {
        return Err(ParseError {
            position: p.pos,
            message: format!("unexpected trailing input: {:?}", tokens[p.pos]),
        });
    }
    Ok(f)
}

struct P<'a> {
    alphabet: &'a Alphabet,
    tokens: &'a [Token],
    pos: usize,
}

const UNARY_OPS: [&str; 8] = ["X", "F", "G", "Y", "Z", "O", "H", "N"];
const BINARY_OPS: [&str; 4] = ["U", "W", "S", "B"];

impl P<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.implies()?;
        while self.peek() == Some(&Token::Iff) {
            self.pos += 1;
            let right = self.implies()?;
            left = left.clone().implies(right.clone()).and(right.implies(left));
        }
        Ok(left)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let left = self.or()?;
        if self.peek() == Some(&Token::Implies) {
            self.pos += 1;
            let right = self.implies()?;
            return Ok(left.implies(right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.and()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            left = left.or(self.and()?);
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.binary()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            left = left.and(self.binary()?);
        }
        Ok(left)
    }

    fn binary(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.unary()?;
        while let Some(Token::Ident(name)) = self.peek() {
            if !BINARY_OPS.contains(&name.as_str()) {
                break;
            }
            let op = name.clone();
            self.pos += 1;
            let right = self.unary()?;
            left = match op.as_str() {
                "U" => left.until(right),
                "W" => left.unless(right),
                "S" => left.since(right),
                "B" => left.wsince(right),
                _ => unreachable!(),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some(Token::Ident(name)) if UNARY_OPS.contains(&name.as_str()) => {
                let op = name.clone();
                self.pos += 1;
                let inner = self.unary()?;
                Ok(match op.as_str() {
                    "X" | "N" => inner.next(),
                    "F" => inner.eventually(),
                    "G" => inner.always(),
                    "Y" => inner.prev(),
                    "Z" => inner.wprev(),
                    "O" => inner.once(),
                    "H" => inner.historically(),
                    _ => unreachable!(),
                })
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.iff()?;
                if self.peek() != Some(&Token::RParen) {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                match name.as_str() {
                    "true" | "T" => Ok(Formula::True),
                    "false" => Ok(Formula::False),
                    "first" => Ok(Formula::first()),
                    _ => Formula::atom(self.alphabet, &name).ok_or_else(|| ParseError {
                        position: self.pos - 1,
                        message: format!(
                            "{name:?} is neither a proposition nor a letter of the alphabet"
                        ),
                    }),
                }
            }
            Some(tok) => Err(self.err(format!("unexpected token {tok:?}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> Alphabet {
        Alphabet::of_propositions(["p", "q"]).unwrap()
    }

    #[test]
    fn parses_basic_ops() {
        let sigma = ap();
        let f = parse(&sigma, "G (p -> F q)").unwrap();
        assert_eq!(f.to_string(), "G (!p | F q)");
        let g = parse(&sigma, "p U q | q S p").unwrap();
        assert_eq!(g.to_string(), "p U q | q S p");
    }

    #[test]
    fn precedence() {
        let sigma = ap();
        // & binds tighter than |, temporal binaries tighter than &.
        let f = parse(&sigma, "p & q | p").unwrap();
        assert_eq!(f.to_string(), "p & q | p");
        let g = parse(&sigma, "p U q & q").unwrap();
        assert_eq!(g.to_string(), "p U q & q");
        assert_eq!(
            parse(&sigma, "(p U q) & q").unwrap(),
            parse(&sigma, "p U q & q").unwrap()
        );
    }

    #[test]
    fn implication_right_assoc() {
        let sigma = ap();
        let f = parse(&sigma, "p -> q -> p").unwrap();
        assert_eq!(f, parse(&sigma, "p -> (q -> p)").unwrap());
    }

    #[test]
    fn unicode_connectives() {
        let sigma = ap();
        assert_eq!(
            parse(&sigma, "¬p ∧ q").unwrap(),
            parse(&sigma, "!p & q").unwrap()
        );
        assert_eq!(
            parse(&sigma, "p && q || p").unwrap(),
            parse(&sigma, "p & q | p").unwrap()
        );
    }

    #[test]
    fn constants_and_first() {
        let sigma = ap();
        assert_eq!(parse(&sigma, "true").unwrap(), Formula::True);
        assert_eq!(parse(&sigma, "false").unwrap(), Formula::False);
        assert_eq!(parse(&sigma, "first").unwrap(), Formula::first());
    }

    #[test]
    fn letter_alphabets() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let f = parse(&sigma, "G F b").unwrap();
        assert_eq!(f.to_string(), "G F b");
    }

    #[test]
    fn errors() {
        let sigma = ap();
        assert!(parse(&sigma, "").is_err());
        assert!(parse(&sigma, "p U").is_err());
        assert!(parse(&sigma, "(p").is_err());
        assert!(parse(&sigma, "zzz").is_err());
        assert!(parse(&sigma, "p q").is_err());
        assert!(parse(&sigma, "p # q").is_err());
        let e = parse(&sigma, "p %").unwrap_err();
        assert!(e.to_string().contains("formula error"));
    }

    #[test]
    fn iff_expands() {
        let sigma = ap();
        let f = parse(&sigma, "p <-> q").unwrap();
        // (p→q) ∧ (q→p)
        assert!(matches!(f, Formula::And(..)));
    }
}
