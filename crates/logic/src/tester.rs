//! Deterministic past testers — the \[LPZ85] construction behind the
//! paper's Proposition 5.3.
//!
//! For any finite set of *past* formulas `p₁, …, p_k`, there is a
//! deterministic automaton whose state after reading a finite word `w`
//! knows, for every `i`, whether `pᵢ` holds at the last position of `w`
//! (the paper's *end-satisfaction* `w ⊨̃ pᵢ`). States are truth assignments
//! to the past-closed set of subformulas; transitions apply the past
//! recurrence laws
//!
//! ```text
//! ⊖φ       now = φ before              (false at the first position)
//! ~⊖φ      likewise                    (true at the first position)
//! φ S ψ    now = ψ ∨ (φ ∧ (φ S ψ) before)
//! φ B ψ    now = ψ ∨ (φ ∧ (φ B ψ) before; true at the first position)
//! ⟐φ       now = φ ∨ ⟐φ before
//! ⊡φ       now = φ ∧ ⊡φ before
//! ```
//!
//! The tester also yields the finitary property `esat(p)` of the paper —
//! the set of finite words end-satisfying `p` — as a [`FinitaryProperty`].

use crate::ast::Formula;
use hierarchy_automata::alphabet::{Alphabet, Symbol};
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::dfa::Dfa;
use hierarchy_automata::StateId;
use hierarchy_lang::FinitaryProperty;
use std::collections::HashMap;

/// A deterministic past tester for one or more tracked past formulas.
///
/// State 0 is the *pre-state* (nothing read yet); every other state is a
/// truth assignment reached after at least one symbol.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
/// use hierarchy_logic::{tester::Tester, Formula};
///
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// // b ∧ ⊖⊡a: "current symbol is b and everything before was a" — the
/// // paper's past formula for the finitary property a*b.
/// let p = Formula::parse(&sigma, "b & Y H a").unwrap();
/// let t = Tester::new(&sigma, &[p]).unwrap();
/// let q = t.run_str("aab").unwrap();
/// assert!(t.truth(q, 0));
/// let q2 = t.run_str("aba").unwrap();
/// assert!(!t.truth(q2, 0));
/// ```
#[derive(Debug, Clone)]
pub struct Tester {
    alphabet: Alphabet,
    /// Past-closed subformula list, children before parents (kept for
    /// debugging/display; truth bits index into this list).
    #[allow(dead_code)]
    nodes: Vec<Formula>,
    /// Indices into `nodes` for the tracked formulas, in input order.
    tracked: Vec<usize>,
    /// Assignment of each state (bit `i` = truth of `nodes[i]`);
    /// `states[0]` is the pre-state and its assignment is meaningless.
    states: Vec<u64>,
    /// Flattened transition table.
    delta: Vec<StateId>,
}

/// Error building a tester.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TesterError {
    /// A tracked formula is not a past formula.
    NotPast {
        /// Display form of the offending formula.
        formula: String,
    },
    /// More than 64 distinct past subformulas.
    TooLarge {
        /// The subformula count.
        nodes: usize,
    },
}

impl std::fmt::Display for TesterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TesterError::NotPast { formula } => {
                write!(f, "tester requires past formulas, got {formula}")
            }
            TesterError::TooLarge { nodes } => {
                write!(
                    f,
                    "tester supports at most 64 past subformulas, got {nodes}"
                )
            }
        }
    }
}

impl std::error::Error for TesterError {}

impl Tester {
    /// Builds the tester for the given past formulas over `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns [`TesterError::NotPast`] if a formula has future operators
    /// and [`TesterError::TooLarge`] beyond 64 distinct past subformulas.
    pub fn new(alphabet: &Alphabet, tracked: &[Formula]) -> Result<Self, TesterError> {
        for f in tracked {
            if !f.is_past() {
                return Err(TesterError::NotPast {
                    formula: f.to_string(),
                });
            }
        }
        // Past-closed postorder node list.
        let mut nodes: Vec<Formula> = Vec::new();
        let mut index: HashMap<Formula, usize> = HashMap::new();
        fn visit(f: &Formula, nodes: &mut Vec<Formula>, index: &mut HashMap<Formula, usize>) {
            if index.contains_key(f) {
                return;
            }
            for c in f.children() {
                visit(c, nodes, index);
            }
            index.insert(f.clone(), nodes.len());
            nodes.push(f.clone());
        }
        for f in tracked {
            visit(f, &mut nodes, &mut index);
        }
        if nodes.len() > 64 {
            return Err(TesterError::TooLarge { nodes: nodes.len() });
        }
        let tracked_idx: Vec<usize> = tracked.iter().map(|f| index[f]).collect();

        // BFS exploration of assignment states.
        let k = alphabet.len();
        let mut states: Vec<u64> = vec![0]; // pre-state placeholder
        let mut state_ids: HashMap<(bool, u64), StateId> = HashMap::new();
        state_ids.insert((true, 0), 0); // (is_pre, assignment)
        let mut delta: Vec<StateId> = vec![StateId::MAX; k];
        let mut frontier: Vec<StateId> = vec![0];
        while let Some(q) = frontier.pop() {
            let is_pre = q == 0;
            let assignment = states[q as usize];
            for sym in alphabet.symbols() {
                let next = step_assignment(&nodes, &index, assignment, is_pre, sym);
                let id = *state_ids.entry((false, next)).or_insert_with(|| {
                    states.push(next);
                    delta.extend(std::iter::repeat_n(StateId::MAX, k));
                    frontier.push((states.len() - 1) as StateId);
                    (states.len() - 1) as StateId
                });
                delta[q as usize * k + sym.index()] = id;
            }
        }
        Ok(Tester {
            alphabet: alphabet.clone(),
            nodes,
            tracked: tracked_idx,
            states,
            delta,
        })
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states, including the pre-state 0.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The pre-state (nothing read yet).
    pub fn initial(&self) -> StateId {
        0
    }

    /// The successor of `q` on `sym`.
    pub fn step(&self, q: StateId, sym: Symbol) -> StateId {
        self.delta[q as usize * self.alphabet.len() + sym.index()]
    }

    /// Runs the tester over a word from the pre-state.
    pub fn run<I: IntoIterator<Item = Symbol>>(&self, word: I) -> StateId {
        word.into_iter().fold(0, |q, sym| self.step(q, sym))
    }

    /// Runs over a string of single-character symbol names; `None` on
    /// unknown characters.
    pub fn run_str(&self, word: &str) -> Option<StateId> {
        let syms: Option<Vec<Symbol>> = word
            .chars()
            .map(|c| self.alphabet.symbol(&c.to_string()))
            .collect();
        Some(self.run(syms?))
    }

    /// Truth of tracked formula `tracked_idx` in state `q`.
    ///
    /// # Panics
    ///
    /// Panics for the pre-state (no position has been read yet) or an
    /// out-of-range index.
    pub fn truth(&self, q: StateId, tracked_idx: usize) -> bool {
        assert_ne!(q, 0, "the pre-state carries no truth values");
        let bit = self.tracked[tracked_idx];
        self.states[q as usize] & (1 << bit) != 0
    }

    /// The set of (non-pre) states in which tracked formula `tracked_idx`
    /// holds.
    pub fn states_where(&self, tracked_idx: usize) -> BitSet {
        let bit = self.tracked[tracked_idx];
        (1..self.states.len())
            .filter(|&q| self.states[q] & (1 << bit) != 0)
            .collect()
    }

    /// The tester as a DFA accepting `esat(p)` for tracked formula
    /// `tracked_idx` — the finite non-empty words that end-satisfy `p`.
    pub fn esat_dfa(&self, tracked_idx: usize) -> Dfa {
        let acc = self.states_where(tracked_idx);
        Dfa::build(
            &self.alphabet,
            self.num_states(),
            0,
            |q, s| self.step(q, s),
            acc.iter().map(|q| q as StateId),
        )
    }
}

/// The paper's `esat(p)`: the finitary property of finite words
/// end-satisfying the past formula `p`.
///
/// # Errors
///
/// Returns a [`TesterError`] if `p` is not past or is too large.
pub fn esat(alphabet: &Alphabet, p: &Formula) -> Result<FinitaryProperty, TesterError> {
    let t = Tester::new(alphabet, std::slice::from_ref(p))?;
    Ok(FinitaryProperty::from_dfa(t.esat_dfa(0)))
}

fn step_assignment(
    nodes: &[Formula],
    index: &HashMap<Formula, usize>,
    old: u64,
    is_pre: bool,
    sym: Symbol,
) -> u64 {
    let mut new = 0u64;
    let old_of = |i: usize| old & (1 << i) != 0;
    for (i, f) in nodes.iter().enumerate() {
        let cur = |child: &Formula| new & (1 << index[child]) != 0;
        let prev = |child: &Formula, at_first: bool| {
            if is_pre {
                at_first
            } else {
                old_of(index[child])
            }
        };
        let prev_self = |at_first: bool| if is_pre { at_first } else { old_of(i) };
        let v = match f {
            Formula::True => true,
            Formula::False => false,
            Formula::Atom(_, set) => set.contains(sym),
            Formula::Not(x) => !cur(x),
            Formula::And(x, y) => cur(x) && cur(y),
            Formula::Or(x, y) => cur(x) || cur(y),
            Formula::Prev(x) => prev(x, false),
            Formula::WPrev(x) => prev(x, true),
            Formula::Since(x, y) => cur(y) || (cur(x) && prev_self(false)),
            Formula::WSince(x, y) => cur(y) || (cur(x) && prev_self(true)),
            Formula::Once(x) => cur(x) || prev_self(false),
            Formula::Historically(x) => cur(x) && prev_self(true),
            _ => unreachable!("non-past node in tester"),
        };
        if v {
            new |= 1 << i;
        }
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics;
    use hierarchy_automata::lasso::Lasso;
    use hierarchy_automata::random::random_lasso;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;

    fn letters() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn tracks_once() {
        let sigma = letters();
        let p = Formula::parse(&sigma, "O b").unwrap();
        let t = Tester::new(&sigma, &[p]).unwrap();
        assert!(!t.truth(t.run_str("aaa").unwrap(), 0));
        assert!(t.truth(t.run_str("aba").unwrap(), 0));
        assert!(t.truth(t.run_str("b").unwrap(), 0));
    }

    #[test]
    fn paper_esat_example() {
        // The paper: the finitary property a*b is represented by the past
        // formula "b holds now and a holds in all the preceding positions"
        // — with *weak* previous so that the single-letter word b (zero
        // preceding positions) qualifies.
        let sigma = letters();
        let p = Formula::parse(&sigma, "b & Z H a").unwrap();
        let phi = esat(&sigma, &p).unwrap();
        let expected = FinitaryProperty::parse(&sigma, "a*b").unwrap();
        assert!(phi.equivalent(&expected));
        // The strong-previous variant drops the word "b": a⁺b.
        let p2 = Formula::parse(&sigma, "b & Y H a").unwrap();
        let phi2 = esat(&sigma, &p2).unwrap();
        assert!(phi2.equivalent(&FinitaryProperty::parse(&sigma, "aa*b").unwrap()));
    }

    #[test]
    fn esat_of_state_formula() {
        // esat(b) = Σ*b.
        let sigma = letters();
        let p = Formula::parse(&sigma, "b").unwrap();
        let phi = esat(&sigma, &p).unwrap();
        assert!(phi.equivalent(&FinitaryProperty::parse(&sigma, ".*b").unwrap()));
    }

    #[test]
    fn rejects_future_formulas() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "F b").unwrap();
        assert!(matches!(
            Tester::new(&sigma, &[f]),
            Err(TesterError::NotPast { .. })
        ));
    }

    #[test]
    fn first_is_position_zero() {
        let sigma = letters();
        let t = Tester::new(&sigma, &[Formula::first()]).unwrap();
        assert!(t.truth(t.run_str("a").unwrap(), 0));
        assert!(!t.truth(t.run_str("ab").unwrap(), 0));
        assert!(!t.truth(t.run_str("ba").unwrap(), 0));
    }

    #[test]
    fn multiple_tracked_formulas() {
        let sigma = letters();
        let p1 = Formula::parse(&sigma, "O a").unwrap();
        let p2 = Formula::parse(&sigma, "H a").unwrap();
        let t = Tester::new(&sigma, &[p1, p2]).unwrap();
        let q = t.run_str("ab").unwrap();
        assert!(t.truth(q, 0)); // some a
        assert!(!t.truth(q, 1)); // not all a
        let q2 = t.run_str("aa").unwrap();
        assert!(t.truth(q2, 0) && t.truth(q2, 1));
    }

    #[test]
    fn agrees_with_lasso_semantics() {
        // For a past formula p and lasso w, the tester state after the
        // first j+1 symbols knows p at position j; cross-check against the
        // direct evaluator on prefixes.
        let sigma = letters();
        let formulas = [
            "b & Y H a",
            "a S b",
            "a B b",
            "Y Y a",
            "O (a & Y b)",
            "H (a | Y b)",
            "Z a",
        ];
        let mut rng = StdRng::seed_from_u64(5);
        for src in formulas {
            let p = Formula::parse(&sigma, src).unwrap();
            let t = Tester::new(&sigma, std::slice::from_ref(&p)).unwrap();
            for _ in 0..40 {
                let w = random_lasso(&mut rng, &sigma, 3, 3);
                let vals = semantics::evaluate(&p, &w).unwrap();
                let mut q = t.initial();
                for (j, expected) in vals.iter().enumerate().take(6) {
                    q = t.step(q, w.at(j));
                    assert_eq!(
                        t.truth(q, 0),
                        *expected,
                        "{src} at position {j} of {}",
                        w.display(&sigma)
                    );
                }
            }
        }
        let _ = Lasso::parse(&sigma, "", "a");
    }
}
