//! The formula syntax tree: LTL with both future and past operators.
//!
//! Atoms are *state formulas* represented by their extension — the set of
//! alphabet symbols on which they hold — exactly as the paper's predicate
//! automata treat state formulas. For a valuation alphabet `2^AP` the atom
//! `p` is the set of valuations containing `p`; for a plain alphabet the
//! atom `a` is the singleton `{a}`.

use hierarchy_automata::alphabet::{Alphabet, SymbolSet};
use std::fmt;
use std::sync::Arc;

/// A temporal formula over symbol-set atoms.
///
/// Sub-trees are reference-counted so formulas can share structure cheaply.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A state formula: holds at a position iff the symbol there belongs to
    /// the set. The name is kept for display.
    Atom(String, SymbolSet),
    /// Negation.
    Not(Arc<Formula>),
    /// Conjunction.
    And(Arc<Formula>, Arc<Formula>),
    /// Disjunction.
    Or(Arc<Formula>, Arc<Formula>),
    /// Next (`○`).
    Next(Arc<Formula>),
    /// Until (`U`, strong).
    Until(Arc<Formula>, Arc<Formula>),
    /// Unless / weak until (`W`): `p W q = □p ∨ (p U q)`.
    WUntil(Arc<Formula>, Arc<Formula>),
    /// Eventually (`◇`).
    Eventually(Arc<Formula>),
    /// Henceforth (`□`).
    Always(Arc<Formula>),
    /// Previous (`⊖`, strong: false at the first position).
    Prev(Arc<Formula>),
    /// Weak previous (`~⊖`: true at the first position).
    WPrev(Arc<Formula>),
    /// Since (`S`, strong).
    Since(Arc<Formula>, Arc<Formula>),
    /// Weak since / back-to (`B`): `p B q = ⊡p ∨ (p S q)`.
    WSince(Arc<Formula>, Arc<Formula>),
    /// Sometimes in the past (`⟐`, once).
    Once(Arc<Formula>),
    /// Always in the past (`⊡`, historically).
    Historically(Arc<Formula>),
}

impl Formula {
    /// An atom for proposition `name` of a valuation alphabet, or for the
    /// letter `name` of a plain alphabet. Returns `None` if `name` names
    /// neither.
    pub fn atom(alphabet: &Alphabet, name: &str) -> Option<Formula> {
        if let Some(idx) = alphabet.propositions().iter().position(|p| p == name) {
            return Some(Formula::Atom(name.to_string(), alphabet.symbols_where(idx)));
        }
        alphabet
            .symbol(name)
            .map(|sym| Formula::Atom(name.to_string(), SymbolSet::of([sym])))
    }

    /// Parses a formula (see [`crate::parser`] for the grammar).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::ParseError`] on bad syntax or unknown atoms.
    pub fn parse(alphabet: &Alphabet, input: &str) -> Result<Formula, crate::ParseError> {
        crate::parser::parse(alphabet, input)
    }

    /// Negation (without simplification; see [`crate::rewrites::nnf`] to
    /// push negations to the atoms).
    #[allow(clippy::should_implement_trait)] // builder-style chaining mirrors the other connectives
    pub fn not(self) -> Formula {
        Formula::Not(Arc::new(self))
    }

    /// Conjunction.
    pub fn and(self, other: Formula) -> Formula {
        Formula::And(Arc::new(self), Arc::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Formula) -> Formula {
        Formula::Or(Arc::new(self), Arc::new(other))
    }

    /// Implication `self → other` (sugar for `¬self ∨ other`).
    pub fn implies(self, other: Formula) -> Formula {
        self.not().or(other)
    }

    /// `◇ self`.
    pub fn eventually(self) -> Formula {
        Formula::Eventually(Arc::new(self))
    }

    /// `□ self`.
    pub fn always(self) -> Formula {
        Formula::Always(Arc::new(self))
    }

    /// `○ self`.
    pub fn next(self) -> Formula {
        Formula::Next(Arc::new(self))
    }

    /// `self U other`.
    pub fn until(self, other: Formula) -> Formula {
        Formula::Until(Arc::new(self), Arc::new(other))
    }

    /// `self W other` (unless).
    pub fn unless(self, other: Formula) -> Formula {
        Formula::WUntil(Arc::new(self), Arc::new(other))
    }

    /// `⊖ self` (previous).
    pub fn prev(self) -> Formula {
        Formula::Prev(Arc::new(self))
    }

    /// Weak previous.
    pub fn wprev(self) -> Formula {
        Formula::WPrev(Arc::new(self))
    }

    /// `self S other` (since).
    pub fn since(self, other: Formula) -> Formula {
        Formula::Since(Arc::new(self), Arc::new(other))
    }

    /// `self B other` (weak since / back-to).
    pub fn wsince(self, other: Formula) -> Formula {
        Formula::WSince(Arc::new(self), Arc::new(other))
    }

    /// `⟐ self` (once).
    pub fn once(self) -> Formula {
        Formula::Once(Arc::new(self))
    }

    /// `⊡ self` (historically).
    pub fn historically(self) -> Formula {
        Formula::Historically(Arc::new(self))
    }

    /// The paper's `first` formula `¬⊖T`, true exactly at position 0.
    pub fn first() -> Formula {
        Formula::WPrev(Arc::new(Formula::False))
    }

    /// Whether the formula contains no temporal operators (a *state
    /// formula* / assertion).
    pub fn is_state(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(..) => true,
            Formula::Not(x) => x.is_state(),
            Formula::And(x, y) | Formula::Or(x, y) => x.is_state() && y.is_state(),
            _ => false,
        }
    }

    /// Whether the formula contains no *future* operators (a past formula;
    /// state formulas qualify).
    pub fn is_past(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(..) => true,
            Formula::Not(x)
            | Formula::Prev(x)
            | Formula::WPrev(x)
            | Formula::Once(x)
            | Formula::Historically(x) => x.is_past(),
            Formula::And(x, y) | Formula::Or(x, y) => x.is_past() && y.is_past(),
            Formula::Since(x, y) | Formula::WSince(x, y) => x.is_past() && y.is_past(),
            Formula::Next(_)
            | Formula::Until(..)
            | Formula::WUntil(..)
            | Formula::Eventually(_)
            | Formula::Always(_) => false,
        }
    }

    /// Whether the formula contains no *past* operators (a future formula).
    pub fn is_future(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(..) => true,
            Formula::Not(x) | Formula::Next(x) | Formula::Eventually(x) | Formula::Always(x) => {
                x.is_future()
            }
            Formula::And(x, y) | Formula::Or(x, y) => x.is_future() && y.is_future(),
            Formula::Until(x, y) | Formula::WUntil(x, y) => x.is_future() && y.is_future(),
            Formula::Prev(_)
            | Formula::WPrev(_)
            | Formula::Since(..)
            | Formula::WSince(..)
            | Formula::Once(_)
            | Formula::Historically(_) => false,
        }
    }

    /// Number of nodes in the syntax tree.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(..) => 1,
            Formula::Not(x)
            | Formula::Next(x)
            | Formula::Eventually(x)
            | Formula::Always(x)
            | Formula::Prev(x)
            | Formula::WPrev(x)
            | Formula::Once(x)
            | Formula::Historically(x) => 1 + x.size(),
            Formula::And(x, y)
            | Formula::Or(x, y)
            | Formula::Until(x, y)
            | Formula::WUntil(x, y)
            | Formula::Since(x, y)
            | Formula::WSince(x, y) => 1 + x.size() + y.size(),
        }
    }

    /// The direct children of the node.
    pub fn children(&self) -> Vec<&Formula> {
        match self {
            Formula::True | Formula::False | Formula::Atom(..) => vec![],
            Formula::Not(x)
            | Formula::Next(x)
            | Formula::Eventually(x)
            | Formula::Always(x)
            | Formula::Prev(x)
            | Formula::WPrev(x)
            | Formula::Once(x)
            | Formula::Historically(x) => vec![x],
            Formula::And(x, y)
            | Formula::Or(x, y)
            | Formula::Until(x, y)
            | Formula::WUntil(x, y)
            | Formula::Since(x, y)
            | Formula::WSince(x, y) => vec![x, y],
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(form: &Formula) -> u8 {
            match form {
                Formula::Or(..) => 1,
                Formula::And(..) => 2,
                Formula::Until(..)
                | Formula::WUntil(..)
                | Formula::Since(..)
                | Formula::WSince(..) => 3,
                _ => 4,
            }
        }
        fn rec(form: &Formula, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
            let p = prec(form);
            if p < min {
                write!(f, "(")?;
            }
            match form {
                Formula::True => write!(f, "true")?,
                Formula::False => write!(f, "false")?,
                Formula::Atom(name, _) => write!(f, "{name}")?,
                Formula::Not(x) => {
                    write!(f, "!")?;
                    rec(x, f, 4)?;
                }
                Formula::And(x, y) => {
                    rec(x, f, 2)?;
                    write!(f, " & ")?;
                    rec(y, f, 3)?;
                }
                Formula::Or(x, y) => {
                    rec(x, f, 1)?;
                    write!(f, " | ")?;
                    rec(y, f, 2)?;
                }
                Formula::Next(x) => {
                    write!(f, "X ")?;
                    rec(x, f, 4)?;
                }
                Formula::Until(x, y) => {
                    rec(x, f, 4)?;
                    write!(f, " U ")?;
                    rec(y, f, 4)?;
                }
                Formula::WUntil(x, y) => {
                    rec(x, f, 4)?;
                    write!(f, " W ")?;
                    rec(y, f, 4)?;
                }
                Formula::Eventually(x) => {
                    write!(f, "F ")?;
                    rec(x, f, 4)?;
                }
                Formula::Always(x) => {
                    write!(f, "G ")?;
                    rec(x, f, 4)?;
                }
                Formula::Prev(x) => {
                    write!(f, "Y ")?;
                    rec(x, f, 4)?;
                }
                Formula::WPrev(x) => {
                    write!(f, "Z ")?;
                    rec(x, f, 4)?;
                }
                Formula::Since(x, y) => {
                    rec(x, f, 4)?;
                    write!(f, " S ")?;
                    rec(y, f, 4)?;
                }
                Formula::WSince(x, y) => {
                    rec(x, f, 4)?;
                    write!(f, " B ")?;
                    rec(y, f, 4)?;
                }
                Formula::Once(x) => {
                    write!(f, "O ")?;
                    rec(x, f, 4)?;
                }
                Formula::Historically(x) => {
                    write!(f, "H ")?;
                    rec(x, f, 4)?;
                }
            }
            if p < min {
                write!(f, ")")?;
            }
            Ok(())
        }
        rec(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ap() -> Alphabet {
        Alphabet::of_propositions(["p", "q"]).unwrap()
    }

    #[test]
    fn atom_resolution() {
        let sigma = ap();
        let p = Formula::atom(&sigma, "p").unwrap();
        match &p {
            Formula::Atom(name, set) => {
                assert_eq!(name, "p");
                assert_eq!(set.len(), 2); // {p}, {p,q}
            }
            _ => panic!("expected atom"),
        }
        assert!(Formula::atom(&sigma, "zzz").is_none());
        let letters = Alphabet::new(["a", "b"]).unwrap();
        let a = Formula::atom(&letters, "a").unwrap();
        match a {
            Formula::Atom(_, set) => assert_eq!(set.len(), 1),
            _ => panic!("expected atom"),
        }
    }

    #[test]
    fn classification_predicates() {
        let sigma = ap();
        let p = Formula::atom(&sigma, "p").unwrap();
        let q = Formula::atom(&sigma, "q").unwrap();
        assert!(p.is_state() && p.is_past() && p.is_future());
        let past = p.clone().since(q.clone());
        assert!(past.is_past() && !past.is_future() && !past.is_state());
        let fut = p.clone().until(q.clone());
        assert!(fut.is_future() && !fut.is_past());
        let mixed = past.clone().eventually();
        assert!(!mixed.is_past() && !mixed.is_future());
        assert!(Formula::first().is_past());
    }

    #[test]
    fn size_and_children() {
        let sigma = ap();
        let p = Formula::atom(&sigma, "p").unwrap();
        let q = Formula::atom(&sigma, "q").unwrap();
        let f = p.clone().implies(q.clone()).always();
        assert_eq!(f.size(), 5); // G(¬p ∨ q): G, ∨, ¬, p, q
        assert_eq!(f.children().len(), 1);
    }

    #[test]
    fn display_readable() {
        let sigma = ap();
        let p = Formula::atom(&sigma, "p").unwrap();
        let q = Formula::atom(&sigma, "q").unwrap();
        let f = p.clone().implies(q.clone().eventually()).always();
        assert_eq!(f.to_string(), "G (!p | F q)");
        let g = p.until(q).not();
        assert_eq!(g.to_string(), "!(p U q)");
    }
}
