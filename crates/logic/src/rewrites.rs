//! The paper's named equivalences as rewrite rules, and the
//! canonicalization pipeline that brings formulas into the hierarchy
//! grammar (boolean combinations of `□p`, `◇p`, `□◇p`, `◇□p` over past
//! `p`, plus past formulas evaluated at the origin).
//!
//! Every rule implements an equivalence stated in Section 4 of the paper:
//!
//! * dualities: `¬□p ≡ ◇¬p`, `¬◇p ≡ □¬p`, `¬□◇p ≡ ◇□¬p`, and the past
//!   dualities (`¬⊖p ≡ ~⊖¬p`, `¬(p S q) ≡ ¬q B (¬p ∧ ¬q)`, …);
//! * conditional safety: `p → □q  ≡  □(⟐(p ∧ first) → q)`;
//! * conditional guarantee: `p → ◇q  ≡  ◇(⟐(first ∧ p) → q)`;
//! * response: `□(p → ◇q)  ≡  □◇(¬p B q)` ("no pending request");
//! * conditional persistence: `□(p → ◇□q)  ≡  ◇□(⟐p → q)`;
//! * reactivity conditional: `□◇r → □◇p  ≡  □◇p ∨ ◇□¬r`;
//! * the modal idempotences `◇◇p ≡ ◇p`, `□□p ≡ □p`, `□◇□◇p ≡ □◇p`, ….
//!
//! `Next` is eliminated by shift-counting: a leaf `Xᵈp` (past `p`) becomes
//! `◇(⊖ᵈfirst ∧ p)` at the origin, while inside a modality the whole body
//! is re-anchored `D` steps later — `◇(body)` becomes
//! `◇(⊖ᴰ⊤ ∧ body[Xᵈp ↦ ⊖^{D−d}p])` — which is sound because `◇`/`□`
//! quantify over all positions.
//!
//! All rules are verified by the test-suite through the independent lasso
//! semantics and the automata view.

use crate::ast::Formula;
use std::sync::Arc;

/// Negation normal form: pushes `¬` down to atoms using the future and
/// past dualities. `→` is already expanded by the parser. The result
/// contains `Not` only directly above atoms.
pub fn nnf(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False | Formula::Atom(..) => f.clone(),
        Formula::And(x, y) => nnf(x).and(nnf(y)),
        Formula::Or(x, y) => nnf(x).or(nnf(y)),
        Formula::Next(x) => nnf(x).next(),
        Formula::Until(x, y) => nnf(x).until(nnf(y)),
        Formula::WUntil(x, y) => nnf(x).unless(nnf(y)),
        Formula::Eventually(x) => nnf(x).eventually(),
        Formula::Always(x) => nnf(x).always(),
        Formula::Prev(x) => nnf(x).prev(),
        Formula::WPrev(x) => nnf(x).wprev(),
        Formula::Since(x, y) => nnf(x).since(nnf(y)),
        Formula::WSince(x, y) => nnf(x).wsince(nnf(y)),
        Formula::Once(x) => nnf(x).once(),
        Formula::Historically(x) => nnf(x).historically(),
        Formula::Not(inner) => nnf_neg(inner),
    }
}

fn nnf_neg(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Atom(..) => f.clone().not(),
        Formula::Not(x) => nnf(x),
        Formula::And(x, y) => nnf_neg(x).or(nnf_neg(y)),
        Formula::Or(x, y) => nnf_neg(x).and(nnf_neg(y)),
        Formula::Next(x) => nnf_neg(x).next(),
        Formula::Eventually(x) => nnf_neg(x).always(),
        Formula::Always(x) => nnf_neg(x).eventually(),
        // ¬(p U q) ≡ ¬q W (¬p ∧ ¬q)
        Formula::Until(x, y) => nnf_neg(y).unless(nnf_neg(x).and(nnf_neg(y))),
        // ¬(p W q) ≡ ¬q U (¬p ∧ ¬q)
        Formula::WUntil(x, y) => nnf_neg(y).until(nnf_neg(x).and(nnf_neg(y))),
        Formula::Prev(x) => nnf_neg(x).wprev(),
        Formula::WPrev(x) => nnf_neg(x).prev(),
        // ¬(p S q) ≡ ¬q B (¬p ∧ ¬q)
        Formula::Since(x, y) => nnf_neg(y).wsince(nnf_neg(x).and(nnf_neg(y))),
        // ¬(p B q) ≡ ¬q S (¬p ∧ ¬q)
        Formula::WSince(x, y) => nnf_neg(y).since(nnf_neg(x).and(nnf_neg(y))),
        Formula::Once(x) => nnf_neg(x).historically(),
        Formula::Historically(x) => nnf_neg(x).once(),
    }
}

/// The paper's *response* law: `□(p → ◇q) ≡ □◇(¬p B q)` — there are
/// infinitely many positions with no pending request.
pub fn response(p: &Formula, q: &Formula) -> Formula {
    nnf(&p.clone().not())
        .wsince(q.clone())
        .eventually()
        .always()
}

/// The paper's *conditional safety* law: `p → □q ≡ □(⟐(p ∧ first) → q)`.
pub fn conditional_safety(p: &Formula, q: &Formula) -> Formula {
    nnf(&p.clone().and(Formula::first()).once().not())
        .or(q.clone())
        .always()
}

/// The paper's *conditional guarantee* law:
/// `p → ◇q ≡ ◇(⟐(first ∧ p) → q)`.
pub fn conditional_guarantee(p: &Formula, q: &Formula) -> Formula {
    nnf(&Formula::first().and(p.clone()).once().not())
        .or(q.clone())
        .eventually()
}

/// The paper's *conditional persistence* law:
/// `□(p → ◇□q) ≡ ◇□(⟐p → q)`.
pub fn conditional_persistence(p: &Formula, q: &Formula) -> Formula {
    nnf(&p.clone().once().not())
        .or(q.clone())
        .always()
        .eventually()
}

/// Canonicalizes into the hierarchy grammar whenever the input fits the
/// paper's idioms; formulas outside the translatable fragment are returned
/// best-effort (use [`is_hierarchy_form`] to detect leftovers).
pub fn canonicalize(f: &Formula) -> Formula {
    materialize_origin(&canon(&nnf(f)))
}

/// Whether a formula is a positive boolean combination of past leaves and
/// `□p` / `◇p` / `□◇p` / `◇□p` with past bodies — the hierarchy grammar.
pub fn is_hierarchy_form(f: &Formula) -> bool {
    if f.is_past() {
        return true;
    }
    match f {
        Formula::And(x, y) | Formula::Or(x, y) => is_hierarchy_form(x) && is_hierarchy_form(y),
        Formula::Always(x) => match x.as_ref() {
            Formula::Eventually(p) => p.is_past(),
            p => p.is_past(),
        },
        Formula::Eventually(x) => match x.as_ref() {
            Formula::Always(p) => p.is_past(),
            p => p.is_past(),
        },
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Canonicalization internals. Intermediate results may contain `Next^d(p)`
// leaves (past `p`) — "p, d positions from now" — which the caller
// re-anchors: modal wrappers via `unshift`, the origin via
// `materialize_origin`.

fn canon(f: &Formula) -> Formula {
    if f.is_past() {
        return f.clone();
    }
    match f {
        Formula::And(x, y) => canon(x).and(canon(y)),
        Formula::Or(x, y) => canon(x).or(canon(y)),
        Formula::Next(x) => match canon(x) {
            // Push X through boolean structure to the leaves.
            Formula::And(a, b) => canon(&Formula::Next(a)).and(canon(&Formula::Next(b))),
            Formula::Or(a, b) => canon(&Formula::Next(a)).or(canon(&Formula::Next(b))),
            // X ◇ ≡ ◇ X and X □ ≡ □ X.
            Formula::Eventually(a) => canon_eventually(&Formula::Next(a.clone()).into_canon()),
            Formula::Always(a) => canon_always(&Formula::Next(a.clone()).into_canon()),
            other => other.next(), // Next^d leaf accumulates
        },
        Formula::Eventually(x) => canon_eventually(&canon(x)),
        Formula::Always(x) => canon_always(&canon(x)),
        Formula::Until(x, y) => {
            let (cx, cy) = (canon(x), canon(y));
            if cx.is_past() && cy.is_past() {
                // p U q ≡ ◇(q ∧ ~⊖⊡p): some q-position all of whose strict
                // predecessors satisfy p.
                canon_eventually(&cy.and(cx.historically().wprev()))
            } else {
                cx.until(cy)
            }
        }
        Formula::WUntil(x, y) => {
            let (cx, cy) = (canon(x), canon(y));
            if cx.is_past() && cy.is_past() {
                // p W q ≡ (p U q) ∨ □p.
                canon_eventually(&cy.clone().and(cx.clone().historically().wprev()))
                    .or(canon_always(&cx))
            } else {
                cx.unless(cy)
            }
        }
        _ => f.clone(),
    }
}

trait IntoCanon {
    fn into_canon(self) -> Formula;
}
impl IntoCanon for Formula {
    fn into_canon(self) -> Formula {
        canon(&self)
    }
}

/// Decomposes a boolean combination over past and `Next^d(past)` leaves:
/// returns the maximal shift `D` and the body re-anchored `D` steps later
/// (`Next^d p ↦ ⊖^{D−d} p`), or `None` if other operators occur.
fn unshift(f: &Formula) -> Option<(usize, Formula)> {
    fn max_depth(f: &Formula) -> Option<usize> {
        if f.is_past() {
            return Some(0);
        }
        match f {
            Formula::And(x, y) | Formula::Or(x, y) => Some(max_depth(x)?.max(max_depth(y)?)),
            Formula::Next(x) => Some(1 + max_depth(x)?),
            _ => None,
        }
    }
    fn reanchor(f: &Formula, behind: usize) -> Formula {
        // `behind` = how many ⊖ to apply to a depth-0 leaf here.
        if f.is_past() {
            let mut out = f.clone();
            for _ in 0..behind {
                out = out.prev();
            }
            return out;
        }
        match f {
            Formula::And(x, y) => reanchor(x, behind).and(reanchor(y, behind)),
            Formula::Or(x, y) => reanchor(x, behind).or(reanchor(y, behind)),
            Formula::Next(x) => reanchor(x, behind - 1),
            _ => unreachable!("checked by max_depth"),
        }
    }
    let d = max_depth(f)?;
    Some((d, reanchor(f, d)))
}

/// `⊖ᵈ⊤` — true exactly at positions `≥ d`.
fn at_least(d: usize) -> Formula {
    let mut out = Formula::True;
    for _ in 0..d {
        out = out.prev();
    }
    out
}

/// `⊖ᵈ first` — true exactly at position `d`.
fn exactly(d: usize) -> Formula {
    let mut out = Formula::first();
    for _ in 0..d {
        out = out.prev();
    }
    out
}

fn canon_eventually(x: &Formula) -> Formula {
    if let Some((d, body)) = unshift(x) {
        let body = if d == 0 { body } else { at_least(d).and(body) };
        return body.eventually();
    }
    match x {
        // ◇◇p ≡ ◇p; ◇(◇□p) ≡ ◇□p; ◇□◇p ≡ □◇p.
        Formula::Eventually(inner) => canon_eventually(inner),
        Formula::Always(inner) => match inner.as_ref() {
            Formula::Eventually(deep) if deep.is_past() => {
                Formula::Always(Arc::new(Formula::Eventually(deep.clone())))
            }
            _ => match unshift(inner) {
                // ◇□(shifted body): the existential start position absorbs
                // the re-anchoring, and the ⊖ᴰ⊤ guard is eventually always
                // true, so conjoining it is harmless.
                Some((d, body)) => {
                    let body = if d == 0 { body } else { at_least(d).and(body) };
                    body.always().eventually()
                }
                None => x.clone().eventually(),
            },
        },
        // ◇(p ∨ q) ≡ ◇p ∨ ◇q.
        Formula::Or(a, b) => canon_eventually(a).or(canon_eventually(b)),
        _ => x.clone().eventually(),
    }
}

fn canon_always(x: &Formula) -> Formula {
    if let Some((d, body)) = unshift(x) {
        let body = if d == 0 {
            body
        } else {
            // Positions < d are vacuous: ⊖ᵈ⊤ → body.
            nnf(&at_least(d).not()).or(body)
        };
        return body.always();
    }
    match x {
        // □□p ≡ □p; □(□◇p) ≡ □◇p; □◇□p ≡ ◇□p.
        Formula::Always(inner) => canon_always(inner),
        Formula::Eventually(inner) => match inner.as_ref() {
            Formula::Always(deep) if deep.is_past() => {
                Formula::Eventually(Arc::new(Formula::Always(deep.clone())))
            }
            _ => match unshift(inner) {
                // □◇(shifted body): the guard is eventually always true.
                Some((d, body)) => {
                    let body = if d == 0 { body } else { at_least(d).and(body) };
                    body.eventually().always()
                }
                None => x.clone().always(),
            },
        },
        // □(p ∧ q) ≡ □p ∧ □q.
        Formula::And(a, b) => canon_always(a).and(canon_always(b)),
        Formula::Or(a, b) => {
            if let Some(rewritten) = canon_response(a, b).or_else(|| canon_response(b, a)) {
                return rewritten;
            }
            x.clone().always()
        }
        _ => x.clone().always(),
    }
}

/// Handles `□(r ∨ ◇q)` (response) and `□(r ∨ ◇□q)` (conditional
/// persistence) for past `r`.
fn canon_response(r: &Formula, rest: &Formula) -> Option<Formula> {
    if !r.is_past() {
        return None;
    }
    if let Formula::Eventually(q) = rest {
        if q.is_past() {
            // □(r ∨ ◇q) ≡ □◇(r B q).
            return Some(r.clone().wsince(q.as_ref().clone()).eventually().always());
        }
        if let Formula::Always(q2) = q.as_ref() {
            if q2.is_past() {
                // □(r ∨ ◇□q) ≡ ◇□(⟐¬r → q)  (with p = ¬r).
                let not_r = nnf(&r.clone().not());
                return Some(
                    nnf(&not_r.once().not())
                        .or(q2.as_ref().clone())
                        .always()
                        .eventually(),
                );
            }
        }
    }
    None
}

/// Replaces remaining `Next^d(p)` leaves on the boolean spine by their
/// origin form `◇(⊖ᵈfirst ∧ p)` (the spine is evaluated at position 0).
fn materialize_origin(f: &Formula) -> Formula {
    if f.is_past() {
        return f.clone();
    }
    match f {
        Formula::And(x, y) => materialize_origin(x).and(materialize_origin(y)),
        Formula::Or(x, y) => materialize_origin(x).or(materialize_origin(y)),
        Formula::Next(_) => {
            let (d, body) = unshift(f).expect("Next leaves are shifted past formulas");
            exactly(d).and(body).eventually()
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::holds;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_automata::random::random_lasso;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;

    fn letters() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Checks semantic equivalence of two formulas on random lassos.
    fn check_equiv(lhs: &Formula, rhs: &Formula, seed: u64) {
        let sigma = letters();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..300 {
            let w = random_lasso(&mut rng, &sigma, 5, 4);
            assert_eq!(
                holds(lhs, &w).unwrap(),
                holds(rhs, &w).unwrap(),
                "{lhs}  vs  {rhs}  on {}",
                w.display(&sigma)
            );
        }
    }

    #[test]
    fn nnf_pushes_negations() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "!(G (a -> F b))").unwrap();
        let g = nnf(&f);
        fn check(f: &Formula) {
            if let Formula::Not(x) = f {
                assert!(matches!(x.as_ref(), Formula::Atom(..)), "bad NNF: {f}");
            }
            for c in f.children() {
                check(c);
            }
        }
        check(&g);
        check_equiv(&f, &g, 1);
    }

    #[test]
    fn nnf_duality_samples() {
        let sigma = letters();
        for (neg, expect) in [
            ("!(F a)", "G !a"),
            ("!(G a)", "F !a"),
            ("!(X a)", "X !a"),
            ("!(Y a)", "Z !a"),
            ("!(O a)", "H !a"),
        ] {
            let lhs = nnf(&Formula::parse(&sigma, neg).unwrap());
            let rhs = Formula::parse(&sigma, expect).unwrap();
            assert_eq!(lhs, rhs, "{neg}");
        }
        let f = Formula::parse(&sigma, "!(a U b)").unwrap();
        check_equiv(&f, &nnf(&f), 2);
        let g = Formula::parse(&sigma, "!(a S b)").unwrap();
        check_equiv(&g.clone().eventually(), &nnf(&g).eventually(), 3);
    }

    #[test]
    fn response_law() {
        let sigma = letters();
        let p = Formula::parse(&sigma, "a").unwrap();
        let q = Formula::parse(&sigma, "b").unwrap();
        let lhs = Formula::parse(&sigma, "G (a -> F b)").unwrap();
        let rhs = response(&p, &q);
        check_equiv(&lhs, &rhs, 4);
        assert!(is_hierarchy_form(&rhs));
    }

    #[test]
    fn conditional_laws() {
        let sigma = letters();
        let p = Formula::parse(&sigma, "a").unwrap();
        let q = Formula::parse(&sigma, "b | a").unwrap();
        check_equiv(
            &Formula::parse(&sigma, "a -> G (b | a)").unwrap(),
            &conditional_safety(&p, &q),
            5,
        );
        check_equiv(
            &Formula::parse(&sigma, "a -> F (b | a)").unwrap(),
            &conditional_guarantee(&p, &q),
            6,
        );
        check_equiv(
            &Formula::parse(&sigma, "G (a -> F G (b | a))").unwrap(),
            &conditional_persistence(&p, &q),
            7,
        );
        assert!(is_hierarchy_form(&conditional_safety(&p, &q)));
        assert!(is_hierarchy_form(&conditional_guarantee(&p, &q)));
        assert!(is_hierarchy_form(&conditional_persistence(&p, &q)));
    }

    #[test]
    fn canonicalize_paper_idioms() {
        let sigma = letters();
        for src in [
            "G (a -> F b)",   // response → □◇
            "a -> G b",       // ¬a ∨ □b
            "G (a -> F G b)", // conditional persistence
            "G F a",          // already canonical
            "F G (a | b)",    // already canonical
            "!(F a)",         // → □¬a
            "a U b",          // → ◇(b ∧ ~⊖⊡a)
            "a W b",          // → ◇(…) ∨ □a
            "G (a & b)",      // distributes
            "F (a | F b)",    // collapses
        ] {
            let f = Formula::parse(&sigma, src).unwrap();
            let c = canonicalize(&f);
            assert!(is_hierarchy_form(&c), "{src} → {c} not canonical");
            check_equiv(&f, &c, 0xC0FFEE ^ src.len() as u64);
        }
    }

    #[test]
    fn canonicalize_next_shifts() {
        let sigma = letters();
        for src in [
            "X a",           // origin pin
            "X X b",         // depth 2
            "F X a",         // shift under ◇
            "G X a",         // shift under □
            "G F X a",       // absorbed by □◇
            "F G X b",       // absorbed by ◇□
            "X F a",         // = F X a
            "X G a",         // = G X a
            "X (a | X b)",   // mixed depths in one body
            "F (a & X b)",   // shifted conjunction under ◇
            "G (a | X X b)", // shifted disjunction under □
        ] {
            let f = Formula::parse(&sigma, src).unwrap();
            let c = canonicalize(&f);
            assert!(is_hierarchy_form(&c), "{src} → {c} not canonical");
            check_equiv(&f, &c, 0xABCD ^ src.len() as u64);
        }
    }

    #[test]
    fn canonicalize_strong_fairness() {
        let sigma = letters();
        // □◇a → □◇b ≡ ◇□¬a ∨ □◇b.
        let f = Formula::parse(&sigma, "G F a -> G F b").unwrap();
        let c = canonicalize(&f);
        assert!(is_hierarchy_form(&c), "{c}");
        check_equiv(&f, &c, 9);
    }

    #[test]
    fn idempotences() {
        let sigma = letters();
        for (src, canonical) in [
            ("F F a", "F a"),
            ("G G a", "G a"),
            ("G F G F a", "G F a"),
            ("F G F a", "G F a"),
            ("G F G a", "F G a"),
        ] {
            let c = canonicalize(&Formula::parse(&sigma, src).unwrap());
            let expect = Formula::parse(&sigma, canonical).unwrap();
            assert_eq!(c, expect, "{src}");
        }
    }
}
