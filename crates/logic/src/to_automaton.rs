//! Compiling hierarchy formulas to deterministic ω-automata — the paper's
//! Proposition 5.3 ("a property specifiable by a κ-formula is specifiable
//! by a κ-automaton").
//!
//! The input is first [`canonicalized`](crate::rewrites::canonicalize) into
//! a positive boolean combination of past leaves and `□p`/`◇p`/`□◇p`/`◇□p`
//! with past bodies. One deterministic [`Tester`] is built for all the past
//! formulas involved, and each modality contributes its acceptance shape on
//! the tester's transition structure:
//!
//! | node        | tracked past formula | acceptance                      |
//! |-------------|----------------------|---------------------------------|
//! | `□p`        | `⟐¬p` (monotone)     | `Fin(states where ⟐¬p)`         |
//! | `◇p`        | `⟐p`  (monotone)     | `Inf(states where ⟐p)`          |
//! | `□◇p`       | `p`                  | `Inf(states where p)`           |
//! | `◇□p`       | `p`                  | `Fin(states where ¬p)`          |
//! | past `p`    | `⟐(first ∧ p)`       | `Inf(states where ⟐(first∧p))`  |
//!
//! and boolean connectives map to the boolean structure of the acceptance
//! condition.

use crate::ast::Formula;
use crate::rewrites;
use crate::tester::{Tester, TesterError};
use hierarchy_automata::acceptance::Acceptance;
use hierarchy_automata::omega::OmegaAutomaton;
use std::fmt;

/// Errors from the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The formula could not be canonicalized into the hierarchy grammar.
    /// The paper's normal-form theorem guarantees an equivalent reactivity
    /// formula exists, but the constructive translation for arbitrary
    /// future nesting is beyond this library (as it is beyond the paper).
    NotCanonicalizable {
        /// Display form of the canonicalization residue.
        residue: String,
    },
    /// Building the past tester failed.
    Tester(TesterError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NotCanonicalizable { residue } => write!(
                f,
                "formula is outside the canonicalizable hierarchy fragment: {residue}"
            ),
            CompileError::Tester(e) => write!(f, "tester construction failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<TesterError> for CompileError {
    fn from(e: TesterError) -> Self {
        CompileError::Tester(e)
    }
}

/// An acceptance plan: the boolean skeleton with tracked-formula indices at
/// the leaves.
enum Plan {
    True,
    False,
    And(Box<Plan>, Box<Plan>),
    Or(Box<Plan>, Box<Plan>),
    /// `Fin(states where tracked[i])`.
    FinWhere(usize),
    /// `Inf(states where tracked[i])`.
    InfWhere(usize),
    /// `Fin(states where ¬tracked[i])`.
    FinWhereNot(usize),
}

fn plan(f: &Formula, tracked: &mut Vec<Formula>) -> Result<Plan, CompileError> {
    let mut track = |p: Formula| -> usize {
        if let Some(i) = tracked.iter().position(|t| *t == p) {
            i
        } else {
            tracked.push(p);
            tracked.len() - 1
        }
    };
    if f.is_past() {
        // Past formula at the origin: ⟐(first ∧ p) is monotone and true
        // from position 0 on iff p held initially.
        let i = track(Formula::first().and(f.clone()).once());
        return Ok(Plan::InfWhere(i));
    }
    match f {
        Formula::True => Ok(Plan::True),
        Formula::False => Ok(Plan::False),
        Formula::And(x, y) => Ok(Plan::And(
            Box::new(plan(x, tracked)?),
            Box::new(plan(y, tracked)?),
        )),
        Formula::Or(x, y) => Ok(Plan::Or(
            Box::new(plan(x, tracked)?),
            Box::new(plan(y, tracked)?),
        )),
        Formula::Always(x) => match x.as_ref() {
            Formula::Eventually(p) if p.is_past() => Ok(Plan::InfWhere(track(p.as_ref().clone()))),
            p if p.is_past() => {
                // □p: never ⟐¬p.
                let i = track(rewrites::nnf(&p.clone().not()).once());
                Ok(Plan::FinWhere(i))
            }
            _ => Err(CompileError::NotCanonicalizable {
                residue: f.to_string(),
            }),
        },
        Formula::Eventually(x) => match x.as_ref() {
            Formula::Always(p) if p.is_past() => Ok(Plan::FinWhereNot(track(p.as_ref().clone()))),
            p if p.is_past() => {
                // ◇p: eventually ⟐p, which is monotone.
                let i = track(p.clone().once());
                Ok(Plan::InfWhere(i))
            }
            _ => Err(CompileError::NotCanonicalizable {
                residue: f.to_string(),
            }),
        },
        _ => Err(CompileError::NotCanonicalizable {
            residue: f.to_string(),
        }),
    }
}

fn realize(plan: &Plan, tester: &Tester) -> Acceptance {
    match plan {
        Plan::True => Acceptance::True,
        Plan::False => Acceptance::False,
        Plan::And(a, b) => realize(a, tester).and(realize(b, tester)),
        Plan::Or(a, b) => realize(a, tester).or(realize(b, tester)),
        Plan::FinWhere(i) => Acceptance::Fin(tester.states_where(*i)),
        Plan::InfWhere(i) => Acceptance::Inf(tester.states_where(*i)),
        Plan::FinWhereNot(i) => {
            let mut not_states = tester.states_where(*i).complement(tester.num_states());
            // The pre-state carries no truth value and is visited once.
            not_states.remove(0);
            Acceptance::Fin(not_states)
        }
    }
}

/// Compiles a formula over the given alphabet to a deterministic
/// ω-automaton, going through canonicalization. This is the main entry
/// point of the temporal-logic → automata bridge.
///
/// # Errors
///
/// Returns [`CompileError::NotCanonicalizable`] if the formula cannot be
/// brought into the hierarchy grammar, or a tester error for oversized
/// past parts.
pub fn compile_over(
    alphabet: &hierarchy_automata::alphabet::Alphabet,
    formula: &Formula,
) -> Result<OmegaAutomaton, CompileError> {
    // Quotient the tester product by partition refinement: temporal
    // subformulas frequently share tester rows, so the canonical
    // minimization typically shrinks the automaton substantially.
    let tester_aut = compile_raw_over(alphabet, formula)?;
    Ok(hierarchy_automata::minimize::minimize(&tester_aut).quotient)
}

/// Like [`compile_over`], but returns the raw tester product without the
/// final partition-refinement quotient. The tester tracks every past
/// subformula in its state, so distinct states frequently carry the same
/// residual language; this entry point exists for diagnostics and for
/// the `tab_minimize` experiment, which measures exactly how much the
/// quotient collapses the paper's formulas.
pub fn compile_raw_over(
    alphabet: &hierarchy_automata::alphabet::Alphabet,
    formula: &Formula,
) -> Result<OmegaAutomaton, CompileError> {
    let canonical = rewrites::canonicalize(formula);
    let mut tracked: Vec<Formula> = Vec::new();
    let p = plan(&canonical, &mut tracked)?;
    let tester = Tester::new(alphabet, &tracked)?;
    let acceptance = realize(&p, &tester);
    Ok(OmegaAutomaton::build(
        alphabet,
        tester.num_states(),
        tester.initial(),
        |q, s| tester.step(q, s),
        acceptance,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::holds;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_automata::classify;
    use hierarchy_automata::random::random_lasso;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;

    fn letters() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// Compile and cross-check automaton acceptance against the lasso
    /// semantics on random words.
    fn check(src: &str, seed: u64) -> hierarchy_automata::omega::OmegaAutomaton {
        let sigma = letters();
        let f = Formula::parse(&sigma, src).unwrap();
        let aut = compile_over(&sigma, &f).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..300 {
            let w = random_lasso(&mut rng, &sigma, 5, 4);
            assert_eq!(
                holds(&f, &w).unwrap(),
                aut.accepts(&w),
                "{src} disagrees on {}",
                w.display(&sigma)
            );
        }
        aut
    }

    #[test]
    fn compiles_the_four_modalities() {
        let saf = check("G a", 1);
        assert!(classify::is_safety(&saf));
        let gua = check("F b", 2);
        assert!(classify::is_guarantee(&gua));
        let rec = check("G F b", 3);
        let c = classify::classify(&rec);
        assert!(c.is_recurrence && !c.is_persistence);
        let per = check("F G a", 4);
        let c = classify::classify(&per);
        assert!(c.is_persistence && !c.is_recurrence);
    }

    #[test]
    fn compiles_past_bodies() {
        // □(b → ⊖a): every b is preceded by an a — safety with real past.
        let saf = check("G (b -> Y a)", 5);
        assert!(classify::is_safety(&saf));
        // ◇(b ∧ ⊖⊡a): guarantee with past body.
        let gua = check("F (b & Y H a)", 6);
        assert!(classify::is_guarantee(&gua));
    }

    #[test]
    fn compiles_response_and_fairness() {
        let rec = check("G (a -> F b)", 7);
        let c = classify::classify(&rec);
        assert!(c.is_recurrence);
        // Over {a,b} the fairness formula collapses (¬a = b), so use three
        // letters for a strict simple-reactivity witness.
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let f = Formula::parse(&sigma, "G F a -> G F b").unwrap();
        let react = compile_over(&sigma, &f).unwrap();
        let c = classify::classify(&react);
        assert!(c.is_simple_reactivity && !c.is_recurrence && !c.is_persistence);
    }

    #[test]
    fn compiles_origin_leaves_and_booleans() {
        let m = check("a -> G b", 9);
        let c = classify::classify(&m);
        // ¬a ∨ □b: an obligation (in fact safety-equivalent by the paper's
        // conditional-safety law).
        assert!(c.is_obligation);
        assert!(c.is_safety, "conditional safety is safety-equivalent");
        check("a & F b", 10);
        check("first & a | F b", 11);
    }

    #[test]
    fn compiles_next_formulas() {
        check("X a", 12);
        check("X X b", 13);
        check("G X a", 14);
        check("F (a & X b)", 15);
        check("G (a -> X b)", 16);
    }

    #[test]
    fn compiles_until_and_unless() {
        let u = check("a U b", 17);
        let c = classify::classify(&u);
        assert!(c.is_guarantee && !c.is_safety);
        // Over {a,b} the unless formula is trivially true (¬a = b), so use
        // three letters for the strict safety witness aWb.
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let f = Formula::parse(&sigma, "a W b").unwrap();
        let w = compile_over(&sigma, &f).unwrap();
        let c = classify::classify(&w);
        // aWb is the safety part of aUb.
        assert!(c.is_safety && !c.is_guarantee);
    }

    #[test]
    fn rejects_untranslatable_nesting() {
        let sigma = letters();
        // □◇ over a genuinely future body with until of futures.
        let f = Formula::parse(&sigma, "G ((F a) U (G b))").unwrap();
        assert!(matches!(
            compile_over(&sigma, &f),
            Err(CompileError::NotCanonicalizable { .. })
        ));
    }

    #[test]
    fn obligation_formula_classifies() {
        // (□a ∨ ◇b) — simple obligation.
        let m = check("G a | F b", 19);
        let c = classify::classify(&m);
        assert!(c.is_obligation);
        assert_eq!(c.obligation_index, Some(1));
    }

    #[test]
    fn reactivity_conjunction_index() {
        // Letters are mutually exclusive, which collapses conjunctions of
        // fairness formulas; independent propositions give the strict
        // level-2 witness ⋀ᵢ (□◇pᵢ ∨ ◇□qᵢ).
        let sigma = Alphabet::of_propositions(["p", "q", "r", "s"]).unwrap();
        let f = Formula::parse(&sigma, "(G F p | F G q) & (G F r | F G s)").unwrap();
        let aut = compile_over(&sigma, &f).unwrap();
        let c = classify::classify(&aut);
        assert_eq!(c.reactivity_index, 2);
        assert!(!c.is_simple_reactivity);
    }

    #[test]
    fn sat_equals_operator_application() {
        // Sat(□p) = A(esat(p)) and friends — the paper's bridge between
        // the logic and linguistic views.
        use crate::tester::esat;
        use hierarchy_lang::operators;
        let sigma = letters();
        let p = Formula::parse(&sigma, "b & Y H a").unwrap();
        let via_logic = compile_over(&sigma, &p.clone().always()).unwrap();
        let via_lang = operators::a(&esat(&sigma, &p).unwrap());
        assert!(via_logic.equivalent(&via_lang), "Sat(□p) = A(esat(p))");
        let via_logic = compile_over(&sigma, &p.clone().eventually()).unwrap();
        let via_lang = operators::e(&esat(&sigma, &p).unwrap());
        assert!(via_logic.equivalent(&via_lang), "Sat(◇p) = E(esat(p))");
        let via_logic = compile_over(&sigma, &p.clone().eventually().always()).unwrap();
        let via_lang = operators::r(&esat(&sigma, &p).unwrap());
        assert!(via_logic.equivalent(&via_lang), "Sat(□◇p) = R(esat(p))");
        let via_logic = compile_over(&sigma, &p.clone().always().eventually()).unwrap();
        let via_lang = operators::p(&esat(&sigma, &p).unwrap());
        assert!(via_logic.equivalent(&via_lang), "Sat(◇□p) = P(esat(p))");
    }
}
