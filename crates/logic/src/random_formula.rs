//! Random formula generation for fuzzing and property-based tests.

use crate::ast::Formula;
use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::random::rng::Rng;

/// Options for [`random_formula`].
#[derive(Debug, Clone, Copy)]
pub struct FormulaShape {
    /// Maximum operator nesting depth.
    pub max_depth: usize,
    /// Allow future operators.
    pub future: bool,
    /// Allow past operators.
    pub past: bool,
}

impl Default for FormulaShape {
    fn default() -> Self {
        FormulaShape {
            max_depth: 4,
            future: true,
            past: true,
        }
    }
}

/// Generates a random formula over the alphabet's atoms (propositions for
/// valuation alphabets, letters otherwise).
pub fn random_formula<R: Rng>(rng: &mut R, alphabet: &Alphabet, shape: FormulaShape) -> Formula {
    gen(rng, alphabet, shape, shape.max_depth)
}

/// Generates a random *past* formula (for tester fuzzing).
pub fn random_past_formula<R: Rng>(rng: &mut R, alphabet: &Alphabet, max_depth: usize) -> Formula {
    gen(
        rng,
        alphabet,
        FormulaShape {
            max_depth,
            future: false,
            past: true,
        },
        max_depth,
    )
}

fn atom_names(alphabet: &Alphabet) -> Vec<String> {
    if alphabet.propositions().is_empty() {
        (0..alphabet.len())
            .map(|i| {
                alphabet
                    .name(hierarchy_automata::alphabet::Symbol(i as u8))
                    .to_string()
            })
            .collect()
    } else {
        alphabet.propositions().to_vec()
    }
}

fn gen<R: Rng>(rng: &mut R, alphabet: &Alphabet, shape: FormulaShape, depth: usize) -> Formula {
    let names = atom_names(alphabet);
    if depth == 0 || rng.gen_bool(0.3) {
        let roll = rng.gen_range(0..names.len() + 1);
        return if roll == names.len() {
            if rng.gen_bool(0.5) {
                Formula::True
            } else {
                Formula::False
            }
        } else {
            Formula::atom(alphabet, &names[roll]).expect("atom exists")
        };
    }
    let mut ops: Vec<u8> = vec![0, 1, 2]; // not, and, or
    if shape.future {
        ops.extend([3, 4, 5, 6, 7]); // X F G U W
    }
    if shape.past {
        ops.extend([8, 9, 10, 11, 12, 13]); // Y Z O H S B
    }
    let sub = |rng: &mut R| gen(rng, alphabet, shape, depth - 1);
    match ops[rng.gen_range(0..ops.len())] {
        0 => sub(rng).not(),
        1 => sub(rng).and(sub(rng)),
        2 => sub(rng).or(sub(rng)),
        3 => sub(rng).next(),
        4 => sub(rng).eventually(),
        5 => sub(rng).always(),
        6 => sub(rng).until(sub(rng)),
        7 => sub(rng).unless(sub(rng)),
        8 => sub(rng).prev(),
        9 => sub(rng).wprev(),
        10 => sub(rng).once(),
        11 => sub(rng).historically(),
        12 => sub(rng).since(sub(rng)),
        13 => sub(rng).wsince(sub(rng)),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;

    #[test]
    fn generated_formulas_respect_shape() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let past_only = random_past_formula(&mut rng, &sigma, 4);
            assert!(past_only.is_past(), "{past_only}");
            let future_only = random_formula(
                &mut rng,
                &sigma,
                FormulaShape {
                    max_depth: 4,
                    future: true,
                    past: false,
                },
            );
            assert!(future_only.is_future(), "{future_only}");
        }
    }

    #[test]
    fn parser_roundtrip() {
        // parse(display(f)) reproduces f for 300 random formulas.
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..300 {
            let f = random_formula(&mut rng, &sigma, FormulaShape::default());
            let printed = f.to_string();
            let reparsed = Formula::parse(&sigma, &printed)
                .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
            assert_eq!(f, reparsed, "roundtrip changed {printed}");
        }
    }

    #[test]
    fn roundtrip_over_propositions() {
        let sigma = Alphabet::of_propositions(["p", "q", "r"]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let f = random_formula(&mut rng, &sigma, FormulaShape::default());
            let reparsed = Formula::parse(&sigma, &f.to_string()).unwrap();
            assert_eq!(f, reparsed);
        }
    }

    #[test]
    fn nnf_fuzz_preserves_semantics() {
        use crate::rewrites::nnf;
        use crate::semantics::holds;
        use hierarchy_automata::random::random_lasso;
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut checked = 0;
        for _ in 0..200 {
            let f = random_formula(&mut rng, &sigma, FormulaShape::default());
            let g = nnf(&f);
            for _ in 0..10 {
                let w = random_lasso(&mut rng, &sigma, 4, 3);
                // Only the future-over-past fragment is evaluable.
                if let (Ok(l), Ok(r)) = (holds(&f, &w), holds(&g, &w)) {
                    assert_eq!(l, r, "nnf changed {f}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "too few evaluable samples: {checked}");
    }
}
