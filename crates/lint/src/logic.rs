//! Formula lints (`LOGIC001`–`LOGIC007`).
//!
//! Syntactic rules (`LOGIC004` constant subformulas, `LOGIC006` redundant
//! past operators) always run. Semantic rules go through
//! [`compile_over`](hierarchy_logic::to_automaton::compile_over): the
//! compiled automaton's [`Analysis`] answers emptiness, universality, and
//! the equivalence queries of the vacuity check, and its classification is
//! compared against the *syntactic* class (the paper's upper bound) for
//! `LOGIC005`. When the formula is outside the hierarchy grammar the
//! semantic rules are skipped and `LOGIC007` says so.
//!
//! The vacuity rule is polarity-aware: every operator of the syntax tree
//! is monotone in each operand except `Not`, so each subformula position
//! has a definite polarity. A positive-polarity occurrence is vacuous when
//! replacing it by `false` leaves the property unchanged (the occurrence
//! never helps); dually with `true` for negative polarity. This is the
//! standard single-occurrence vacuity check of Beer et al., decided here
//! by language equivalence of the compiled automata.

use crate::diagnostic::{Diagnostic, Location};
use crate::registry::{self, RuleInfo};
use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::analysis::Analysis;
use hierarchy_logic::ast::Formula;
use hierarchy_logic::syntactic::SyntacticClass;
use hierarchy_logic::to_automaton::compile_over;
use std::sync::Arc;

fn diag(rule: &RuleInfo, location: Location, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(rule.code, rule.severity, location, message)
}

/// Lints a formula, compiling it to run the semantic rules. Prefer
/// [`lint_formula_ctx`] when an [`Analysis`] of the compiled automaton is
/// already at hand (e.g. after classifying the formula).
pub fn lint_formula(alphabet: &Alphabet, formula: &Formula) -> Vec<Diagnostic> {
    let mut out = syntactic_lints(alphabet, formula);
    match compile_over(alphabet, formula) {
        Ok(aut) => {
            let ctx = Analysis::new(aut);
            out.extend(semantic_lints(alphabet, formula, &ctx));
        }
        Err(e) => out.push(
            diag(
                &registry::LOGIC007,
                Location::Root,
                format!("semantic lints skipped: {e}"),
            )
            .with_suggestion("bring the formula into the hierarchy grammar (canonicalizable form)"),
        ),
    }
    out
}

/// Lints a formula against an existing analysis context.
///
/// `ctx` **must** analyze the automaton compiled from `formula` over
/// `alphabet` (as produced by `compile_over`); the semantic rules read
/// emptiness, universality, and classification from it and only compile
/// the *mutated* formulas of the vacuity check.
pub fn lint_formula_ctx(alphabet: &Alphabet, formula: &Formula, ctx: &Analysis) -> Vec<Diagnostic> {
    let mut out = syntactic_lints(alphabet, formula);
    out.extend(semantic_lints(alphabet, formula, ctx));
    out
}

fn syntactic_lints(alphabet: &Alphabet, formula: &Formula) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen4: Vec<String> = Vec::new();
    let mut seen6: Vec<String> = Vec::new();
    walk(formula, &mut |f| {
        constant_subformula(alphabet, formula, f, &mut seen4, &mut out);
        redundant_past(f, &mut seen6, &mut out);
    });
    out
}

/// Calls `visit` on every node of the tree, parents before children.
fn walk(f: &Formula, visit: &mut impl FnMut(&Formula)) {
    visit(f);
    for c in f.children() {
        walk(c, visit);
    }
}

/// LOGIC004: `true`/`false` in operand position, and atoms whose symbol
/// set is empty or full (constants in disguise). `Z false` is exempt: it
/// is the paper's `first` idiom.
fn constant_subformula(
    alphabet: &Alphabet,
    root: &Formula,
    f: &Formula,
    seen: &mut Vec<String>,
    out: &mut Vec<Diagnostic>,
) {
    let mut report = |frag: &Formula, what: &str, fix: &str| {
        let label = frag.to_string();
        if !seen.contains(&label) {
            seen.push(label.clone());
            out.push(
                diag(
                    &registry::LOGIC004,
                    Location::Fragment(label),
                    format!("{what} in operand position"),
                )
                .with_suggestion(fix),
            );
        }
    };
    let _ = root;
    for c in f.children() {
        let exempt = matches!(f, Formula::WPrev(_)) && matches!(c, Formula::False);
        match c {
            Formula::True | Formula::False if !exempt => report(
                c,
                "a literal constant",
                "fold the constant into the surrounding formula",
            ),
            Formula::Atom(name, set) if set.is_empty() => report(
                c,
                &format!("atom `{name}` denotes no symbol (it is constantly false)"),
                "replace the atom by `false` or fix the proposition set",
            ),
            Formula::Atom(name, set) if set.len() == alphabet.len() => report(
                c,
                &format!("atom `{name}` holds of every symbol (it is constantly true)"),
                "replace the atom by `true` or fix the proposition set",
            ),
            _ => {}
        }
    }
}

/// LOGIC006: collapsing past-operator patterns.
fn redundant_past(f: &Formula, seen: &mut Vec<String>, out: &mut Vec<Diagnostic>) {
    let finding: Option<(&str, String)> = match f {
        Formula::Once(x) if matches!(x.as_ref(), Formula::Once(_)) => {
            Some(("O O p collapses to O p", f.to_string()))
        }
        Formula::Historically(x) if matches!(x.as_ref(), Formula::Historically(_)) => {
            Some(("H H p collapses to H p", f.to_string()))
        }
        Formula::Since(x, _) if matches!(x.as_ref(), Formula::True) => {
            Some(("true S p is exactly O p", f.to_string()))
        }
        Formula::WSince(x, _) if matches!(x.as_ref(), Formula::True) => {
            Some(("true B p is trivially true", f.to_string()))
        }
        _ => None,
    };
    if let Some((law, label)) = finding {
        if !seen.contains(&label) {
            seen.push(label.clone());
            out.push(
                diag(
                    &registry::LOGIC006,
                    Location::Fragment(label),
                    format!("redundant past operator: {law}"),
                )
                .with_suggestion("apply the collapse law"),
            );
        }
    }
}

fn semantic_lints(alphabet: &Alphabet, formula: &Formula, ctx: &Analysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // LOGIC001 / LOGIC002: degenerate languages.
    if ctx.is_empty() {
        out.push(
            diag(
                &registry::LOGIC001,
                Location::Root,
                "the formula is unsatisfiable: no computation fulfils it",
            )
            .with_suggestion(
                "the specification rules out every behaviour; it is almost \
                              certainly wrong",
            ),
        );
        return out; // Everything below is noise on an empty language.
    }
    if ctx.automaton().is_universal() && !matches!(formula, Formula::True) {
        out.push(
            diag(
                &registry::LOGIC002,
                Location::Root,
                "the formula is trivially valid: every computation fulfils it",
            )
            .with_suggestion(
                "the specification constrains nothing; it is almost certainly \
                              incomplete",
            ),
        );
        return out;
    }

    // LOGIC003: vacuous subformula occurrences.
    let mut seen: Vec<String> = Vec::new();
    for (label, mutated) in vacuity_variants(formula) {
        if seen.contains(&label) {
            continue;
        }
        if let Ok(other) = compile_over(alphabet, &mutated) {
            if ctx.equivalent(&other) {
                seen.push(label.clone());
                out.push(
                    diag(
                        &registry::LOGIC003,
                        Location::Fragment(label),
                        "the occurrence is vacuous: replacing it by a constant leaves the \
                         property unchanged",
                    )
                    .with_suggestion(
                        "the subformula never affects the property; simplify or \
                                      fix the specification",
                    ),
                );
            }
        }
    }

    // LOGIC005: written class strictly above the semantic class.
    if let Some(syntactic) = SyntacticClass::of(formula) {
        let written = class_level(syntactic);
        let semantic = semantic_level(ctx);
        if semantic < written {
            out.push(
                diag(
                    &registry::LOGIC005,
                    Location::Root,
                    format!(
                        "written as a {syntactic} formula (hierarchy level {written}) but the \
                         property is semantically at level {semantic} ({})",
                        semantic_level_name(semantic)
                    ),
                )
                .with_suggestion("an equivalent formula exists lower in the hierarchy"),
            );
        }
    }

    out
}

/// Level in the hierarchy diagram: 0 clopen, 1 safety/guarantee,
/// 2 obligation, 3 recurrence/persistence, 4 reactivity.
fn class_level(c: SyntacticClass) -> u8 {
    match c {
        SyntacticClass::PastOrState => 0,
        SyntacticClass::Safety | SyntacticClass::Guarantee => 1,
        SyntacticClass::Obligation(_) => 2,
        SyntacticClass::Recurrence | SyntacticClass::Persistence => 3,
        SyntacticClass::Reactivity(_) => 4,
    }
}

fn semantic_level(ctx: &Analysis) -> u8 {
    let c = ctx.classification();
    if c.is_safety && c.is_guarantee {
        0
    } else if c.is_safety || c.is_guarantee {
        1
    } else if c.is_obligation {
        2
    } else if c.is_recurrence || c.is_persistence {
        3
    } else {
        4
    }
}

fn semantic_level_name(level: u8) -> &'static str {
    match level {
        0 => "clopen",
        1 => "safety or guarantee",
        2 => "obligation",
        3 => "recurrence or persistence",
        _ => "reactivity",
    }
}

/// For every proper subformula position, the whole formula with that
/// position replaced by its polarity constant (`false` for positive
/// occurrences, `true` for negative ones), labelled by the replaced
/// subformula's display form. Constants and the `first` idiom are skipped.
fn vacuity_variants(f: &Formula) -> Vec<(String, Formula)> {
    let mut out = Vec::new();
    collect_variants(f, true, &mut |label, g| out.push((label, g)), &|g| g);
    out
}

type Rebuild<'a> = dyn Fn(Formula) -> Formula + 'a;

fn collect_variants(
    f: &Formula,
    positive: bool,
    emit: &mut impl FnMut(String, Formula),
    rebuild: &Rebuild<'_>,
) {
    let children = f.children();
    for (i, child) in children.iter().enumerate() {
        let child_positive = if matches!(f, Formula::Not(_)) {
            !positive
        } else {
            positive
        };
        let skip = matches!(child, Formula::True | Formula::False)
            || (matches!(f, Formula::WPrev(_)) && matches!(child, Formula::False));
        let rebuild_child = |g: Formula| rebuild(replace_child(f, i, g));
        if !skip {
            let constant = if child_positive {
                Formula::False
            } else {
                Formula::True
            };
            emit(child.to_string(), rebuild_child(constant));
        }
        collect_variants(child, child_positive, emit, &rebuild_child);
    }
}

/// The node `f` with its `i`-th child replaced by `g`.
fn replace_child(f: &Formula, i: usize, g: Formula) -> Formula {
    let g = Arc::new(g);
    let pick = |x: &Arc<Formula>, j: usize| {
        if j == i {
            Arc::clone(&g)
        } else {
            Arc::clone(x)
        }
    };
    match f {
        Formula::True | Formula::False | Formula::Atom(..) => {
            unreachable!("constants and atoms have no children")
        }
        Formula::Not(x) => Formula::Not(pick(x, 0)),
        Formula::Next(x) => Formula::Next(pick(x, 0)),
        Formula::Eventually(x) => Formula::Eventually(pick(x, 0)),
        Formula::Always(x) => Formula::Always(pick(x, 0)),
        Formula::Prev(x) => Formula::Prev(pick(x, 0)),
        Formula::WPrev(x) => Formula::WPrev(pick(x, 0)),
        Formula::Once(x) => Formula::Once(pick(x, 0)),
        Formula::Historically(x) => Formula::Historically(pick(x, 0)),
        Formula::And(x, y) => Formula::And(pick(x, 0), pick(y, 1)),
        Formula::Or(x, y) => Formula::Or(pick(x, 0), pick(y, 1)),
        Formula::Until(x, y) => Formula::Until(pick(x, 0), pick(y, 1)),
        Formula::WUntil(x, y) => Formula::WUntil(pick(x, 0), pick(y, 1)),
        Formula::Since(x, y) => Formula::Since(pick(x, 0), pick(y, 1)),
        Formula::WSince(x, y) => Formula::WSince(pick(x, 0), pick(y, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn letters() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn lint(src: &str) -> Vec<Diagnostic> {
        let sigma = letters();
        lint_formula(&sigma, &Formula::parse(&sigma, src).unwrap())
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn healthy_specifications_are_clean() {
        // Note: over the two-letter alphabet {a, b}, ¬a ≡ b, so seemingly
        // innocent formulas like G a | F b are trivially valid — the zoo
        // here sticks to genuinely contingent properties.
        for src in ["G a", "F b", "G F b", "a U b", "G (b -> Y a)", "G a | G b"] {
            assert!(lint(src).is_empty(), "{src}: {:?}", lint(src));
        }
    }

    #[test]
    fn unsatisfiable_fires_logic001_only() {
        let diags = lint("G a & F b");
        // Over {a,b}, always-a forbids any b: the conjunction is empty.
        assert_eq!(codes(&diags), vec!["LOGIC001"]);
    }

    #[test]
    fn trivially_valid_fires_logic002() {
        // a W b over a two-letter alphabet: ¬a = b, so it always holds.
        let diags = lint("a W b");
        assert_eq!(codes(&diags), vec!["LOGIC002"]);
    }

    #[test]
    fn vacuous_disjunct_fires_logic003() {
        // F (a & b) is unsatisfiable per position (a and b are exclusive
        // letters), so the disjunct never helps.
        let diags = lint("G a | F (a & b)");
        assert!(codes(&diags).contains(&"LOGIC003"), "{diags:?}");
    }

    #[test]
    fn non_vacuous_response_is_silent_for_logic003() {
        // A third letter keeps a and ¬b apart; over {a, b} the response
        // G (a -> F b) collapses to G F b and the antecedent IS vacuous.
        let sigma = Alphabet::new(["a", "b", "c"]).unwrap();
        let f = Formula::parse(&sigma, "G (a -> F b)").unwrap();
        let diags = lint_formula(&sigma, &f);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn two_letter_response_antecedent_is_vacuous() {
        // The collapse described above really is caught by the linter.
        let diags = lint("G (a -> F b)");
        assert!(codes(&diags).contains(&"LOGIC003"), "{diags:?}");
    }

    #[test]
    fn constant_literal_fires_logic004() {
        let diags = lint("G true");
        assert!(codes(&diags).contains(&"LOGIC004"), "{diags:?}");
    }

    #[test]
    fn first_idiom_is_exempt_from_logic004() {
        let diags = lint("first & a | F b");
        assert!(!codes(&diags).contains(&"LOGIC004"), "{diags:?}");
    }

    #[test]
    fn class_mismatch_fires_logic005() {
        // G a is written as safety and is semantically safety: silent.
        assert!(!codes(&lint("G a")).contains(&"LOGIC005"));
        // □◇⟐a ≡ ◇a: once a has occurred, ⟐a holds at every later
        // position — written recurrence (level 3), semantically a
        // guarantee (level 1).
        let diags = lint("G F (O a)");
        assert!(codes(&diags).contains(&"LOGIC005"), "{diags:?}");
    }

    #[test]
    fn redundant_past_fires_logic006() {
        for src in ["F (O O a)", "G (b -> H H a)", "F (true S a)"] {
            assert!(
                codes(&lint(src)).contains(&"LOGIC006"),
                "{src}: {:?}",
                lint(src)
            );
        }
        // A single O and a non-constant S are fine.
        assert!(!codes(&lint("F (O a)")).contains(&"LOGIC006"));
        assert!(!codes(&lint("F (a S b)")).contains(&"LOGIC006"));
    }

    #[test]
    fn outside_grammar_fires_logic007() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "G ((F a) U (G b))").unwrap();
        let diags = lint_formula(&sigma, &f);
        assert_eq!(codes(&diags), vec!["LOGIC007"]);
    }

    #[test]
    fn ctx_variant_matches_fresh_lint() {
        let sigma = letters();
        let f = Formula::parse(&sigma, "G F (first & a)").unwrap();
        let aut = compile_over(&sigma, &f).unwrap();
        let ctx = Analysis::new(aut);
        assert_eq!(lint_formula(&sigma, &f), lint_formula_ctx(&sigma, &f, &ctx));
    }

    #[test]
    fn vacuity_variants_respect_polarity() {
        let sigma = letters();
        // In ¬(a) the atom has negative polarity: the variant replaces it
        // by true, giving ¬true.
        let f = Formula::parse(&sigma, "G !a").unwrap();
        let vs = vacuity_variants(&f);
        assert!(vs
            .iter()
            .any(|(label, g)| label == "a" && g.to_string() == "G !true"));
    }
}
