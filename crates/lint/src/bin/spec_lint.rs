//! `spec-lint` — command-line front end of the lint crate.
//!
//! ```text
//! spec-lint rules [--json]               list the rule catalogue
//! spec-lint formula [OPTS] "<formula>"…  lint one or more temporal formulas
//! spec-lint regex [OPTS] "<pattern>"…    lint one or more regular expressions
//!                                        and the finitary properties they denote
//! spec-lint program [OPTS] [NAME]…       lint built-in programs, both the
//!                                        syntactic system rules and the
//!                                        invariant-backed semantic rules
//!                                        (`fts` is an alias)
//! spec-lint program --list [--json]      enumerate the program catalogue
//!                                        (name, locations, variables,
//!                                        domain sizes, fairness)
//! spec-lint examples [--json] [--jobs N] lint the paper's running examples
//! spec-lint audit [OPTS] "<member>"…     whole-suite audit: subsumption
//!                                        lattice, redundancy, duplicates,
//!                                        conflicts, class overkill, dead
//!                                        propositions (SUITE001–SUITE005);
//!                                        members are formulas or A:/E:/R:/P:
//!                                        operator properties over a regex
//!
//! OPTS:
//!   --letters a,b,c    plain alphabet (default: a,b)
//!   --props p,q        valuation alphabet over propositions
//!   --jobs N           lint artifacts on N worker threads (default:
//!                      HIERARCHY_THREADS, else the machine's cores)
//!   --cap N            audit: state cap for suite-conjunction checks
//!   --json             machine-readable output
//! ```
//!
//! Exit status: 0 when every linted artifact is clean (no errors, no
//! warnings — `Info` findings are advisory), 1 when any error or warning
//! fired, 2 on usage or parse errors.

use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::par;
use hierarchy_fts::absint;
use hierarchy_fts::programs;
use hierarchy_fts::system::Fairness;
use hierarchy_lang::finitary::FinitaryProperty;
use hierarchy_lang::regex::Regex;
use hierarchy_lang::witnesses;
use hierarchy_lint::diagnostic::{is_clean, json_escape, report_to_json};
use hierarchy_lint::registry::CATALOGUE;
use hierarchy_lint::{
    audit_suite, lint_abstract_program, lint_finitary, lint_formula, lint_regex, lint_system,
    AuditOptions, Diagnostic,
};
use hierarchy_logic::ast::Formula;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut rest = args.iter().map(String::as_str);
    match rest.next() {
        Some("rules") => cmd_rules(rest.collect()),
        Some("formula") => cmd_formula(rest.collect()),
        Some("regex") => cmd_regex(rest.collect()),
        Some("program" | "fts") => cmd_program(rest.collect()),
        Some("examples") => cmd_examples(rest.collect()),
        Some("audit") => cmd_audit(rest.collect()),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => usage_error(&format!("unknown subcommand {other:?}")),
    }
}

const USAGE: &str = "\
spec-lint: static analysis for hierarchy specifications

USAGE:
  spec-lint rules [--json]               list the rule catalogue
  spec-lint formula [OPTS] \"<formula>\"…  lint one or more temporal formulas
  spec-lint regex [OPTS] \"<pattern>\"…    lint one or more regular expressions
  spec-lint program [OPTS] [NAME]…       lint built-in programs (syntactic +
                                         invariant-backed semantic rules);
                                         default: the whole catalogue
                                         (peterson, mux-sem, mux-sem-weak,
                                         token-ring, token-ring-stalled,
                                         mux-sem-n4, token-ring-n4,
                                         dining-phil-3); `fts` is an alias
  spec-lint program --list [--json]      enumerate the program catalogue
                                         (name, locations, variables, domain
                                         sizes, fairness) without linting
  spec-lint examples [--json] [--jobs N] lint the paper's running examples
  spec-lint audit [OPTS] \"<member>\"…     audit a whole suite across members:
                                         subsumption lattice, SUITE001-005
                                         (redundancy, duplicates, conflicts,
                                         class overkill, dead propositions).
                                         Members are temporal formulas, or
                                         paper-notation operator properties
                                         A:/E:/R:/P: followed by a regex
                                         (e.g. \"A: a a* b*\")

OPTS:
  --letters a,b,c    plain alphabet (default: a,b)
  --props p,q        valuation alphabet over propositions
  --jobs N           lint artifacts on N worker threads (default:
                     HIERARCHY_THREADS, else the machine's cores)
  --cap N            audit only: state cap for the suite-conjunction checks
                     behind SUITE001/SUITE004 (default 4096, 0 disables)
  --json             machine-readable output

Exit status: 0 clean, 1 findings at warning level or above, 2 usage error.
";

fn usage_error(message: &str) -> ExitCode {
    eprintln!("spec-lint: {message}");
    eprint!("{USAGE}");
    ExitCode::from(2)
}

/// Shared flags of the linting subcommands.
struct Opts {
    json: bool,
    alphabet: Alphabet,
    jobs: usize,
    positional: Vec<String>,
}

fn parse_opts(args: Vec<&str>) -> Result<Opts, String> {
    let mut json = false;
    let mut alphabet: Option<Alphabet> = None;
    let mut jobs: Option<usize> = None;
    let mut positional = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg {
            "--json" => json = true,
            "--jobs" => {
                let value = it.next().ok_or("--jobs needs a thread count")?;
                let n: usize = value
                    .parse()
                    .map_err(|_| format!("--jobs needs a positive integer, got {value:?}"))?;
                if n == 0 {
                    return Err("--jobs needs a positive integer".into());
                }
                jobs = Some(n);
            }
            "--letters" | "--props" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a comma-separated value"))?;
                let names: Vec<&str> = value.split(',').filter(|s| !s.is_empty()).collect();
                let sigma = if arg == "--letters" {
                    Alphabet::new(names)
                } else {
                    Alphabet::of_propositions(names)
                }
                .map_err(|e| e.to_string())?;
                alphabet = Some(sigma);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown option {arg:?}")),
            _ => positional.push(arg.to_string()),
        }
    }
    Ok(Opts {
        json,
        alphabet: match alphabet {
            Some(sigma) => sigma,
            None => Alphabet::new(["a", "b"]).map_err(|e| e.to_string())?,
        },
        jobs: jobs.unwrap_or_else(par::thread_count),
        positional,
    })
}

fn cmd_rules(args: Vec<&str>) -> ExitCode {
    let json = args.contains(&"--json");
    if args.iter().any(|a| *a != "--json") {
        return usage_error("rules takes only --json");
    }
    if json {
        let mut out = String::from("[");
        for (i, r) in CATALOGUE.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"code\": \"{}\", \"name\": \"{}\", \"layer\": \"{}\", \
                 \"severity\": \"{}\", \"summary\": \"{}\"}}",
                r.code,
                r.name,
                r.layer,
                r.severity,
                json_escape(r.summary)
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        for r in CATALOGUE {
            println!(
                "{:<9} {:<8} {:<28} {}",
                r.code,
                r.severity.to_string(),
                r.name,
                r.summary
            );
        }
    }
    ExitCode::SUCCESS
}

fn cmd_formula(args: Vec<&str>) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    if opts.positional.is_empty() {
        return usage_error("formula takes one or more formula arguments");
    }
    // Parse everything up front (fail fast with exit 2), then fan the
    // semantic lints out across the worker pool.
    let mut formulas = Vec::with_capacity(opts.positional.len());
    for src in &opts.positional {
        match Formula::parse(&opts.alphabet, src) {
            Ok(f) => formulas.push(f),
            Err(e) => {
                eprintln!("spec-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let reports = par::map_with(opts.jobs, &formulas, |f| lint_formula(&opts.alphabet, f));
    let suite: Vec<(String, Vec<Diagnostic>)> =
        opts.positional.iter().cloned().zip(reports).collect();
    report(&suite, opts.json)
}

fn cmd_regex(args: Vec<&str>) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    if opts.positional.is_empty() {
        return usage_error("regex takes one or more pattern arguments");
    }
    let mut regexes = Vec::with_capacity(opts.positional.len());
    for pattern in &opts.positional {
        match Regex::parse(&opts.alphabet, pattern) {
            Ok(r) => regexes.push(r),
            Err(e) => {
                eprintln!("spec-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let reports = par::map_with(opts.jobs, &regexes, |regex| {
        let mut diags = lint_regex(regex);
        diags.extend(lint_finitary(&FinitaryProperty::from_regex(
            &opts.alphabet,
            regex,
        )));
        diags
    });
    let suite: Vec<(String, Vec<Diagnostic>)> =
        opts.positional.iter().cloned().zip(reports).collect();
    report(&suite, opts.json)
}

/// The built-in declarative programs `spec-lint program` knows by name
/// (the shared catalogue, so the CLI and the classification daemon agree
/// on names).
fn program_catalogue() -> Vec<(&'static str, absint::Program)> {
    absint::catalogue()
}

/// `spec-lint program --list`: enumerates the catalogue without linting.
fn list_programs(json: bool) -> ExitCode {
    let catalogue = program_catalogue();
    if json {
        let mut out = String::from("[");
        for (i, (name, prog)) in catalogue.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let vars: Vec<String> = prog
                .var_names
                .iter()
                .zip(&prog.domains)
                .map(|(n, d)| format!("{{\"name\": \"{}\", \"domain\": {d}}}", json_escape(n)))
                .collect();
            let fair = |f: Fairness| prog.commands.iter().filter(|c| c.fairness == f).count();
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"locations\": {}, \"variables\": [{}], \
                 \"commands\": {}, \"fairness\": {{\"weak\": {}, \"strong\": {}, \
                 \"none\": {}}}}}",
                json_escape(name),
                prog.num_locations(),
                vars.join(", "),
                prog.commands.len(),
                fair(Fairness::Weak),
                fair(Fairness::Strong),
                fair(Fairness::None),
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        for (name, prog) in &catalogue {
            let vars: Vec<String> = prog
                .var_names
                .iter()
                .zip(&prog.domains)
                .map(|(n, d)| format!("{n}:{d}"))
                .collect();
            let fair: Vec<String> = [Fairness::Weak, Fairness::Strong, Fairness::None]
                .iter()
                .map(|&f| {
                    let k = prog.commands.iter().filter(|c| c.fairness == f).count();
                    let label = match f {
                        Fairness::Weak => "weak",
                        Fairness::Strong => "strong",
                        Fairness::None => "unfair",
                    };
                    format!("{k} {label}")
                })
                .collect();
            println!(
                "{:<20} {:>2} locations  {:>2} commands ({})  vars: {}",
                name,
                prog.num_locations(),
                prog.commands.len(),
                fair.join(", "),
                vars.join(" "),
            );
        }
    }
    ExitCode::SUCCESS
}

/// Lints declarative programs from the built-in catalogue: the semantic
/// invariant-backed rules (`FTS001`/`FTS003`–`FTS007` via
/// [`lint_abstract_program`]) plus the syntactic system rules on the
/// enumerated transition system.
fn cmd_program(args: Vec<&str>) -> ExitCode {
    // `--list` is not a linting option, so strip it before parse_opts
    // (which rejects unknown `--` flags).
    let list = args.contains(&"--list");
    let args: Vec<&str> = args.into_iter().filter(|a| *a != "--list").collect();
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    if list {
        if !opts.positional.is_empty() {
            return usage_error("program --list takes no program names");
        }
        return list_programs(opts.json);
    }
    let catalogue = program_catalogue();
    let selected: Vec<(String, absint::Program)> = if opts.positional.is_empty() {
        catalogue
            .into_iter()
            .map(|(n, p)| (n.to_string(), p))
            .collect()
    } else {
        let mut chosen = Vec::new();
        for name in &opts.positional {
            match catalogue.iter().find(|(n, _)| n == name) {
                Some((n, p)) => chosen.push((n.to_string(), p.clone())),
                None => {
                    let known: Vec<&str> = catalogue.iter().map(|(n, _)| *n).collect();
                    return usage_error(&format!(
                        "unknown program {name:?} (known: {})",
                        known.join(", ")
                    ));
                }
            }
        }
        chosen
    };
    let sigma = programs::observation_alphabet();
    let suite: Vec<(String, Vec<Diagnostic>)> =
        par::map_with(opts.jobs, &selected, |(name, prog)| {
            // Built-in programs always validate and enumerate.
            let mut diags = lint_abstract_program(prog).expect("catalogue program");
            let ts = prog.to_builder(&sigma).build().expect("catalogue program");
            diags.extend(lint_system(&ts));
            (name.clone(), diags)
        });
    report(&suite, opts.json)
}

/// Lints the paper's running examples end to end: the mutual-exclusion
/// specifications, a zoo of hierarchy formulas, the witness automata of
/// each class, the finitary examples, and the example programs.
fn cmd_examples(args: Vec<&str>) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    if !opts.positional.is_empty() {
        return usage_error("examples takes only --json and --jobs");
    }
    // Each entry is a named deferred lint; the whole suite fans out
    // across the worker pool below.
    type LintJob = (String, Box<dyn Fn() -> Vec<Diagnostic> + Sync>);
    let mut jobs: Vec<LintJob> = Vec::new();

    // Temporal formulas over a plain three-letter alphabet. (Over just
    // {a, b} the negation of one letter IS the other, which makes several
    // textbook formulas trivially valid or vacuous — real findings, but
    // not what a showcase of healthy specifications should contain.)
    let abc = Alphabet::new(["a", "b", "c"]).expect("alphabet");
    for src in [
        "G a",
        "F a",
        "G F a",
        "F G a",
        "G a | F b",
        "G F a | F G b",
        "G (a -> F b)",
        "a U b",
        "G (b -> O a)",
    ] {
        let f = Formula::parse(&abc, src).expect(src);
        let sigma = abc.clone();
        jobs.push((
            format!("formula {src:?}"),
            Box::new(move || lint_formula(&sigma, &f)),
        ));
    }

    // Mutual-exclusion specifications over the program propositions.
    let props = Alphabet::of_propositions(["c1", "c2", "t1", "t2"]).expect("alphabet");
    for src in ["G !(c1 & c2)", "G (t1 -> F c1)", "G (t2 -> F c2)"] {
        let f = Formula::parse(&props, src).expect(src);
        let sigma = props.clone();
        jobs.push((
            format!("mutex spec {src:?}"),
            Box::new(move || lint_formula(&sigma, &f)),
        ));
    }

    // The witness automata of every class of the hierarchy.
    let automata: Vec<(String, OmegaAutomaton)> = vec![
        ("witness safety".into(), witnesses::safety()),
        ("witness guarantee".into(), witnesses::guarantee()),
        ("witness recurrence".into(), witnesses::recurrence()),
        ("witness persistence".into(), witnesses::persistence()),
        ("witness obligation".into(), witnesses::obligation_simple()),
        (
            "witness obligation(2)".into(),
            witnesses::obligation_witness(2),
        ),
        (
            "witness reactivity(2)".into(),
            witnesses::reactivity_witness(2),
        ),
    ];
    for (name, aut) in automata {
        jobs.push((name, Box::new(move || hierarchy_lint::lint_automaton(&aut))));
    }

    // Finitary examples, including the paper's Φ = a a* b*.
    let ab = Alphabet::new(["a", "b"]).expect("alphabet");
    for pattern in ["a a* b*", "a* b", "(a b) + a"] {
        let regex = Regex::parse(&ab, pattern).expect(pattern);
        let sigma = ab.clone();
        jobs.push((
            format!("regex {pattern:?}"),
            Box::new(move || {
                let mut diags = lint_regex(&regex);
                diags.extend(lint_finitary(&FinitaryProperty::from_regex(&sigma, &regex)));
                diags
            }),
        ));
    }

    // The example programs.
    let (peterson, _) = programs::peterson();
    let (mux, _) = programs::mux_sem(Fairness::Strong);
    let (ring, _) = programs::token_ring(true);
    for (name, system) in [
        ("program peterson", peterson),
        ("program mux_sem", mux),
        ("program token_ring", ring),
    ] {
        jobs.push((name.into(), Box::new(move || lint_system(&system))));
    }

    let suite: Vec<(String, Vec<Diagnostic>)> =
        par::map_with(opts.jobs, &jobs, |(name, job)| (name.clone(), job()));
    report(&suite, opts.json)
}

/// Compiles one `spec-lint audit` member: a temporal formula, or a
/// paper-notation operator property `A:`/`E:`/`R:`/`P:` over a regex.
fn compile_member(sigma: &Alphabet, src: &str) -> Result<OmegaAutomaton, String> {
    if let Some((op, rest)) = src.split_once(':') {
        let op = op.trim();
        if matches!(op, "A" | "E" | "R" | "P") {
            let phi = FinitaryProperty::from_regex(
                sigma,
                &Regex::parse(sigma, rest.trim()).map_err(|e| format!("{src:?}: {e}"))?,
            );
            return Ok(match op {
                "A" => hierarchy_lang::operators::a(&phi),
                "E" => hierarchy_lang::operators::e(&phi),
                "R" => hierarchy_lang::operators::r(&phi),
                _ => hierarchy_lang::operators::p(&phi),
            });
        }
    }
    let f = Formula::parse(sigma, src).map_err(|e| format!("{src:?}: {e}"))?;
    hierarchy_logic::to_automaton::compile_over(sigma, &f).map_err(|e| format!("{src:?}: {e}"))
}

/// `spec-lint audit`: the whole-suite static analysis of
/// [`hierarchy_lint::audit_suite`] over members given on the command
/// line.
fn cmd_audit(args: Vec<&str>) -> ExitCode {
    // `--cap` is audit-specific, so strip it before parse_opts (which
    // rejects unknown `--` flags).
    let mut cap: usize = AuditOptions::default().conjunction_cap;
    let mut filtered = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--cap" {
            let value = match it.next() {
                Some(v) => v,
                None => return usage_error("--cap needs a state count"),
            };
            cap = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return usage_error(&format!(
                        "--cap needs a non-negative integer, got {value:?}"
                    ))
                }
            };
        } else {
            filtered.push(arg);
        }
    }
    let opts = match parse_opts(filtered) {
        Ok(o) => o,
        Err(e) => return usage_error(&e),
    };
    if opts.positional.len() < 2 {
        return usage_error("audit takes two or more suite members");
    }
    let mut members = Vec::with_capacity(opts.positional.len());
    for src in &opts.positional {
        match compile_member(&opts.alphabet, src) {
            Ok(aut) => members.push((src.clone(), aut)),
            Err(e) => {
                eprintln!("spec-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let audit = match audit_suite(
        &members,
        &AuditOptions {
            jobs: opts.jobs,
            conjunction_cap: cap,
        },
    ) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("spec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        println!("{}", audit.to_json());
    } else {
        print_audit(&audit);
    }
    if audit.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Human-readable audit report: coverage histogram, dominance edges,
/// findings, prefilter summary.
fn print_audit(audit: &hierarchy_lint::SuiteAudit) {
    let coverage: Vec<String> = audit
        .histogram
        .iter()
        .map(|(class, count)| format!("{class} {count}"))
        .collect();
    println!("hierarchy coverage: {}", coverage.join(", "));
    for &(a, b) in &audit.dominance {
        println!(
            "dominance: {:?} \u{228a} {:?}",
            audit.names[a], audit.names[b]
        );
    }
    let mut findings = 0usize;
    for (name, diags) in audit.names.iter().zip(&audit.member_diagnostics) {
        for d in diags {
            findings += 1;
            println!("{name}: {d}");
        }
    }
    for d in &audit.suite_diagnostics {
        findings += 1;
        println!("suite: {d}");
    }
    let n = audit.names.len();
    println!(
        "{n} member{} audited, {findings} finding{}{}; prefilter decided {}/{} pairs, \
         {} oracle call{}{}",
        if n == 1 { "" } else { "s" },
        if findings == 1 { "" } else { "s" },
        if audit.is_clean() { " (clean)" } else { "" },
        audit.prefilter.hash_decided,
        audit.prefilter.pairs,
        audit.prefilter.oracle_calls,
        if audit.prefilter.oracle_calls == 1 {
            ""
        } else {
            "s"
        },
        if audit.deep_checks_skipped > 0 {
            format!(
                " ({} deep check{} skipped at the state cap)",
                audit.deep_checks_skipped,
                if audit.deep_checks_skipped == 1 {
                    ""
                } else {
                    "s"
                }
            )
        } else {
            String::new()
        },
    );
}

/// Prints a suite report and computes the exit code.
fn report(suite: &[(String, Vec<Diagnostic>)], json: bool) -> ExitCode {
    let clean = suite.iter().all(|(_, diags)| is_clean(diags));
    if json {
        let mut out = String::from("[");
        for (i, (name, diags)) in suite.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"artifact\": \"{}\", \"clean\": {}, \"diagnostics\": {}}}",
                json_escape(name),
                is_clean(diags),
                report_to_json(diags)
            ));
        }
        out.push(']');
        println!("{out}");
    } else {
        let mut findings = 0usize;
        for (name, diags) in suite {
            if suite.len() > 1 && diags.is_empty() {
                continue;
            }
            if diags.is_empty() {
                println!("{name}: clean");
            }
            for d in diags {
                findings += 1;
                println!("{name}: {d}");
            }
        }
        let artifacts = suite.len();
        println!(
            "{artifacts} artifact{} checked, {findings} finding{}{}",
            if artifacts == 1 { "" } else { "s" },
            if findings == 1 { "" } else { "s" },
            if clean { " (clean)" } else { "" }
        );
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
