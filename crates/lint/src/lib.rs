//! `spec-lint`: cross-crate static analysis for hierarchy specifications.
//!
//! Every substrate of the workspace — temporal formulas, ω-automata,
//! finitary languages, fair transition systems — admits *well-formed but
//! suspicious* values: an unsatisfiable specification, an acceptance
//! condition with a provably redundant Streett pair, a fairness
//! requirement on a transition that is never enabled. This crate collects
//! those checks behind a single diagnostic vocabulary
//! ([`Diagnostic`], [`Severity`], [`Location`]) and a stable rule
//! catalogue ([`registry::CATALOGUE`]), with machine-readable JSON output
//! ([`diagnostic::report_to_json`]).
//!
//! Entry points per layer:
//!
//! | layer | function | rules |
//! |-------|----------|-------|
//! | logic | [`logic::lint_formula`] | `LOGIC001`–`LOGIC007` |
//! | automata | [`automata::lint_automaton`] | `AUT001`–`AUT007` |
//! | lang | [`lang::lint_regex`], [`lang::lint_finitary`], [`lang::lint_minex`] | `LANG001`–`LANG006` |
//! | fts | [`fts::lint_system`], [`fts::lint_program`], [`fts::lint_abstract_program`] | `FTS001`–`FTS007` |
//! | suite | [`suite::audit_suite`], [`suite::audit_suite_ctx`] | `SUITE001`–`SUITE005` |
//!
//! The semantic rules are decision procedures, not heuristics: they reuse
//! the memoized [`Analysis`](hierarchy_automata::analysis::Analysis)
//! context (emptiness, SCC condensation, hierarchy classification,
//! language equivalence), so a `_ctx` variant exists wherever an analysis
//! is typically already at hand. The `spec-lint` binary fronts the same
//! functions on the command line.

pub mod automata;
pub mod diagnostic;
pub mod fts;
pub mod lang;
pub mod logic;
pub mod registry;
pub mod suite;

pub use automata::{lint_automaton, lint_automaton_ctx};
pub use diagnostic::{is_clean, report_to_json, worst_severity, Diagnostic, Location, Severity};
pub use fts::{lint_abstract_program, lint_abstract_program_ctx, lint_program, lint_system};
pub use lang::{lint_finitary, lint_minex, lint_regex};
pub use logic::{lint_formula, lint_formula_ctx};
pub use registry::{rule, RuleInfo, CATALOGUE};
pub use suite::{audit_suite, audit_suite_ctx, AuditError, AuditOptions, SuiteAudit};

use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_fts::system::TransitionSystem;
use hierarchy_lang::finitary::FinitaryProperty;
use hierarchy_lang::regex::Regex;

/// Anything that can be linted without extra context.
///
/// Formulas are the exception: linting a [`Formula`](hierarchy_logic::ast::Formula)
/// needs the alphabet it is read over, so use [`lint_formula`] directly.
pub trait Lintable {
    /// Runs every applicable rule and returns the findings.
    fn lint(&self) -> Vec<Diagnostic>;
}

impl Lintable for OmegaAutomaton {
    fn lint(&self) -> Vec<Diagnostic> {
        lint_automaton(self)
    }
}

/// Lints a batch of artifacts across the worker pool of
/// [`hierarchy_automata::par`] (each artifact is one work item; the
/// semantic rules inside an item run sequentially so the pool is never
/// oversubscribed). Reports come back in input order and are identical
/// to calling [`Lintable::lint`] on each item.
///
/// `jobs` is the worker count — pass
/// [`hierarchy_automata::par::thread_count`] to honor the
/// `HIERARCHY_THREADS` override, or an explicit count (`spec-lint
/// --jobs N` does).
pub fn lint_suite<T: Lintable + Sync>(items: &[T], jobs: usize) -> Vec<Vec<Diagnostic>> {
    hierarchy_automata::par::map_with(jobs, items, Lintable::lint)
}

impl Lintable for TransitionSystem {
    fn lint(&self) -> Vec<Diagnostic> {
        lint_system(self)
    }
}

impl Lintable for Regex {
    fn lint(&self) -> Vec<Diagnostic> {
        lint_regex(self)
    }
}

impl Lintable for FinitaryProperty {
    fn lint(&self) -> Vec<Diagnostic> {
        lint_finitary(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;

    #[test]
    fn lintable_dispatches_per_substrate() {
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let phi = FinitaryProperty::empty(&sigma);
        assert_eq!(phi.lint()[0].code, "LANG003");
        let r = Regex::parse(&sigma, "(a*)*").unwrap();
        assert_eq!(r.lint()[0].code, "LANG002");
    }

    #[test]
    fn lint_suite_agrees_with_sequential_lints() {
        use hierarchy_automata::acceptance::Acceptance;
        use hierarchy_automata::omega::OmegaAutomaton;
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let b = sigma.symbol("b").unwrap();
        let auts: Vec<OmegaAutomaton> = (0..6)
            .map(|i| {
                OmegaAutomaton::build(
                    &sigma,
                    2 + i % 3,
                    0,
                    |q, s| if s == b { (q + 1) % 2 } else { q },
                    if i % 2 == 0 {
                        Acceptance::inf([1])
                    } else {
                        Acceptance::fin([0])
                    },
                )
            })
            .collect();
        let sequential: Vec<_> = auts.iter().map(Lintable::lint).collect();
        for jobs in [1, 2, 4] {
            assert_eq!(lint_suite(&auts, jobs), sequential, "jobs={jobs}");
        }
    }

    #[test]
    fn every_emitted_code_is_catalogued() {
        // The per-module tests exercise the rules; here just pin that the
        // registry severities drive `is_clean`.
        let sigma = Alphabet::new(["a", "b"]).unwrap();
        let diags = FinitaryProperty::sigma_plus(&sigma).lint();
        assert!(!diags.is_empty());
        for d in &diags {
            let r = rule(d.code).expect("code in catalogue");
            assert_eq!(r.severity, d.severity);
        }
        assert!(is_clean(&diags)); // LANG004 is Info-level
    }
}
