//! The diagnostic vocabulary shared by every lint layer: severities,
//! locations inside the linted artifact, and the [`Diagnostic`] record
//! itself, with a hand-rolled JSON rendering (the workspace carries no
//! serialization dependency).

use std::fmt;

/// How serious a finding is.
///
/// `spec-lint` treats an artifact as *clean* when it produces no
/// [`Error`](Severity::Error) and no [`Warning`](Severity::Warning)
/// diagnostics; [`Info`](Severity::Info) findings are advisory (e.g.
/// "this formula sits lower in the hierarchy than it is written").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: the artifact is fine but could be expressed better.
    Info,
    /// Probably a specification mistake; the artifact still has a meaning.
    Warning,
    /// Almost certainly a mistake (e.g. an unsatisfiable specification).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where inside the linted artifact a finding points.
///
/// Artifacts here are structured values, not source text, so locations
/// are structural: a subformula by its display form, a set of automaton
/// states, an acceptance conjunct, a named transition or variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The whole artifact.
    Root,
    /// A subformula or regex subexpression, by display form.
    Fragment(String),
    /// A set of automaton or system states.
    States(Vec<usize>),
    /// The `i`-th conjunct of the acceptance condition.
    AcceptanceConjunct(usize),
    /// An acceptance atom, by display form.
    AcceptanceAtom(String),
    /// A named transition of a transition system.
    Transition(String),
    /// A named program variable.
    Variable(String),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Root => write!(f, "(whole artifact)"),
            Location::Fragment(s) => write!(f, "`{s}`"),
            Location::States(qs) => {
                write!(f, "state")?;
                if qs.len() != 1 {
                    write!(f, "s")?;
                }
                for (i, q) in qs.iter().enumerate() {
                    write!(f, "{}{q}", if i == 0 { " " } else { ", " })?;
                }
                Ok(())
            }
            Location::AcceptanceConjunct(i) => write!(f, "acceptance conjunct #{i}"),
            Location::AcceptanceAtom(s) => write!(f, "acceptance atom {s}"),
            Location::Transition(name) => write!(f, "transition {name:?}"),
            Location::Variable(name) => write!(f, "variable {name:?}"),
        }
    }
}

/// One finding of the linter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule code (`LOGIC003`, `AUT006`, …); see
    /// [`crate::registry::CATALOGUE`].
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable description of the problem.
    pub message: String,
    /// An optional actionable suggestion.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic without a suggestion.
    pub fn new(
        code: &'static str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            location,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }

    /// The JSON object for this diagnostic.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\": \"{}\", ", self.code));
        out.push_str(&format!("\"severity\": \"{}\", ", self.severity));
        out.push_str(&format!(
            "\"location\": \"{}\", ",
            json_escape(&self.location.to_string())
        ));
        out.push_str(&format!("\"message\": \"{}\"", json_escape(&self.message)));
        if let Some(s) = &self.suggestion {
            out.push_str(&format!(", \"suggestion\": \"{}\"", json_escape(s)));
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (suggestion: {s})")?;
        }
        Ok(())
    }
}

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a diagnostic list as a JSON array.
pub fn report_to_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

/// The worst severity present, or `None` on an empty report.
pub fn worst_severity(diagnostics: &[Diagnostic]) -> Option<Severity> {
    diagnostics.iter().map(|d| d.severity).max()
}

/// Whether the report is *clean*: no errors and no warnings (advisory
/// `Info` findings are allowed).
pub fn is_clean(diagnostics: &[Diagnostic]) -> bool {
    worst_severity(diagnostics).is_none_or(|s| s < Severity::Warning)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order_and_display() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }

    #[test]
    fn display_and_json() {
        let d = Diagnostic::new(
            "AUT003",
            Severity::Warning,
            Location::States(vec![3, 5]),
            "2 unreachable states",
        )
        .with_suggestion("call trim()");
        let text = d.to_string();
        assert!(text.contains("warning [AUT003] states 3, 5"));
        assert!(text.contains("suggestion: call trim()"));
        let json = d.to_json();
        assert!(json.contains("\"code\": \"AUT003\""));
        assert!(json.contains("\"suggestion\": \"call trim()\""));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let d = Diagnostic::new(
            "LOGIC004",
            Severity::Info,
            Location::Fragment("G \"x\"".into()),
            "quoted",
        );
        assert!(d.to_json().contains("\\\"x\\\""));
    }

    #[test]
    fn clean_and_worst() {
        assert!(is_clean(&[]));
        assert_eq!(worst_severity(&[]), None);
        let info = Diagnostic::new("LOGIC005", Severity::Info, Location::Root, "m");
        let warn = Diagnostic::new("AUT005", Severity::Warning, Location::Root, "m");
        assert!(is_clean(std::slice::from_ref(&info)));
        assert!(!is_clean(&[info.clone(), warn.clone()]));
        assert_eq!(worst_severity(&[info, warn]), Some(Severity::Warning));
    }

    #[test]
    fn report_json_is_array() {
        let d = Diagnostic::new("FTS002", Severity::Warning, Location::Root, "m");
        assert_eq!(report_to_json(&[]), "[]");
        let two = report_to_json(&[d.clone(), d]);
        assert!(two.starts_with('[') && two.ends_with(']'));
        assert_eq!(two.matches("\"FTS002\"").count(), 2);
    }
}
