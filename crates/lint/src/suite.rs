//! Whole-suite static analysis (`SUITE001`–`SUITE005`): the audit pass
//! that looks *across* a set of properties instead of inside one.
//!
//! A specification is a conjunction of properties, and the questions a
//! spec-serving system gets asked are relational: is this new property
//! redundant given the rest, a duplicate of something already served,
//! contradictory with another conjunct, written in a needlessly strong
//! hierarchy class *for the suite it strengthens*? [`audit_suite`]
//! answers all of them in one pass over a suite of named ω-automata
//! (anything the workspace can compile to one — formulas, paper-notation
//! regexes, HOA artifacts):
//!
//! 1. **Subsumption lattice.** The full pairwise containment matrix
//!    `subsumption[i][j] ⇔ L_i ⊆ L_j`, computed through the polynomial
//!    inclusion oracle of [`Analysis::is_subset_of`] with a canonical-
//!    hash prefilter: members with equal [`structural_hash`] canonical
//!    forms are language-equal by construction, so their matrix cells
//!    cost nothing. [`PrefilterStats`] records how many pairs the hash
//!    decided versus how many oracle runs were issued, and the
//!    aggregated [`AnalysisStats`] delta shows the memo reuse
//!    (`inclusion_hits`) when the same contexts are audited twice — the
//!    warm-path payoff the serve daemon banks on.
//! 2. **Dominance DAG.** The transitive reduction (Hasse diagram) of
//!    strict containment between language-equivalence classes: an edge
//!    `i → j` means `L_i ⊊ L_j` with no class strictly between.
//! 3. **Suite rules.** `SUITE001` redundant property (implied by the
//!    conjunction of the others), `SUITE002` duplicate up to
//!    α/language-equivalence (canonical hash first, oracle fallback —
//!    shared with the serve store through
//!    [`canonical::language_eq`]), `SUITE003` conflicting pair (product
//!    emptiness: jointly unsatisfiable), `SUITE004` class overkill
//!    relative to the suite, `SUITE005` dead atomic proposition.
//! 4. **Hierarchy coverage.** A per-class histogram over the
//!    safety–progress hierarchy, the raw material for `SUITE004`.
//!
//! Complexity budget: `n` members cost `O(n²)` pairwise queries, each
//! polynomial in the (quotiented) state counts; the conjunction used by
//! `SUITE001`/`SUITE004` is folded with per-step minimization under
//! [`AuditOptions::conjunction_cap`] and skipped honestly (counted in
//! [`SuiteAudit::deep_checks_skipped`]) when the cap is hit.
//!
//! [`structural_hash`]: hierarchy_automata::canonical::structural_hash

use crate::diagnostic::{Diagnostic, Location, Severity};
use crate::registry;
use hierarchy_automata::analysis::{Analysis, AnalysisStats};
use hierarchy_automata::canonical::{self, hash_canonical, ArtifactHash, LanguageEq};
use hierarchy_automata::classify::Classification;
use hierarchy_automata::minimize::minimize;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::par;
use hierarchy_automata::StateId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Tuning knobs for [`audit_suite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuditOptions {
    /// Worker count for the pairwise fan-out; `0` means
    /// [`par::thread_count`] (which honors `HIERARCHY_THREADS`).
    pub jobs: usize,
    /// State cap for the folded suite conjunction behind `SUITE001`'s
    /// deep check and `SUITE004`; `0` disables both. Members whose
    /// check was skipped because a fold blew the cap are counted in
    /// [`SuiteAudit::deep_checks_skipped`], never silently dropped.
    pub conjunction_cap: usize,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            jobs: 0,
            conjunction_cap: 4096,
        }
    }
}

/// What the canonical-hash prefilter saved on the pairwise matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefilterStats {
    /// Unordered member pairs considered (`n·(n−1)/2`).
    pub pairs: u64,
    /// Pairs fully decided by canonical-hash equality (both containment
    /// directions for free).
    pub hash_decided: u64,
    /// Inclusion/equivalence oracle queries actually issued by the
    /// auditor (memoized ones still count — see
    /// [`AnalysisStats::inclusion_hits`] for the reuse).
    pub oracle_calls: u64,
}

/// The result of one suite audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteAudit {
    /// Member names, in input order (all indices below refer to it).
    pub names: Vec<String>,
    /// Strictest hierarchy class per member, in isolation.
    pub classes: Vec<&'static str>,
    /// `subsumption[i][j] ⇔ L_i ⊆ L_j` (reflexive).
    pub subsumption: Vec<Vec<bool>>,
    /// Smallest index with the same language as member `i`
    /// (`representative[i] == i` iff `i` is the first of its class).
    pub representative: Vec<usize>,
    /// Hasse edges `(i, j)` with `L_i ⊊ L_j` between class
    /// representatives, transitively reduced.
    pub dominance: Vec<(usize, usize)>,
    /// Per-class member counts over the hierarchy, strictest-first;
    /// classes with no member are omitted.
    pub histogram: Vec<(&'static str, usize)>,
    /// Per-member findings (`SUITE001`, `SUITE002`, `SUITE004`).
    pub member_diagnostics: Vec<Vec<Diagnostic>>,
    /// Suite-level findings (`SUITE003`, `SUITE005`).
    pub suite_diagnostics: Vec<Diagnostic>,
    /// Prefilter effectiveness on the pairwise matrix.
    pub prefilter: PrefilterStats,
    /// Aggregated [`Analysis`] counter delta across all member contexts
    /// for this audit (a warm re-audit shows up as `inclusion_hits`).
    pub stats: AnalysisStats,
    /// Members whose conjunction-based checks were skipped because the
    /// folded product exceeded [`AuditOptions::conjunction_cap`].
    pub deep_checks_skipped: usize,
}

/// Why a suite could not be audited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// Two members read over different alphabets; cross-property
    /// language comparison is undefined there.
    AlphabetMismatch {
        /// Name of the first member (whose alphabet set the standard).
        first: String,
        /// Name of the first member that deviates from it.
        offender: String,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::AlphabetMismatch { first, offender } => write!(
                f,
                "suite members {first:?} and {offender:?} read different alphabets"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// Hierarchy classes in strictest-first display order, shared by the
/// histogram and the dominance report.
const CLASS_ORDER: &[&str] = &[
    "safety ∩ guarantee",
    "safety",
    "guarantee",
    "obligation",
    "recurrence",
    "persistence",
    "simple reactivity",
    "reactivity",
];

/// Coarse rank of a class in the hierarchy (Figure 1 of the paper):
/// level-1 classes, obligation, level-2 classes, simple reactivity,
/// general reactivity. `SUITE004` fires when the rank of a member's
/// suite-relative weakening drops below the rank of the member itself.
fn class_rank(c: &Classification) -> u8 {
    if c.is_safety || c.is_guarantee {
        0
    } else if c.is_obligation {
        1
    } else if c.is_recurrence || c.is_persistence {
        2
    } else if c.is_simple_reactivity {
        3
    } else {
        4
    }
}

fn diag(
    rule: &'static registry::RuleInfo,
    location: Location,
    message: impl Into<String>,
) -> Diagnostic {
    Diagnostic::new(rule.code, rule.severity, location, message)
}

/// Audits a suite of named automata: builds one [`Analysis`] context
/// per member (in parallel) and delegates to [`audit_suite_ctx`]. Use
/// the `_ctx` variant when long-lived contexts are already at hand —
/// the serve daemon audits its warm store entries that way, and the
/// memoized matrix is the whole point.
pub fn audit_suite(
    items: &[(String, OmegaAutomaton)],
    opts: &AuditOptions,
) -> Result<SuiteAudit, AuditError> {
    let jobs = effective_jobs(opts);
    let ctxs: Vec<Analysis> = par::map_with(jobs, items, |(_, aut)| Analysis::new(aut.clone()));
    let borrowed: Vec<(&str, &Analysis)> = items
        .iter()
        .zip(&ctxs)
        .map(|((name, _), ctx)| (name.as_str(), ctx))
        .collect();
    audit_suite_ctx(&borrowed, opts)
}

fn effective_jobs(opts: &AuditOptions) -> usize {
    if opts.jobs == 0 {
        par::thread_count()
    } else {
        opts.jobs
    }
}

/// [`audit_suite`] over pre-built contexts. The report is deterministic
/// and independent of `opts.jobs` (all fan-outs are order-preserving);
/// only the wall time changes.
pub fn audit_suite_ctx(
    items: &[(&str, &Analysis)],
    opts: &AuditOptions,
) -> Result<SuiteAudit, AuditError> {
    let n = items.len();
    let jobs = effective_jobs(opts);
    if let Some(&(first_name, first_ctx)) = items.first() {
        let sigma = first_ctx.automaton().alphabet();
        for &(name, ctx) in &items[1..] {
            if ctx.automaton().alphabet() != sigma {
                return Err(AuditError::AlphabetMismatch {
                    first: first_name.to_string(),
                    offender: name.to_string(),
                });
            }
        }
    }
    let baselines: Vec<AnalysisStats> = items.iter().map(|(_, c)| c.stats_total()).collect();

    // Canonical hashes ride the memoized minimization — no fresh
    // partition refinement on a warm context.
    let hashes: Vec<ArtifactHash> = par::map_with(jobs, items, |(_, c)| {
        hash_canonical(&c.minimization().quotient)
    });
    let oracle_calls = AtomicU64::new(0);

    // Pairwise subsumption matrix, hash prefilter first: hash-equal
    // members are language-equal by construction, so both directions
    // are `true` without touching the oracle.
    let subsumption: Vec<Vec<bool>> = par::map_indices_with(jobs, n, |i| {
        (0..n)
            .map(|j| {
                if i == j || hashes[i] == hashes[j] {
                    true
                } else {
                    oracle_calls.fetch_add(1, Ordering::Relaxed);
                    items[i].1.is_subset_of(items[j].1.automaton())
                }
            })
            .collect()
    });
    let pairs = (n as u64) * (n.saturating_sub(1) as u64) / 2;
    let hash_decided = (0..n)
        .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
        .filter(|&(i, j)| hashes[i] == hashes[j])
        .count() as u64;

    let classes: Vec<&'static str> = par::map_with(jobs, items, |(_, c)| {
        c.classification().strictest_class_name()
    });
    let empty: Vec<bool> = par::map_with(jobs, items, |(_, c)| c.is_empty());

    // Language-equivalence classes and SUITE002. The matrix already
    // knows which members coincide; the shared canonical-hash-then-
    // oracle helper (also behind the serve store's ingest sweep)
    // re-derives *how* — for free on hash-equal pairs — so the
    // diagnostic can say whether the duplicate is an α-renaming or a
    // differently shaped acceptance condition.
    let mut representative: Vec<usize> = (0..n).collect();
    let mut duplicate: Vec<Option<Diagnostic>> = vec![None; n];
    for i in 0..n {
        for j in 0..i {
            if representative[j] == j && subsumption[i][j] && subsumption[j][i] {
                let verdict = canonical::language_eq(
                    hashes[j],
                    items[j].1,
                    hashes[i],
                    items[i].1.automaton(),
                )
                .unwrap_or(LanguageEq::Distinct);
                if verdict.is_equal() {
                    if matches!(verdict, LanguageEq::OracleEqual) {
                        oracle_calls.fetch_add(1, Ordering::Relaxed);
                    }
                    let how = match verdict {
                        LanguageEq::HashEqual => "identical canonical form",
                        LanguageEq::OracleEqual => "proved by the equivalence oracle",
                        LanguageEq::Distinct => unreachable!(),
                    };
                    representative[i] = j;
                    duplicate[i] = Some(
                        diag(
                            &registry::SUITE002,
                            Location::Root,
                            format!(
                                "recognizes exactly the same language as {:?} ({how})",
                                items[j].0
                            ),
                        )
                        .with_suggestion("keep one of the two; the suite is unchanged"),
                    );
                    break;
                }
            }
        }
    }
    let class_size = |rep: usize| representative.iter().filter(|&&r| r == rep).count();

    // Dominance DAG: strict containment between class representatives,
    // transitively reduced to the Hasse diagram.
    let reps: Vec<usize> = (0..n).filter(|&i| representative[i] == i).collect();
    let below = |a: usize, b: usize| subsumption[a][b] && !subsumption[b][a];
    let mut dominance = Vec::new();
    for &a in &reps {
        for &b in &reps {
            if below(a, b) && !reps.iter().any(|&c| below(a, c) && below(c, b)) {
                dominance.push((a, b));
            }
        }
    }

    // SUITE003: jointly unsatisfiable pairs of representatives.
    // Comparable non-empty pairs cannot conflict (the intersection is
    // the smaller language), so only incomparable pairs reach the
    // oracle — as `L_a ⊆ ¬L_b`, which rides the inclusion memo.
    let mut conflict_pairs: Vec<(usize, usize)> = Vec::new();
    for (k, &a) in reps.iter().enumerate() {
        for &b in &reps[k + 1..] {
            if !empty[a] && !empty[b] && !below(a, b) && !below(b, a) {
                conflict_pairs.push((a, b));
            }
        }
    }
    let conflicts: Vec<bool> = par::map_with(jobs, &conflict_pairs, |&(a, b)| {
        oracle_calls.fetch_add(1, Ordering::Relaxed);
        items[a]
            .1
            .is_subset_of(&items[b].1.automaton().complement())
    });
    let mut suite_diagnostics = Vec::new();
    for (&(a, b), &clash) in conflict_pairs.iter().zip(&conflicts) {
        if clash {
            suite_diagnostics.push(
                diag(
                    &registry::SUITE003,
                    Location::Root,
                    format!(
                        "{:?} and {:?} are jointly unsatisfiable: no computation satisfies both",
                        items[a].0, items[b].0
                    ),
                )
                .with_suggestion("the specification is contradictory; weaken one of the pair"),
            );
        }
    }

    // SUITE001 (redundancy) and SUITE004 (class overkill), both
    // against the conjunction of the rest of the suite. Skipped
    // wholesale when a member is empty — the conjunction collapses and
    // every verdict would be the vacuous one; AUT001/SUITE003 already
    // point at the real problem.
    let mut redundant: Vec<Option<Diagnostic>> = vec![None; n];
    let mut overkill: Vec<Option<Diagnostic>> = vec![None; n];
    let mut deep_checks_skipped = 0usize;
    let any_empty = empty.iter().any(|&e| e);
    if n >= 2 && !any_empty {
        // Fast path from the matrix: some other member alone implies i.
        for i in 0..n {
            if class_size(representative[i]) > 1 {
                continue; // duplicates are SUITE002's finding
            }
            if let Some(j) = (0..n).find(|&j| j != i && subsumption[j][i]) {
                redundant[i] = Some(
                    diag(
                        &registry::SUITE001,
                        Location::Root,
                        format!("already implied by {:?} alone", items[j].0),
                    )
                    .with_suggestion("drop this property; the suite's conjunction is unchanged"),
                );
            }
        }
        if opts.conjunction_cap > 0 {
            // Prefix/suffix folds of the suite conjunction, minimized at
            // every step and state-capped; `conj_without(i)` then costs
            // one product instead of n−1.
            let cap = opts.conjunction_cap;
            let fold = |acc: &Option<OmegaAutomaton>, aut: &OmegaAutomaton| {
                acc.as_ref().and_then(|a| {
                    let m = minimize(&a.intersection(aut)).quotient;
                    (m.num_states() <= cap).then_some(m)
                })
            };
            let sigma = items[0].1.automaton().alphabet().clone();
            let mut prefix: Vec<Option<OmegaAutomaton>> = Vec::with_capacity(n + 1);
            prefix.push(Some(OmegaAutomaton::universal(&sigma)));
            for k in 0..n {
                prefix.push(fold(&prefix[k], items[k].1.automaton()));
            }
            let mut suffix: Vec<Option<OmegaAutomaton>> = vec![None; n + 1];
            suffix[n] = Some(OmegaAutomaton::universal(&sigma));
            for k in (0..n).rev() {
                suffix[k] = fold(&suffix[k + 1], items[k].1.automaton());
            }
            let deep: Vec<(Option<Diagnostic>, Option<Diagnostic>, bool)> =
                par::map_indices_with(jobs, n, |i| {
                    if class_size(representative[i]) > 1 {
                        return (None, None, false); // SUITE002's finding
                    }
                    let Some(rest) = (match (&prefix[i], &suffix[i + 1]) {
                        (Some(p), Some(s)) => {
                            let m = minimize(&p.intersection(s)).quotient;
                            (m.num_states() <= cap).then_some(m)
                        }
                        _ => None,
                    }) else {
                        return (None, None, true);
                    };
                    let rest_ctx = Analysis::new(rest.clone());
                    if rest_ctx.is_empty() {
                        // The rest of the suite is already contradictory
                        // (SUITE003's finding); every implication from it
                        // would be vacuous noise.
                        return (None, None, false);
                    }
                    let redundant_deep = (redundant[i].is_none()
                        && rest_ctx.is_subset_of(items[i].1.automaton()))
                    .then(|| {
                        diag(
                            &registry::SUITE001,
                            Location::Root,
                            "already implied by the conjunction of the rest of the suite",
                        )
                        .with_suggestion("drop this property; the suite's conjunction is unchanged")
                    });
                    // Suite-relative weakening of member i: behaviors
                    // must satisfy i only where the rest of the suite
                    // allows them, i.e. `¬rest ∪ L_i`.
                    let own_rank = class_rank(items[i].1.classification());
                    let mut overkill_deep = None;
                    if redundant[i].is_none() && redundant_deep.is_none() && own_rank > 0 {
                        let relative = rest.complement().union(items[i].1.automaton());
                        let rel = Analysis::new(relative);
                        let rel_class = rel.classification();
                        if class_rank(rel_class) < own_rank {
                            overkill_deep = Some(
                                diag(
                                    &registry::SUITE004,
                                    Location::Root,
                                    format!(
                                        "classified {} in isolation, but relative to the rest \
                                         of the suite a {} property suffices",
                                        items[i].1.classification().strictest_class_name(),
                                        rel_class.strictest_class_name()
                                    ),
                                )
                                .with_suggestion(
                                    "the rest of the suite already carries the stronger part; \
                                     the weaker class's proof rule is enough here",
                                ),
                            );
                        }
                    }
                    (redundant_deep, overkill_deep, false)
                });
            for (i, (r, o, skipped)) in deep.into_iter().enumerate() {
                if let Some(r) = r {
                    redundant[i] = Some(r);
                }
                overkill[i] = o;
                deep_checks_skipped += usize::from(skipped);
            }
        }
    }

    // SUITE005: an atomic proposition no member is sensitive to. Only
    // meaningful over proposition alphabets; decided on the canonical
    // quotients, where transition-function insensitivity to `p` in
    // every member proves the suite never constrains `p`.
    if n > 0 {
        let sigma = items[0].1.automaton().alphabet();
        for (p, prop) in sigma.propositions().iter().enumerate() {
            let dead = items
                .iter()
                .all(|(_, c)| prop_insensitive(&c.minimization().quotient, p));
            if dead {
                suite_diagnostics.push(
                    diag(
                        &registry::SUITE005,
                        Location::Variable(prop.clone()),
                        format!("atomic proposition {prop:?} is constrained by no property in the suite"),
                    )
                    .with_suggestion(
                        "drop the proposition from the alphabet, or add the property that was \
                         meant to constrain it",
                    ),
                );
            }
        }
    }

    let member_diagnostics: Vec<Vec<Diagnostic>> = (0..n)
        .map(|i| {
            [&redundant[i], &duplicate[i], &overkill[i]]
                .into_iter()
                .filter_map(|d| d.clone())
                .collect()
        })
        .collect();
    let histogram: Vec<(&'static str, usize)> = CLASS_ORDER
        .iter()
        .map(|&name| (name, classes.iter().filter(|&&c| c == name).count()))
        .filter(|&(_, count)| count > 0)
        .collect();
    let stats = items
        .iter()
        .zip(&baselines)
        .map(|((_, c), &b)| c.stats_total().delta_since(b))
        .fold(AnalysisStats::default(), add_stats);

    Ok(SuiteAudit {
        names: items.iter().map(|(name, _)| name.to_string()).collect(),
        classes,
        subsumption,
        representative,
        dominance,
        histogram,
        member_diagnostics,
        suite_diagnostics,
        prefilter: PrefilterStats {
            pairs,
            hash_decided,
            oracle_calls: oracle_calls.into_inner(),
        },
        stats,
        deep_checks_skipped,
    })
}

fn add_stats(a: AnalysisStats, b: AnalysisStats) -> AnalysisStats {
    AnalysisStats {
        scc_passes: a.scc_passes + b.scc_passes,
        scc_state_visits: a.scc_state_visits + b.scc_state_visits,
        scc_hits: a.scc_hits + b.scc_hits,
        products_built: a.products_built + b.products_built,
        product_hits: a.product_hits + b.product_hits,
        inclusion_checks: a.inclusion_checks + b.inclusion_checks,
        inclusion_hits: a.inclusion_hits + b.inclusion_hits,
    }
}

/// Whether the transition function of `aut` is insensitive to
/// proposition `p`: flipping `p` in any symbol never changes any step.
/// On a canonical (trim, bisimulation-merged) quotient this certifies
/// the language places no constraint on `p`; a sensitive quotient with
/// an insensitive language is possible in principle, so the check is
/// sound for *reporting* deadness, not complete.
fn prop_insensitive(aut: &OmegaAutomaton, p: usize) -> bool {
    let sigma = aut.alphabet();
    let props = sigma.propositions().len();
    for q in 0..aut.num_states() as StateId {
        for sym in sigma.symbols() {
            if !sigma.proposition_holds(sym, p) {
                let holds: Vec<bool> = (0..props)
                    .map(|k| k == p || sigma.proposition_holds(sym, k))
                    .collect();
                let partner = sigma.valuation_symbol(&holds);
                if aut.step(q, sym) != aut.step(q, partner) {
                    return false;
                }
            }
        }
    }
    true
}

impl SuiteAudit {
    /// Every finding, member diagnostics first (in member order), then
    /// the suite-level ones.
    pub fn all_diagnostics(&self) -> Vec<Diagnostic> {
        self.member_diagnostics
            .iter()
            .flatten()
            .chain(&self.suite_diagnostics)
            .cloned()
            .collect()
    }

    /// The worst severity across all findings, or `None` when the
    /// suite is spotless.
    pub fn worst_severity(&self) -> Option<Severity> {
        self.member_diagnostics
            .iter()
            .flatten()
            .chain(&self.suite_diagnostics)
            .map(|d| d.severity)
            .max()
    }

    /// Whether the audit found no warnings and no errors.
    pub fn is_clean(&self) -> bool {
        self.worst_severity().is_none_or(|s| s < Severity::Warning)
    }

    /// The full report as a JSON object (hand-rolled; the workspace
    /// carries no serialization dependency).
    pub fn to_json(&self) -> String {
        use crate::diagnostic::{json_escape, report_to_json};
        let mut out = String::from("{\"members\": [");
        for i in 0..self.names.len() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"class\": \"{}\", \"representative\": {}, \
                 \"diagnostics\": {}}}",
                json_escape(&self.names[i]),
                json_escape(self.classes[i]),
                self.representative[i],
                report_to_json(&self.member_diagnostics[i]),
            ));
        }
        out.push_str("], \"dominance\": [");
        for (k, (a, b)) in self.dominance.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{a}, {b}]"));
        }
        out.push_str("], \"histogram\": {");
        for (k, (class, count)) in self.histogram.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {count}", json_escape(class)));
        }
        out.push_str(&format!(
            "}}, \"suite_diagnostics\": {}, \"prefilter\": {{\"pairs\": {}, \
             \"hash_decided\": {}, \"oracle_calls\": {}}}, \"deep_checks_skipped\": {}, \
             \"stats\": {}}}",
            report_to_json(&self.suite_diagnostics),
            self.prefilter.pairs,
            self.prefilter.hash_decided,
            self.prefilter.oracle_calls,
            self.deep_checks_skipped,
            stats_to_json(&self.stats),
        ));
        out
    }
}

/// JSON object for an [`AnalysisStats`] snapshot (shared by the CLI and
/// the bench tables).
pub fn stats_to_json(s: &AnalysisStats) -> String {
    format!(
        "{{\"scc_passes\": {}, \"scc_state_visits\": {}, \"scc_hits\": {}, \
         \"products_built\": {}, \"product_hits\": {}, \"inclusion_checks\": {}, \
         \"inclusion_hits\": {}}}",
        s.scc_passes,
        s.scc_state_visits,
        s.scc_hits,
        s.products_built,
        s.product_hits,
        s.inclusion_checks,
        s.inclusion_hits,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::acceptance::Acceptance;
    use hierarchy_automata::alphabet::Alphabet;

    fn sigma_ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    /// `G a` over {a,b}: stay accepting while reading `a`, trap on `b`.
    fn always_a(sigma: &Alphabet) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        )
    }

    /// `F b` over {a,b}.
    fn eventually_b(sigma: &Alphabet) -> OmegaAutomaton {
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::inf([1]),
        )
    }

    /// `G b` over {a,b}.
    fn always_b(sigma: &Alphabet) -> OmegaAutomaton {
        let a = sigma.symbol("a").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == a { 1 } else { 0 },
            Acceptance::fin([1]),
        )
    }

    fn named(items: &[(&str, OmegaAutomaton)]) -> Vec<(String, OmegaAutomaton)> {
        items
            .iter()
            .map(|(n, a)| (n.to_string(), a.clone()))
            .collect()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    /// `F a` over {a,b}.
    fn eventually_a(sigma: &Alphabet) -> OmegaAutomaton {
        let a = sigma.symbol("a").unwrap();
        OmegaAutomaton::build(
            sigma,
            2,
            0,
            |q, s| if q == 1 || s == a { 1 } else { 0 },
            Acceptance::inf([1]),
        )
    }

    #[test]
    fn clean_incomparable_suite_is_silent() {
        // F a and F b: incomparable (a^ω vs b^ω), jointly satisfiable
        // ((ab)^ω), neither redundant, both rank-0 classes. Nothing to
        // report.
        let sigma = sigma_ab();
        let suite = named(&[("fa", eventually_a(&sigma)), ("fb", eventually_b(&sigma))]);
        let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
        assert!(audit.suite_diagnostics.is_empty());
        assert!(audit.member_diagnostics.iter().all(|d| d.is_empty()));
        assert!(audit.is_clean());
        assert_eq!(audit.dominance, vec![]);
        assert_eq!(audit.histogram, vec![("guarantee", 2)]);
    }

    #[test]
    fn strict_containment_marks_the_weaker_member_redundant() {
        let sigma = sigma_ab();
        let fa = {
            let a = sigma.symbol("a").unwrap();
            OmegaAutomaton::build(
                &sigma,
                2,
                0,
                |q, s| if q == 1 || s == a { 1 } else { 0 },
                Acceptance::inf([1]),
            )
        };
        let suite = named(&[("ga", always_a(&sigma)), ("fa", fa)]);
        let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
        assert_eq!(codes(&audit.member_diagnostics[1]), ["SUITE001"]);
        assert!(audit.member_diagnostics[0].is_empty());
        assert!(audit.suite_diagnostics.is_empty());
        // Dominance: ga ⊊ fa, one Hasse edge.
        assert_eq!(audit.dominance, vec![(0, 1)]);
        assert!(audit.subsumption[0][1] && !audit.subsumption[1][0]);
    }

    #[test]
    fn duplicates_fire_suite002_not_suite001() {
        let sigma = sigma_ab();
        let suite = named(&[
            ("ga", always_a(&sigma)),
            ("gb", always_b(&sigma)),
            ("ga-again", always_a(&sigma)),
        ]);
        let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
        assert!(audit.member_diagnostics[0].is_empty());
        assert_eq!(codes(&audit.member_diagnostics[2]), ["SUITE002"]);
        assert_eq!(audit.representative, vec![0, 1, 0]);
        assert!(audit.member_diagnostics[2][0]
            .message
            .contains("identical canonical form"));
        // The duplicate pair was decided by the hash prefilter.
        assert!(audit.prefilter.hash_decided >= 1);
    }

    #[test]
    fn conflicting_pair_fires_suite003() {
        let sigma = sigma_ab();
        let suite = named(&[("ga", always_a(&sigma)), ("gb", always_b(&sigma))]);
        let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
        assert_eq!(codes(&audit.suite_diagnostics), ["SUITE003"]);
        assert!(audit.suite_diagnostics[0].message.contains("\"ga\""));
        assert!(audit.suite_diagnostics[0].message.contains("\"gb\""));
    }

    #[test]
    fn dead_proposition_fires_suite005_on_proposition_alphabets() {
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        // G p: sensitive to p, never to q.
        let dead = sigma.symbols_where(0).complement(&sigma);
        let gp = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || dead.contains(s) { 1 } else { 0 },
            Acceptance::fin([1]),
        );
        let suite = named(&[("gp", gp)]);
        let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
        assert_eq!(codes(&audit.suite_diagnostics), ["SUITE005"]);
        assert_eq!(
            audit.suite_diagnostics[0].location,
            Location::Variable("q".into())
        );
        // Letter alphabets never report SUITE005.
        let letter = named(&[("ga", always_a(&sigma_ab()))]);
        let audit = audit_suite(&letter, &AuditOptions::default()).unwrap();
        assert!(audit.suite_diagnostics.is_empty());
    }

    /// A last-symbol tracker over a proposition alphabet: state `1+i`
    /// remembers that symbol `i` was just read (state 0 is initial), so
    /// acceptance sets can speak about which valuations recur.
    fn last_symbol(sigma: &Alphabet, acc: Acceptance) -> OmegaAutomaton {
        OmegaAutomaton::build(
            sigma,
            1 + sigma.len(),
            0,
            |_, s| 1 + StateId::from(s.0),
            acc,
        )
    }

    #[test]
    fn class_overkill_fires_suite004() {
        // Member "streett": GF p ∨ FG q — strictly simple reactivity in
        // isolation. Member "gnq": G ¬q. Relative to G ¬q, the FG q
        // disjunct is unreachable, so `¬(G ¬q) ∪ streett ≡ F q ∨ GF p`
        // — a recurrence property. The audit must flag the written
        // class as overkill for this suite without calling the member
        // redundant (G ¬q does not imply it).
        let sigma = Alphabet::of_propositions(["p", "q"]).unwrap();
        let p_states: Vec<usize> = sigma
            .symbols()
            .filter(|&s| sigma.proposition_holds(s, 0))
            .map(|s| 1 + s.0 as usize)
            .collect();
        let not_q_states: Vec<usize> = sigma
            .symbols()
            .filter(|&s| !sigma.proposition_holds(s, 1))
            .map(|s| 1 + s.0 as usize)
            .collect();
        let streett = last_symbol(
            &sigma,
            Acceptance::Or(vec![
                Acceptance::inf(p_states),
                Acceptance::fin(not_q_states),
            ]),
        );
        let q_syms = sigma.symbols_where(1);
        let gnq = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |st, s| if st == 1 || q_syms.contains(s) { 1 } else { 0 },
            Acceptance::fin([1]),
        );
        let suite = named(&[("streett", streett), ("gnq", gnq)]);
        let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
        assert_eq!(audit.classes[0], "simple reactivity");
        assert_eq!(codes(&audit.member_diagnostics[0]), ["SUITE004"]);
        assert!(audit.member_diagnostics[0][0]
            .message
            .contains("recurrence"));
        assert!(audit.member_diagnostics[1].is_empty());
        assert!(audit.is_clean(), "SUITE004 is advisory");
        let json = audit.to_json();
        assert!(json.contains("\"prefilter\""));
        assert!(json.contains("\"histogram\""));
        assert!(json.contains("SUITE004"));
    }

    #[test]
    fn alphabet_mismatch_is_an_error() {
        let two = sigma_ab();
        let other = Alphabet::new(["x", "y"]).unwrap();
        let suite = named(&[
            ("ga", always_a(&two)),
            ("ux", OmegaAutomaton::universal(&other)),
        ]);
        let err = audit_suite(&suite, &AuditOptions::default()).unwrap_err();
        assert_eq!(
            err,
            AuditError::AlphabetMismatch {
                first: "ga".into(),
                offender: "ux".into()
            }
        );
        assert!(err.to_string().contains("\"ux\""));
    }

    #[test]
    fn empty_member_suppresses_conjunction_rules() {
        let sigma = sigma_ab();
        let suite = named(&[
            ("nothing", OmegaAutomaton::empty(&sigma)),
            ("ga", always_a(&sigma)),
            ("fb", eventually_b(&sigma)),
        ]);
        let audit = audit_suite(&suite, &AuditOptions::default()).unwrap();
        // No SUITE001/SUITE004 noise downstream of an empty member; the
        // per-artifact linter (AUT001) owns that finding.
        assert!(audit
            .member_diagnostics
            .iter()
            .flatten()
            .all(|d| d.code == "SUITE002"));
    }

    #[test]
    fn warm_reaudit_hits_the_inclusion_memo_and_jobs_do_not_change_the_report() {
        let sigma = sigma_ab();
        let auts = [
            ("ga", always_a(&sigma)),
            ("gb", always_b(&sigma)),
            ("fb", eventually_b(&sigma)),
        ];
        let ctxs: Vec<Analysis> = auts.iter().map(|(_, a)| Analysis::new(a.clone())).collect();
        let items: Vec<(&str, &Analysis)> =
            auts.iter().zip(&ctxs).map(|((n, _), c)| (*n, c)).collect();
        let opts = AuditOptions::default();
        let cold = audit_suite_ctx(&items, &opts).unwrap();
        let warm = audit_suite_ctx(&items, &opts).unwrap();
        assert!(
            warm.stats.inclusion_hits > 0,
            "second audit on the same contexts must reuse the inclusion memo"
        );
        for jobs in [1, 2, 4] {
            let opts = AuditOptions {
                jobs,
                ..AuditOptions::default()
            };
            let again = audit_suite_ctx(&items, &opts).unwrap();
            let (mut lhs, mut rhs) = (again.clone(), cold.clone());
            lhs.stats = AnalysisStats::default();
            rhs.stats = AnalysisStats::default();
            assert_eq!(lhs, rhs, "jobs={jobs} changed the report");
        }
    }

    #[test]
    fn conjunction_cap_skips_honestly() {
        let sigma = sigma_ab();
        let suite = named(&[("ga", always_a(&sigma)), ("fb", eventually_b(&sigma))]);
        // G a ∧ F b is empty → SUITE003; pick a compatible pair instead.
        let _ = suite;
        let compatible = named(&[
            ("fb", eventually_b(&sigma)),
            ("fb2", {
                let b = sigma.symbol("b").unwrap();
                // F (b·b): needs two b's — strictly inside F b.
                OmegaAutomaton::build(
                    &sigma,
                    3,
                    0,
                    |q, s| {
                        if q == 2 || (s == b && q == 1) {
                            2
                        } else if s == b {
                            1
                        } else {
                            q
                        }
                    },
                    Acceptance::inf([2]),
                )
            }),
        ]);
        let capped = audit_suite(
            &compatible,
            &AuditOptions {
                conjunction_cap: 1,
                ..AuditOptions::default()
            },
        )
        .unwrap();
        // fb is redundant via the fast path (fb2 ⊆ fb) even under the
        // cap; the deep checks for the other member are skipped and
        // counted.
        assert_eq!(codes(&capped.member_diagnostics[0]), ["SUITE001"]);
        assert!(capped.deep_checks_skipped > 0);
        let uncapped = audit_suite(&compatible, &AuditOptions::default()).unwrap();
        assert_eq!(uncapped.deep_checks_skipped, 0);
    }
}
