//! Automaton lints (`AUT001`–`AUT007`): structural and semantic checks on
//! deterministic ω-automata, all phrased as queries against the shared
//! [`Analysis`] context so a caller who has already classified the
//! automaton pays almost nothing extra.
//!
//! The soundness argument behind the acceptance rules: an infinity set of a run is
//! always a subset of one reachable *cyclic* SCC, so
//!
//! * an atom whose set misses every reachable cycle is constant on all
//!   runs (`Inf` never holds, `Fin` always holds) — [`AUT005`];
//! * states of an atom outside the reachable cyclic region can be dropped
//!   from the atom without changing the language — [`AUT007`];
//! * a rejecting trap is the canonical shape of a safety automaton, so a
//!   *single* reachable dead state is not worth reporting; two or more are
//!   mergeable — [`AUT004`].
//!
//! [`AUT005`]: crate::registry::AUT005
//! [`AUT007`]: crate::registry::AUT007
//! [`AUT004`]: crate::registry::AUT004

use crate::diagnostic::{Diagnostic, Location};
use crate::registry::{self, RuleInfo};
use hierarchy_automata::acceptance::Acceptance;
use hierarchy_automata::analysis::Analysis;
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::omega::OmegaAutomaton;

fn diag(rule: &RuleInfo, location: Location, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(rule.code, rule.severity, location, message)
}

fn set_display(s: &BitSet) -> String {
    let mut out = String::from("{");
    for (i, q) in s.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&q.to_string());
    }
    out.push('}');
    out
}

/// Lints an automaton with a fresh analysis context. Prefer
/// [`lint_automaton_ctx`] when an [`Analysis`] for the automaton already
/// exists (classification and linting then share every SCC pass).
pub fn lint_automaton(aut: &OmegaAutomaton) -> Vec<Diagnostic> {
    lint_automaton_ctx(&Analysis::new(aut.clone()))
}

/// Lints the automaton held by an existing analysis context, reusing its
/// memoized reachability, liveness, condensation, product and
/// inclusion-verdict caches.
pub fn lint_automaton_ctx(ctx: &Analysis) -> Vec<Diagnostic> {
    let aut = ctx.automaton();
    let n = aut.num_states();
    let reachable = ctx.reachable();
    let mut out = Vec::new();

    // AUT001 / AUT002: degenerate languages. An empty language makes every
    // further finding noise (all atoms are trivially constant), so stop.
    if ctx.is_empty() {
        out.push(
            diag(
                &registry::AUT001,
                Location::Root,
                "the automaton accepts no word: its language is empty",
            )
            .with_suggestion("check the acceptance condition against the reachable cycles"),
        );
        return out;
    }
    if ctx.is_universal() && (n > 1 || *aut.acceptance() != Acceptance::True) {
        out.push(
            diag(
                &registry::AUT002,
                Location::Root,
                "the automaton accepts every word but is not written as the one-state \
                 universal automaton",
            )
            .with_suggestion("replace it with OmegaAutomaton::universal"),
        );
    }

    // AUT003: unreachable states.
    let unreachable: Vec<usize> = (0..n).filter(|&q| !reachable.contains(q)).collect();
    if !unreachable.is_empty() {
        let count = unreachable.len();
        out.push(
            diag(
                &registry::AUT003,
                Location::States(unreachable),
                format!("{count} state(s) are unreachable from the initial state"),
            )
            .with_suggestion("call trim() to drop them"),
        );
    }

    // AUT004: ≥ 2 reachable dead states. One rejecting trap is the
    // canonical safety-automaton shape and is left alone.
    let live = ctx.live();
    let dead: Vec<usize> = reachable.iter().filter(|&q| !live.contains(q)).collect();
    if dead.len() >= 2 {
        let count = dead.len();
        // Partition refinement tells the exact merge: all dead states are
        // language-equivalent (empty residual), but the quotient may keep
        // several classes apart when their acceptance-atom signatures
        // differ — report the classes refinement actually found.
        let min = ctx.minimization();
        let mut classes: Vec<Vec<usize>> = Vec::new();
        let mut seen: Vec<u32> = Vec::new();
        for &q in &dead {
            let c = min.class_of[q].expect("reachable state has a class");
            match seen.iter().position(|&s| s == c) {
                Some(i) => classes[i].push(q),
                None => {
                    seen.push(c);
                    classes.push(vec![q]);
                }
            }
        }
        let rendered: Vec<String> = classes
            .iter()
            .map(|members| {
                let set: BitSet = members.iter().copied().collect();
                set_display(&set)
            })
            .collect();
        let k = classes.len();
        out.push(
            diag(
                &registry::AUT004,
                Location::States(dead),
                format!(
                    "{count} reachable states have an empty residual language; partition \
                     refinement merges them into {k} class(es): {}",
                    rendered.join(", ")
                ),
            )
            .with_suggestion(
                "merge each class into one state (a single rejecting trap when the \
                 acceptance atoms allow it)",
            ),
        );
    }

    // The reachable cyclic region: every run's infinity set lives here.
    let cond = ctx.condensation();
    let mut cyc = BitSet::with_capacity(n);
    for c in 0..cond.sccs.len() {
        if cond.status[c].is_some() {
            cyc.union_with(&cond.sccs.member_set(c));
        }
    }

    // AUT005 + AUT007: walk the acceptance atoms once, with polarity.
    let mut seen_const: Vec<String> = Vec::new();
    let mut seen_stray: Vec<String> = Vec::new();
    walk_atoms(aut.acceptance(), &mut |is_inf, s| {
        let label = format!("{}({})", if is_inf { "Inf" } else { "Fin" }, set_display(s));
        if !s.intersects(&cyc) {
            if !seen_const.contains(&label) {
                seen_const.push(label.clone());
                let (verdict, fix) = if is_inf {
                    (
                        "can never hold: no run visits the set infinitely often",
                        "the atom is constant false; simplify the acceptance condition",
                    )
                } else {
                    (
                        "always holds: every run leaves the set eventually",
                        "the atom is constant true; simplify the acceptance condition",
                    )
                };
                out.push(
                    diag(
                        &registry::AUT005,
                        Location::AcceptanceAtom(label),
                        format!("the atom misses every reachable cycle and {verdict}"),
                    )
                    .with_suggestion(fix),
                );
            }
        } else {
            let stray: Vec<usize> = s.iter().filter(|&q| !cyc.contains(q)).collect();
            if !stray.is_empty() && !seen_stray.contains(&label) {
                seen_stray.push(label.clone());
                out.push(
                    diag(
                        &registry::AUT007,
                        Location::AcceptanceAtom(label),
                        format!(
                            "the atom mentions {} lying on no reachable cycle; such states \
                             never appear in an infinity set",
                            Location::States(stray)
                        ),
                    )
                    .with_suggestion("drop those states from the atom (the language is unchanged)"),
                );
            }
        }
    });

    // AUT006: droppable acceptance conjuncts (redundant Streett pairs).
    // (Empty languages never get here — AUT001 returned early — so every
    // redundancy reported is about a genuinely non-empty language.) Each
    // candidate is an `Analysis::equivalent` query, which since ISSUE 8
    // routes through the direct product-graph oracle
    // (`hierarchy_automata::inclusion`) and its per-context memo — the
    // per-conjunct cost is polynomial in the pair count instead of the
    // old complement+DNF construction's exponential blow-up, so linting
    // wide Streett conditions stays cheap.
    if let Acceptance::And(xs) = aut.acceptance() {
        if xs.len() >= 2 {
            for i in 0..xs.len() {
                let rest: Vec<Acceptance> = xs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| a.clone())
                    .collect();
                let dropped = if rest.len() == 1 {
                    rest.into_iter().next().expect("len checked")
                } else {
                    Acceptance::And(rest)
                };
                if ctx.equivalent(&aut.with_acceptance(dropped)) {
                    out.push(
                        diag(
                            &registry::AUT006,
                            Location::AcceptanceConjunct(i),
                            format!("dropping conjunct {} leaves the language unchanged", xs[i]),
                        )
                        .with_suggestion("remove the redundant conjunct (Streett pair)"),
                    );
                }
            }
        }
    }

    out
}

/// Calls `f(is_inf, set)` for every `Inf`/`Fin` atom of the condition.
fn walk_atoms(acc: &Acceptance, f: &mut impl FnMut(bool, &BitSet)) {
    match acc {
        Acceptance::True | Acceptance::False => {}
        Acceptance::Inf(s) => f(true, s),
        Acceptance::Fin(s) => f(false, s),
        Acceptance::And(xs) | Acceptance::Or(xs) => {
            for x in xs {
                walk_atoms(x, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    /// Last-symbol tracker over {a,b}.
    fn last_sym(acc: Acceptance) -> OmegaAutomaton {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        OmegaAutomaton::build(&sigma, 2, 0, |_, s| if s == b { 1 } else { 0 }, acc)
    }

    #[test]
    fn clean_buchi_automaton_has_no_findings() {
        let aut = last_sym(Acceptance::inf([1]));
        assert!(lint_automaton(&aut).is_empty());
    }

    #[test]
    fn universal_one_state_is_silent() {
        let aut = OmegaAutomaton::universal(&ab());
        assert!(lint_automaton(&aut).is_empty());
    }

    #[test]
    fn empty_language_is_an_error() {
        let aut = last_sym(Acceptance::Inf(BitSet::new()));
        let diags = lint_automaton(&aut);
        assert_eq!(codes(&diags), vec!["AUT001"]);
    }

    #[test]
    fn disguised_universal_fires_aut002() {
        let aut = last_sym(Acceptance::inf([0]).or(Acceptance::inf([1])));
        // Every run visits state 0 or state 1 infinitely often.
        let diags = lint_automaton(&aut);
        assert!(codes(&diags).contains(&"AUT002"));
    }

    #[test]
    fn unreachable_state_fires_aut003() {
        let sigma = ab();
        // State 2 exists but nothing reaches it.
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |_, s| if s == b { 1 } else { 0 },
            Acceptance::inf([0]),
        );
        let diags = lint_automaton(&aut);
        assert!(codes(&diags).contains(&"AUT003"));
        assert!(diags
            .iter()
            .any(|d| d.location == Location::States(vec![2])));
    }

    #[test]
    fn single_rejecting_trap_is_silent() {
        // The canonical safety shape: one live region, one dead sink.
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            2,
            0,
            |q, s| if q == 1 || s == b { 1 } else { 0 },
            Acceptance::fin([1]),
        );
        assert!(lint_automaton(&aut).is_empty());
    }

    #[test]
    fn two_dead_states_fire_aut004() {
        // Two distinct dead states chained before the trap.
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| match (q, s == b) {
                (0, false) => 0,
                (0, true) => 1,
                (1, _) => 2,
                _ => 2,
            },
            Acceptance::fin([1, 2]),
        );
        let diags = lint_automaton(&aut);
        assert!(codes(&diags).contains(&"AUT004"));
        // Both dead states share an atom signature, so partition
        // refinement reports exactly one merge class.
        let d = diags.iter().find(|d| d.code == "AUT004").unwrap();
        assert!(
            d.message.contains("1 class(es): {1, 2}"),
            "unexpected AUT004 message: {}",
            d.message
        );
    }

    /// Dead states with *different* atom signatures stay in different
    /// refinement classes, and AUT004 says so.
    #[test]
    fn aut004_reports_split_quotient_classes() {
        let sigma = ab();
        let b = sigma.symbol("b").unwrap();
        // 1 and 2 are dead (they trap into 2), but only 1 is in the Inf
        // atom, so refinement cannot merge them.
        let aut = OmegaAutomaton::build(
            &sigma,
            3,
            0,
            |q, s| match (q, s == b) {
                (0, false) => 0,
                (0, true) => 1,
                _ => 2,
            },
            Acceptance::inf([0]).and(Acceptance::fin([1])),
        );
        let diags = lint_automaton(&aut);
        let d = diags.iter().find(|d| d.code == "AUT004").unwrap();
        assert!(
            d.message.contains("2 class(es): {1}, {2}"),
            "unexpected AUT004 message: {}",
            d.message
        );
    }

    #[test]
    fn constant_atoms_fire_aut005_both_polarities() {
        let sigma = ab();
        // State 1 is transient (1 -> 0 always), so {1} meets no cycle.
        let aut = OmegaAutomaton::build(
            &sigma,
            2,
            1,
            |_, _| 0,
            Acceptance::inf([1]).or(Acceptance::inf([0]).and(Acceptance::fin([1]))),
        );
        let diags = lint_automaton(&aut);
        let fired: Vec<_> = diags.iter().filter(|d| d.code == "AUT005").collect();
        assert_eq!(fired.len(), 2, "{diags:?}");
        assert!(fired
            .iter()
            .any(|d| d.location == Location::AcceptanceAtom("Inf({1})".into())));
        assert!(fired
            .iter()
            .any(|d| d.location == Location::AcceptanceAtom("Fin({1})".into())));
    }

    #[test]
    fn redundant_conjunct_fires_aut006() {
        // Inf({1}) & Inf({0,1}) — the second conjunct is implied.
        let aut = last_sym(Acceptance::inf([1]).and(Acceptance::inf([0, 1])));
        let diags = lint_automaton(&aut);
        let fired: Vec<_> = diags.iter().filter(|d| d.code == "AUT006").collect();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].location, Location::AcceptanceConjunct(1));
    }

    #[test]
    fn independent_conjuncts_are_silent_for_aut006() {
        // Inf({0}) & Inf({1}): "infinitely many a's and infinitely many
        // b's" — neither conjunct is droppable.
        let aut = last_sym(Acceptance::inf([0]).and(Acceptance::inf([1])));
        let diags = lint_automaton(&aut);
        assert!(!codes(&diags).contains(&"AUT006"), "{diags:?}");
    }

    #[test]
    fn transient_atom_state_fires_aut007() {
        let sigma = ab();
        // State 2 is a transient entry state feeding the 0/1 cycle region.
        let b = sigma.symbol("b").unwrap();
        let aut = OmegaAutomaton::build(
            &sigma,
            3,
            2,
            |q, s| {
                if q == 2 {
                    0
                } else if s == b {
                    1
                } else {
                    0
                }
            },
            Acceptance::inf([1, 2]),
        );
        let diags = lint_automaton(&aut);
        let fired: Vec<_> = diags.iter().filter(|d| d.code == "AUT007").collect();
        assert_eq!(fired.len(), 1, "{diags:?}");
        assert!(fired[0].message.contains("state 2"));
        // The language really is unchanged without the transient state.
        assert!(aut.equivalent(&aut.with_acceptance(Acceptance::inf([1]))));
    }

    #[test]
    fn ctx_variant_reuses_the_analysis() {
        let aut = last_sym(Acceptance::inf([1]));
        let ctx = Analysis::new(aut);
        let _ = ctx.classification();
        let passes = ctx.stats().scc_passes;
        let diags = lint_automaton_ctx(&ctx);
        assert!(diags.is_empty());
        assert_eq!(
            ctx.stats().scc_passes,
            passes,
            "linting after classification runs no new SCC passes"
        );
    }
}
