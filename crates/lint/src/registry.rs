//! The rule catalogue: one [`RuleInfo`] per lint rule, grouped by the
//! substrate layer it inspects. The catalogue is what `spec-lint rules`
//! prints and what DESIGN.md documents; rule implementations live in the
//! per-layer modules and must use these codes.

use crate::diagnostic::Severity;
use std::fmt;

/// The substrate a rule inspects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Temporal-logic formulas (`hierarchy-logic`).
    Logic,
    /// Deterministic ω-automata (`hierarchy-automata`).
    Automata,
    /// Regular expressions and finitary properties (`hierarchy-lang`).
    Lang,
    /// Fair transition systems and programs (`hierarchy-fts`).
    Fts,
    /// Whole-suite cross-property analysis (`lint::suite`).
    Suite,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::Logic => write!(f, "logic"),
            Layer::Automata => write!(f, "automata"),
            Layer::Lang => write!(f, "lang"),
            Layer::Fts => write!(f, "fts"),
            Layer::Suite => write!(f, "suite"),
        }
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable code used in diagnostics (`LOGIC003`, `AUT006`, …).
    pub code: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// The layer the rule belongs to.
    pub layer: Layer,
    /// The severity every diagnostic of this rule carries.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
}

macro_rules! rules {
    ($($konst:ident = $code:literal, $name:literal, $layer:ident, $sev:ident,
       $summary:literal;)*) => {
        $(
            #[doc = $summary]
            pub const $konst: RuleInfo = RuleInfo {
                code: $code,
                name: $name,
                layer: Layer::$layer,
                severity: Severity::$sev,
                summary: $summary,
            };
        )*
        /// Every rule, in catalogue order.
        pub const CATALOGUE: &[RuleInfo] = &[$($konst),*];
    };
}

rules! {
    LOGIC001 = "LOGIC001", "unsatisfiable-formula", Logic, Error,
        "the formula holds of no computation (its language is empty)";
    LOGIC002 = "LOGIC002", "trivially-valid-formula", Logic, Warning,
        "the formula holds of every computation (it constrains nothing)";
    LOGIC003 = "LOGIC003", "vacuous-subformula", Logic, Warning,
        "a subformula can be replaced by a constant without changing the property";
    LOGIC004 = "LOGIC004", "constant-subformula", Logic, Warning,
        "a literal constant (or an atom denoting one) appears in operand position";
    LOGIC005 = "LOGIC005", "class-mismatch", Logic, Info,
        "the formula sits strictly lower in the semantic hierarchy than it is written";
    LOGIC006 = "LOGIC006", "redundant-past-operator", Logic, Warning,
        "a past operator application collapses (O O p, H H p, true S p, true B p)";
    LOGIC007 = "LOGIC007", "outside-hierarchy-grammar", Logic, Info,
        "the formula cannot be canonicalized, so semantic lints were skipped";
    AUT001 = "AUT001", "empty-language", Automata, Error,
        "the automaton accepts nothing";
    AUT002 = "AUT002", "universal-language", Automata, Info,
        "the automaton accepts everything yet is not written as the universal automaton";
    AUT003 = "AUT003", "unreachable-states", Automata, Warning,
        "states unreachable from the initial state";
    AUT004 = "AUT004", "mergeable-dead-states", Automata, Info,
        "two or more reachable dead states could merge into one rejecting trap";
    AUT005 = "AUT005", "constant-acceptance-atom", Automata, Warning,
        "an acceptance atom is constant on every run (its set misses all reachable cycles)";
    AUT006 = "AUT006", "redundant-streett-pair", Automata, Warning,
        "dropping an acceptance conjunct provably leaves the language unchanged";
    AUT007 = "AUT007", "transient-acceptance-states", Automata, Info,
        "acceptance atoms mention states that lie on no reachable cycle";
    LANG001 = "LANG001", "empty-subexpression", Lang, Warning,
        "a regular (sub)expression denotes the empty language";
    LANG002 = "LANG002", "nullable-star-body", Lang, Warning,
        "a starred or plussed body already matches the empty word";
    LANG003 = "LANG003", "empty-finitary-property", Lang, Warning,
        "the finitary property contains no word";
    LANG004 = "LANG004", "universal-finitary-property", Lang, Info,
        "the finitary property is all of Sigma-plus";
    LANG005 = "LANG005", "no-prefix-closed-kernel", Lang, Warning,
        "the property is non-empty but has no prefix-closed word, so A(Phi) is empty";
    LANG006 = "LANG006", "degenerate-minex", Lang, Warning,
        "minex of two non-empty properties is empty, so R(Phi1) and R(Phi2) never co-occur";
    FTS001 = "FTS001", "dead-transition", Fts, Warning,
        "a transition is never enabled in any reachable state";
    FTS002 = "FTS002", "no-edge-transition", Fts, Warning,
        "a transition has no edges at all";
    FTS003 = "FTS003", "unschedulable-fairness", Fts, Warning,
        "a fairness requirement is attached to a transition that is never enabled";
    FTS004 = "FTS004", "constant-variable", Fts, Warning,
        "a program variable with a non-trivial domain takes a single value on all reachable states";
    FTS005 = "FTS005", "statically-unsatisfiable-guard", Fts, Warning,
        "a command guard is false under every in-domain valuation (abstractly unsatisfiable)";
    FTS006 = "FTS006", "unreachable-location", Fts, Warning,
        "a program-counter value is unreachable in the abstract invariant";
    FTS007 = "FTS007", "invariant-certificate-failure", Fts, Error,
        "the abstract invariant failed independent certification (internal analysis error)";
    FTS008 = "FTS008", "relationally-dead-command", Fts, Warning,
        "a command guard is feasible under the per-variable masks but infeasible under the certified pair relations";
    SUITE001 = "SUITE001", "redundant-property", Suite, Warning,
        "the property is implied by the conjunction of the rest of the suite";
    SUITE002 = "SUITE002", "duplicate-property", Suite, Warning,
        "another suite member recognizes exactly the same language";
    SUITE003 = "SUITE003", "conflicting-pair", Suite, Error,
        "two satisfiable properties are jointly unsatisfiable (their intersection is empty)";
    SUITE004 = "SUITE004", "class-overkill", Suite, Info,
        "relative to the rest of the suite, a strictly lower hierarchy class would suffice";
    SUITE005 = "SUITE005", "dead-atomic-proposition", Suite, Warning,
        "an atomic proposition is constrained by no property in the suite";
}

/// Looks up a rule by its code.
pub fn rule(code: &str) -> Option<&'static RuleInfo> {
    CATALOGUE.iter().find(|r| r.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_wellformed() {
        for (i, r) in CATALOGUE.iter().enumerate() {
            assert!(r.code.chars().all(|c| c.is_ascii_alphanumeric()));
            assert!(!r.name.is_empty() && !r.summary.is_empty());
            for other in &CATALOGUE[i + 1..] {
                assert_ne!(r.code, other.code, "duplicate rule code");
                assert_ne!(r.name, other.name, "duplicate rule name");
            }
        }
        assert_eq!(CATALOGUE.len(), 33);
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(rule("AUT006").unwrap().name, "redundant-streett-pair");
        assert_eq!(rule("LOGIC005").unwrap().severity, Severity::Info);
        assert!(rule("NOPE01").is_none());
    }

    #[test]
    fn layers_cover_all_substrates_and_the_suite() {
        for layer in [
            Layer::Logic,
            Layer::Automata,
            Layer::Lang,
            Layer::Fts,
            Layer::Suite,
        ] {
            assert!(CATALOGUE.iter().any(|r| r.layer == layer));
        }
    }
}
