//! Fair-transition-system lints (`FTS001`–`FTS007`).
//!
//! `lint_system` inspects a finished [`TransitionSystem`]: a transition
//! with no edges at all (`FTS002`), a transition none of whose source
//! states is reachable (`FTS001` — the transition can never be taken), and
//! the aggravated form of the latter where the dead transition also
//! carries a fairness requirement (`FTS003` — the scheduler is asked to be
//! fair to something unschedulable, which silently weakens the fairness
//! assumption to a no-op). `lint_program` builds a [`ProgramBuilder`] and
//! additionally checks each declared variable against the reachable
//! valuations (`FTS004`: a variable with a non-trivial domain that never
//! changes).
//!
//! `lint_abstract_program` is the *semantic* entry point for the
//! declarative IR: it runs the abstract-interpretation engine of
//! [`hierarchy_fts::absint`] and proves its findings from the certified
//! invariant — no state enumeration. It reports `FTS005` (a guard false
//! under every in-domain valuation), the invariant-backed forms of
//! `FTS001`/`FTS003` (a satisfiable guard that is still infeasible at
//! every abstractly reachable location) and `FTS004` (a variable whose
//! reachable value set collapses), `FTS006` (an unreachable program
//! location), and `FTS007` when the invariant itself fails independent
//! certification — a should-never-happen internal error that, per the
//! soundness contract, suppresses every invariant-derived finding.

use crate::diagnostic::{Diagnostic, Location};
use crate::registry::{self, RuleInfo};
use hierarchy_fts::absint::{
    self, Domain, DomainKind, Invariant, IrError, Program, ValueSetDomain,
};
use hierarchy_fts::builder::{BuildError, ProgramBuilder};
use hierarchy_fts::system::{Fairness, TransitionSystem};

fn diag(rule: &RuleInfo, location: Location, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(rule.code, rule.severity, location, message)
}

/// States reachable from the initial states by any transition edge.
fn reachable_states(ts: &TransitionSystem) -> Vec<bool> {
    let mut seen = vec![false; ts.num_states()];
    let mut stack: Vec<usize> = ts.initial_states().to_vec();
    for &s in ts.initial_states() {
        seen[s] = true;
    }
    while let Some(s) = stack.pop() {
        for t in ts.successors(s) {
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    seen
}

/// Lints a transition system.
pub fn lint_system(ts: &TransitionSystem) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let reachable = reachable_states(ts);
    for t in ts.transitions() {
        if t.edges.is_empty() {
            out.push(
                diag(
                    &registry::FTS002,
                    Location::Transition(t.name.clone()),
                    "the transition has no edges",
                )
                .with_suggestion("remove it or give it edges"),
            );
            continue; // FTS001/FTS003 would just restate this.
        }
        let enabled_somewhere = t.edges.iter().any(|&(from, _)| reachable[from]);
        if enabled_somewhere {
            continue;
        }
        if t.fairness == Fairness::None {
            out.push(
                diag(
                    &registry::FTS001,
                    Location::Transition(t.name.clone()),
                    "the transition is never enabled in any reachable state",
                )
                .with_suggestion("its edges start only in unreachable states"),
            );
        } else {
            let kind = match t.fairness {
                Fairness::Weak => "weak (justice)",
                Fairness::Strong => "strong (compassion)",
                Fairness::None => unreachable!(),
            };
            out.push(
                diag(
                    &registry::FTS003,
                    Location::Transition(t.name.clone()),
                    format!(
                        "a {kind} fairness requirement is attached to a transition that is \
                         never enabled"
                    ),
                )
                .with_suggestion("the requirement is vacuously met and constrains no computation"),
            );
        }
    }
    out
}

/// Builds the program and lints the result: `FTS004` constant variables
/// plus all of [`lint_system`] on the underlying transition system.
///
/// # Errors
///
/// Propagates the builder's own [`BuildError`] (an ill-formed program is a
/// build failure, not a lint finding).
pub fn lint_program(program: &ProgramBuilder) -> Result<Vec<Diagnostic>, BuildError> {
    let (ts, valuations) = program.build_with_valuations()?;
    let mut out = Vec::new();
    for (i, (name, &dom)) in program
        .var_names()
        .iter()
        .zip(program.domains())
        .enumerate()
    {
        if dom <= 1 {
            continue; // a one-value domain is constant by declaration
        }
        let mut values = valuations.iter().map(|v| v[i]);
        if let Some(first) = values.next() {
            if values.all(|v| v == first) {
                out.push(
                    diag(
                        &registry::FTS004,
                        Location::Variable(name.clone()),
                        format!(
                            "declared over a domain of {dom} values but equal to {first} in \
                             every reachable state"
                        ),
                    )
                    .with_suggestion(
                        "shrink the domain or fix the transitions that should \
                                      update it",
                    ),
                );
            }
        }
    }
    out.extend(lint_system(&ts));
    Ok(out)
}

fn fairness_kind(f: Fairness) -> &'static str {
    match f {
        Fairness::Weak => "weak (justice)",
        Fairness::Strong => "strong (compassion)",
        Fairness::None => "no",
    }
}

/// Semantic lints for a declarative program: validates it, runs the
/// pair-relation abstract interpretation (the most precise domain, so
/// the relational rule FTS008 gets its evidence), and delegates to
/// [`lint_abstract_program_ctx`]. Nothing here enumerates states.
///
/// # Errors
///
/// The program's own [`IrError`] when it fails
/// [`Program::validate`] (an ill-formed program is not a lint finding).
pub fn lint_abstract_program(program: &Program) -> Result<Vec<Diagnostic>, IrError> {
    program.validate()?;
    let inv = absint::analyze(program, DomainKind::Relational);
    Ok(lint_abstract_program_ctx(program, &inv))
}

/// Semantic lints against an already-computed invariant (use this when
/// an [`Invariant`] is at hand from checking or benchmarking; the
/// program must have passed [`Program::validate`]).
///
/// The invariant is re-certified first. On certification failure the
/// only findings are `FTS007` plus the envelope-level `FTS005` checks,
/// which do not depend on the invariant — trusting a broken certificate
/// could turn an analysis bug into false "dead code" reports.
pub fn lint_abstract_program_ctx(program: &Program, inv: &Invariant) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cert_ok =
        match absint::certify(program, inv) {
            Ok(()) => true,
            Err(e) => {
                out.push(
                diag(
                    &registry::FTS007,
                    Location::Root,
                    format!("the {} invariant failed certification: {e}", inv.domain.name()),
                )
                .with_suggestion(
                    "this is an internal analysis error; invariant-derived lints were suppressed",
                ),
            );
                false
            }
        };

    // FTS005 needs no invariant: the guard is refuted over the full
    // domain envelope, so no valuation whatsoever satisfies it.
    let top: Vec<u64> = program
        .domains
        .iter()
        .map(|&d| <ValueSetDomain as Domain>::top(d))
        .collect();
    let mut unsat = vec![false; program.commands.len()];
    for (i, cmd) in program.commands.iter().enumerate() {
        if absint::assume::<ValueSetDomain>(&cmd.guard, &top, &program.domains).is_none() {
            unsat[i] = true;
            out.push(
                diag(
                    &registry::FTS005,
                    Location::Transition(cmd.name.clone()),
                    "the guard is false under every in-domain valuation",
                )
                .with_suggestion("the command is dead code regardless of reachability"),
            );
        }
    }
    if !cert_ok {
        return out;
    }

    // Invariant-backed FTS001/FTS003: the guard is satisfiable in
    // principle (no FTS005) but infeasible at every abstractly reachable
    // location — statically proven dead, where the syntactic rules would
    // need the enumerated system.
    let nlocs = inv.locations.len();
    let mut mask_feasible = vec![false; program.commands.len()];
    for (i, cmd) in program.commands.iter().enumerate() {
        if unsat[i] {
            continue;
        }
        mask_feasible[i] = (0..nlocs).any(|l| {
            inv.location_reachable(l)
                && absint::assume::<ValueSetDomain>(
                    &cmd.guard,
                    &inv.locations[l].values,
                    &program.domains,
                )
                .is_some()
        });
        if mask_feasible[i] {
            continue;
        }
        if cmd.fairness == Fairness::None {
            out.push(
                diag(
                    &registry::FTS001,
                    Location::Transition(cmd.name.clone()),
                    "the guard is infeasible at every abstractly reachable location",
                )
                .with_suggestion("proven dead by the certified invariant, without enumeration"),
            );
        } else {
            out.push(
                diag(
                    &registry::FTS003,
                    Location::Transition(cmd.name.clone()),
                    format!(
                        "a {} fairness requirement is attached to a command whose guard is \
                         infeasible at every abstractly reachable location",
                        fairness_kind(cmd.fairness)
                    ),
                )
                .with_suggestion("the requirement is vacuously met and constrains no computation"),
            );
        }
    }

    // FTS008: the guard survives the per-variable masks (so FTS001/FTS003
    // stay silent) yet no pair of the certified relational invariant
    // admits it anywhere — the command is dead for a reason the
    // cartesian view provably cannot express (a lost correlation, e.g. a
    // broken turn/pc coupling or a desynchronized ring token).
    if inv.has_relations() {
        for (i, cmd) in program.commands.iter().enumerate() {
            if unsat[i] || !mask_feasible[i] {
                continue;
            }
            if (0..nlocs).any(|l| inv.guard_feasible_rel(l, &cmd.guard)) {
                continue;
            }
            out.push(
                diag(
                    &registry::FTS008,
                    Location::Transition(cmd.name.clone()),
                    "the guard is feasible under the per-variable masks but infeasible \
                     under the certified pair relations at every reachable location",
                )
                .with_suggestion(
                    "proven dead by a variable correlation the cartesian domains cannot see",
                ),
            );
        }
    }

    // FTS006: a declared pc value no abstract execution reaches.
    if let Some(p) = inv.pc {
        let pc_name = &program.var_names[p];
        for l in 0..nlocs {
            if !inv.location_reachable(l) {
                out.push(
                    diag(
                        &registry::FTS006,
                        Location::Variable(pc_name.clone()),
                        format!("location {pc_name} = {l} is abstractly unreachable"),
                    )
                    .with_suggestion("shrink the pc domain or fix the commands meant to reach it"),
                );
            }
        }
    }

    // Invariant-backed FTS004: the union over reachable locations of a
    // variable's value set collapses to a single value (constant) or a
    // strict subset of its domain (dead values). The pc is skipped —
    // FTS006 reports its unreachable values per location.
    for (x, (name, &dom)) in program.var_names.iter().zip(&program.domains).enumerate() {
        if dom <= 1 || Some(x) == inv.pc {
            continue;
        }
        let mask = inv.union_mask(x);
        let full = <ValueSetDomain as Domain>::top(dom);
        if mask.count_ones() == 1 {
            out.push(
                diag(
                    &registry::FTS004,
                    Location::Variable(name.clone()),
                    format!(
                        "declared over a domain of {dom} values but abstractly equal to {} in \
                         every reachable state",
                        mask.trailing_zeros()
                    ),
                )
                .with_suggestion("shrink the domain or fix the commands that should update it"),
            );
        } else if mask != full && mask != 0 {
            let dead: Vec<usize> = (0..dom).filter(|&v| mask >> v & 1 == 0).collect();
            out.push(
                diag(
                    &registry::FTS004,
                    Location::Variable(name.clone()),
                    format!("never takes the declared value(s) {dead:?} in any reachable state"),
                )
                .with_suggestion("shrink the domain to the values actually used"),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_fts::programs;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    /// A 3-state system: 0 ↔ 1 reachable, state 2 isolated.
    fn toy(extra: impl FnOnce(&mut TransitionSystem)) -> TransitionSystem {
        let sigma = Alphabet::new(["x", "y"]).unwrap();
        let x = sigma.symbol("x").unwrap();
        let y = sigma.symbol("y").unwrap();
        let mut ts = TransitionSystem::new(&sigma);
        for obs in [x, y, y] {
            ts.add_state(obs);
        }
        ts.set_initial(0);
        ts.add_transition("step", vec![(0, 1), (1, 0)], Fairness::Weak);
        extra(&mut ts);
        ts
    }

    #[test]
    fn healthy_system_is_clean() {
        let ts = toy(|_| {});
        assert!(lint_system(&ts).is_empty());
    }

    #[test]
    fn edgeless_transition_fires_fts002_only() {
        let ts = toy(|ts| {
            ts.add_transition("ghost", vec![], Fairness::Strong);
        });
        let diags = lint_system(&ts);
        assert_eq!(codes(&diags), vec!["FTS002"]);
        assert_eq!(diags[0].location, Location::Transition("ghost".to_string()));
    }

    #[test]
    fn dead_unfair_transition_fires_fts001() {
        let ts = toy(|ts| {
            ts.add_transition("stuck", vec![(2, 2)], Fairness::None);
        });
        assert_eq!(codes(&lint_system(&ts)), vec!["FTS001"]);
    }

    #[test]
    fn dead_fair_transition_fires_fts003() {
        for fairness in [Fairness::Weak, Fairness::Strong] {
            let ts = toy(|ts| {
                ts.add_transition("stuck", vec![(2, 0)], fairness);
            });
            let diags = lint_system(&ts);
            assert_eq!(codes(&diags), vec!["FTS003"], "{fairness:?}: {diags:?}");
        }
    }

    #[test]
    fn constant_variable_fires_fts004() {
        // One live counter and one frozen flag with a two-value domain.
        let sigma = Alphabet::new(["lo", "hi"]).unwrap();
        let mut p = ProgramBuilder::new(&sigma);
        let c = p.var("count", 3);
        let _frozen = p.var("frozen", 2);
        p.init(&[0, 0]);
        p.command(
            "tick",
            Fairness::Weak,
            |_| true,
            move |v| {
                let mut w = v.to_vec();
                w[c] = (v[c] + 1) % 3;
                vec![w]
            },
        );
        p.observe(move |v, sigma| sigma.symbol(if v[c] == 2 { "hi" } else { "lo" }).unwrap());
        let diags = lint_program(&p).unwrap();
        assert_eq!(codes(&diags), vec!["FTS004"]);
        assert_eq!(diags[0].location, Location::Variable("frozen".to_string()));
    }

    #[test]
    fn healthy_program_is_clean() {
        let sigma = Alphabet::new(["lo", "hi"]).unwrap();
        let mut p = ProgramBuilder::new(&sigma);
        let c = p.var("count", 3);
        p.init(&[0]);
        p.command(
            "tick",
            Fairness::Weak,
            |_| true,
            move |v| vec![vec![(v[c] + 1) % 3]],
        );
        p.observe(move |v, sigma| sigma.symbol(if v[c] == 2 { "hi" } else { "lo" }).unwrap());
        assert!(lint_program(&p).unwrap().is_empty());
    }

    #[test]
    fn paper_programs_are_clean() {
        for (name, (ts, _)) in [
            ("peterson", programs::peterson()),
            ("mux_sem", programs::mux_sem(Fairness::Strong)),
            ("token_ring", programs::token_ring(true)),
        ] {
            let diags = lint_system(&ts);
            assert!(diags.is_empty(), "{name}: {diags:?}");
        }
    }

    use hierarchy_fts::absint::{analyze, Branch, Expr, Guard};

    #[test]
    fn abstract_paper_programs_are_clean() {
        for (name, prog) in [
            ("mux_sem", absint::mux_sem_abs(Fairness::Strong)),
            ("token_ring", absint::token_ring_abs(true)),
            ("peterson", absint::peterson_abs()),
        ] {
            let diags = lint_abstract_program(&prog).unwrap();
            assert!(diags.is_empty(), "{name}: {diags:?}");
        }
    }

    /// A two-variable program: `x` cycles through 0..3, `y` is frozen.
    fn toy_abs() -> Program {
        let mut p = Program::new();
        let x = p.var("x", 3);
        let _y = p.var("y", 2);
        p.set_pc(x);
        p.init(&[0, 0]);
        p.observe_prop(Guard::var_eq(x, 2));
        p.command(
            "tick",
            Fairness::Weak,
            Guard::True,
            vec![Branch::assign(vec![(
                x,
                Expr::v(x).add(Expr::c(1)).modulo(3),
            )])],
        );
        p
    }

    #[test]
    fn fts005_fires_on_unsatisfiable_guard() {
        let mut p = toy_abs();
        p.command(
            "never",
            Fairness::None,
            Guard::var_eq(0, 0).and(Guard::var_eq(0, 1)),
            vec![Branch::skip()],
        );
        let diags = lint_abstract_program(&p).unwrap();
        // FTS005, and only FTS005, for the contradictory guard (FTS001
        // would merely restate it); FTS004 still reports the frozen y.
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.location == Location::Transition("never".to_string()))
                .map(|d| d.code)
                .collect::<Vec<_>>(),
            vec!["FTS005"]
        );
    }

    #[test]
    fn semantic_dead_command_fires_fts001_or_fts003() {
        // `y` is frozen at 0, so a guard on y = 1 is satisfiable in
        // principle but infeasible at every reachable location — only
        // the invariant can see that.
        for (fairness, code) in [(Fairness::None, "FTS001"), (Fairness::Strong, "FTS003")] {
            let mut p = toy_abs();
            p.command("ghost", fairness, Guard::var_eq(1, 1), vec![Branch::skip()]);
            let diags = lint_abstract_program(&p).unwrap();
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == code
                        && d.location == Location::Transition("ghost".to_string())),
                "{fairness:?}: {diags:?}"
            );
        }
    }

    #[test]
    fn fts006_fires_on_unreachable_location() {
        // pc over {0,1,2} but the only command toggles 0 ↔ 1.
        let mut p = Program::new();
        let x = p.var("pc", 3);
        p.set_pc(x);
        p.init(&[0]);
        p.observe_prop(Guard::var_eq(x, 1));
        p.command(
            "toggle",
            Fairness::Weak,
            Guard::True,
            vec![Branch::assign(vec![(
                x,
                Expr::c(1).sub(Expr::v(x)).modulo(3),
            )])],
        );
        let diags = lint_abstract_program(&p).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.code == "FTS006" && d.message.contains("pc = 2")),
            "{diags:?}"
        );
    }

    #[test]
    fn fts004_semantic_constant_and_dead_values() {
        // Frozen y: constant form.
        let diags = lint_abstract_program(&toy_abs()).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.code == "FTS004" && d.location == Location::Variable("y".to_string())),
            "{diags:?}"
        );
        // z bounces between 0 and 2 inside a domain of 4: dead-values form.
        let mut p = Program::new();
        let z = p.var("z", 4);
        p.init(&[0]);
        p.observe_prop(Guard::var_eq(z, 2));
        p.command(
            "bounce",
            Fairness::Weak,
            Guard::True,
            vec![Branch::assign(vec![(
                z,
                Expr::c(2).sub(Expr::v(z)).modulo(4),
            )])],
        );
        let diags = lint_abstract_program(&p).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.code == "FTS004" && d.message.contains("never takes")),
            "{diags:?}"
        );
    }

    #[test]
    fn fts007_suppresses_invariant_rules() {
        let p = toy_abs();
        let mut inv = analyze(&p, hierarchy_fts::absint::DomainKind::ValueSets);
        // Corrupt the certificate: claim location 1 is unreachable.
        for m in &mut inv.locations[1].values {
            *m = 0;
        }
        let diags = lint_abstract_program_ctx(&p, &inv);
        assert_eq!(diags[0].code, "FTS007");
        assert!(
            !diags
                .iter()
                .any(|d| matches!(d.code, "FTS001" | "FTS003" | "FTS004" | "FTS006")),
            "invariant-derived rules must be suppressed: {diags:?}"
        );
    }

    #[test]
    fn invalid_program_is_an_error_not_a_finding() {
        let p = Program::new();
        assert!(lint_abstract_program(&p).is_err());
    }
}
