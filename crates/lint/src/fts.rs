//! Fair-transition-system lints (`FTS001`–`FTS004`).
//!
//! `lint_system` inspects a finished [`TransitionSystem`]: a transition
//! with no edges at all (`FTS002`), a transition none of whose source
//! states is reachable (`FTS001` — the transition can never be taken), and
//! the aggravated form of the latter where the dead transition also
//! carries a fairness requirement (`FTS003` — the scheduler is asked to be
//! fair to something unschedulable, which silently weakens the fairness
//! assumption to a no-op). `lint_program` builds a [`ProgramBuilder`] and
//! additionally checks each declared variable against the reachable
//! valuations (`FTS004`: a variable with a non-trivial domain that never
//! changes).

use crate::diagnostic::{Diagnostic, Location};
use crate::registry::{self, RuleInfo};
use hierarchy_fts::builder::{BuildError, ProgramBuilder};
use hierarchy_fts::system::{Fairness, TransitionSystem};

fn diag(rule: &RuleInfo, location: Location, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(rule.code, rule.severity, location, message)
}

/// States reachable from the initial states by any transition edge.
fn reachable_states(ts: &TransitionSystem) -> Vec<bool> {
    let mut seen = vec![false; ts.num_states()];
    let mut stack: Vec<usize> = ts.initial_states().to_vec();
    for &s in ts.initial_states() {
        seen[s] = true;
    }
    while let Some(s) = stack.pop() {
        for t in ts.successors(s) {
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    seen
}

/// Lints a transition system.
pub fn lint_system(ts: &TransitionSystem) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let reachable = reachable_states(ts);
    for t in ts.transitions() {
        if t.edges.is_empty() {
            out.push(
                diag(
                    &registry::FTS002,
                    Location::Transition(t.name.clone()),
                    "the transition has no edges",
                )
                .with_suggestion("remove it or give it edges"),
            );
            continue; // FTS001/FTS003 would just restate this.
        }
        let enabled_somewhere = t.edges.iter().any(|&(from, _)| reachable[from]);
        if enabled_somewhere {
            continue;
        }
        if t.fairness == Fairness::None {
            out.push(
                diag(
                    &registry::FTS001,
                    Location::Transition(t.name.clone()),
                    "the transition is never enabled in any reachable state",
                )
                .with_suggestion("its edges start only in unreachable states"),
            );
        } else {
            let kind = match t.fairness {
                Fairness::Weak => "weak (justice)",
                Fairness::Strong => "strong (compassion)",
                Fairness::None => unreachable!(),
            };
            out.push(
                diag(
                    &registry::FTS003,
                    Location::Transition(t.name.clone()),
                    format!(
                        "a {kind} fairness requirement is attached to a transition that is \
                         never enabled"
                    ),
                )
                .with_suggestion("the requirement is vacuously met and constrains no computation"),
            );
        }
    }
    out
}

/// Builds the program and lints the result: `FTS004` constant variables
/// plus all of [`lint_system`] on the underlying transition system.
///
/// # Errors
///
/// Propagates the builder's own [`BuildError`] (an ill-formed program is a
/// build failure, not a lint finding).
pub fn lint_program(program: &ProgramBuilder) -> Result<Vec<Diagnostic>, BuildError> {
    let (ts, valuations) = program.build_with_valuations()?;
    let mut out = Vec::new();
    for (i, (name, &dom)) in program
        .var_names()
        .iter()
        .zip(program.domains())
        .enumerate()
    {
        if dom <= 1 {
            continue; // a one-value domain is constant by declaration
        }
        let mut values = valuations.iter().map(|v| v[i]);
        if let Some(first) = values.next() {
            if values.all(|v| v == first) {
                out.push(
                    diag(
                        &registry::FTS004,
                        Location::Variable(name.clone()),
                        format!(
                            "declared over a domain of {dom} values but equal to {first} in \
                             every reachable state"
                        ),
                    )
                    .with_suggestion(
                        "shrink the domain or fix the transitions that should \
                                      update it",
                    ),
                );
            }
        }
    }
    out.extend(lint_system(&ts));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_fts::programs;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    /// A 3-state system: 0 ↔ 1 reachable, state 2 isolated.
    fn toy(extra: impl FnOnce(&mut TransitionSystem)) -> TransitionSystem {
        let sigma = Alphabet::new(["x", "y"]).unwrap();
        let x = sigma.symbol("x").unwrap();
        let y = sigma.symbol("y").unwrap();
        let mut ts = TransitionSystem::new(&sigma);
        for obs in [x, y, y] {
            ts.add_state(obs);
        }
        ts.set_initial(0);
        ts.add_transition("step", vec![(0, 1), (1, 0)], Fairness::Weak);
        extra(&mut ts);
        ts
    }

    #[test]
    fn healthy_system_is_clean() {
        let ts = toy(|_| {});
        assert!(lint_system(&ts).is_empty());
    }

    #[test]
    fn edgeless_transition_fires_fts002_only() {
        let ts = toy(|ts| {
            ts.add_transition("ghost", vec![], Fairness::Strong);
        });
        let diags = lint_system(&ts);
        assert_eq!(codes(&diags), vec!["FTS002"]);
        assert_eq!(diags[0].location, Location::Transition("ghost".to_string()));
    }

    #[test]
    fn dead_unfair_transition_fires_fts001() {
        let ts = toy(|ts| {
            ts.add_transition("stuck", vec![(2, 2)], Fairness::None);
        });
        assert_eq!(codes(&lint_system(&ts)), vec!["FTS001"]);
    }

    #[test]
    fn dead_fair_transition_fires_fts003() {
        for fairness in [Fairness::Weak, Fairness::Strong] {
            let ts = toy(|ts| {
                ts.add_transition("stuck", vec![(2, 0)], fairness);
            });
            let diags = lint_system(&ts);
            assert_eq!(codes(&diags), vec!["FTS003"], "{fairness:?}: {diags:?}");
        }
    }

    #[test]
    fn constant_variable_fires_fts004() {
        // One live counter and one frozen flag with a two-value domain.
        let sigma = Alphabet::new(["lo", "hi"]).unwrap();
        let mut p = ProgramBuilder::new(&sigma);
        let c = p.var("count", 3);
        let _frozen = p.var("frozen", 2);
        p.init(&[0, 0]);
        p.command(
            "tick",
            Fairness::Weak,
            |_| true,
            move |v| {
                let mut w = v.to_vec();
                w[c] = (v[c] + 1) % 3;
                vec![w]
            },
        );
        p.observe(move |v, sigma| sigma.symbol(if v[c] == 2 { "hi" } else { "lo" }).unwrap());
        let diags = lint_program(&p).unwrap();
        assert_eq!(codes(&diags), vec!["FTS004"]);
        assert_eq!(diags[0].location, Location::Variable("frozen".to_string()));
    }

    #[test]
    fn healthy_program_is_clean() {
        let sigma = Alphabet::new(["lo", "hi"]).unwrap();
        let mut p = ProgramBuilder::new(&sigma);
        let c = p.var("count", 3);
        p.init(&[0]);
        p.command(
            "tick",
            Fairness::Weak,
            |_| true,
            move |v| vec![vec![(v[c] + 1) % 3]],
        );
        p.observe(move |v, sigma| sigma.symbol(if v[c] == 2 { "hi" } else { "lo" }).unwrap());
        assert!(lint_program(&p).unwrap().is_empty());
    }

    #[test]
    fn paper_programs_are_clean() {
        for (name, (ts, _)) in [
            ("peterson", programs::peterson()),
            ("mux_sem", programs::mux_sem(Fairness::Strong)),
            ("token_ring", programs::token_ring(true)),
        ] {
            let diags = lint_system(&ts);
            assert!(diags.is_empty(), "{name}: {diags:?}");
        }
    }
}
