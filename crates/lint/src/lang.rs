//! Finitary-language lints (`LANG001`–`LANG006`).
//!
//! Two syntactic rules walk [`Regex`] trees (`LANG001` empty
//! subexpressions, `LANG002` nullable star bodies); the semantic rules
//! decide emptiness and universality of a [`FinitaryProperty`] and the
//! health of the paper's finitary-to-infinitary operators: `LANG005`
//! flags a non-empty Φ whose safety closure `A(Φ)` is nevertheless empty
//! (Φ has no prefix-closed word), and `LANG006` flags a degenerate
//! `minex(Φ₁, Φ₂)` for non-empty operands, which makes the derived
//! reactivity property `R(Φ₁) ∧ ¬R(Φ₂)`-style combinations collapse.

use crate::diagnostic::{Diagnostic, Location};
use crate::registry::{self, RuleInfo};
use hierarchy_lang::finitary::FinitaryProperty;
use hierarchy_lang::regex::Regex;

fn diag(rule: &RuleInfo, location: Location, message: impl Into<String>) -> Diagnostic {
    Diagnostic::new(rule.code, rule.severity, location, message)
}

/// Lints a regular expression (purely structural; no automaton is built).
pub fn lint_regex(regex: &Regex) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen1: Vec<String> = Vec::new();
    let mut seen2: Vec<String> = Vec::new();
    walk(regex, &mut |r| {
        lang001(r, &mut seen1, &mut out);
        lang002(r, &mut seen2, &mut out);
    });
    // The whole expression denoting ∅ deserves a root-level finding even
    // when no literal `Empty` node exists at the top.
    if denotes_empty(regex) && !matches!(regex, Regex::Empty) {
        out.push(
            diag(
                &registry::LANG001,
                Location::Root,
                "the whole expression denotes the empty language",
            )
            .with_suggestion("every branch is killed by an empty factor"),
        );
    }
    out
}

fn walk(r: &Regex, visit: &mut impl FnMut(&Regex)) {
    visit(r);
    match r {
        Regex::Concat(xs) | Regex::Union(xs) => xs.iter().for_each(|x| walk(x, visit)),
        Regex::Star(x) | Regex::Plus(x) => walk(x, visit),
        _ => {}
    }
}

/// Structural emptiness, without building a DFA.
fn denotes_empty(r: &Regex) -> bool {
    match r {
        Regex::Empty => true,
        Regex::Epsilon | Regex::Sym(_) | Regex::AnySym | Regex::Star(_) => false,
        Regex::Concat(xs) => xs.iter().any(denotes_empty),
        Regex::Union(xs) => xs.iter().all(denotes_empty),
        Regex::Plus(x) => denotes_empty(x),
    }
}

/// LANG001: literal `∅` nodes.
fn lang001(r: &Regex, seen: &mut Vec<String>, out: &mut Vec<Diagnostic>) {
    let trigger = match r {
        Regex::Empty => Some("the empty-language constant appears in the expression"),
        Regex::Concat(xs) if xs.iter().any(denotes_empty) => {
            Some("a concatenation factor denotes the empty language, killing the product")
        }
        _ => None,
    };
    if let Some(msg) = trigger {
        // Only report composite nodes once; `Empty` itself is reported at
        // each distinct enclosing display form via the dedup key.
        let label = r.to_string();
        if !seen.contains(&label) {
            seen.push(label.clone());
            out.push(
                diag(&registry::LANG001, Location::Fragment(label), msg)
                    .with_suggestion("remove the empty branch"),
            );
        }
    }
}

/// LANG002: `x*` or `x⁺` where `x` already matches ε.
fn lang002(r: &Regex, seen: &mut Vec<String>, out: &mut Vec<Diagnostic>) {
    let body = match r {
        Regex::Star(x) | Regex::Plus(x) => x,
        _ => return,
    };
    if body.matches_epsilon() {
        let label = r.to_string();
        if !seen.contains(&label) {
            seen.push(label.clone());
            out.push(
                diag(
                    &registry::LANG002,
                    Location::Fragment(label),
                    "the iterated body already matches the empty word",
                )
                .with_suggestion("drop the inner nullable iteration (e.g. (x*)* = x*)"),
            );
        }
    }
}

/// Lints a finitary property: `LANG003` emptiness, `LANG004` universality,
/// `LANG005` empty safety kernel.
pub fn lint_finitary(phi: &FinitaryProperty) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if phi.is_empty() {
        out.push(
            diag(
                &registry::LANG003,
                Location::Root,
                "the finitary property contains no word",
            )
            .with_suggestion("A, E, R, and P of the empty property are all degenerate"),
        );
        return out;
    }
    if phi.equivalent(&FinitaryProperty::sigma_plus(phi.alphabet())) {
        out.push(diag(
            &registry::LANG004,
            Location::Root,
            "the finitary property is all of Σ⁺",
        ));
    }
    if phi.a_f().is_empty() {
        out.push(
            diag(
                &registry::LANG005,
                Location::Root,
                "the property has no prefix-closed word: A(Φ) is the empty ω-property",
            )
            .with_suggestion(
                "no infinite sequence has all its prefixes in Φ; if a safety property was \
                 intended, close Φ under prefixes first",
            ),
        );
    }
    out
}

/// Lints a `minex` combination: `LANG006` when both operands are
/// non-empty yet their minimal-extension product is empty.
pub fn lint_minex(phi1: &FinitaryProperty, phi2: &FinitaryProperty) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !phi1.is_empty() && !phi2.is_empty() && phi1.minex(phi2).is_empty() {
        out.push(
            diag(
                &registry::LANG006,
                Location::Root,
                "minex(Φ₁, Φ₂) is empty although both operands are non-empty",
            )
            .with_suggestion(
                "after any Φ₁-word, no extension re-enters Φ₂; the derived reactivity \
                 combination collapses",
            ),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;

    fn sigma() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn healthy_regexes_are_clean() {
        let s = sigma();
        for pat in ["a a* b*", "a* b", "(a b)*a", "a + b b"] {
            let r = Regex::parse(&s, pat).unwrap();
            assert!(lint_regex(&r).is_empty(), "{pat}: {:?}", lint_regex(&r));
        }
    }

    #[test]
    fn empty_subexpression_fires_lang001() {
        // No surface syntax for ∅; build the tree directly.
        let a = Regex::parse(&sigma(), "a").unwrap();
        let r = Regex::Union(vec![Regex::Concat(vec![a, Regex::Empty]), Regex::AnySym]);
        let diags = lint_regex(&r);
        assert!(codes(&diags).contains(&"LANG001"), "{diags:?}");
        assert!(!codes(&diags).contains(&"LANG002"));
    }

    #[test]
    fn whole_empty_expression_reports_at_root() {
        let r = Regex::Concat(vec![Regex::AnySym, Regex::Empty]);
        let diags = lint_regex(&r);
        assert!(
            diags.iter().any(|d| d.location == Location::Root),
            "{diags:?}"
        );
    }

    #[test]
    fn nullable_star_body_fires_lang002() {
        let s = sigma();
        let r = Regex::parse(&s, "(a*)*").unwrap();
        assert_eq!(codes(&lint_regex(&r)), vec!["LANG002"]);
        let plus = Regex::Plus(Box::new(Regex::Epsilon));
        assert_eq!(codes(&lint_regex(&plus)), vec!["LANG002"]);
    }

    #[test]
    fn empty_property_fires_lang003_only() {
        let phi = FinitaryProperty::empty(&sigma());
        assert_eq!(codes(&lint_finitary(&phi)), vec!["LANG003"]);
    }

    #[test]
    fn universal_property_fires_lang004() {
        let phi = FinitaryProperty::sigma_plus(&sigma());
        assert_eq!(codes(&lint_finitary(&phi)), vec!["LANG004"]);
    }

    #[test]
    fn prefix_closed_properties_are_clean() {
        let s = sigma();
        // The paper's Φ = a a* b*: prefix-closed words abound.
        let phi = FinitaryProperty::parse(&s, "a a* b*").unwrap();
        assert!(lint_finitary(&phi).is_empty());
    }

    #[test]
    fn no_prefix_closed_kernel_fires_lang005() {
        let s = sigma();
        // Every word ends in b but must start with a: no word has all its
        // prefixes inside the property, so A(Φ) is empty.
        let phi = FinitaryProperty::parse(&s, "a (a + b)* b").unwrap();
        let diags = lint_finitary(&phi);
        assert_eq!(codes(&diags), vec!["LANG005"], "{diags:?}");
    }

    #[test]
    fn minex_lints() {
        let s = sigma();
        let phi1 = FinitaryProperty::parse(&s, "a a*").unwrap();
        let phi2 = FinitaryProperty::parse(&s, "a* b").unwrap();
        // After any a-word, appending b lands in Φ₂: healthy.
        assert!(lint_minex(&phi1, &phi2).is_empty());
        // Φ₂'s single word is shorter than Φ₁'s, so it extends nothing:
        // minex is empty although both operands are non-empty.
        let long = FinitaryProperty::parse(&s, "a a").unwrap();
        let short = FinitaryProperty::parse(&s, "a").unwrap();
        assert_eq!(codes(&lint_minex(&long, &short)), vec!["LANG006"]);
        // Empty operands stay silent (LANG003's business, not LANG006's).
        let empty = FinitaryProperty::empty(&s);
        assert!(lint_minex(&FinitaryProperty::sigma_plus(&s), &empty).is_empty());
    }
}
