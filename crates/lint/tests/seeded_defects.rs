//! Seeded-defect sweep: inject a known defect into a random Streett
//! automaton and assert that exactly the corresponding diagnostic starts
//! firing — the lint report of the mutated automaton must equal the
//! baseline report plus the injected rule's code, nothing else.
//!
//! Seeds whose baseline already contains the injected code are skipped
//! (the defect would be masked); the sweep demands a minimum number of
//! usable seeds per injection so the assertions cannot silently pass on
//! an empty sample.

use hierarchy_automata::acceptance::Acceptance;
use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::analysis::Analysis;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::random::random_streett;
use hierarchy_automata::random::rng::{SeedableRng, StdRng};
use hierarchy_lint::lint_automaton;
use std::collections::BTreeSet;

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

fn codes(aut: &OmegaAutomaton) -> BTreeSet<&'static str> {
    lint_automaton(aut).into_iter().map(|d| d.code).collect()
}

/// Asserts that `mutated` fires exactly `baseline ∪ {injected}`.
fn assert_exactly_injected(
    seed: u64,
    injected: &'static str,
    baseline: &BTreeSet<&'static str>,
    mutated: &OmegaAutomaton,
) {
    let mut expected = baseline.clone();
    expected.insert(injected);
    let got = codes(mutated);
    assert_eq!(
        got, expected,
        "seed {seed}: injecting a {injected} defect changed the report beyond {injected}"
    );
}

#[test]
fn injected_unreachable_state_fires_aut003() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 10, 2, 0.5);
        let baseline = codes(&aut);
        if baseline.contains("AUT003") || baseline.contains("AUT001") {
            continue; // masked, or short-circuited by emptiness
        }
        // One extra state, self-looping, reachable from nowhere.
        let n = aut.num_states();
        let mutated = OmegaAutomaton::build(
            &sigma,
            n + 1,
            aut.initial(),
            |q, s| {
                if (q as usize) < n {
                    aut.step(q, s)
                } else {
                    q
                }
            },
            aut.acceptance().clone(),
        );
        assert_exactly_injected(seed, "AUT003", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT003");
}

#[test]
fn injected_duplicate_conjunct_fires_aut006() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 8, 2, 0.5);
        let baseline = codes(&aut);
        if baseline.contains("AUT006") || baseline.contains("AUT001") {
            continue; // masked, or short-circuited by emptiness
        }
        let Acceptance::And(xs) = aut.acceptance() else {
            continue;
        };
        // Duplicate the first Streett pair: dropping either copy now
        // provably leaves the language unchanged.
        let mut dup = xs.clone();
        dup.push(xs[0].clone());
        let mutated = aut.with_acceptance(Acceptance::And(dup));
        assert_exactly_injected(seed, "AUT006", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT006");
}

/// Adds `state` to the first non-empty `Inf` atom of the condition.
/// (Widening an empty atom would leave it cycle-free and fire `AUT005`
/// rather than `AUT007`.)
fn widen_first_inf(acc: &Acceptance, state: usize, done: &mut bool) -> Acceptance {
    match acc {
        Acceptance::Inf(s) if !*done && !s.is_empty() => {
            *done = true;
            let mut s = s.clone();
            s.insert(state);
            Acceptance::Inf(s)
        }
        Acceptance::And(xs) => {
            Acceptance::And(xs.iter().map(|x| widen_first_inf(x, state, done)).collect())
        }
        Acceptance::Or(xs) => {
            Acceptance::Or(xs.iter().map(|x| widen_first_inf(x, state, done)).collect())
        }
        other => other.clone(),
    }
}

/// Restricts every atom set to `keep` (the reachable cyclic region).
/// Language-preserving: infinity sets are subsets of `keep`, so both
/// `Inf` and `Fin` atoms only ever observe states inside it.
fn restrict_atoms(acc: &Acceptance, keep: &hierarchy_automata::bitset::BitSet) -> Acceptance {
    match acc {
        Acceptance::Inf(s) => Acceptance::Inf(s.intersection(keep)),
        Acceptance::Fin(s) => Acceptance::Fin(s.intersection(keep)),
        Acceptance::And(xs) => {
            Acceptance::And(xs.iter().map(|x| restrict_atoms(x, keep)).collect())
        }
        Acceptance::Or(xs) => Acceptance::Or(xs.iter().map(|x| restrict_atoms(x, keep)).collect()),
        other => other.clone(),
    }
}

#[test]
fn injected_transient_atom_state_fires_aut007() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..80u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // k = 1 keeps the top-level condition free of droppable conjuncts,
        // so AUT006 cannot be provoked as a side effect.
        let (raw, _) = random_streett(&mut rng, &sigma, 12, 1, 0.4);
        // Random atom sets almost always contain stray states already, so
        // first sanitize the acceptance: restrict every atom to the
        // reachable cyclic region (sound, see `restrict_atoms`), giving a
        // baseline without AUT007.
        let raw_ctx = Analysis::new(raw.clone());
        let cond = raw_ctx.condensation();
        let mut cyc = hierarchy_automata::bitset::BitSet::new();
        for c in 0..cond.status.len() {
            if cond.status[c].is_some() {
                cyc.union_with(&cond.sccs.member_set(c));
            }
        }
        let aut = raw.with_acceptance(restrict_atoms(raw.acceptance(), &cyc));
        let baseline = codes(&aut);
        if baseline.contains("AUT007") || baseline.contains("AUT001") {
            continue;
        }
        // A reachable state on no cycle (a transient SCC of the
        // condensation): after sanitizing, no atom mentions it.
        let transient = (0..cond.status.len())
            .filter(|&c| cond.status[c].is_none())
            .flat_map(|c| cond.sccs.member_set(c).iter().collect::<Vec<_>>())
            .next();
        let Some(q) = transient else { continue };
        let mut done = false;
        let widened = widen_first_inf(aut.acceptance(), q, &mut done);
        if !done {
            continue; // no Inf atom in this condition
        }
        let ctx = Analysis::new(aut.clone());
        let mutated = aut.with_acceptance(widened);
        // Soundness of the rule itself: the language must be unchanged.
        assert!(
            ctx.equivalent(&mutated),
            "seed {seed}: widening an Inf atom by a transient state changed the language"
        );
        assert_exactly_injected(seed, "AUT007", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT007");
}

#[test]
fn injected_constant_atom_fires_aut005() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 10, 1, 0.5);
        let baseline = codes(&aut);
        if baseline.contains("AUT005") || baseline.contains("AUT001") {
            continue;
        }
        // Conjoin Inf(∅): an atom that misses every cycle by construction.
        // Inf(∅) is unsatisfiable, so the conjunction empties the language
        // — which is why the injection targets an Or instead: Φ ∨ Inf(∅)
        // keeps the language and plants a constantly-false disjunct.
        let mutated = aut.with_acceptance(Acceptance::Or(vec![
            aut.acceptance().clone(),
            Acceptance::Inf(hierarchy_automata::bitset::BitSet::new()),
        ]));
        assert_exactly_injected(seed, "AUT005", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT005");
}
