//! Seeded-defect sweep: inject a known defect into a random Streett
//! automaton and assert that exactly the corresponding diagnostic starts
//! firing — the lint report of the mutated automaton must equal the
//! baseline report plus the injected rule's code, nothing else.
//!
//! Seeds whose baseline already contains the injected code are skipped
//! (the defect would be masked); the sweep demands a minimum number of
//! usable seeds per injection so the assertions cannot silently pass on
//! an empty sample.

use hierarchy_automata::acceptance::Acceptance;
use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::analysis::Analysis;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::random::random_streett;
use hierarchy_automata::random::rng::{SeedableRng, StdRng};
use hierarchy_lint::lint_automaton;
use std::collections::BTreeSet;

fn sigma() -> Alphabet {
    Alphabet::new(["a", "b"]).unwrap()
}

fn codes(aut: &OmegaAutomaton) -> BTreeSet<&'static str> {
    lint_automaton(aut).into_iter().map(|d| d.code).collect()
}

/// Asserts that `mutated` fires exactly `baseline ∪ {injected}`.
fn assert_exactly_injected(
    seed: u64,
    injected: &'static str,
    baseline: &BTreeSet<&'static str>,
    mutated: &OmegaAutomaton,
) {
    let mut expected = baseline.clone();
    expected.insert(injected);
    let got = codes(mutated);
    assert_eq!(
        got, expected,
        "seed {seed}: injecting a {injected} defect changed the report beyond {injected}"
    );
}

#[test]
fn injected_unreachable_state_fires_aut003() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 10, 2, 0.5);
        let baseline = codes(&aut);
        if baseline.contains("AUT003") || baseline.contains("AUT001") {
            continue; // masked, or short-circuited by emptiness
        }
        // One extra state, self-looping, reachable from nowhere.
        let n = aut.num_states();
        let mutated = OmegaAutomaton::build(
            &sigma,
            n + 1,
            aut.initial(),
            |q, s| {
                if (q as usize) < n {
                    aut.step(q, s)
                } else {
                    q
                }
            },
            aut.acceptance().clone(),
        );
        assert_exactly_injected(seed, "AUT003", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT003");
}

#[test]
fn injected_duplicate_conjunct_fires_aut006() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 8, 2, 0.5);
        let baseline = codes(&aut);
        if baseline.contains("AUT006") || baseline.contains("AUT001") {
            continue; // masked, or short-circuited by emptiness
        }
        let Acceptance::And(xs) = aut.acceptance() else {
            continue;
        };
        // Duplicate the first Streett pair: dropping either copy now
        // provably leaves the language unchanged.
        let mut dup = xs.clone();
        dup.push(xs[0].clone());
        let mutated = aut.with_acceptance(Acceptance::And(dup));
        assert_exactly_injected(seed, "AUT006", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT006");
}

/// Adds `state` to the first non-empty `Inf` atom of the condition.
/// (Widening an empty atom would leave it cycle-free and fire `AUT005`
/// rather than `AUT007`.)
fn widen_first_inf(acc: &Acceptance, state: usize, done: &mut bool) -> Acceptance {
    match acc {
        Acceptance::Inf(s) if !*done && !s.is_empty() => {
            *done = true;
            let mut s = s.clone();
            s.insert(state);
            Acceptance::Inf(s)
        }
        Acceptance::And(xs) => {
            Acceptance::And(xs.iter().map(|x| widen_first_inf(x, state, done)).collect())
        }
        Acceptance::Or(xs) => {
            Acceptance::Or(xs.iter().map(|x| widen_first_inf(x, state, done)).collect())
        }
        other => other.clone(),
    }
}

/// Restricts every atom set to `keep` (the reachable cyclic region).
/// Language-preserving: infinity sets are subsets of `keep`, so both
/// `Inf` and `Fin` atoms only ever observe states inside it.
fn restrict_atoms(acc: &Acceptance, keep: &hierarchy_automata::bitset::BitSet) -> Acceptance {
    match acc {
        Acceptance::Inf(s) => Acceptance::Inf(s.intersection(keep)),
        Acceptance::Fin(s) => Acceptance::Fin(s.intersection(keep)),
        Acceptance::And(xs) => {
            Acceptance::And(xs.iter().map(|x| restrict_atoms(x, keep)).collect())
        }
        Acceptance::Or(xs) => Acceptance::Or(xs.iter().map(|x| restrict_atoms(x, keep)).collect()),
        other => other.clone(),
    }
}

#[test]
fn injected_transient_atom_state_fires_aut007() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..80u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // k = 1 keeps the top-level condition free of droppable conjuncts,
        // so AUT006 cannot be provoked as a side effect.
        let (raw, _) = random_streett(&mut rng, &sigma, 12, 1, 0.4);
        // Random atom sets almost always contain stray states already, so
        // first sanitize the acceptance: restrict every atom to the
        // reachable cyclic region (sound, see `restrict_atoms`), giving a
        // baseline without AUT007.
        let raw_ctx = Analysis::new(raw.clone());
        let cond = raw_ctx.condensation();
        let mut cyc = hierarchy_automata::bitset::BitSet::new();
        for c in 0..cond.status.len() {
            if cond.status[c].is_some() {
                cyc.union_with(&cond.sccs.member_set(c));
            }
        }
        let aut = raw.with_acceptance(restrict_atoms(raw.acceptance(), &cyc));
        let baseline = codes(&aut);
        if baseline.contains("AUT007") || baseline.contains("AUT001") {
            continue;
        }
        // A reachable state on no cycle (a transient SCC of the
        // condensation): after sanitizing, no atom mentions it.
        let transient = (0..cond.status.len())
            .filter(|&c| cond.status[c].is_none())
            .flat_map(|c| cond.sccs.member_set(c).iter().collect::<Vec<_>>())
            .next();
        let Some(q) = transient else { continue };
        let mut done = false;
        let widened = widen_first_inf(aut.acceptance(), q, &mut done);
        if !done {
            continue; // no Inf atom in this condition
        }
        let ctx = Analysis::new(aut.clone());
        let mutated = aut.with_acceptance(widened);
        // Soundness of the rule itself: the language must be unchanged.
        assert!(
            ctx.equivalent(&mutated),
            "seed {seed}: widening an Inf atom by a transient state changed the language"
        );
        assert_exactly_injected(seed, "AUT007", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT007");
}

// ---------------------------------------------------------------------------
// FTS defect injections: mutate seeded random declarative programs and
// assert the invariant-backed semantic rules catch what the syntactic
// rules cannot see (or cannot even run on).

mod fts_defects {
    use super::*;
    use hierarchy_fts::absint::{random_program, Guard, Program};
    use hierarchy_fts::builder::ProgramBuilder;
    use hierarchy_fts::system::Fairness;
    use hierarchy_lint::{lint_abstract_program, lint_program, Location};

    fn abs_codes(p: &Program) -> BTreeSet<&'static str> {
        lint_abstract_program(p)
            .expect("valid program")
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    fn prop_sigma() -> Alphabet {
        Alphabet::of_propositions(["p0", "p1"]).unwrap()
    }

    /// Growing a non-`pc` variable's domain makes its top value dead:
    /// the semantic `FTS004` (dead declared values) must fire, while the
    /// syntactic `FTS004` stays silent because the variable is not
    /// *constant* in the enumerated reachable valuations.
    #[test]
    fn grown_domain_fires_semantic_fts004_where_syntactic_is_silent() {
        let sigma = prop_sigma();
        let mut usable = 0;
        for seed in 0..80u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = random_program(&mut rng);
            // Mutate the last variable, which random_program never picks
            // as the pc (the pc is always variable 0).
            let x = prog.domains.len() - 1;
            if prog.pc == Some(x) {
                continue;
            }
            let baseline = abs_codes(&prog);
            if baseline.contains("FTS004") || baseline.contains("FTS005") {
                continue; // masked, or envelope findings the growth would shift
            }
            // Skip seeds where x is exactly constant: there the syntactic
            // rule fires too and the comparison shows nothing.
            let (_, vals) = prog
                .to_builder(&sigma)
                .build_with_valuations()
                .expect("random programs build");
            let exact: BTreeSet<usize> = vals.iter().map(|v| v[x]).collect();
            if exact.len() <= 1 {
                continue;
            }
            let mut grown = prog.clone();
            grown.domains[x] += 1;
            let mut expected = baseline.clone();
            expected.insert("FTS004");
            assert_eq!(
                abs_codes(&grown),
                expected,
                "seed {seed}: growing a domain must add exactly FTS004"
            );
            let syntactic = lint_program(&grown.to_builder(&sigma)).expect("build");
            assert!(
                !syntactic.iter().any(|d| d.code == "FTS004"
                    && d.location == Location::Variable(grown.var_names[x].clone())),
                "seed {seed}: the syntactic rule cannot see dead values"
            );
            usable += 1;
        }
        assert!(
            usable >= 5,
            "only {usable} usable seeds for semantic FTS004"
        );
    }

    /// Growing the `pc` domain plants an unreachable location; only the
    /// invariant-backed `FTS006` can report it.
    #[test]
    fn grown_pc_domain_fires_fts006() {
        let mut usable = 0;
        for seed in 0..80u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = random_program(&mut rng);
            let Some(p) = prog.pc else { continue };
            let baseline = abs_codes(&prog);
            if baseline.contains("FTS006") || baseline.contains("FTS005") {
                continue;
            }
            let mut grown = prog.clone();
            grown.domains[p] += 1;
            let mut expected = baseline.clone();
            expected.insert("FTS006");
            assert_eq!(
                abs_codes(&grown),
                expected,
                "seed {seed}: growing the pc domain must add exactly FTS006"
            );
            usable += 1;
        }
        assert!(usable >= 5, "only {usable} usable seeds for FTS006");
    }

    /// Conjoining `x = |dom(x)|` (a value outside the domain) onto a
    /// guard makes it unsatisfiable; `FTS005` fires from the domain
    /// envelope alone, before any invariant or enumeration.
    #[test]
    fn tightened_guard_fires_fts005() {
        let mut usable = 0;
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = random_program(&mut rng);
            let baseline_diags = lint_abstract_program(&prog).expect("valid program");
            let baseline: BTreeSet<&'static str> = baseline_diags.iter().map(|d| d.code).collect();
            // Skip seeds with findings on the command we mutate: a
            // command that is already dead (FTS001/FTS003) turns into
            // FTS005, which legitimately replaces the earlier code.
            let target = Location::Transition(prog.commands[0].name.clone());
            if baseline.contains("FTS005") || baseline_diags.iter().any(|d| d.location == target) {
                continue;
            }
            let mut tightened = prog.clone();
            let dom0 = tightened.domains[0] as i64;
            let g = tightened.commands[0].guard.clone();
            tightened.commands[0].guard = g.and(Guard::var_eq(0, dom0));
            let name = tightened.commands[0].name.clone();
            let diags = lint_abstract_program(&tightened).expect("still valid");
            assert!(
                diags
                    .iter()
                    .any(|d| d.code == "FTS005" && d.location == Location::Transition(name.clone())),
                "seed {seed}: the tightened guard must fire FTS005"
            );
            // Killing a command can cascade (locations or values may become
            // unreachable), so demand containment rather than equality.
            let got: BTreeSet<&'static str> = diags.iter().map(|d| d.code).collect();
            assert!(
                got.is_superset(&baseline),
                "seed {seed}: baseline findings must persist"
            );
            usable += 1;
        }
        assert!(usable >= 5, "only {usable} usable seeds for FTS005");
    }

    /// An update that can leave its domain kills the enumeration-based
    /// lint (`lint_program` propagates the build error) but not the
    /// semantic one: the IR defines such branches as not taken, so
    /// `lint_abstract_program` still returns a report.
    #[test]
    fn out_of_domain_update_fails_builder_but_not_semantic_lint() {
        let sigma = Alphabet::new(["lo", "hi"]).unwrap();
        let mut b = ProgramBuilder::new(&sigma);
        let x = b.var("x", 3);
        b.init(&[0]);
        b.command(
            "inc",
            Fairness::Weak,
            |_| true,
            move |v| vec![vec![v[x] + 1]], // escapes the domain at x = 2
        );
        b.observe(move |v, sigma| sigma.symbol(if v[x] == 2 { "hi" } else { "lo" }).unwrap());
        assert!(lint_program(&b).is_err(), "the builder must reject x := 3");

        let mut ir = Program::new();
        let xi = ir.var("x", 3);
        ir.init(&[0]);
        ir.observe_prop(Guard::var_eq(xi, 2));
        ir.command(
            "inc",
            Fairness::Weak,
            Guard::True,
            vec![hierarchy_fts::absint::Branch::assign(vec![(
                xi,
                hierarchy_fts::absint::Expr::v(xi).add(hierarchy_fts::absint::Expr::c(1)),
            )])],
        );
        let diags = lint_abstract_program(&ir).expect("semantic lint is total");
        assert!(
            diags.is_empty(),
            "the saturating counter is healthy: {diags:?}"
        );
    }

    /// Injects a guard-only dead command (no fairness, skip branch) and
    /// asserts the relational rule fires exactly once, on it, with no
    /// other finding: the guard must stay feasible under the
    /// per-variable masks (FTS001/FTS003/FTS005 silent) while the pair
    /// relations refute it everywhere.
    fn assert_fts008_exactly(name: &str, prog: &Program, ghost: &str, guard: Guard) {
        let baseline = abs_codes(prog);
        assert!(
            baseline.is_empty(),
            "{name}: the clean program must lint clean, got {baseline:?}"
        );
        let mut broken = prog.clone();
        broken.command(
            ghost,
            Fairness::None,
            guard,
            vec![hierarchy_fts::absint::Branch::skip()],
        );
        let diags = lint_abstract_program(&broken).expect("still valid");
        let codes: BTreeSet<&'static str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            codes,
            BTreeSet::from(["FTS008"]),
            "{name}: injection must add exactly FTS008, got {diags:?}"
        );
        assert!(
            diags
                .iter()
                .all(|d| d.location == Location::Transition(ghost.to_string())),
            "{name}: FTS008 must point at the injected command"
        );
    }

    /// Peterson with a command whose guard breaks the `turn`/`pc`
    /// correlation: `pc2 = 3 ∧ tb = 0` is cartesian-feasible (both
    /// values occur at `pc1 = 2`) but the pair `(pc2, tb)` never holds
    /// the joint `(3, 0)` — whoever is critical owns the turn.
    #[test]
    fn broken_turn_correlation_fires_fts008_on_peterson() {
        use hierarchy_fts::absint::peterson_abs;
        let guard = Guard::var_eq(0, 2)
            .and(Guard::var_eq(1, 3))
            .and(Guard::var_eq(2, 0));
        assert_fts008_exactly("peterson", &peterson_abs(), "ghost_enter", guard);
    }

    /// A desynchronized ring token: `tok1 = 1 ∧ tok2 = 1` is
    /// cartesian-feasible at the location `tok0 = 0` (either seat may
    /// hold the token there) but the pair `(tok1, tok2)` never records
    /// the joint `(1, 1)` — at most one token circulates.
    #[test]
    fn double_token_fires_fts008_on_token_ring() {
        use hierarchy_fts::absint::token_ring_n;
        let guard = Guard::var_eq(1, 1).and(Guard::var_eq(2, 1));
        assert_fts008_exactly("token-ring-n4", &token_ring_n(4), "double_token", guard);
    }

    /// An eating philosopher without their left fork: `p1 = 2 ∧ f1 = 0`
    /// is cartesian-feasible (philosopher 1 eats at some location where
    /// fork 1 is also sometimes free) but the pair `(p1, f1)` proves
    /// `p1 ≥ 1 ⇒ f1 = 1`.
    #[test]
    fn forkless_eater_fires_fts008_on_dining() {
        use hierarchy_fts::absint::dining_philosophers;
        let prog = dining_philosophers(3);
        // Variables: p0 p1 p2 f0 f1 f2 — p1 is index 1, f1 is index 4.
        let guard = Guard::var_eq(1, 2).and(Guard::var_eq(4, 0));
        assert_fts008_exactly("dining-phil-3", &prog, "forkless_eater", guard);
    }

    /// The clean named catalogue (fixed programs and N-families) never
    /// fires the relational rule.
    #[test]
    fn clean_catalogue_is_silent_on_fts008() {
        use hierarchy_fts::absint::{
            dining_philosophers, mux_sem_abs, mux_sem_n, peterson_abs, token_ring_abs, token_ring_n,
        };
        let catalogue: Vec<(String, Program)> = vec![
            ("peterson".into(), peterson_abs()),
            ("mux-sem".into(), mux_sem_abs(Fairness::Strong)),
            ("mux-sem-weak".into(), mux_sem_abs(Fairness::Weak)),
            ("token-ring".into(), token_ring_abs(true)),
            ("token-ring-stalled".into(), token_ring_abs(false)),
        ]
        .into_iter()
        .chain((2..=5).flat_map(|n| {
            [
                (format!("mux-sem-n{n}"), mux_sem_n(n)),
                (format!("token-ring-n{n}"), token_ring_n(n)),
                (format!("dining-phil-{n}"), dining_philosophers(n)),
            ]
        }))
        .collect();
        for (name, prog) in catalogue {
            let codes = abs_codes(&prog);
            assert!(
                !codes.contains("FTS008"),
                "{name}: clean program fired FTS008"
            );
        }
    }
}

/// Adds `states` to the first `Fin` atom of the condition, marking
/// `done` on success. A trap inside a `Fin` atom (and outside every
/// `Inf` atom) rejects every run it captures, so the grafted states in
/// [`injected_rejecting_trap_fires_aut004`] are dead by construction.
fn widen_first_fin(acc: &Acceptance, states: [usize; 2], done: &mut bool) -> Acceptance {
    match acc {
        Acceptance::Fin(s) if !*done => {
            *done = true;
            let mut s = s.clone();
            s.insert(states[0]);
            s.insert(states[1]);
            Acceptance::Fin(s)
        }
        Acceptance::And(xs) => Acceptance::And(
            xs.iter()
                .map(|x| widen_first_fin(x, states, done))
                .collect(),
        ),
        Acceptance::Or(xs) => Acceptance::Or(
            xs.iter()
                .map(|x| widen_first_fin(x, states, done))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Grafts a rejecting two-state trap behind an edge that lies on no
/// cycle. The trap states cycle through each other, sit in a `Fin` atom
/// and no `Inf` atom (dead), and are bisimilar (symmetric rows, same
/// atom signature) — so exactly `AUT004` must start firing, and its
/// message must report the single quotient class that partition
/// refinement finds. Redirecting a non-cycle edge preserves every
/// original cycle, so the cyclic-region diagnostics keep their baseline
/// verdicts; language-sensitive baselines (`AUT002`, `AUT005`,
/// `AUT006`) are skipped because the trap shrinks the language.
#[test]
fn injected_rejecting_trap_fires_aut004() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..600u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 10, 1, 0.3);
        let baseline = codes(&aut);
        if ["AUT001", "AUT002", "AUT003", "AUT004", "AUT005", "AUT006"]
            .iter()
            .any(|c| baseline.contains(c))
        {
            continue; // masked, or sensitive to the language shrink
        }
        let ctx = Analysis::new(aut.clone());
        if ctx.reachable().iter().any(|q| !ctx.live().contains(q)) {
            continue; // pre-existing dead states would join the report
        }
        let n = aut.num_states();
        // An edge p --s--> t on no cycle: no path from t back to p, so
        // redirecting it into the trap destroys no original cycle.
        let mut pick = None;
        'edges: for p in 0..n {
            for s in sigma.symbols() {
                let t = aut.step(p as u32, s);
                let mut seen = vec![false; n];
                let mut stack = vec![t];
                let mut hits_p = false;
                while let Some(q) = stack.pop() {
                    if q as usize == p {
                        hits_p = true;
                        break;
                    }
                    if std::mem::replace(&mut seen[q as usize], true) {
                        continue;
                    }
                    stack.extend(sigma.symbols().map(|sym| aut.step(q, sym)));
                }
                if !hits_p {
                    pick = Some((p, s));
                    break 'edges;
                }
            }
        }
        let Some((p, s)) = pick else {
            continue; // every edge is cyclic, nowhere to graft
        };
        let mut done = false;
        let acceptance = widen_first_fin(aut.acceptance(), [n, n + 1], &mut done);
        if !done {
            continue; // no Fin atom to make the trap rejecting
        }
        let mutated = OmegaAutomaton::build(
            &sigma,
            n + 2,
            aut.initial(),
            |q, sym| {
                if q as usize == n {
                    (n + 1) as u32 // the trap states cycle through each other
                } else if q as usize == n + 1 || (q as usize == p && sym == s) {
                    n as u32 // close the trap cycle / graft the entry edge
                } else {
                    aut.step(q, sym)
                }
            },
            acceptance,
        );
        // The graft must keep every original state reachable (else
        // AUT003 noise) and must kill exactly the two trap states.
        let reach = mutated.reachable_states();
        if (0..n + 2).any(|q| !reach.contains(q)) {
            continue;
        }
        let ctx2 = Analysis::new(mutated.clone());
        let dead: Vec<usize> = ctx2
            .reachable()
            .iter()
            .filter(|&q| !ctx2.live().contains(q))
            .collect();
        if dead != vec![n, n + 1] {
            continue; // the redirect starved some original state
        }
        assert_exactly_injected(seed, "AUT004", &baseline, &mutated);
        let diag = lint_automaton(&mutated)
            .into_iter()
            .find(|di| di.code == "AUT004")
            .expect("AUT004 fired");
        assert!(
            diag.message
                .contains(&format!("1 class(es): {{{n}, {}}}", n + 1)),
            "seed {seed}: AUT004 must report the exact quotient class, got: {}",
            diag.message
        );
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT004");
}

#[test]
fn injected_constant_atom_fires_aut005() {
    let sigma = sigma();
    let mut usable = 0;
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (aut, _) = random_streett(&mut rng, &sigma, 10, 1, 0.5);
        let baseline = codes(&aut);
        if baseline.contains("AUT005") || baseline.contains("AUT001") {
            continue;
        }
        // Conjoin Inf(∅): an atom that misses every cycle by construction.
        // Inf(∅) is unsatisfiable, so the conjunction empties the language
        // — which is why the injection targets an Or instead: Φ ∨ Inf(∅)
        // keeps the language and plants a constantly-false disjunct.
        let mutated = aut.with_acceptance(Acceptance::Or(vec![
            aut.acceptance().clone(),
            Acceptance::Inf(hierarchy_automata::bitset::BitSet::new()),
        ]));
        assert_exactly_injected(seed, "AUT005", &baseline, &mutated);
        usable += 1;
    }
    assert!(usable >= 5, "only {usable} usable seeds for AUT005");
}

// ---------------------------------------------------------------------------
// SUITE defect injections: mutate a whole *suite* of properties and
// assert the audit reports exactly the injected cross-property finding
// — nothing on the untouched members, nothing extra at suite level.

mod suite_defects {
    use super::*;
    use hierarchy_lint::suite::{audit_suite, AuditOptions, SuiteAudit};
    use hierarchy_lint::Location;

    fn audit_with(items: &[(String, OmegaAutomaton)], cap: usize) -> SuiteAudit {
        audit_suite(
            items,
            &AuditOptions {
                conjunction_cap: cap,
                ..AuditOptions::default()
            },
        )
        .expect("suites share one alphabet")
    }

    fn audit(items: &[(String, OmegaAutomaton)]) -> SuiteAudit {
        audit_with(items, AuditOptions::default().conjunction_cap)
    }

    /// A usable baseline: no findings at all, every member non-empty,
    /// all languages pairwise distinct — so the injection's diagnostic
    /// is provably the only change in the mutated report.
    fn clean_baseline(report: &SuiteAudit, items: &[(String, OmegaAutomaton)]) -> bool {
        report.member_diagnostics.iter().all(Vec::is_empty)
            && report.suite_diagnostics.is_empty()
            && report
                .representative
                .iter()
                .enumerate()
                .all(|(i, &r)| r == i)
            && items
                .iter()
                .all(|(_, a)| !Analysis::new(a.clone()).is_empty())
    }

    fn random_suite(seed: u64, sigma: &Alphabet, k: usize) -> Vec<(String, OmegaAutomaton)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..k)
            .map(|i| {
                (
                    format!("m{i}"),
                    random_streett(&mut rng, sigma, 6, 1, 0.4).0,
                )
            })
            .collect()
    }

    fn member_codes(report: &SuiteAudit, i: usize) -> Vec<&'static str> {
        report.member_diagnostics[i]
            .iter()
            .map(|d| d.code)
            .collect()
    }

    /// The union of the whole suite is implied by any single member
    /// (fast path), and the conjunction-of-the-rest of every existing
    /// member already lies inside the union — so injecting it adds
    /// exactly one `SUITE001` and changes nothing else.
    #[test]
    fn injected_union_member_fires_suite001() {
        let sigma = sigma();
        let mut usable = 0;
        for seed in 0..200u64 {
            let members = random_suite(seed, &sigma, 3);
            let baseline = audit(&members);
            if !clean_baseline(&baseline, &members) {
                continue;
            }
            let union = members
                .iter()
                .skip(1)
                .fold(members[0].1.clone(), |acc, (_, a)| acc.union(a));
            let mut mutated = members.clone();
            mutated.push(("union".into(), union));
            let report = audit(&mutated);
            for i in 0..members.len() {
                assert_eq!(
                    member_codes(&report, i),
                    Vec::<&str>::new(),
                    "seed {seed}: untouched member {i} gained a finding"
                );
            }
            assert_eq!(
                member_codes(&report, members.len()),
                ["SUITE001"],
                "seed {seed}: the union member must be exactly redundant"
            );
            assert!(
                report.suite_diagnostics.is_empty(),
                "seed {seed}: no suite-level finding may appear"
            );
            usable += 1;
        }
        assert!(usable >= 5, "only {usable} usable seeds for SUITE001");
    }

    /// Maps every acceptance atom through a state permutation.
    fn permute_acceptance(acc: &Acceptance, pi: &[u32]) -> Acceptance {
        match acc {
            Acceptance::Inf(s) => Acceptance::inf(s.iter().map(|q| pi[q] as usize)),
            Acceptance::Fin(s) => Acceptance::fin(s.iter().map(|q| pi[q] as usize)),
            Acceptance::And(xs) => {
                Acceptance::And(xs.iter().map(|x| permute_acceptance(x, pi)).collect())
            }
            Acceptance::Or(xs) => {
                Acceptance::Or(xs.iter().map(|x| permute_acceptance(x, pi)).collect())
            }
            other => other.clone(),
        }
    }

    /// An α-renamed (state-permuted) copy of a member has an identical
    /// canonical form, so the prefilter alone must convict it: exactly
    /// one `SUITE002` on the copy, decided without the oracle.
    #[test]
    fn injected_alpha_renamed_duplicate_fires_suite002() {
        let sigma = sigma();
        let mut usable = 0;
        for seed in 0..200u64 {
            let members = random_suite(seed, &sigma, 3);
            let baseline = audit(&members);
            if !clean_baseline(&baseline, &members) {
                continue;
            }
            let original = &members[0].1;
            let n = original.num_states();
            // Reversal is an involution, so it is its own inverse.
            let pi: Vec<u32> = (0..n as u32).rev().collect();
            let renamed = OmegaAutomaton::build(
                &sigma,
                n,
                pi[original.initial() as usize],
                |q, s| pi[original.step(pi[q as usize], s) as usize],
                permute_acceptance(original.acceptance(), &pi),
            );
            let mut mutated = members.clone();
            mutated.push(("renamed".into(), renamed));
            let report = audit(&mutated);
            for i in 0..members.len() {
                assert_eq!(
                    member_codes(&report, i),
                    Vec::<&str>::new(),
                    "seed {seed}: untouched member {i} gained a finding"
                );
            }
            assert_eq!(
                member_codes(&report, members.len()),
                ["SUITE002"],
                "seed {seed}: the renamed copy must be exactly a duplicate"
            );
            assert_eq!(
                report.representative[members.len()],
                0,
                "seed {seed}: the copy joins member 0's language class"
            );
            assert!(
                report.member_diagnostics[members.len()][0]
                    .message
                    .contains("identical canonical form"),
                "seed {seed}: an α-renaming must be convicted by the hash prefilter"
            );
            assert!(report.suite_diagnostics.is_empty(), "seed {seed}");
            usable += 1;
        }
        assert!(usable >= 5, "only {usable} usable seeds for SUITE002");
    }

    /// The complement of a member conflicts with it by construction,
    /// and with nothing else on a clean baseline (a second conflict
    /// `m_j ∩ ¬m_0 = ∅` would mean `m_j ⊆ m_0`, which the baseline's
    /// containment silence excludes). Deep checks are disabled so the
    /// advisory `SUITE004` cannot ride along and the report is exact.
    #[test]
    fn injected_complement_member_fires_suite003() {
        let sigma = sigma();
        let mut usable = 0;
        for seed in 0..1400u64 {
            if usable >= 8 {
                break; // the sample is large enough
            }
            let members = random_suite(seed, &sigma, 3);
            let baseline = audit_with(&members, 0);
            if !clean_baseline(&baseline, &members) {
                continue;
            }
            let negated = members[0].1.complement();
            let neg_ctx = Analysis::new(negated.clone());
            if neg_ctx.is_empty() {
                continue; // m0 is universal, the complement is no member
            }
            // ¬m0 ⊆ m_j would fire SUITE001 on m_j; skip those seeds.
            if members.iter().any(|(_, a)| {
                neg_ctx.is_subset_of(a) || Analysis::new(a.clone()).is_subset_of(&negated)
            }) {
                continue;
            }
            let mut mutated = members.clone();
            mutated.push(("negated-m0".into(), negated));
            let report = audit_with(&mutated, 0);
            for i in 0..mutated.len() {
                assert_eq!(
                    member_codes(&report, i),
                    Vec::<&str>::new(),
                    "seed {seed}: no member-level finding may appear"
                );
            }
            let codes: Vec<&'static str> =
                report.suite_diagnostics.iter().map(|d| d.code).collect();
            assert_eq!(codes, ["SUITE003"], "seed {seed}");
            let msg = &report.suite_diagnostics[0].message;
            assert!(
                msg.contains("\"m0\"") && msg.contains("\"negated-m0\""),
                "seed {seed}: the conflict must name the injected pair, got: {msg}"
            );
            usable += 1;
        }
        assert!(usable >= 5, "only {usable} usable seeds for SUITE003");
    }

    /// Re-reading a clean suite over an alphabet extended by one fresh
    /// proposition (every member lifted cylindrically, so all pairwise
    /// relations survive) must add exactly one `SUITE005`, on the fresh
    /// proposition.
    #[test]
    fn unconstrained_proposition_fires_suite005() {
        let sigma2 = Alphabet::of_propositions(["p", "q"]).unwrap();
        let sigma3 = Alphabet::of_propositions(["p", "q", "r"]).unwrap();
        let mut usable = 0;
        for seed in 0..200u64 {
            let members = random_suite(seed, &sigma2, 3);
            let baseline = audit(&members);
            if !clean_baseline(&baseline, &members) {
                continue; // includes SUITE005 on p or q: a masked seed
            }
            let lifted: Vec<(String, OmegaAutomaton)> = members
                .iter()
                .map(|(name, a)| {
                    let lift = OmegaAutomaton::build(
                        &sigma3,
                        a.num_states(),
                        a.initial(),
                        |q, s| {
                            let holds = [
                                sigma3.proposition_holds(s, 0),
                                sigma3.proposition_holds(s, 1),
                            ];
                            a.step(q, sigma2.valuation_symbol(&holds))
                        },
                        a.acceptance().clone(),
                    );
                    (name.clone(), lift)
                })
                .collect();
            let report = audit(&lifted);
            for i in 0..lifted.len() {
                assert_eq!(
                    member_codes(&report, i),
                    Vec::<&str>::new(),
                    "seed {seed}: lifting must not add member findings"
                );
            }
            let codes: Vec<&'static str> =
                report.suite_diagnostics.iter().map(|d| d.code).collect();
            assert_eq!(codes, ["SUITE005"], "seed {seed}");
            assert_eq!(
                report.suite_diagnostics[0].location,
                Location::Variable("r".into()),
                "seed {seed}: the dead proposition is the fresh one"
            );
            assert_eq!(
                report.classes, baseline.classes,
                "seed {seed}: cylindrical lifting preserves every class"
            );
            usable += 1;
        }
        assert!(usable >= 5, "only {usable} usable seeds for SUITE005");
    }

    /// The paper's running examples, read as one suite over a shared
    /// alphabet, audit clean: no redundancy, no duplicates, no
    /// conflicts, no overkill, no dead proposition.
    #[test]
    fn paper_running_examples_audit_silently() {
        use hierarchy_logic::ast::Formula;
        use hierarchy_logic::to_automaton::compile_over;
        let sigma = Alphabet::of_propositions(["c1", "c2", "t1", "t2"]).unwrap();
        let sources = [
            ("mutual-exclusion", "G !(c1 & c2)"),
            ("response-1", "G (t1 -> F c1)"),
            ("response-2", "G (t2 -> F c2)"),
            ("eventual-entry", "F c1"),
            ("quiescence", "F G !t2"),
        ];
        let suite: Vec<(String, OmegaAutomaton)> = sources
            .iter()
            .map(|(name, src)| {
                let f = Formula::parse(&sigma, src).expect(src);
                (name.to_string(), compile_over(&sigma, &f).expect(src))
            })
            .collect();
        let report = audit(&suite);
        assert_eq!(
            report.all_diagnostics(),
            vec![],
            "the paper's examples must audit clean"
        );
        assert!(report.is_clean());
        // The suite spans the hierarchy: safety, recurrence, guarantee,
        // persistence all populated.
        let classes: Vec<&str> = report.histogram.iter().map(|&(c, _)| c).collect();
        assert_eq!(
            classes,
            ["safety", "guarantee", "recurrence", "persistence"]
        );
    }
}
