//! Nondeterministic Büchi constructions for ω-regular expressions of the
//! form `⋃ᵢ Uᵢ·Vᵢ^ω`, used to cross-validate the deterministic operator
//! pipeline on sampled lasso words (see `DESIGN.md` §3: the deterministic
//! pipeline never needs Safra, and these NBAs are the independent oracle).

use crate::regex::Regex;
use crate::thompson;
use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::nba::Nba;
use hierarchy_automata::nfa::Nfa;
use hierarchy_automata::StateId;

/// An NBA for `U·V^ω`, where `U` and `V` are given as regexes. ε-words in
/// `V` contribute nothing to `V^ω` and are ignored; if `U` contains ε the
/// ω-part may start immediately.
pub fn u_v_omega(alphabet: &Alphabet, u: &Regex, v: &Regex) -> Nba {
    let u_nfa = thompson::regex_to_nfa(alphabet, u);
    let v_nfa = thompson::regex_to_nfa(alphabet, v);
    let mut nba = Nba::new(alphabet);

    // Embed U: U-state i ↦ NBA state i.
    let u_off = 0 as StateId;
    for _ in 0..u_nfa.num_states() {
        nba.add_state();
    }
    // Embed V: V-state i ↦ NBA state v_off + i.
    let v_off = u_nfa.num_states() as StateId;
    for _ in 0..v_nfa.num_states() {
        nba.add_state();
    }
    // The restart state: entered exactly when one V-iteration completes.
    let restart = nba.add_state();
    nba.add_accepting(restart);

    // ε-closures are precomputed on the component NFAs; the NBA itself is
    // ε-free, so each NFA transition (q --s--> t) induces NBA transitions
    // to every state in ε-closure({t}) plus the appropriate jump targets.
    let closure = |nfa: &Nfa, q: StateId| -> Vec<StateId> {
        let set = nfa.epsilon_closure(&[q as usize].into_iter().collect());
        set.iter().map(|x| x as StateId).collect()
    };
    // V entry states: ε-closure of V's initials.
    let v_entry: Vec<StateId> = v_entry_states(&v_nfa);

    // U transitions; entering (the closure of) an accepting U state also
    // jumps to V's entry.
    for q in 0..u_nfa.num_states() as StateId {
        for sym in alphabet.symbols() {
            let targets = u_transition_targets(&u_nfa, q, sym);
            for t in targets {
                for ct in closure(&u_nfa, t) {
                    nba.add_transition(u_off + q, sym, u_off + ct);
                    if u_nfa.is_accepting(ct) {
                        for &ve in &v_entry {
                            nba.add_transition(u_off + q, sym, v_off + ve);
                        }
                    }
                }
            }
        }
    }
    // V transitions; entering (the closure of) an accepting V state also
    // jumps to the restart state.
    for q in 0..v_nfa.num_states() as StateId {
        for sym in alphabet.symbols() {
            let targets = u_transition_targets(&v_nfa, q, sym);
            for t in targets {
                for ct in closure(&v_nfa, t) {
                    nba.add_transition(v_off + q, sym, v_off + ct);
                    if v_nfa.is_accepting(ct) {
                        nba.add_transition(v_off + q, sym, restart);
                    }
                }
            }
        }
    }
    // The restart state mirrors V's entry states' outgoing transitions.
    for &ve in &v_entry {
        for sym in alphabet.symbols() {
            let targets = u_transition_targets(&v_nfa, ve, sym);
            for t in targets {
                for ct in closure(&v_nfa, t) {
                    nba.add_transition(restart, sym, v_off + ct);
                    if v_nfa.is_accepting(ct) {
                        nba.add_transition(restart, sym, restart);
                    }
                }
            }
        }
    }
    // Initial states: ε-closure of U's initials; if that closure contains
    // an accepting U state (U matches ε), V may start at once.
    let mut u_matches_eps = false;
    for i in u_initial_closure(&u_nfa) {
        nba.set_initial(u_off + i);
        if u_nfa.is_accepting(i) {
            u_matches_eps = true;
        }
    }
    if u_matches_eps {
        for &ve in &v_entry {
            nba.set_initial(v_off + ve);
        }
    }
    nba
}

/// An NBA for a finite union `⋃ᵢ Uᵢ·Vᵢ^ω`.
pub fn union_of_products(alphabet: &Alphabet, parts: &[(Regex, Regex)]) -> Nba {
    let components: Vec<Nba> = parts
        .iter()
        .map(|(u, v)| u_v_omega(alphabet, u, v))
        .collect();
    let mut nba = Nba::new(alphabet);
    for comp in &components {
        let off = nba.num_states() as StateId;
        for _ in 0..comp.num_states() {
            nba.add_state();
        }
        for q in 0..comp.num_states() as StateId {
            if comp.is_accepting(q) {
                nba.add_accepting(off + q);
            }
            for sym in alphabet.symbols() {
                for &t in comp.successors(q, sym) {
                    nba.add_transition(off + q, sym, off + t);
                }
            }
        }
        // Initial states of the component stay initial.
        for q in 0..comp.num_states() as StateId {
            // Nba doesn't expose its initial list; rebuild by probing:
            // instead re-derive from the component by construction order.
            let _ = q;
        }
        for q in component_initials(comp) {
            nba.set_initial(off + q);
        }
    }
    nba
}

// --- helpers -------------------------------------------------------------

fn u_transition_targets(
    nfa: &Nfa,
    q: StateId,
    sym: hierarchy_automata::alphabet::Symbol,
) -> Vec<StateId> {
    // Direct symbol transitions from the ε-closure of {q}.
    let closure = nfa.epsilon_closure(&[q as usize].into_iter().collect());
    let mut out = Vec::new();
    for state in closure.iter() {
        for t in nfa_successors(nfa, state as StateId, sym) {
            if !out.contains(&t) {
                out.push(t);
            }
        }
    }
    out
}

fn nfa_successors(
    nfa: &Nfa,
    q: StateId,
    sym: hierarchy_automata::alphabet::Symbol,
) -> Vec<StateId> {
    // The Nfa API doesn't expose raw rows; emulate one symbol step through
    // `accepts`-style simulation on a singleton set.
    let mut current = hierarchy_automata::bitset::BitSet::new();
    current.insert(q as usize);
    // One step without initial ε-closure (the caller closes).
    let mut next = Vec::new();
    let stepped = nfa_step(nfa, &current, sym);
    for t in stepped.iter() {
        next.push(t as StateId);
    }
    next
}

fn nfa_step(
    nfa: &Nfa,
    set: &hierarchy_automata::bitset::BitSet,
    sym: hierarchy_automata::alphabet::Symbol,
) -> hierarchy_automata::bitset::BitSet {
    nfa.symbol_successors(set, sym)
}

fn u_initial_closure(nfa: &Nfa) -> Vec<StateId> {
    nfa.initial_closure().iter().map(|q| q as StateId).collect()
}

fn v_entry_states(nfa: &Nfa) -> Vec<StateId> {
    u_initial_closure(nfa)
}

fn component_initials(nba: &Nba) -> Vec<StateId> {
    nba.initial_states().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::finitary::FinitaryProperty;
    use crate::operators;
    use hierarchy_automata::lasso::Lasso;
    use hierarchy_automata::random::random_lasso;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn re(sigma: &Alphabet, p: &str) -> Regex {
        Regex::parse(sigma, p).unwrap()
    }

    #[test]
    fn a_star_b_omega() {
        // a*·b^ω.
        let sigma = ab();
        let nba = u_v_omega(&sigma, &re(&sigma, "a*"), &re(&sigma, "b"));
        assert!(nba.accepts(&Lasso::parse(&sigma, "aa", "b").unwrap()));
        assert!(nba.accepts(&Lasso::parse(&sigma, "", "b").unwrap()));
        assert!(!nba.accepts(&Lasso::parse(&sigma, "", "ab").unwrap()));
        assert!(!nba.accepts(&Lasso::parse(&sigma, "ba", "b").unwrap()));
    }

    #[test]
    fn sigma_star_b_omega_infinitely_many_b() {
        // (Σ*b)^ω = infinitely many b: U = ε via a*… use U = (a+b)* V = a*b.
        let sigma = ab();
        let nba = u_v_omega(&sigma, &Regex::Epsilon, &re(&sigma, "a*b"));
        assert!(nba.accepts(&Lasso::parse(&sigma, "", "ab").unwrap()));
        assert!(nba.accepts(&Lasso::parse(&sigma, "bb", "ab").unwrap()));
        assert!(!nba.accepts(&Lasso::parse(&sigma, "b", "a").unwrap()));
        // Cross-check against the deterministic R(Σ*b).
        let det = operators::r(&FinitaryProperty::parse(&sigma, ".*b").unwrap());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let w = random_lasso(&mut rng, &sigma, 4, 4);
            assert_eq!(
                nba.accepts(&w),
                det.accepts(&w),
                "disagree on {}",
                w.display(&sigma)
            );
        }
    }

    #[test]
    fn union_matches_either() {
        // a·Σ^ω ∪ b·b^ω.
        let sigma = ab();
        let nba = union_of_products(
            &sigma,
            &[
                (re(&sigma, "a"), re(&sigma, "a+b")),
                (re(&sigma, "b"), re(&sigma, "b")),
            ],
        );
        assert!(nba.accepts(&Lasso::parse(&sigma, "a", "ab").unwrap()));
        assert!(nba.accepts(&Lasso::parse(&sigma, "b", "b").unwrap()));
        assert!(!nba.accepts(&Lasso::parse(&sigma, "b", "ab").unwrap()));
    }

    #[test]
    fn guarantee_cross_check() {
        // E(a⁺b*) = a⁺b*Σ^ω as U·V^ω with U = aa*b*, V = Σ.
        let sigma = ab();
        let nba = u_v_omega(&sigma, &re(&sigma, "aa*b*"), &re(&sigma, "a+b"));
        let det = operators::e(&FinitaryProperty::parse(&sigma, "aa*b*").unwrap());
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let w = random_lasso(&mut rng, &sigma, 4, 3);
            assert_eq!(
                nba.accepts(&w),
                det.accepts(&w),
                "disagree on {}",
                w.display(&sigma)
            );
        }
    }
}
