//! The paper's first-order characterization of the four operators
//! ("Expression by a First Order Language", end of Section 2):
//!
//! ```text
//! χ_A(σ):  ∀σ′ ≺ σ.  Φ(σ′)
//! χ_E(σ):  ∃σ′ ≺ σ.  Φ(σ′)
//! χ_R(σ):  ∀σ′ ≺ σ. ∃σ″ (σ′ ≺ σ″ ≺ σ).  Φ(σ″)
//! χ_P(σ):  ∃σ′ ≺ σ. ∀σ″ (σ′ ≺ σ″ ≺ σ).  Φ(σ″)
//! ```
//!
//! quantifying over the finite prefixes of an infinite word — the
//! quantifier alternation that justifies the Borel names Π₁/Σ₁/Π₂/Σ₂.
//! On ultimately periodic words the unbounded quantifiers are decidable:
//! the prefix membership sequence of a regular `Φ` along `u·vω` is
//! ultimately periodic with period `|v|` and pre-period
//! `|u| + |Q|·|v|`, so quantification reduces to a bounded scan plus the
//! periodic tail.

use crate::finitary::FinitaryProperty;
use hierarchy_automata::lasso::Lasso;

/// The prefix-membership trace of `Φ` along the lasso: `(values, tail)`
/// where `values[j]` = "the prefix of length j+1 is in Φ" for
/// `j < values.len()`, and from index `values.len() − tail` on the trace
/// repeats with period `tail`.
pub fn prefix_trace(phi: &FinitaryProperty, word: &Lasso) -> (Vec<bool>, usize) {
    let dfa = phi.dfa();
    let spoke = word.spoke().len();
    let cyc = word.cycle().len();
    // After the spoke, the DFA state at loop offsets becomes periodic
    // within |Q| loop traversals.
    let horizon = spoke + (dfa.num_states() + 1) * cyc;
    let mut values = Vec::with_capacity(horizon);
    let mut q = dfa.initial();
    let mut states_at_entry = Vec::new();
    let mut period = cyc;
    let mut j = 0;
    while j < horizon {
        if j >= spoke && (j - spoke).is_multiple_of(cyc) {
            if let Some(first) = states_at_entry.iter().position(|&s| s == q) {
                period = (states_at_entry.len() - first) * cyc;
                break;
            }
            states_at_entry.push(q);
        }
        q = dfa.step(q, word.at(j));
        values.push(dfa.is_accepting(q));
        j += 1;
    }
    (values, period)
}

/// `χ_A(σ)`: every proper prefix of `σ` is in `Φ`.
pub fn chi_a(phi: &FinitaryProperty, word: &Lasso) -> bool {
    let (values, _) = prefix_trace(phi, word);
    values.iter().all(|&b| b)
}

/// `χ_E(σ)`: some proper prefix of `σ` is in `Φ`.
pub fn chi_e(phi: &FinitaryProperty, word: &Lasso) -> bool {
    let (values, _) = prefix_trace(phi, word);
    values.iter().any(|&b| b)
}

/// `χ_R(σ)`: beyond every prefix there is a longer `Φ`-prefix (infinitely
/// many `Φ`-prefixes).
pub fn chi_r(phi: &FinitaryProperty, word: &Lasso) -> bool {
    let (values, tail) = prefix_trace(phi, word);
    values[values.len() - tail..].iter().any(|&b| b)
}

/// `χ_P(σ)`: some prefix beyond which every prefix is in `Φ` (all but
/// finitely many `Φ`-prefixes).
pub fn chi_p(phi: &FinitaryProperty, word: &Lasso) -> bool {
    let (values, tail) = prefix_trace(phi, word);
    values[values.len() - tail..].iter().all(|&b| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_automata::random::random_lasso;
    use hierarchy_automata::random::rng::SeedableRng;
    use hierarchy_automata::random::rng::StdRng;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn chi_matches_operators_on_paper_examples() {
        let sigma = ab();
        let phi = FinitaryProperty::parse(&sigma, ".*b").unwrap();
        let w_inf = Lasso::parse(&sigma, "", "ab").unwrap();
        let w_tail = Lasso::parse(&sigma, "ab", "b").unwrap();
        let w_a = Lasso::parse(&sigma, "b", "a").unwrap();
        assert!(chi_r(&phi, &w_inf));
        assert!(!chi_p(&phi, &w_inf));
        assert!(chi_p(&phi, &w_tail));
        assert!(!chi_r(&phi, &w_a));
        assert!(chi_e(&phi, &w_a));
        assert!(!chi_a(&phi, &w_a));
    }

    #[test]
    fn chi_formulas_equal_operator_membership() {
        // The paper's claim σ ∈ O(Φ) ⇔ ⊨ χ_O^Φ(σ), randomized.
        let sigma = ab();
        let mut rng = StdRng::seed_from_u64(31);
        for pat in ["a*b", "(ab)+", ".*b", "aa*b*", "b*a"] {
            let phi = FinitaryProperty::parse(&sigma, pat).unwrap();
            let a = operators::a(&phi);
            let e = operators::e(&phi);
            let r = operators::r(&phi);
            let p = operators::p(&phi);
            for _ in 0..120 {
                let w = random_lasso(&mut rng, &sigma, 4, 4);
                assert_eq!(chi_a(&phi, &w), a.accepts(&w), "χ_A {pat}");
                assert_eq!(chi_e(&phi, &w), e.accepts(&w), "χ_E {pat}");
                assert_eq!(chi_r(&phi, &w), r.accepts(&w), "χ_R {pat}");
                assert_eq!(chi_p(&phi, &w), p.accepts(&w), "χ_P {pat}");
            }
        }
    }

    #[test]
    fn quantifier_dualities() {
        // ¬χ_A^Φ = χ_E^¬Φ and ¬χ_R^Φ = χ_P^¬Φ pointwise.
        let sigma = ab();
        let mut rng = StdRng::seed_from_u64(32);
        let phi = FinitaryProperty::parse(&sigma, "a*b").unwrap();
        let co = phi.complement();
        for _ in 0..200 {
            let w = random_lasso(&mut rng, &sigma, 4, 3);
            assert_eq!(!chi_a(&phi, &w), chi_e(&co, &w));
            assert_eq!(!chi_r(&phi, &w), chi_p(&co, &w));
        }
    }

    #[test]
    fn trace_periodicity_is_sound() {
        let sigma = ab();
        let phi = FinitaryProperty::parse(&sigma, "(aa)+").unwrap();
        let w = Lasso::parse(&sigma, "b", "a").unwrap();
        let (values, tail) = prefix_trace(&phi, &w);
        assert!(tail >= 1 && tail <= values.len());
        // The declared tail really repeats: extend manually and compare.
        let dfa = phi.dfa();
        let mut q = dfa.initial();
        let mut extended = Vec::new();
        for j in 0..values.len() + 2 * tail {
            q = dfa.step(q, w.at(j));
            extended.push(dfa.is_accepting(q));
        }
        for (i, &v) in extended.iter().enumerate() {
            let folded = if i < values.len() {
                values[i]
            } else {
                let base = values.len() - tail;
                values[base + (i - base) % tail]
            };
            assert_eq!(v, folded, "position {i}");
        }
    }
}
