//! The four infinitary operators **A, E, R, P** (Section 2), and `Pref`.
//!
//! Each operator maps a [`FinitaryProperty`] `Φ` to a deterministic
//! ω-automaton recognizing the corresponding infinitary property; the
//! resulting automata are in exactly the paper's structural shapes:
//!
//! * [`a`]`(Φ)` — a safety automaton (bad sink, acceptance "stay good");
//! * [`e`]`(Φ)` — a guarantee automaton (good states absorbing);
//! * [`r`]`(Φ)` — a recurrence (deterministic Büchi) automaton;
//! * [`p`]`(Φ)` — a persistence (deterministic co-Büchi) automaton.
//!
//! [`pref`] goes the other way: `Pref(Π)`, the finitary property of all
//! finite prefixes of an infinitary property, which characterizes safety
//! (`Π` is safety iff `Π = A(Pref(Π))`).

use crate::finitary::FinitaryProperty;
use hierarchy_automata::acceptance::Acceptance;
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::dfa::Dfa;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::StateId;

/// `A(Φ)`: the infinite words all of whose non-empty prefixes belong to
/// `Φ` — a safety property.
pub fn a(phi: &FinitaryProperty) -> OmegaAutomaton {
    // Divert to a rejecting sink as soon as a prefix leaves Φ; accept iff
    // the sink is never entered.
    let dfa = phi.dfa();
    let n = dfa.num_states();
    let sink = n as StateId;
    OmegaAutomaton::build(
        phi.alphabet(),
        n + 1,
        dfa.initial(),
        |q, s| {
            if q == sink {
                return sink;
            }
            let t = dfa.step(q, s);
            if dfa.is_accepting(t) {
                t
            } else {
                sink
            }
        },
        Acceptance::Fin(BitSet::from_iter([sink as usize])),
    )
    .trim()
}

/// `E(Φ) = Φ·Σ^ω`: the infinite words with some non-empty prefix in `Φ` —
/// a guarantee property.
pub fn e(phi: &FinitaryProperty) -> OmegaAutomaton {
    // Accepting states become absorbing; accept iff one is reached.
    let dfa = phi.dfa();
    let acc: BitSet = dfa.accepting().iter().collect();
    OmegaAutomaton::build(
        phi.alphabet(),
        dfa.num_states(),
        dfa.initial(),
        |q, s| {
            if dfa.is_accepting(q) {
                q
            } else {
                dfa.step(q, s)
            }
        },
        Acceptance::Inf(acc),
    )
    .trim()
}

/// `R(Φ)`: the infinite words with infinitely many prefixes in `Φ` — a
/// recurrence property (deterministic Büchi).
pub fn r(phi: &FinitaryProperty) -> OmegaAutomaton {
    let dfa = phi.dfa();
    let acc: BitSet = dfa.accepting().iter().collect();
    OmegaAutomaton::build(
        phi.alphabet(),
        dfa.num_states(),
        dfa.initial(),
        |q, s| dfa.step(q, s),
        Acceptance::Inf(acc),
    )
    .trim()
}

/// `P(Φ)`: the infinite words all but finitely many of whose prefixes are
/// in `Φ` — a persistence property (deterministic co-Büchi).
pub fn p(phi: &FinitaryProperty) -> OmegaAutomaton {
    let dfa = phi.dfa();
    let non_acc: BitSet = (0..dfa.num_states())
        .filter(|&q| !dfa.is_accepting(q as StateId))
        .collect();
    OmegaAutomaton::build(
        phi.alphabet(),
        dfa.num_states(),
        dfa.initial(),
        |q, s| dfa.step(q, s),
        Acceptance::Fin(non_acc),
    )
    .trim()
}

/// `Pref(Π)`: the finitary property of all non-empty finite prefixes of
/// words in `Π`.
///
/// For a deterministic complete automaton, a finite word is a prefix of
/// some accepted ω-word iff it leads to a *live* state (non-empty residual
/// language).
pub fn pref(aut: &OmegaAutomaton) -> FinitaryProperty {
    let live = aut.live_states();
    let dfa = Dfa::build(
        aut.alphabet(),
        aut.num_states(),
        aut.initial(),
        |q, s| aut.step(q, s),
        live.iter().map(|q| q as StateId),
    );
    FinitaryProperty::from_dfa(dfa)
}

/// The safety closure `A(Pref(Π))` computed through the linguistic
/// operators (the automata view computes the same thing directly as
/// [`hierarchy_automata::classify::safety_closure`]).
pub fn safety_closure_linguistic(aut: &OmegaAutomaton) -> OmegaAutomaton {
    a(&pref(aut))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Alphabet;
    use hierarchy_automata::classify;
    use hierarchy_automata::lasso::Lasso;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn phi(sigma: &Alphabet, pat: &str) -> FinitaryProperty {
        FinitaryProperty::parse(sigma, pat).unwrap()
    }

    fn lasso(sigma: &Alphabet, u: &str, v: &str) -> Lasso {
        Lasso::parse(sigma, u, v).unwrap()
    }

    #[test]
    fn a_of_paper_example() {
        // A(a⁺b*) = a^ω + a⁺b^ω.
        let sigma = ab();
        let m = a(&phi(&sigma, "aa*b*"));
        assert!(m.accepts(&lasso(&sigma, "", "a")));
        assert!(m.accepts(&lasso(&sigma, "aa", "b")));
        assert!(!m.accepts(&lasso(&sigma, "", "b")));
        assert!(!m.accepts(&lasso(&sigma, "ab", "a")));
        assert!(!m.accepts(&lasso(&sigma, "", "ab")));
        assert!(classify::is_safety(&m));
    }

    #[test]
    fn e_of_paper_example() {
        // E(a⁺b*) = a⁺b*·Σ^ω = a·Σ^ω over {a,b}.
        let sigma = ab();
        let m = e(&phi(&sigma, "aa*b*"));
        assert!(m.accepts(&lasso(&sigma, "a", "b")));
        assert!(m.accepts(&lasso(&sigma, "", "ab")));
        assert!(!m.accepts(&lasso(&sigma, "b", "a")));
        assert!(!m.accepts(&lasso(&sigma, "", "b")));
        assert!(classify::is_guarantee(&m));
    }

    #[test]
    fn r_of_paper_example() {
        // R(Σ*b) = (Σ*b)^ω: infinitely many b.
        let sigma = ab();
        let m = r(&phi(&sigma, ".*b"));
        assert!(m.accepts(&lasso(&sigma, "", "ab")));
        assert!(m.accepts(&lasso(&sigma, "aaa", "b")));
        assert!(!m.accepts(&lasso(&sigma, "bbb", "a")));
        let c = classify::classify(&m);
        assert!(c.is_recurrence && !c.is_persistence && !c.is_obligation);
    }

    #[test]
    fn p_of_paper_example() {
        // P(Σ*b) = Σ*b^ω: eventually only b.
        let sigma = ab();
        let m = p(&phi(&sigma, ".*b"));
        assert!(m.accepts(&lasso(&sigma, "ab", "b")));
        assert!(m.accepts(&lasso(&sigma, "", "b")));
        assert!(!m.accepts(&lasso(&sigma, "", "ab")));
        assert!(!m.accepts(&lasso(&sigma, "b", "a")));
        let c = classify::classify(&m);
        assert!(c.is_persistence && !c.is_recurrence && !c.is_obligation);
    }

    #[test]
    fn operator_dualities() {
        // ¬A(Φ) = E(¬Φ) and ¬R(Φ) = P(¬Φ).
        let sigma = ab();
        for pat in ["aa*b*", ".*b", "a*b", "(ab)+"] {
            let f = phi(&sigma, pat);
            assert!(
                a(&f).complement().equivalent(&e(&f.complement())),
                "A/E duality failed on {pat}"
            );
            assert!(
                r(&f).complement().equivalent(&p(&f.complement())),
                "R/P duality failed on {pat}"
            );
        }
    }

    #[test]
    fn guarantee_union_intersection_laws() {
        // E(Φ₁) ∪ E(Φ₂) = E(Φ₁ ∪ Φ₂);
        // E(Φ₁) ∩ E(Φ₂) = E(E_f(Φ₁) ∩ E_f(Φ₂)).
        let sigma = ab();
        let f1 = phi(&sigma, "a*b");
        let f2 = phi(&sigma, "b*a");
        assert!(e(&f1).union(&e(&f2)).equivalent(&e(&f1.union(&f2))));
        assert!(e(&f1)
            .intersection(&e(&f2))
            .equivalent(&e(&f1.e_f().intersection(&f2.e_f()))));
    }

    #[test]
    fn safety_union_intersection_laws() {
        // A(Φ₁) ∩ A(Φ₂) = A(Φ₁ ∩ Φ₂);
        // A(Φ₁) ∪ A(Φ₂) = A(A_f(Φ₁) ∪ A_f(Φ₂)).
        let sigma = ab();
        let f1 = phi(&sigma, "aa*b*");
        let f2 = phi(&sigma, "a*");
        assert!(a(&f1)
            .intersection(&a(&f2))
            .equivalent(&a(&f1.intersection(&f2))));
        assert!(a(&f1)
            .union(&a(&f2))
            .equivalent(&a(&f1.a_f().union(&f2.a_f()))));
    }

    #[test]
    fn recurrence_laws_including_minex() {
        // R(Φ₁) ∪ R(Φ₂) = R(Φ₁ ∪ Φ₂);
        // R(Φ₁) ∩ R(Φ₂) = R(minex(Φ₁, Φ₂)).
        let sigma = ab();
        let cases = [(".*a", ".*b"), ("(aa)+", "(aaa)+"), ("a*b", "b*a")];
        for (p1, p2) in cases {
            let f1 = phi(&sigma, p1);
            let f2 = phi(&sigma, p2);
            assert!(
                r(&f1).union(&r(&f2)).equivalent(&r(&f1.union(&f2))),
                "R union law failed on {p1},{p2}"
            );
            assert!(
                r(&f1).intersection(&r(&f2)).equivalent(&r(&f1.minex(&f2))),
                "R minex law failed on {p1},{p2}"
            );
        }
    }

    #[test]
    fn persistence_laws() {
        // P(Φ₁) ∩ P(Φ₂) = P(Φ₁ ∩ Φ₂);
        // P(Φ₁) ∪ P(Φ₂) = P(¬minex(Φ̄₁, Φ̄₂)).
        let sigma = ab();
        let f1 = phi(&sigma, ".*a");
        let f2 = phi(&sigma, ".*b");
        assert!(p(&f1)
            .intersection(&p(&f2))
            .equivalent(&p(&f1.intersection(&f2))));
        let m = f1.complement().minex(&f2.complement()).complement();
        assert!(p(&f1).union(&p(&f2)).equivalent(&p(&m)));
    }

    #[test]
    fn inclusion_equalities() {
        // A(Φ) = R(A_f(Φ)) and E(Φ) = R(E_f(Φ));
        // A(Φ) = P(A_f(Φ)) and E(Φ) = P(E_f(Φ)).
        let sigma = ab();
        for pat in ["aa*b*", ".*b", "a*b"] {
            let f = phi(&sigma, pat);
            assert!(a(&f).equivalent(&r(&f.a_f())), "A=R(A_f) failed on {pat}");
            assert!(e(&f).equivalent(&r(&f.e_f())), "E=R(E_f) failed on {pat}");
            assert!(a(&f).equivalent(&p(&f.a_f())), "A=P(A_f) failed on {pat}");
            assert!(e(&f).equivalent(&p(&f.e_f())), "E=P(E_f) failed on {pat}");
        }
    }

    #[test]
    fn pref_recovers_prefixes() {
        let sigma = ab();
        // Pref((a*b)^ω) = Σ⁺ minus nothing… all finite words extend to
        // infinitely-many-b words, so Pref = Σ⁺ = (a+b)⁺.
        let m = r(&phi(&sigma, ".*b"));
        assert!(pref(&m).equivalent(&FinitaryProperty::sigma_plus(&sigma)));
        // Pref(A(a⁺b*)) = a⁺b*.
        let s = a(&phi(&sigma, "aa*b*"));
        assert!(pref(&s).equivalent(&phi(&sigma, "aa*b*")));
    }

    #[test]
    fn safety_characterization_via_pref() {
        let sigma = ab();
        // Π safety iff Π = A(Pref(Π)): true for A(a⁺b*), false for (a*b)^ω.
        let s = a(&phi(&sigma, "aa*b*"));
        assert!(s.equivalent(&safety_closure_linguistic(&s)));
        let rec = r(&phi(&sigma, ".*b"));
        assert!(!rec.equivalent(&safety_closure_linguistic(&rec)));
        // The two safety-closure implementations agree.
        for m in [&s, &rec] {
            assert!(safety_closure_linguistic(m).equivalent(&classify::safety_closure(m)));
        }
    }

    #[test]
    fn paper_guarantee_characterization() {
        // Π guarantee iff Π = E(¬Pref(¬Π)).
        let sigma = ab();
        let g = e(&phi(&sigma, "aa*b*"));
        let reconstructed = e(&pref(&g.complement()).complement());
        assert!(g.equivalent(&reconstructed));
        // And a recurrence property fails the characterization.
        let rec = r(&phi(&sigma, ".*b"));
        let rec2 = e(&pref(&rec.complement()).complement());
        assert!(!rec.equivalent(&rec2));
    }
}
