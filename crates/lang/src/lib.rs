#![warn(missing_docs)]

//! The **linguistic view** of the Manna–Pnueli temporal-property hierarchy
//! (Section 2 of *A Hierarchy of Temporal Properties*, PODC 1990).
//!
//! The paper constructs every infinitary property class from *finitary
//! properties* `Φ ⊆ Σ⁺` via four operators:
//!
//! | operator | meaning                                   | class       |
//! |----------|-------------------------------------------|-------------|
//! | `A(Φ)`   | all prefixes belong to `Φ`                | safety      |
//! | `E(Φ)`   | some prefix belongs to `Φ`                | guarantee   |
//! | `R(Φ)`   | infinitely many prefixes belong to `Φ`    | recurrence  |
//! | `P(Φ)`   | all but finitely many prefixes are in `Φ` | persistence |
//!
//! This crate provides:
//!
//! * [`regex`] + [`thompson`] — regular expressions in the paper's notation
//!   (`a⁺b*` written `aa*b*` or `a+b*` with postfix `+`, unions with infix
//!   `+`, `.` for Σ) and their compilation to automata;
//! * [`FinitaryProperty`] — regular sets of non-empty finite words with the
//!   full boolean algebra, the finitary operators `A_f`/`E_f`, and the
//!   [`minex`](FinitaryProperty::minex) minimal-extension operator that
//!   drives the closure of the recurrence class under intersection;
//! * [`operators`] — the four operators `A/E/R/P` producing deterministic
//!   ω-automata, plus [`operators::pref`] recovering `Pref(Π)`;
//! * [`witnesses`] — the paper's canonical separating languages
//!   (`(a*b)^ω`, `(a+b)*a^ω`, the `Obl_k` family `[(Π+a*)d]^{k-1}·Π`, …);
//! * [`omega_nba`] — nondeterministic Büchi constructions (`U·V^ω`, unions)
//!   used to cross-validate the deterministic pipeline on sampled lassos.
//!
//! # Example
//!
//! ```
//! use hierarchy_automata::prelude::*;
//! use hierarchy_lang::{operators, FinitaryProperty};
//!
//! let sigma = Alphabet::new(["a", "b"]).unwrap();
//! // Φ = a⁺b* (the paper's running example).
//! let phi = FinitaryProperty::parse(&sigma, "aa*b*").unwrap();
//! // A(Φ) = a^ω + a⁺b^ω is a safety property…
//! let safety = operators::a(&phi);
//! assert!(classify::is_safety(&safety));
//! // …and E(Φ) = a⁺b*·Σ^ω is a guarantee property.
//! let guarantee = operators::e(&phi);
//! assert!(classify::is_guarantee(&guarantee));
//! ```

pub mod finitary;
pub mod firstorder;
pub mod omega_nba;
pub mod operators;
pub mod regex;
pub mod thompson;
pub mod witnesses;

pub use finitary::FinitaryProperty;
pub use regex::{Regex, RegexError};
