//! Finitary properties `Φ ⊆ Σ⁺` — the building blocks of the hierarchy.
//!
//! A [`FinitaryProperty`] is a regular set of **non-empty** finite words,
//! backed by a minimal complete DFA. The paper's finitary operators are
//! provided as methods: the boolean algebra (complement relative to `Σ⁺`),
//! the finitary versions `A_f`/`E_f` of the infinitary operators, and the
//! `minex` minimal-extension operator of the recurrence-intersection law
//! `R(Φ₁) ∩ R(Φ₂) = R(minex(Φ₁, Φ₂))`.

use crate::regex::{Regex, RegexError};
use crate::thompson;
use hierarchy_automata::alphabet::{Alphabet, Symbol};
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::dfa::Dfa;
use hierarchy_automata::StateId;

/// A regular set of non-empty finite words over an alphabet.
///
/// All constructors normalize the underlying automaton: the language is
/// intersected with `Σ⁺` (the empty word is never a member, matching the
/// paper's definition `Φ ⊆ Σ⁺`) and the DFA is minimized.
///
/// # Examples
///
/// ```
/// use hierarchy_automata::prelude::*;
/// use hierarchy_lang::FinitaryProperty;
///
/// let sigma = Alphabet::new(["a", "b"]).unwrap();
/// let phi = FinitaryProperty::parse(&sigma, "a*b").unwrap();
/// assert!(phi.contains_str("aab").unwrap());
/// assert!(!phi.contains_str("ba").unwrap());
/// // ε is excluded even if the regex matches it:
/// let all = FinitaryProperty::parse(&sigma, "a*").unwrap();
/// assert!(!all.contains([]));
/// ```
#[derive(Debug, Clone)]
pub struct FinitaryProperty {
    dfa: Dfa,
}

impl FinitaryProperty {
    /// Builds a finitary property from a regex string (see
    /// [`Regex::parse`] for the grammar).
    ///
    /// # Errors
    ///
    /// Returns the parse error, if any.
    pub fn parse(alphabet: &Alphabet, pattern: &str) -> Result<Self, RegexError> {
        Ok(Self::from_regex(
            alphabet,
            &Regex::parse(alphabet, pattern)?,
        ))
    }

    /// Builds a finitary property from a regex syntax tree.
    pub fn from_regex(alphabet: &Alphabet, regex: &Regex) -> Self {
        Self::from_dfa(thompson::regex_to_dfa(alphabet, regex))
    }

    /// Wraps a DFA, dropping ε from its language and minimizing.
    pub fn from_dfa(dfa: Dfa) -> Self {
        // Exclude ε: if the initial state is accepting, split it.
        let normalized = if dfa.is_accepting(dfa.initial()) {
            let n = dfa.num_states();
            let init = dfa.initial();
            // State n mirrors the initial state but is non-accepting.
            let accepting: BitSet = dfa.accepting().iter().collect();
            let dfa2 = Dfa::build(
                dfa.alphabet(),
                n + 1,
                n as StateId,
                |q, s| {
                    let src = if q as usize == n { init } else { q };
                    dfa.step(src, s)
                },
                accepting.iter().map(|q| q as StateId),
            );
            dfa2
        } else {
            dfa
        };
        FinitaryProperty {
            dfa: normalized.minimize(),
        }
    }

    /// The empty finitary property ∅.
    pub fn empty(alphabet: &Alphabet) -> Self {
        FinitaryProperty {
            dfa: Dfa::empty(alphabet),
        }
    }

    /// The full finitary property `Σ⁺`.
    pub fn sigma_plus(alphabet: &Alphabet) -> Self {
        Self::from_dfa(Dfa::sigma_star(alphabet))
    }

    /// The underlying minimal DFA (its language never contains ε).
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        self.dfa.alphabet()
    }

    /// Membership of a word (ε is never a member).
    pub fn contains<I: IntoIterator<Item = Symbol>>(&self, word: I) -> bool {
        self.dfa.accepts(word)
    }

    /// Membership of a word given as single-character symbol names; `None`
    /// if some character is not in the alphabet.
    pub fn contains_str(&self, word: &str) -> Option<bool> {
        let syms: Option<Vec<Symbol>> = word
            .chars()
            .map(|c| self.alphabet().symbol(&c.to_string()))
            .collect();
        Some(self.contains(syms?))
    }

    /// Whether the property holds of no word.
    pub fn is_empty(&self) -> bool {
        self.dfa.is_empty()
    }

    /// Union.
    pub fn union(&self, other: &FinitaryProperty) -> FinitaryProperty {
        FinitaryProperty {
            dfa: self.dfa.union(&other.dfa).minimize(),
        }
    }

    /// Intersection.
    pub fn intersection(&self, other: &FinitaryProperty) -> FinitaryProperty {
        FinitaryProperty {
            dfa: self.dfa.intersection(&other.dfa).minimize(),
        }
    }

    /// Difference.
    pub fn difference(&self, other: &FinitaryProperty) -> FinitaryProperty {
        FinitaryProperty {
            dfa: self.dfa.difference(&other.dfa).minimize(),
        }
    }

    /// The paper's complement `Φ̄ = Σ⁺ − Φ` (relative to non-empty words).
    pub fn complement(&self) -> FinitaryProperty {
        Self::from_dfa(self.dfa.complement())
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &FinitaryProperty) -> bool {
        self.dfa.is_subset_of(&other.dfa)
    }

    /// Whether the two properties hold of exactly the same words.
    pub fn equivalent(&self, other: &FinitaryProperty) -> bool {
        self.dfa.equivalent(&other.dfa)
    }

    /// A shortest member, if any.
    pub fn shortest_member(&self) -> Option<Vec<Symbol>> {
        self.dfa.shortest_accepted()
    }

    /// The finitary operator `A_f(Φ)`: words all of whose non-empty
    /// prefixes (including the word itself) belong to `Φ`.
    pub fn a_f(&self) -> FinitaryProperty {
        // Add a dead sink; any step that would reach a non-accepting state
        // diverts there.
        let n = self.dfa.num_states();
        let sink = n as StateId;
        let dfa = &self.dfa;
        let out = Dfa::build(
            self.alphabet(),
            n + 1,
            dfa.initial(),
            |q, s| {
                if q == sink {
                    return sink;
                }
                let t = dfa.step(q, s);
                if dfa.is_accepting(t) {
                    t
                } else {
                    sink
                }
            },
            dfa.accepting().iter().map(|q| q as StateId),
        );
        FinitaryProperty::from_dfa(out)
    }

    /// The finitary operator `E_f(Φ) = Φ·Σ*`: words with some non-empty
    /// prefix in `Φ`.
    pub fn e_f(&self) -> FinitaryProperty {
        // Accepting states become absorbing.
        let dfa = &self.dfa;
        let out = Dfa::build(
            self.alphabet(),
            dfa.num_states(),
            dfa.initial(),
            |q, s| {
                if dfa.is_accepting(q) {
                    q
                } else {
                    dfa.step(q, s)
                }
            },
            dfa.accepting().iter().map(|q| q as StateId),
        );
        FinitaryProperty::from_dfa(out)
    }

    /// The paper's minimal-extension operator `minex(Φ₁, Φ₂)`: the words
    /// `σ₂ ∈ Φ₂` that are a *minimal proper* `Φ₂`-extension of some
    /// `σ₁ ∈ Φ₁` (no `σ₂' ∈ Φ₂` with `σ₁ ≺ σ₂' ≺ σ₂`).
    ///
    /// This is the key to the closure law
    /// `R(Φ₁) ∩ R(Φ₂) = R(minex(Φ₁, Φ₂))`.
    pub fn minex(&self, other: &FinitaryProperty) -> FinitaryProperty {
        // Product automaton (q₁, q₂, pending, fresh) where `pending` says
        // "some proper prefix was in Φ₁ with no Φ₂-word strictly in
        // between", evaluated *before* the current position, and `fresh`
        // caches whether the word read so far qualifies (current prefix in
        // Φ₂ and pending held before it).
        let d1 = &self.dfa;
        let d2 = &other.dfa;
        assert_eq!(
            d1.alphabet(),
            d2.alphabet(),
            "minex requires identical alphabets"
        );
        let n1 = d1.num_states();
        let n2 = d2.num_states();
        let id = |q1: StateId, q2: StateId, pending: bool, acc: bool| -> StateId {
            ((((q1 as usize * n2) + q2 as usize) * 2 + usize::from(pending)) * 2 + usize::from(acc))
                as StateId
        };
        let start = id(d1.initial(), d2.initial(), false, false);
        let out = Dfa::build(
            self.alphabet(),
            n1 * n2 * 4,
            start,
            |state, s| {
                let acc_bit = state % 2;
                let pending = (state / 2) % 2 == 1;
                let q2 = (state / 4) as usize % n2;
                let q1 = (state / 4) as usize / n2;
                let _ = acc_bit;
                let t1 = d1.step(q1 as StateId, s);
                let t2 = d2.step(q2 as StateId, s);
                let new_acc = d2.is_accepting(t2) && pending;
                let new_pending = d1.is_accepting(t1) || (pending && !d2.is_accepting(t2));
                id(t1, t2, new_pending, new_acc)
            },
            (0..(n1 * n2 * 4) as StateId).filter(|s| s % 2 == 1),
        );
        FinitaryProperty::from_dfa(out)
    }
}

impl PartialEq for FinitaryProperty {
    fn eq(&self, other: &Self) -> bool {
        self.equivalent(other)
    }
}

impl Eq for FinitaryProperty {}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn prop(sigma: &Alphabet, pat: &str) -> FinitaryProperty {
        FinitaryProperty::parse(sigma, pat).unwrap()
    }

    #[test]
    fn epsilon_always_excluded() {
        let sigma = ab();
        let star = prop(&sigma, "a*");
        assert!(!star.contains([]));
        assert!(star.contains_str("a").unwrap());
        assert!(star.equivalent(&prop(&sigma, "a+")));
        assert!(FinitaryProperty::sigma_plus(&sigma)
            .contains_str("b")
            .unwrap());
        assert!(!FinitaryProperty::sigma_plus(&sigma).contains([]));
    }

    #[test]
    fn boolean_algebra_relative_to_sigma_plus() {
        let sigma = ab();
        let phi = prop(&sigma, "a*b");
        let comp = phi.complement();
        assert!(!comp.contains([]));
        assert!(comp.contains_str("a").unwrap());
        assert!(!comp.contains_str("ab").unwrap());
        assert!(phi
            .union(&comp)
            .equivalent(&FinitaryProperty::sigma_plus(&sigma)));
        assert!(phi.intersection(&comp).is_empty());
        assert!(phi.difference(&phi).is_empty());
        assert!(phi.is_subset_of(&FinitaryProperty::sigma_plus(&sigma)));
    }

    #[test]
    fn a_f_keeps_prefix_closed_words() {
        let sigma = ab();
        // The paper: A_f(a⁺b*) = a⁺b*.
        let phi = prop(&sigma, "aa*b*");
        let af = phi.a_f();
        assert!(af.equivalent(&prop(&sigma, "aa*b*")));
    }

    #[test]
    fn a_f_drops_words_with_bad_prefixes() {
        let sigma = ab();
        // Φ = Σ*b: words ending in b. A_f(Φ) = b⁺ (every prefix must end
        // in b).
        let phi = prop(&sigma, ".*b");
        assert!(phi.a_f().equivalent(&prop(&sigma, "bb*")));
    }

    #[test]
    fn e_f_is_phi_sigma_star() {
        let sigma = ab();
        // The paper: E_f(a⁺b*) = a⁺b*·Σ*  — which over {a,b} is a·Σ*.
        let phi = prop(&sigma, "aa*b*");
        let ef = phi.e_f();
        assert!(ef.equivalent(&prop(&sigma, "a(a+b)*")));
    }

    #[test]
    fn finitary_duality_laws() {
        let sigma = ab();
        for pat in ["a*b", "aa*b*", "(ab)+", ".*ba"] {
            let phi = prop(&sigma, pat);
            // ¬A_f(Φ) = E_f(¬Φ) and ¬E_f(Φ) = A_f(¬Φ), complements in Σ⁺.
            assert!(
                phi.a_f().complement().equivalent(&phi.complement().e_f()),
                "A_f duality failed for {pat}"
            );
            assert!(
                phi.e_f().complement().equivalent(&phi.complement().a_f()),
                "E_f duality failed for {pat}"
            );
        }
    }

    #[test]
    fn minex_paper_example_corrected() {
        // minex((a³)⁺, (a²)⁺): by the definition, a² itself has no proper
        // Φ₁-prefix, so the language is (a⁶)⁺a² + (a⁶)*a⁴ (the paper's
        // display "(a⁶)*a² + (a⁶)*a⁴" includes a², which has no Φ₁-prefix —
        // see EXPERIMENTS.md).
        let sigma = ab();
        let p3 = prop(&sigma, "(aaa)+");
        let p2 = prop(&sigma, "(aa)+");
        let m = p3.minex(&p2);
        let expected = prop(&sigma, "(aaaaaa)(aaaaaa)*aa + (aaaaaa)*aaaa");
        assert!(
            m.equivalent(&expected),
            "minex (a³)⁺/(a²)⁺ mismatch; got e.g. {:?}",
            m.shortest_member()
        );
    }

    #[test]
    fn minex_paper_example_two() {
        // minex((a²)⁺, (a³)⁺) = (a⁶)⁺ + (a⁶)*a³ = (a³)⁺.
        let sigma = ab();
        let p2 = prop(&sigma, "(aa)+");
        let p3 = prop(&sigma, "(aaa)+");
        let m = p2.minex(&p3);
        assert!(m.equivalent(&prop(&sigma, "(aaa)+")));
    }

    #[test]
    fn minex_is_subset_of_phi2() {
        let sigma = ab();
        let p1 = prop(&sigma, "a*b");
        let p2 = prop(&sigma, "b*a");
        assert!(p1.minex(&p2).is_subset_of(&p2));
        assert!(p2.minex(&p1).is_subset_of(&p1));
    }

    #[test]
    fn minex_simple_membership() {
        let sigma = ab();
        // Φ₁ = {a}, Φ₂ = words ending in b.
        let p1 = prop(&sigma, "a");
        let p2 = prop(&sigma, ".*b");
        let m = p1.minex(&p2);
        // ab: extension of a, minimal (nothing strictly between) → in.
        assert!(m.contains_str("ab").unwrap());
        // abb: a ≺ ab ≺ abb with ab ∈ Φ₂ → not minimal.
        assert!(!m.contains_str("abb").unwrap());
        // aab: a ≺ aab, nothing in Φ₂ strictly between (aa ∉ Φ₂) → in.
        assert!(m.contains_str("aab").unwrap());
        // b: no proper Φ₁-prefix → out.
        assert!(!m.contains_str("b").unwrap());
    }

    #[test]
    fn shortest_member_examples() {
        let sigma = ab();
        assert_eq!(
            prop(&sigma, "a*b").shortest_member().unwrap().len(),
            1 // "b"
        );
        assert!(FinitaryProperty::empty(&sigma).shortest_member().is_none());
    }
}
