//! The paper's canonical witness languages: for every class of the
//! hierarchy, a property in that class and in no lower class. These drive
//! the `FIG1` experiment (the strict-inclusion diagram) and the strict
//! `Obl_k` / reactivity-index hierarchies.

use crate::finitary::FinitaryProperty;
use crate::operators;
use hierarchy_automata::acceptance::Acceptance;
use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::bitset::BitSet;
use hierarchy_automata::omega::OmegaAutomaton;
use hierarchy_automata::StateId;

/// The two-letter alphabet {a, b} used by most witnesses.
pub fn sigma_ab() -> Alphabet {
    Alphabet::new(["a", "b"]).expect("valid alphabet")
}

/// The three-letter alphabet {a, b, c}.
pub fn sigma_abc() -> Alphabet {
    Alphabet::new(["a", "b", "c"]).expect("valid alphabet")
}

/// The four-letter alphabet {a, b, c, d} of the `Obl_k` witness family.
pub fn sigma_abcd() -> Alphabet {
    Alphabet::new(["a", "b", "c", "d"]).expect("valid alphabet")
}

/// Safety witness: `A(a⁺b*) = a^ω + a⁺b^ω` (§2's running example).
pub fn safety() -> OmegaAutomaton {
    let sigma = sigma_ab();
    operators::a(&FinitaryProperty::parse(&sigma, "aa*b*").expect("valid regex"))
}

/// Guarantee witness: `E(Σ*b) = Σ*·b·Σ^ω` ("eventually b", the paper's
/// ◇b) — a guarantee property that is not a safety property.
///
/// Note that the paper's §2 example `E(a⁺b*)` is *not* a strict witness
/// over Σ = {a,b}: it denotes "the first symbol is a", which is **clopen**
/// (both safety and guarantee). See [`guarantee_paper_example`] and
/// EXPERIMENTS.md.
pub fn guarantee() -> OmegaAutomaton {
    let sigma = sigma_ab();
    operators::e(&FinitaryProperty::parse(&sigma, ".*b").expect("valid regex"))
}

/// The paper's §2 guarantee example `E(a⁺b*) = a⁺b*·Σ^ω`. Over Σ = {a,b}
/// this equals `a·Σ^ω`, which is clopen — a guarantee property (as the
/// paper says) that happens to also be safety.
pub fn guarantee_paper_example() -> OmegaAutomaton {
    let sigma = sigma_ab();
    operators::e(&FinitaryProperty::parse(&sigma, "aa*b*").expect("valid regex"))
}

/// Recurrence witness: `R(Σ*b) = (a*b)^ω` — infinitely many `b`s. The
/// paper's canonical example of a recurrence property that is neither a
/// safety, guarantee, nor obligation property.
pub fn recurrence() -> OmegaAutomaton {
    let sigma = sigma_ab();
    operators::r(&FinitaryProperty::parse(&sigma, ".*b").expect("valid regex"))
}

/// Persistence witness: `P(Σ*b) = Σ*b^ω` — eventually only `b`s.
pub fn persistence() -> OmegaAutomaton {
    let sigma = sigma_ab();
    operators::p(&FinitaryProperty::parse(&sigma, ".*b").expect("valid regex"))
}

/// The complementary persistence witness `(a+b)*a^ω` used in §2 for the
/// strictness of "persistence contains safety and guarantee".
pub fn persistence_a() -> OmegaAutomaton {
    let sigma = sigma_ab();
    operators::p(&FinitaryProperty::parse(&sigma, ".*a").expect("valid regex"))
}

/// The paper's "typical obligation property" `a*b^ω + Σ*·c·Σ^ω` over
/// {a,b,c}: an obligation property that is neither safety nor guarantee.
///
/// The paper describes it as "a union of the safety property `a*b^ω` and
/// the guarantee property `Σ*·c·Σ^ω`", but over Σ = {a,b,c} the language
/// `a*b^ω` is **not** closed (its closure adds `a^ω`), and the union is in
/// fact `Obl₂`-complete, not a simple obligation: any candidate
/// `A(Φ) ∪ E(Ψ)` decomposition fails on the family `a^k b^ω` (a closed
/// part covering infinitely many of them would contain the limit `a^ω ∉
/// Π`; an open part covering any of them would contain some
/// `a^k b^n a^ω ∉ Π`). The classifier confirms obligation index 2 — see
/// EXPERIMENTS.md.
pub fn obligation_simple() -> OmegaAutomaton {
    let sigma = sigma_abc();
    // a*b^ω = A(a*b*∩Σ⁺) ∩ P(a*b⁺): all prefixes in a*b*, eventually in
    // the b-phase.
    let safety_part = operators::a(&FinitaryProperty::parse(&sigma, "a*b*").expect("regex"))
        .intersection(&operators::p(
            &FinitaryProperty::parse(&sigma, "a*bb*").expect("regex"),
        ));
    let guarantee_part =
        operators::e(&FinitaryProperty::parse(&sigma, "(a+b+c)*c").expect("regex"));
    safety_part.union(&guarantee_part)
}

/// The `Obl_k` strictness witness `[(Π + (a+b)*)d]^{k-1}·Π` over
/// {a,b,c,d}, where `Π = a^ω + (a+b)*·c·Σ^ω`. The property belongs to
/// `Obl_k` but to no `Obl_{k'}` with `k' < k`.
///
/// The paper prints the family as `[(Π+a*)d]^{k-1}·Π`; as printed it
/// **collapses to `Obl₁`** — with pure `a*d` blocks the non-`c` part of
/// the language is `⋃_j (a*d)^j·a^ω`, which is topologically closed, so
/// `L = A(a*(da*)^{≤k-1}) ∪ E(Ψ_c)` is a simple obligation (this library's
/// classifier finds exactly that, see the `obligation_witness_degrees`
/// test and EXPERIMENTS.md). Blocks `(a+b)*d` restore the intended
/// hardness: a `b` commits the current block to the `c`-path until the
/// next `d`, producing `k` alternations between the bad and good regions.
///
/// Built directly as a deterministic automaton: up to `k−1` blocks of
/// `(a+b)*d`; within the current block the run either stays on `a` forever
/// (the `a^ω` tail of Π), is dirtied by a `b` (committed to `(a+b)*·c`
/// until a `d` starts the next block), or reaches `c` (accepted outright).
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn obligation_witness(k: usize) -> OmegaAutomaton {
    assert!(k >= 1, "the Obl_k hierarchy starts at k = 1");
    let sigma = sigma_abcd();
    let c = sigma.symbol("c").expect("symbol c");
    let a = sigma.symbol("a").expect("symbol a");
    let b = sigma.symbol("b").expect("symbol b");
    // States: clean_j = 2j, dirty_j = 2j+1 for stage j ∈ 0..k;
    // accepted = 2k; dead = 2k+1.
    let accepted = (2 * k) as StateId;
    let dead = (2 * k + 1) as StateId;
    let n = 2 * k + 2;
    OmegaAutomaton::build(
        &sigma,
        n,
        0,
        |q, s| {
            if q == accepted {
                return accepted;
            }
            if q == dead {
                return dead;
            }
            let stage = (q / 2) as usize;
            if s == c {
                return accepted;
            }
            if s == a {
                return q; // stay clean or dirty within the stage
            }
            if s == b {
                return (2 * stage + 1) as StateId; // dirty until the next d
            }
            // s == d: end the current (a+b)* block, advance the counter.
            if stage + 1 < k {
                (2 * (stage + 1)) as StateId
            } else {
                dead
            }
        },
        // All cycles are self-loops; accept iff the run settles on a clean
        // state (aω tail) or on the accepted sink.
        Acceptance::Inf(
            (0..k)
                .map(|j| 2 * j)
                .chain([accepted as usize])
                .collect::<BitSet>(),
        ),
    )
}

/// The paper's `Obl_k` family *as printed*, `[(Π+a*)d]^{k-1}·Π` with pure
/// `a*d` blocks. Kept for the experiment that demonstrates the collapse:
/// [`hierarchy_automata::classify::classify`] assigns it obligation index
/// **1** for every `k` (see [`obligation_witness`] and EXPERIMENTS.md).
pub fn obligation_witness_as_printed(k: usize) -> OmegaAutomaton {
    assert!(k >= 1, "the Obl_k hierarchy starts at k = 1");
    let sigma = sigma_abcd();
    let c = sigma.symbol("c").expect("symbol c");
    let a = sigma.symbol("a").expect("symbol a");
    let b = sigma.symbol("b").expect("symbol b");
    let accepted = (2 * k) as StateId;
    let dead = (2 * k + 1) as StateId;
    OmegaAutomaton::build(
        &sigma,
        2 * k + 2,
        0,
        |q, s| {
            if q == accepted {
                return accepted;
            }
            if q == dead {
                return dead;
            }
            let stage = (q / 2) as usize;
            let clean = q % 2 == 0;
            if s == c {
                return accepted;
            }
            if s == a {
                return q;
            }
            if s == b {
                return (2 * stage + 1) as StateId;
            }
            // s == d: blocks must be pure a*, so only a clean stage advances.
            if clean && stage + 1 < k {
                (2 * (stage + 1)) as StateId
            } else {
                dead
            }
        },
        Acceptance::Inf(
            (0..k)
                .map(|j| 2 * j)
                .chain([accepted as usize])
                .collect::<BitSet>(),
        ),
    )
}

/// Reactivity-index witness: `⋀ᵢ (□◇aᵢ ∨ ◇□¬bᵢ)` over the alphabet
/// `{a₁, b₁, …, a_k, b_k, z}`, tracking the last symbol. Its reactivity
/// index is exactly `k`.
///
/// # Panics
///
/// Panics if `k == 0` or `2k + 1 > 64`.
pub fn reactivity_witness(k: usize) -> OmegaAutomaton {
    assert!((1..=31).contains(&k), "k must be in 1..=31");
    let names: Vec<String> = (0..k)
        .flat_map(|i| [format!("a{i}"), format!("b{i}")])
        .chain(["z".to_string()])
        .collect();
    let sigma = Alphabet::new(names).expect("valid alphabet");
    // State = index of the last symbol read (initial = the z-state).
    let z_state = (2 * k) as StateId;
    let acceptance = (0..k)
        .map(|i| {
            Acceptance::inf([2 * i]) // infinitely many aᵢ
                .or(Acceptance::fin([2 * i + 1])) // or finitely many bᵢ
        })
        .fold(Acceptance::True, Acceptance::and);
    OmegaAutomaton::build(
        &sigma,
        2 * k + 1,
        z_state,
        |_, s| s.index() as StateId,
        acceptance,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::classify;
    use hierarchy_automata::lasso::Lasso;

    #[test]
    fn witnesses_land_in_their_classes() {
        let s = classify::classify(&safety());
        assert_eq!(s.strictest_class_name(), "safety");
        let g = classify::classify(&guarantee());
        assert_eq!(g.strictest_class_name(), "guarantee");
        let r = classify::classify(&recurrence());
        assert_eq!(r.strictest_class_name(), "recurrence");
        let p = classify::classify(&persistence());
        assert_eq!(p.strictest_class_name(), "persistence");
        let p2 = classify::classify(&persistence_a());
        assert_eq!(p2.strictest_class_name(), "persistence");
        let o = classify::classify(&obligation_simple());
        assert_eq!(o.strictest_class_name(), "obligation");
        // The paper calls this a union of a safety and a guarantee
        // property, but a*b^ω is not closed over {a,b,c}: the exact
        // obligation index is 2 (see the doc comment).
        assert_eq!(o.obligation_index, Some(2));
    }

    #[test]
    fn obligation_simple_membership() {
        let sigma = sigma_abc();
        let m = obligation_simple();
        // a*b^ω members:
        assert!(m.accepts(&Lasso::parse(&sigma, "aa", "b").unwrap()));
        assert!(m.accepts(&Lasso::parse(&sigma, "", "b").unwrap()));
        // Σ*cΣ^ω members:
        assert!(m.accepts(&Lasso::parse(&sigma, "bac", "a").unwrap()));
        assert!(m.accepts(&Lasso::parse(&sigma, "c", "abc").unwrap()));
        // Non-members:
        assert!(!m.accepts(&Lasso::parse(&sigma, "", "a").unwrap())); // a^ω
        assert!(!m.accepts(&Lasso::parse(&sigma, "", "ab").unwrap()));
        assert!(!m.accepts(&Lasso::parse(&sigma, "ba", "b").unwrap())); // b before a
    }

    #[test]
    fn obligation_witness_membership() {
        let sigma = sigma_abcd();
        let m = obligation_witness(2); // [(Π+(a+b)*)d]·Π
                                       // Pure Π words (zero d-blocks):
        assert!(m.accepts(&Lasso::parse(&sigma, "", "a").unwrap())); // a^ω
        assert!(m.accepts(&Lasso::parse(&sigma, "abbc", "d").unwrap()));
        // One block then Π:
        assert!(m.accepts(&Lasso::parse(&sigma, "aad", "a").unwrap()));
        assert!(m.accepts(&Lasso::parse(&sigma, "dbc", "a").unwrap()));
        assert!(m.accepts(&Lasso::parse(&sigma, "abd", "a").unwrap())); // b allowed in block
        assert!(m.accepts(&Lasso::parse(&sigma, "abdbc", "d").unwrap()));
        // Too many blocks:
        assert!(!m.accepts(&Lasso::parse(&sigma, "adad", "a").unwrap()));
        // b in the Π-tail without c:
        assert!(!m.accepts(&Lasso::parse(&sigma, "db", "a").unwrap()));
        // (a+b)^ω with b's forever, no c:
        assert!(!m.accepts(&Lasso::parse(&sigma, "", "ab").unwrap()));
    }

    #[test]
    fn printed_obligation_family_collapses() {
        // The family exactly as printed in the paper is Obl₁ for every k.
        for k in 1..=4 {
            let m = obligation_witness_as_printed(k);
            let c = classify::classify(&m);
            assert!(c.is_obligation);
            assert_eq!(c.obligation_index, Some(1), "printed family, k = {k}");
        }
    }

    #[test]
    fn obligation_witness_degrees() {
        for k in 1..=4 {
            let m = obligation_witness(k);
            let c = classify::classify(&m);
            assert!(c.is_obligation, "Obl witness {k} must be an obligation");
            assert_eq!(
                c.obligation_index,
                Some(k),
                "Obl witness {k} has wrong degree"
            );
        }
    }

    #[test]
    fn reactivity_witness_indices() {
        for k in 1..=3 {
            let m = reactivity_witness(k);
            let c = classify::classify(&m);
            assert_eq!(c.reactivity_index, k, "reactivity witness {k}");
            assert_eq!(c.is_simple_reactivity, k == 1);
            assert!(!c.is_recurrence && !c.is_persistence);
        }
    }

    #[test]
    fn figure1_strict_inclusions() {
        // Safety ⊄ guarantee and vice versa; recurrence/persistence
        // witnesses escape obligation; the simple-obligation witness
        // escapes safety and guarantee.
        let s = classify::classify(&safety());
        assert!(s.is_safety && !s.is_guarantee);
        let g = classify::classify(&guarantee());
        assert!(g.is_guarantee && !g.is_safety);
        let r = classify::classify(&recurrence());
        assert!(r.is_recurrence && !r.is_persistence && !r.is_obligation);
        let p = classify::classify(&persistence());
        assert!(p.is_persistence && !p.is_recurrence && !p.is_obligation);
        let o = classify::classify(&obligation_simple());
        assert!(o.is_obligation && !o.is_safety && !o.is_guarantee);
        // Obligation = recurrence ∩ persistence on these examples:
        assert!(o.is_recurrence && o.is_persistence);
    }

    #[test]
    fn recurrence_and_persistence_witnesses_are_complements() {
        // (a*b)^ω and (a+b)*a^ω are complementary.
        assert!(recurrence().complement().equivalent(&persistence_a()));
    }
}
