//! Thompson construction: compiling a [`Regex`] to an ε-NFA, and from there
//! to a minimal DFA.

use crate::regex::Regex;
use hierarchy_automata::alphabet::Alphabet;
use hierarchy_automata::dfa::Dfa;
use hierarchy_automata::nfa::Nfa;
use hierarchy_automata::StateId;

/// Compiles a regex to an ε-NFA with a single initial and a single
/// accepting state.
pub fn regex_to_nfa(alphabet: &Alphabet, regex: &Regex) -> Nfa {
    let mut nfa = Nfa::new(alphabet);
    let (start, end) = fragment(&mut nfa, alphabet, regex);
    nfa.set_initial(start);
    nfa.add_accepting(end);
    nfa
}

/// Compiles a regex straight to a minimal complete DFA.
pub fn regex_to_dfa(alphabet: &Alphabet, regex: &Regex) -> Dfa {
    regex_to_nfa(alphabet, regex).determinize()
}

/// Builds the fragment for `regex` inside `nfa`, returning its entry and
/// exit states.
fn fragment(nfa: &mut Nfa, alphabet: &Alphabet, regex: &Regex) -> (StateId, StateId) {
    match regex {
        Regex::Empty => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            (s, e) // no connection: accepts nothing
        }
        Regex::Epsilon => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_epsilon(s, e);
            (s, e)
        }
        Regex::Sym(sym) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            nfa.add_transition(s, *sym, e);
            (s, e)
        }
        Regex::AnySym => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for sym in alphabet.symbols() {
                nfa.add_transition(s, sym, e);
            }
            (s, e)
        }
        Regex::Concat(xs) => {
            let s = nfa.add_state();
            let mut cur = s;
            for x in xs {
                let (xs_, xe) = fragment(nfa, alphabet, x);
                nfa.add_epsilon(cur, xs_);
                cur = xe;
            }
            (s, cur)
        }
        Regex::Union(xs) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            for x in xs {
                let (xs_, xe) = fragment(nfa, alphabet, x);
                nfa.add_epsilon(s, xs_);
                nfa.add_epsilon(xe, e);
            }
            (s, e)
        }
        Regex::Star(x) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (xs_, xe) = fragment(nfa, alphabet, x);
            nfa.add_epsilon(s, e);
            nfa.add_epsilon(s, xs_);
            nfa.add_epsilon(xe, xs_);
            nfa.add_epsilon(xe, e);
            (s, e)
        }
        Regex::Plus(x) => {
            let s = nfa.add_state();
            let e = nfa.add_state();
            let (xs_, xe) = fragment(nfa, alphabet, x);
            nfa.add_epsilon(s, xs_);
            nfa.add_epsilon(xe, xs_);
            nfa.add_epsilon(xe, e);
            (s, e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hierarchy_automata::alphabet::Symbol;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    fn word(s: &str) -> Vec<Symbol> {
        s.chars()
            .map(|c| if c == 'a' { Symbol(0) } else { Symbol(1) })
            .collect()
    }

    fn dfa_for(pattern: &str) -> Dfa {
        let sigma = ab();
        regex_to_dfa(&sigma, &Regex::parse(&sigma, pattern).unwrap())
    }

    #[test]
    fn basic_patterns() {
        let d = dfa_for("aa*b*");
        assert!(d.accepts(word("a")));
        assert!(d.accepts(word("aaabb")));
        assert!(!d.accepts(word("b")));
        assert!(!d.accepts(word("aba")));
        assert!(!d.accepts(word("")));
    }

    #[test]
    fn union_and_star() {
        let d = dfa_for("(a+b)*a");
        assert!(d.accepts(word("a")));
        assert!(d.accepts(word("bba")));
        assert!(!d.accepts(word("ab")));
        assert!(!d.accepts(word("")));
    }

    #[test]
    fn dot_matches_everything() {
        let d = dfa_for(".*b");
        assert!(d.accepts(word("ab")));
        assert!(d.accepts(word("bb")));
        assert!(!d.accepts(word("ba")));
    }

    #[test]
    fn empty_and_epsilon() {
        let sigma = ab();
        let empty = regex_to_dfa(&sigma, &Regex::Empty);
        assert!(empty.is_empty());
        let eps = regex_to_dfa(&sigma, &Regex::Epsilon);
        assert!(eps.accepts(word("")));
        assert!(!eps.accepts(word("a")));
    }

    #[test]
    fn plus_requires_one() {
        let d = dfa_for("(ab)+");
        assert!(!d.accepts(word("")));
        assert!(d.accepts(word("ab")));
        assert!(d.accepts(word("abab")));
        assert!(!d.accepts(word("aba")));
    }

    #[test]
    fn paper_power_examples() {
        // (a³)⁺ and (a²)⁺ from the minex example.
        let d3 = dfa_for("(aaa)+");
        let d2 = dfa_for("(aa)+");
        assert!(d3.accepts(word("aaa")));
        assert!(d3.accepts(word("aaaaaa")));
        assert!(!d3.accepts(word("aaaa")));
        assert!(d2.accepts(word("aa")));
        assert!(!d2.accepts(word("aaa")));
    }

    #[test]
    fn determinization_is_minimal() {
        // a*b over {a,b} needs exactly 3 states complete (start/acc/dead…
        // actually 3: a-loop, accept, dead-after-accept-b? compute: states
        // {a*: q0, a*b: q1, others: q2}).
        let d = dfa_for("a*b");
        assert_eq!(d.num_states(), 3);
    }
}
