//! Regular expressions in the paper's notation.
//!
//! The grammar follows the paper's regular-expression style:
//!
//! ```text
//! expr    ::= term ('+' term)*          // union (the paper's '+')
//! term    ::= factor+                   // concatenation by juxtaposition
//! factor  ::= atom ('*' | '+')*         // Kleene star / plus (postfix)
//! atom    ::= symbol | '.' | '(' expr ')'
//! ```
//!
//! A `+` is parsed as *postfix plus* when it directly follows a factor and
//! is not followed by the start of another atom at the same level — i.e.
//! `a+b` is the union `a ∪ b`, while `a+` and `(ab)+` use the postfix plus,
//! and `a++b` is `a⁺ ∪ b`. `.` denotes any single symbol (the paper's `Σ`).
//! Symbols are single characters that must name a symbol of the alphabet;
//! whitespace is ignored.

use hierarchy_automata::alphabet::{Alphabet, Symbol};
use std::fmt;

/// A regular-expression syntax tree over an alphabet's symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single symbol.
    Sym(Symbol),
    /// Any single symbol (the paper's `Σ`).
    AnySym,
    /// Concatenation.
    Concat(Vec<Regex>),
    /// Union (the paper's `+`).
    Union(Vec<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// Kleene plus.
    Plus(Box<Regex>),
}

impl Regex {
    /// Parses an expression in the paper's notation over `alphabet`.
    ///
    /// # Errors
    ///
    /// Returns a [`RegexError`] describing the first syntax problem.
    ///
    /// # Examples
    ///
    /// ```
    /// use hierarchy_automata::alphabet::Alphabet;
    /// use hierarchy_lang::Regex;
    ///
    /// let sigma = Alphabet::new(["a", "b"]).unwrap();
    /// let r = Regex::parse(&sigma, "a+b*").unwrap(); // a ∪ b*
    /// let p = Regex::parse(&sigma, "(a*b)+").unwrap(); // (a*b)⁺
    /// assert_ne!(r, p);
    /// ```
    pub fn parse(alphabet: &Alphabet, input: &str) -> Result<Regex, RegexError> {
        let chars: Vec<char> = input.chars().filter(|c| !c.is_whitespace()).collect();
        let mut parser = Parser {
            alphabet,
            chars: &chars,
            pos: 0,
        };
        let expr = parser.union()?;
        if parser.pos != chars.len() {
            return Err(RegexError {
                position: parser.pos,
                message: format!("unexpected character {:?}", chars[parser.pos]),
            });
        }
        Ok(expr)
    }

    /// Whether ε belongs to the language.
    pub fn matches_epsilon(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) | Regex::AnySym => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(xs) => xs.iter().all(Regex::matches_epsilon),
            Regex::Union(xs) => xs.iter().any(Regex::matches_epsilon),
            Regex::Plus(x) => x.matches_epsilon(),
        }
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn prec(r: &Regex) -> u8 {
            match r {
                Regex::Union(_) => 0,
                Regex::Concat(_) => 1,
                _ => 2,
            }
        }
        fn rec(r: &Regex, f: &mut fmt::Formatter<'_>, min: u8) -> fmt::Result {
            let p = prec(r);
            if p < min {
                write!(f, "(")?;
            }
            match r {
                Regex::Empty => write!(f, "∅")?,
                Regex::Epsilon => write!(f, "ε")?,
                Regex::Sym(s) => write!(f, "<{}>", s.index())?,
                Regex::AnySym => write!(f, ".")?,
                Regex::Concat(xs) => {
                    for x in xs {
                        rec(x, f, 2)?;
                    }
                }
                Regex::Union(xs) => {
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            write!(f, "+")?;
                        }
                        rec(x, f, 1)?;
                    }
                }
                Regex::Star(x) => {
                    rec(x, f, 2)?;
                    write!(f, "*")?;
                }
                Regex::Plus(x) => {
                    rec(x, f, 2)?;
                    write!(f, "+")?;
                }
            }
            if p < min {
                write!(f, ")")?;
            }
            Ok(())
        }
        rec(self, f, 0)
    }
}

/// A regular-expression syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexError {
    /// Character offset (whitespace stripped) of the problem.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

struct Parser<'a> {
    alphabet: &'a Alphabet,
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn starts_atom(&self, c: char) -> bool {
        c == '(' || c == '.' || self.alphabet.symbol(&c.to_string()).is_some()
    }

    fn union(&mut self) -> Result<Regex, RegexError> {
        let mut terms = vec![self.concat()?];
        while self.peek() == Some('+') {
            // Infix union only when something parseable follows; a trailing
            // '+' belongs to the preceding factor and was consumed there.
            self.pos += 1;
            terms.push(self.concat()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Regex::Union(terms)
        })
    }

    fn concat(&mut self) -> Result<Regex, RegexError> {
        let mut factors = Vec::new();
        while let Some(c) = self.peek() {
            if !self.starts_atom(c) {
                break;
            }
            factors.push(self.factor()?);
        }
        match factors.len() {
            0 => Err(RegexError {
                position: self.pos,
                message: match self.peek() {
                    Some(c) => format!("expected an atom, found {c:?}"),
                    None => "expected an atom, found end of input".to_string(),
                },
            }),
            1 => Ok(factors.pop().expect("one factor")),
            _ => Ok(Regex::Concat(factors)),
        }
    }

    fn factor(&mut self) -> Result<Regex, RegexError> {
        let mut atom = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    atom = Regex::Star(Box::new(atom));
                }
                Some('+') => {
                    // Postfix plus only if no atom follows (else it is the
                    // union operator handled by `union`).
                    match self.chars.get(self.pos + 1) {
                        Some(&c) if self.starts_atom(c) => break,
                        Some('+') | Some('*') => {
                            // `a++` = (a⁺)… continue postfix.
                            self.pos += 1;
                            atom = Regex::Plus(Box::new(atom));
                        }
                        Some(')') => {
                            self.pos += 1;
                            atom = Regex::Plus(Box::new(atom));
                        }
                        None => {
                            self.pos += 1;
                            atom = Regex::Plus(Box::new(atom));
                        }
                        Some(_) => break,
                    }
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn atom(&mut self) -> Result<Regex, RegexError> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.union()?;
                if self.peek() != Some(')') {
                    return Err(RegexError {
                        position: self.pos,
                        message: "expected ')'".to_string(),
                    });
                }
                self.pos += 1;
                Ok(inner)
            }
            Some('.') => {
                self.pos += 1;
                Ok(Regex::AnySym)
            }
            Some(c) => match self.alphabet.symbol(&c.to_string()) {
                Some(sym) => {
                    self.pos += 1;
                    Ok(Regex::Sym(sym))
                }
                None => Err(RegexError {
                    position: self.pos,
                    message: format!("{c:?} is not a symbol of the alphabet"),
                }),
            },
            None => Err(RegexError {
                position: self.pos,
                message: "unexpected end of input".to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::new(["a", "b"]).unwrap()
    }

    #[test]
    fn parses_symbols_and_concat() {
        let sigma = ab();
        let r = Regex::parse(&sigma, "ab").unwrap();
        assert_eq!(
            r,
            Regex::Concat(vec![Regex::Sym(Symbol(0)), Regex::Sym(Symbol(1))])
        );
    }

    #[test]
    fn infix_plus_is_union() {
        let sigma = ab();
        let r = Regex::parse(&sigma, "a+b").unwrap();
        assert_eq!(
            r,
            Regex::Union(vec![Regex::Sym(Symbol(0)), Regex::Sym(Symbol(1))])
        );
    }

    #[test]
    fn postfix_plus_at_end_and_before_paren() {
        let sigma = ab();
        assert_eq!(
            Regex::parse(&sigma, "a+").unwrap(),
            Regex::Plus(Box::new(Regex::Sym(Symbol(0))))
        );
        assert_eq!(
            Regex::parse(&sigma, "(a+)b").unwrap(),
            Regex::Concat(vec![
                Regex::Plus(Box::new(Regex::Sym(Symbol(0)))),
                Regex::Sym(Symbol(1))
            ])
        );
        // a++b = a⁺ ∪ b
        assert_eq!(
            Regex::parse(&sigma, "a++b").unwrap(),
            Regex::Union(vec![
                Regex::Plus(Box::new(Regex::Sym(Symbol(0)))),
                Regex::Sym(Symbol(1))
            ])
        );
    }

    #[test]
    fn star_and_dot() {
        let sigma = ab();
        let r = Regex::parse(&sigma, ".*b").unwrap();
        assert_eq!(
            r,
            Regex::Concat(vec![
                Regex::Star(Box::new(Regex::AnySym)),
                Regex::Sym(Symbol(1))
            ])
        );
    }

    #[test]
    fn precedence_union_lowest() {
        let sigma = ab();
        // ab+ba = (ab) ∪ (ba)
        let r = Regex::parse(&sigma, "ab+ba").unwrap();
        match r {
            Regex::Union(ts) => assert_eq!(ts.len(), 2),
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn errors_are_reported() {
        let sigma = ab();
        assert!(Regex::parse(&sigma, "x").is_err());
        assert!(Regex::parse(&sigma, "(a").is_err());
        assert!(Regex::parse(&sigma, "a)").is_err());
        assert!(Regex::parse(&sigma, "").is_err());
        assert!(Regex::parse(&sigma, "+a").is_err());
        let e = Regex::parse(&sigma, "a%").unwrap_err();
        assert!(e.to_string().contains("regex error"));
    }

    #[test]
    fn whitespace_ignored() {
        let sigma = ab();
        assert_eq!(
            Regex::parse(&sigma, " a  b ").unwrap(),
            Regex::parse(&sigma, "ab").unwrap()
        );
    }

    #[test]
    fn matches_epsilon() {
        let sigma = ab();
        assert!(Regex::parse(&sigma, "a*").unwrap().matches_epsilon());
        assert!(!Regex::parse(&sigma, "a+").unwrap().matches_epsilon());
        assert!(!Regex::parse(&sigma, "ab").unwrap().matches_epsilon());
        assert!(Regex::parse(&sigma, "a*b*").unwrap().matches_epsilon());
        assert!(Regex::parse(&sigma, "a+b*").unwrap().matches_epsilon()); // union
    }

    #[test]
    fn display_roundtrip_shape() {
        let sigma = ab();
        let r = Regex::parse(&sigma, "(a+b)*a+").unwrap();
        let shown = r.to_string();
        assert!(shown.contains('*'));
    }
}
