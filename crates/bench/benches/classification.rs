//! Microbenchmarks of the classification decision procedures
//! (experiments TAB-DEC, TAB-OBLK, TAB-REACTK: timing series).
//!
//! Run with `cargo bench -p hierarchy-bench --bench classification`.

use hierarchy_bench::microbench;
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::automata::{classify, paper_checks, random};
use hierarchy_core::lang::witnesses;
use std::hint::black_box;

fn classify_witnesses() {
    let mut group = microbench::group("classify_witnesses");
    group.sample_size(20);
    for (name, aut) in [
        ("safety", witnesses::safety()),
        ("recurrence", witnesses::recurrence()),
        ("obligation_simple", witnesses::obligation_simple()),
        ("reactivity_2", witnesses::reactivity_witness(2)),
    ] {
        group.bench_function(name, || classify::classify(black_box(&aut)));
    }
    group.finish();
}

fn decision_procedures_scaling() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = microbench::group("decision_procedures");
    group.sample_size(10);
    for &n in &[8usize, 32, 128] {
        let (aut, pairs) = random::random_streett(&mut rng, &sigma, n, 2, 0.2);
        group.bench_function(format!("classify/{n}"), || {
            classify::classify(black_box(&aut))
        });
        group.bench_function(format!("structural_safety/{n}"), || {
            paper_checks::is_safety_structural(black_box(&aut), black_box(&pairs))
        });
        group.bench_function(format!("is_safety_semantic/{n}"), || {
            classify::is_safety(black_box(&aut))
        });
    }
    group.finish();
}

fn hierarchy_indices() {
    let mut group = microbench::group("hierarchy_indices");
    group.sample_size(10);
    for k in [2usize, 4, 6] {
        let obl = witnesses::obligation_witness(k);
        group.bench_function(format!("obligation_index/{k}"), || {
            classify::classify(black_box(&obl)).obligation_index
        });
    }
    for n in [1usize, 2, 3] {
        let re = witnesses::reactivity_witness(n);
        group.bench_function(format!("reactivity_index/{n}"), || {
            classify::reactivity_index(black_box(&re))
        });
    }
    group.finish();
}

fn main() {
    classify_witnesses();
    decision_procedures_scaling();
    hierarchy_indices();
}
