//! Criterion benchmarks of the classification decision procedures
//! (experiments TAB-DEC, TAB-OBLK, TAB-REACTK: timing series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::{classify, paper_checks, random};
use hierarchy_core::lang::witnesses;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn classify_witnesses(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_witnesses");
    group.sample_size(20);
    for (name, aut) in [
        ("safety", witnesses::safety()),
        ("recurrence", witnesses::recurrence()),
        ("obligation_simple", witnesses::obligation_simple()),
        ("reactivity_2", witnesses::reactivity_witness(2)),
    ] {
        group.bench_function(name, |b| b.iter(|| classify::classify(black_box(&aut))));
    }
    group.finish();
}

fn decision_procedures_scaling(c: &mut Criterion) {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut group = c.benchmark_group("decision_procedures");
    group.sample_size(10);
    for &n in &[8usize, 32, 128] {
        let (aut, pairs) = random::random_streett(&mut rng, &sigma, n, 2, 0.2);
        group.bench_with_input(BenchmarkId::new("classify", n), &aut, |b, aut| {
            b.iter(|| classify::classify(black_box(aut)))
        });
        group.bench_with_input(
            BenchmarkId::new("structural_safety", n),
            &(aut.clone(), pairs.clone()),
            |b, (aut, pairs)| {
                b.iter(|| paper_checks::is_safety_structural(black_box(aut), black_box(pairs)))
            },
        );
        group.bench_with_input(BenchmarkId::new("is_safety_semantic", n), &aut, |b, aut| {
            b.iter(|| classify::is_safety(black_box(aut)))
        });
    }
    group.finish();
}

fn hierarchy_indices(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_indices");
    group.sample_size(10);
    for k in [2usize, 4, 6] {
        let obl = witnesses::obligation_witness(k);
        group.bench_with_input(BenchmarkId::new("obligation_index", k), &obl, |b, m| {
            b.iter(|| classify::classify(black_box(m)).obligation_index)
        });
    }
    for n in [1usize, 2, 3] {
        let re = witnesses::reactivity_witness(n);
        group.bench_with_input(BenchmarkId::new("reactivity_index", n), &re, |b, m| {
            b.iter(|| classify::reactivity_index(black_box(m)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    classify_witnesses,
    decision_procedures_scaling,
    hierarchy_indices
);
criterion_main!(benches);
