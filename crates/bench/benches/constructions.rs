//! Microbenchmarks of the construction pipeline: the A/E/R/P
//! operators, `minex` against the naive product (TAB-DUAL's timing facet),
//! past-tester construction (TAB-TL), and the Prop 5.1 κ-automaton
//! constructions.
//!
//! Run with `cargo bench -p hierarchy-bench --bench constructions`.

use hierarchy_bench::microbench;
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::paper_checks;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::lang::{operators, FinitaryProperty};
use hierarchy_core::logic::tester::Tester;
use hierarchy_core::logic::to_automaton::compile_over;
use hierarchy_core::logic::Formula;
use std::hint::black_box;

fn operators_bench() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let phi = FinitaryProperty::parse(&sigma, "(a*b)(a*b)*a*").unwrap();
    let mut group = microbench::group("operators");
    group.bench_function("A", || operators::a(black_box(&phi)));
    group.bench_function("E", || operators::e(black_box(&phi)));
    group.bench_function("R", || operators::r(black_box(&phi)));
    group.bench_function("P", || operators::p(black_box(&phi)));
    group.finish();
}

fn minex_vs_product() {
    // R(Φ₁) ∩ R(Φ₂) two ways: the automaton product vs R(minex(Φ₁,Φ₂)).
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let f1 = FinitaryProperty::parse(&sigma, "(aa)(aa)*").unwrap();
    let f2 = FinitaryProperty::parse(&sigma, ".*b(ab)*").unwrap();
    let mut group = microbench::group("recurrence_intersection");
    group.bench_function("via_product", || {
        operators::r(black_box(&f1)).intersection(&operators::r(black_box(&f2)))
    });
    group.bench_function("via_minex", || {
        operators::r(&black_box(&f1).minex(black_box(&f2)))
    });
    group.finish();
}

fn tester_construction() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let formulas = [
        "b & Z H a",
        "a S (b & Y a)",
        "O (a & Y (b & Y a))",
        "(!a B b) & O a",
    ];
    let mut group = microbench::group("past_tester");
    for src in formulas {
        let f = Formula::parse(&sigma, src).unwrap();
        group.bench_function(src, || {
            Tester::new(black_box(&sigma), std::slice::from_ref(black_box(&f)))
        });
    }
    group.finish();
}

fn formula_compilation() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut group = microbench::group("compile_formula");
    for src in ["G (a -> F b)", "G F a -> G F b", "a U b", "G (a -> F G b)"] {
        let f = Formula::parse(&sigma, src).unwrap();
        group.bench_function(src, || compile_over(black_box(&sigma), black_box(&f)));
    }
    group.finish();
}

fn prop51_constructions() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let (aut, pairs) =
        hierarchy_core::automata::random::random_streett(&mut rng, &sigma, 24, 2, 0.25);
    let mut group = microbench::group("prop51");
    group.sample_size(20);
    group.bench_function("safety_automaton", || {
        paper_checks::safety_automaton(black_box(&aut))
    });
    group.bench_function("recurrence_automaton", || {
        paper_checks::recurrence_automaton(black_box(&aut), black_box(&pairs))
    });
    group.finish();
}

fn main() {
    operators_bench();
    minex_vs_product();
    tester_construction();
    formula_compilation();
    prop51_constructions();
}
