//! Criterion benchmarks of the construction pipeline: the A/E/R/P
//! operators, `minex` against the naive product (TAB-DUAL's timing facet),
//! past-tester construction (TAB-TL), and the Prop 5.1 κ-automaton
//! constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hierarchy_core::automata::alphabet::Alphabet;
use hierarchy_core::automata::paper_checks;
use hierarchy_core::lang::{operators, FinitaryProperty};
use hierarchy_core::logic::tester::Tester;
use hierarchy_core::logic::to_automaton::compile_over;
use hierarchy_core::logic::Formula;
use std::hint::black_box;

fn operators_bench(c: &mut Criterion) {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let phi = FinitaryProperty::parse(&sigma, "(a*b)(a*b)*a*").unwrap();
    let mut group = c.benchmark_group("operators");
    group.bench_function("A", |b| b.iter(|| operators::a(black_box(&phi))));
    group.bench_function("E", |b| b.iter(|| operators::e(black_box(&phi))));
    group.bench_function("R", |b| b.iter(|| operators::r(black_box(&phi))));
    group.bench_function("P", |b| b.iter(|| operators::p(black_box(&phi))));
    group.finish();
}

fn minex_vs_product(c: &mut Criterion) {
    // R(Φ₁) ∩ R(Φ₂) two ways: the automaton product vs R(minex(Φ₁,Φ₂)).
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let f1 = FinitaryProperty::parse(&sigma, "(aa)(aa)*").unwrap();
    let f2 = FinitaryProperty::parse(&sigma, ".*b(ab)*").unwrap();
    let mut group = c.benchmark_group("recurrence_intersection");
    group.bench_function("via_product", |b| {
        b.iter(|| operators::r(black_box(&f1)).intersection(&operators::r(black_box(&f2))))
    });
    group.bench_function("via_minex", |b| {
        b.iter(|| operators::r(&black_box(&f1).minex(black_box(&f2))))
    });
    group.finish();
}

fn tester_construction(c: &mut Criterion) {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let formulas = [
        "b & Z H a",
        "a S (b & Y a)",
        "O (a & Y (b & Y a))",
        "(!a B b) & O a",
    ];
    let mut group = c.benchmark_group("past_tester");
    for src in formulas {
        let f = Formula::parse(&sigma, src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(src), &f, |b, f| {
            b.iter(|| Tester::new(black_box(&sigma), std::slice::from_ref(black_box(f))))
        });
    }
    group.finish();
}

fn formula_compilation(c: &mut Criterion) {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut group = c.benchmark_group("compile_formula");
    for src in ["G (a -> F b)", "G F a -> G F b", "a U b", "G (a -> F G b)"] {
        let f = Formula::parse(&sigma, src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(src), &f, |b, f| {
            b.iter(|| compile_over(black_box(&sigma), black_box(f)))
        });
    }
    group.finish();
}

fn prop51_constructions(c: &mut Criterion) {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let (aut, pairs) = hierarchy_core::automata::random::random_streett(&mut rng, &sigma, 24, 2, 0.25);
    let mut group = c.benchmark_group("prop51");
    group.sample_size(20);
    group.bench_function("safety_automaton", |b| {
        b.iter(|| paper_checks::safety_automaton(black_box(&aut)))
    });
    group.bench_function("recurrence_automaton", |b| {
        b.iter(|| paper_checks::recurrence_automaton(black_box(&aut), black_box(&pairs)))
    });
    group.finish();
}

criterion_group!(
    benches,
    operators_bench,
    minex_vs_product,
    tester_construction,
    formula_compilation,
    prop51_constructions
);
criterion_main!(benches);
