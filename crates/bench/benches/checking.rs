//! Microbenchmarks of the checking side: model checking the example
//! programs (TAB-FAIR), the safety–liveness decomposition (TAB-SL), and
//! the counter-freedom test (TAB-CF).
//!
//! Run with `cargo bench -p hierarchy-bench --bench checking`.

use hierarchy_bench::microbench;
use hierarchy_core::automata::counterfree;
use hierarchy_core::automata::random::rng::{SeedableRng, StdRng};
use hierarchy_core::fts::checker::verify;
use hierarchy_core::fts::programs;
use hierarchy_core::fts::system::Fairness;
use hierarchy_core::prelude::*;
use hierarchy_core::topology::decomposition;
use std::hint::black_box;

fn model_check_peterson() {
    let (ts, sigma) = programs::peterson();
    let specs = [
        ("mutex", "G !(c1 & c2)"),
        ("accessibility", "G (t1 -> F c1)"),
        ("precedence", "G (c1 -> O t1)"),
    ];
    let mut group = microbench::group("model_check_peterson");
    group.sample_size(20);
    for (name, src) in specs {
        let prop = Property::parse(&sigma, src).unwrap();
        group.bench_function(name, || {
            verify(black_box(&ts), black_box(prop.automaton())).expect("check")
        });
    }
    group.finish();
}

fn model_check_mux_sem() {
    let mut group = microbench::group("model_check_mux_sem");
    group.sample_size(20);
    for (name, fairness) in [("strong", Fairness::Strong), ("weak", Fairness::Weak)] {
        let (ts, sigma) = programs::mux_sem(fairness);
        let prop = Property::parse(&sigma, "G (t2 -> F c2)").unwrap();
        group.bench_function(name, || {
            verify(black_box(&ts), black_box(prop.automaton())).expect("check")
        });
    }
    group.finish();
}

fn decomposition_bench() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let mut group = microbench::group("safety_liveness_decomposition");
    group.sample_size(10);
    for &n in &[8usize, 32, 128] {
        let (aut, _) =
            hierarchy_core::automata::random::random_streett(&mut rng, &sigma, n, 2, 0.2);
        group.bench_function(format!("{n}"), || decomposition::decompose(black_box(&aut)));
    }
    group.finish();
}

fn counterfree_bench() {
    let sigma = Alphabet::new(["a", "b"]).unwrap();
    let a = sigma.symbol("a").unwrap();
    let mut group = microbench::group("counter_freedom");
    group.sample_size(10);
    for &n in &[4usize, 6, 8] {
        let counter = OmegaAutomaton::build(
            &sigma,
            n,
            0,
            move |q, s| {
                if s == a {
                    ((q as usize + 1) % n) as u32
                } else {
                    q
                }
            },
            Acceptance::inf([0]),
        );
        group.bench_function(format!("mod_counter/{n}"), || {
            counterfree::check_omega(black_box(&counter), counterfree::DEFAULT_MONOID_CAP)
        });
    }
    let cf = hierarchy_core::lang::witnesses::obligation_witness(3);
    group.bench_function("counter_free_witness", || {
        counterfree::check_omega(black_box(&cf), counterfree::DEFAULT_MONOID_CAP)
    });
    group.finish();
}

fn main() {
    model_check_peterson();
    model_check_mux_sem();
    decomposition_bench();
    counterfree_bench();
}
